//! # gathering
//!
//! Umbrella crate for the reproduction of *"Gathering a Closed Chain of
//! Robots on a Grid"* (Abshoff, Cord-Landwehr, Fischer, Jung, Meyer auf der
//! Heide; IPDPS 2016). It re-exports every workspace crate under one roof
//! and owns the cross-crate integration tests (`tests/`) and the runnable
//! examples (`examples/`).
//!
//! See the workspace `README.md` for the crate map and quick-start.

pub use baselines;
// `::bench` disambiguates the crate from the built-in unstable `bench`
// attribute that lives in the macro prelude.
pub use ::bench;
pub use chain_sim;
pub use chain_viz;
pub use gathering_core;
pub use grid_geom;
pub use workloads;
