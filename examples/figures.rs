//! Replay the paper's figures as executable scenarios.
//!
//! ```text
//! cargo run --release --example figures
//! ```
//!
//! Each section reconstructs the configuration of a figure of
//! *Gathering a Closed Chain of Robots on a Grid* from its prose
//! description, executes the algorithm on it, and prints before/after
//! states so the depicted behavior can be verified by eye (the same
//! scenarios are hard-asserted in `tests/figures.rs`).

use chain_sim::{ClosedChain, Sim, Strategy};
use chain_viz::ascii::{self, AsciiOptions};
use gathering_core::{ClosedChainGathering, GatherConfig, MergeScan};
use grid_geom::Point;

fn chain(coords: &[(i64, i64)]) -> ClosedChain {
    ClosedChain::new(coords.iter().map(|&(x, y)| Point::new(x, y)).collect()).unwrap()
}

fn rectangle(w: i64, h: i64) -> ClosedChain {
    let mut pts = vec![Point::new(0, 0)];
    pts.extend((1..w).map(|x| Point::new(x, 0)));
    pts.extend((1..h).map(|y| Point::new(w - 1, y)));
    pts.extend((1..w).map(|x| Point::new(w - 1 - x, h - 1)));
    pts.extend((1..h - 1).map(|y| Point::new(0, h - 1 - y)));
    ClosedChain::new(pts).unwrap()
}

fn show(title: &str, c: &ClosedChain) {
    println!("{title}");
    println!("{}", ascii::render(c));
}

fn show_marked(title: &str, sim: &Sim<ClosedChainGathering>) {
    println!("{title}");
    println!(
        "{}",
        ascii::render_with_markers(
            sim.chain(),
            |i| sim.strategy().marker(i),
            AsciiOptions::default()
        )
    );
}

fn main() {
    fig1();
    fig2();
    fig3b();
    fig4_7_good_pair();
    fig8_passing();
    fig9_pipelining();
    fig16_stairways();
}

/// Figure 1: the 2×3 ring where r2, r3 hop down and the chain shortens.
fn fig1() {
    println!("=== Figure 1: merge shortens the chain ===");
    let c = chain(&[(0, 0), (0, 1), (0, 2), (1, 2), (1, 1), (1, 0)]);
    show("before (6 robots):", &c);
    let mut sim = Sim::new(c, ClosedChainGathering::paper());
    let report = sim.step().unwrap();
    println!(
        "one FSYNC round: {} robots hopped, {} merged away",
        report.moved, report.removed
    );
    show("after:", sim.chain());
    println!("gathered: {}\n", sim.is_gathered());
}

/// Figure 2: the merge patterns for k = 1 (hairpin tip) and k > 1.
fn fig2() {
    println!("=== Figure 2: merge patterns (k = 1 and k > 1) ===");
    // k = 1: a zero-area fold — both whites on the same point.
    let c = chain(&[(0, 0), (1, 0), (2, 0), (1, 0)]);
    show("k = 1 (hairpin; '2' marks two robots on one point):", &c);
    let mut scan = MergeScan::default();
    scan.scan(&c, &GatherConfig::paper());
    println!(
        "patterns found: {} (the two fold tips hop onto their coinciding neighbors)",
        scan.patterns.len()
    );
    let mut sim = Sim::new(c, ClosedChainGathering::paper());
    sim.step().unwrap();
    show("after one round:", sim.chain());

    // k = 5: the 2×5 band; top and bottom rows are 5-long black segments.
    let c = chain(&[
        (0, 0),
        (0, 1),
        (1, 1),
        (2, 1),
        (3, 1),
        (4, 1),
        (4, 0),
        (3, 0),
        (2, 0),
        (1, 0),
    ]);
    show("k = 5 (2×5 band):", &c);
    let mut sim = Sim::new(c, ClosedChainGathering::paper());
    let report = sim.step().unwrap();
    println!("one round: removed {}", report.removed);
    show("after:", sim.chain());
    println!();
}

/// Figure 3b: overlap by three robots — the corner robot is black in a
/// horizontal and a vertical pattern and hops diagonally.
fn fig3b() {
    println!("=== Figure 3b: overlapping patterns, diagonal hop ===");
    let c = rectangle(4, 2);
    show(
        "before (4×2 ring; every corner combines two black roles):",
        &c,
    );
    let mut scan = MergeScan::default();
    scan.scan(&c, &GatherConfig::paper());
    for i in 0..c.len() {
        let h = scan.merge_hop(i);
        if h.is_diagonal() {
            println!("robot at {} hops diagonally {}", c.pos(i), h);
        }
    }
    let mut sim = Sim::new(c, ClosedChainGathering::paper());
    let report = sim.step().unwrap();
    println!("one round: removed {}", report.removed);
    show("after:", sim.chain());
}

/// Figures 4–7: a good pair reshapes a long line from both ends.
fn fig4_7_good_pair() {
    println!("=== Figures 4-7: good pair reshapement on a 20×12 ring ===");
    let c = rectangle(20, 12);
    let mut sim = Sim::new(c, ClosedChainGathering::paper());
    show_marked("round 0 (runs start at the four Fig. 5(ii) corners):", &sim);
    for _ in 0..2 {
        sim.step().unwrap();
    }
    show_marked(
        "round 2 ('>' and '<' are run states moving along the chain):",
        &sim,
    );
    for _ in 0..4 {
        sim.step().unwrap();
    }
    show_marked("round 6 (corners folded; edges eroding inward):", &sim);
    let outcome = sim.run_default();
    println!("outcome: {outcome:?}\n");
}

/// Figure 8: runs of a non-good pair pass each other without reshaping.
fn fig8_passing() {
    println!("=== Figure 8/14: run passing ===");
    // An S-shaped band: the two quasi-line endpoint runs started on the
    // middle segment have opposite fold sides and must pass.
    let c = rectangle(26, 8);
    let mut sim = Sim::new(c, ClosedChainGathering::paper());
    let limit = 26 * 8 * 64;
    let mut passings = 0;
    for _ in 0..limit {
        if sim.is_gathered() {
            break;
        }
        sim.step().unwrap();
        passings = sim.strategy().stats().passings_started;
    }
    println!(
        "gathered: {} — run passings observed: {}\n",
        sim.is_gathered(),
        passings
    );
}

/// Figure 9: pipelining — new runs every L = 13 rounds work in parallel.
fn fig9_pipelining() {
    println!("=== Figure 9: pipelining ===");
    let c = rectangle(40, 20);
    let mut sim = Sim::new(c, ClosedChainGathering::paper());
    let mut max_live = 0usize;
    for _ in 0..200 {
        if sim.is_gathered() {
            break;
        }
        sim.step().unwrap();
        let live: usize = sim.strategy().cells().iter().map(|c| c.count()).sum();
        max_live = max_live.max(live);
    }
    println!(
        "max simultaneously live runs in the first 200 rounds: {max_live} (> 2 pairs ⇒ pipelining)\n"
    );
}

/// Figure 16: stairways connect quasi lines without enabling merges.
fn fig16_stairways() {
    println!("=== Figure 16: stairways are merge-free ===");
    let c = workloads::staircase_diamond(8);
    show("staircase diamond (all runs of length 2):", &c);
    let mut scan = MergeScan::default();
    scan.scan(&c, &GatherConfig::paper());
    println!(
        "merge patterns on the diamond: {} (only at the 4 tips, k ≤ 2)",
        scan.patterns.len()
    );
    let mut sim = Sim::new(c, ClosedChainGathering::paper());
    let outcome = sim.run_default();
    println!("outcome: {outcome:?}");
}
