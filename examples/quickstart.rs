//! Quickstart: gather a closed chain with the paper's algorithm.
//!
//! ```text
//! cargo run --release --example quickstart [n] [seed]
//! ```
//!
//! Builds a random closed lattice loop, runs the strategy of
//! *Gathering a Closed Chain of Robots on a Grid* (Abshoff et al., IPDPS
//! 2016), and prints the before/after configurations plus the round count
//! against the paper's `O(n)` bound.

use chain_sim::{Outcome, RunLimits, Sim};
use chain_viz::ascii;
use gathering_core::ClosedChainGathering;
use workloads::random_loop;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let n: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(64);
    let seed: u64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(2016);

    let chain = random_loop(n, seed);
    println!(
        "initial configuration: {} robots, bounding box {}x{}",
        chain.len(),
        chain.bounding().width(),
        chain.bounding().height()
    );
    println!("{}", ascii::render(&chain));

    let n_real = chain.len() as u64;
    let mut sim = Sim::new(chain, ClosedChainGathering::paper());
    let outcome = sim.run(RunLimits::for_chain_len(n_real as usize));

    match outcome {
        Outcome::Gathered { rounds } => {
            println!("gathered after {rounds} rounds (n = {n_real});");
            println!(
                "rounds/n = {:.2}  — Theorem 1 bound: 2Ln + n = {} rounds",
                rounds as f64 / n_real as f64,
                27 * n_real
            );
        }
        other => println!("did not gather: {other:?}"),
    }
    println!("final configuration ({} robots):", sim.chain().len());
    println!("{}", ascii::render(sim.chain()));

    let stats = sim.strategy().stats();
    println!(
        "runs started: {} (stairway ends: {}, corner ends: {}); folds: {}; passings: {}",
        stats.started_total(),
        stats.started_stairway,
        stats.started_corner,
        stats.folds,
        stats.passings_started,
    );
}
