//! Animate the gathering of a rectangle ring: watch runs start at the
//! corners, fold the edges inward, and merges shorten the chain.
//!
//! Demonstrates the observer API: one engine run with the
//! [`chain_viz::FrameCapture`] observer attached — no hand-rolled loop
//! interleaving `step()` with rendering.
//!
//! ```text
//! cargo run --release --example pipeline_show [w] [h] [every]
//! ```

use chain_sim::{RunLimits, Sim};
use chain_viz::FrameCapture;
use gathering_core::ClosedChainGathering;
use grid_geom::Point;

fn rectangle(w: i64, h: i64) -> chain_sim::ClosedChain {
    let mut pts = vec![Point::new(0, 0)];
    pts.extend((1..w).map(|x| Point::new(x, 0)));
    pts.extend((1..h).map(|y| Point::new(w - 1, y)));
    pts.extend((1..w).map(|x| Point::new(w - 1 - x, h - 1)));
    pts.extend((1..h - 1).map(|y| Point::new(0, h - 1 - y)));
    chain_sim::ClosedChain::new(pts).unwrap()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let w: i64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(24);
    let h: i64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(10);
    let every: u64 = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(4);

    let chain = rectangle(w, h);
    let n = chain.len();
    println!("gathering a {w}x{h} rectangle ring ({n} robots)");
    println!("legend: o robot · > < run states (direction) · X two runs\n");

    let mut sim =
        Sim::new(chain, ClosedChainGathering::paper()).observe(FrameCapture::every(every, 1024));
    let outcome = sim.run(RunLimits::for_chain_len(n));

    for frame in sim.observer::<FrameCapture>().unwrap().frames() {
        println!("-- round {}: {} robots --", frame.rounds, frame.robots);
        println!("{}", frame.art);
    }

    if outcome.is_gathered() {
        println!(
            "gathered after {} rounds (n = {n}, bound 27n = {})",
            outcome.rounds(),
            27 * n
        );
    } else {
        println!("did not gather: {outcome:?}");
    }

    let stats = sim.strategy().stats();
    println!(
        "\nrun statistics: started {}, folds {}, walks {}, passings {}, max live {}",
        stats.started_total(),
        stats.folds,
        stats.walks,
        stats.passings_started,
        stats.max_live_runs
    );
}
