//! Race the paper's local algorithm against the baselines of Section 1.
//!
//! ```text
//! cargo run --release --example race [n]
//! ```
//!
//! Shows what global information is worth: global vision gathers in
//! Θ(diameter) rounds, a compass-guided drain in O(n·diameter), while the
//! paper's strategy needs O(n) rounds with *no* global information at all.

use baselines::{open_chain_zip, CompassSe, GlobalVision, NaiveLocal};
use chain_sim::{OpenChain, Outcome, RunLimits, Sim, Strategy};
use gathering_core::ClosedChainGathering;
use workloads::Family;

fn race<S: Strategy>(strategy: S, chain: chain_sim::ClosedChain) -> String {
    let n = chain.len();
    let d = chain.bounding().diameter().max(2) as u64;
    let mut sim = Sim::new(chain, strategy);
    let outcome = sim.run(RunLimits {
        max_rounds: 32 * n as u64 * d + 4096,
        stall_window: 16 * n as u64 * d + 2048,
    });
    match outcome {
        Outcome::Gathered { rounds } => format!("{rounds}"),
        _ => "stall".into(),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let n: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(200);

    println!(
        "{:<18} {:>5} {:>7} | {:>13} {:>13} {:>13} {:>13} {:>10}",
        "family",
        "n",
        "diam",
        "paper(local)",
        "global-vision",
        "compass-se",
        "naive-local*",
        "open-zip"
    );
    for fam in [
        Family::Rectangle,
        Family::Skyline,
        Family::StaircaseDiamond,
        Family::RandomLoop,
        Family::HairpinFlower,
    ] {
        let chain = fam.generate(n, 11);
        let len = chain.len();
        let diam = chain.bounding().diameter();
        let open = OpenChain::from_closed_positions(chain.positions()).unwrap();
        let zip = open_chain_zip(open, 64 * len as u64);
        let paper = race(ClosedChainGathering::paper(), chain.clone());
        let gv = race(GlobalVision::new(), chain.clone());
        let se = race(CompassSe::new(), chain.clone());
        let nl = race(NaiveLocal::new(), chain);
        println!(
            "{:<18} {:>5} {:>7} | {:>13} {:>13} {:>13} {:>13} {:>10}",
            fam.name(),
            len,
            diam,
            paper,
            gv,
            se,
            nl,
            zip.rounds
        );
    }
    println!();
    println!("paper(local): the paper's algorithm — no compass, no global vision, view 11.");
    println!("open-zip: the same geometry cut open with distinguishable endpoints [KM09 setting].");
    println!("*naive-local requires a global safety oracle; shown for reference only.");
}
