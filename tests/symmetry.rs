//! Symmetry/equivariance tests: the robots have no global coordinates, no
//! compass, no ids, and no distinguished chain origin — so the algorithm's
//! behavior must be invariant under translation, grid isometries, cyclic
//! relabeling and orientation reversal of the input.

use chain_sim::{ClosedChain, Outcome, RunLimits, Sim};
use gathering_core::ClosedChainGathering;
use workloads::Family;

fn rounds_of(chain: ClosedChain) -> Outcome {
    let len = chain.len();
    let mut sim = Sim::new(chain, ClosedChainGathering::paper());
    sim.run(RunLimits::for_chain_len(len))
}

fn base_chain(seed: u64) -> ClosedChain {
    Family::Skyline.generate(120, seed)
}

#[test]
fn translation_invariance() {
    for seed in 0..3 {
        let a = rounds_of(base_chain(seed));
        let mut moved = base_chain(seed);
        moved.translate(grid_geom::Offset::new(12_345, -9_876));
        let b = rounds_of(moved);
        assert_eq!(a.rounds(), b.rounds(), "seed {seed}");
        assert_eq!(a.is_gathered(), b.is_gathered());
    }
}

#[test]
fn rotation_and_mirror_invariance() {
    for seed in 0..3 {
        let a = rounds_of(base_chain(seed));
        for quarters in 1..4u8 {
            let mut t = base_chain(seed);
            t.transform(quarters, false);
            let b = rounds_of(t);
            assert_eq!(a.rounds(), b.rounds(), "seed {seed} rot {quarters}");
        }
        let mut m = base_chain(seed);
        m.transform(0, true);
        let b = rounds_of(m);
        assert_eq!(a.rounds(), b.rounds(), "seed {seed} mirror");
    }
}

#[test]
fn cyclic_relabeling_invariance() {
    // Robots are anonymous: rotating the chain's index origin must not
    // change the dynamics.
    for seed in 0..3 {
        let a = rounds_of(base_chain(seed));
        for shift in [1usize, 7, 31] {
            let mut r = base_chain(seed);
            r.rotate_origin(shift);
            let b = rounds_of(r);
            assert_eq!(a.rounds(), b.rounds(), "seed {seed} shift {shift}");
        }
    }
}

#[test]
fn orientation_reversal_invariance() {
    // The chain's local orientation is arbitrary (robots distinguish their
    // two neighbors, but "left"/"right" has no global meaning).
    for seed in 0..3 {
        let a = rounds_of(base_chain(seed));
        let mut rev = base_chain(seed);
        rev.reverse_orientation();
        let b = rounds_of(rev);
        assert_eq!(a.rounds(), b.rounds(), "seed {seed}");
    }
}

#[test]
fn determinism() {
    for seed in 0..3 {
        let a = rounds_of(base_chain(seed));
        let b = rounds_of(base_chain(seed));
        assert_eq!(a, b, "seed {seed}");
    }
}
