//! Differential property test: the data-oriented kernel path vs the
//! boxed reference engine.
//!
//! 500 seeded random draws over (family × n × strategy × scheduler);
//! for every draw both paths must produce **byte-identical**
//! [`RoundSummary`] streams, outcomes, and progress accounting — and
//! identical final chains whenever the run did not break the chain (a
//! broken boxed chain is left mid-apply; the kernel rejects the hop set
//! atomically, and the stored error plus every summary before it must
//! still match exactly). The sweep must also never panic: every
//! generated chain is packable and every kernel round is total.
//!
//! The 9 golden FSYNC fingerprints of `tests/schedulers.rs` pin the
//! kernel path against pre-refactor history; this sweep pins it against
//! the boxed engine on the full (strategy × scheduler) grid.

use baselines::{CompassSeKernel, GlobalVisionKernel, NaiveLocalKernel};
use bench::scenario::{ScenarioSpec, StrategyKind};
use chain_sim::kernel::{
    ActivationRule, FsyncRule, KFairRule, KernelChain, KernelSim, RandomRule, RoundKernel,
    RoundRobinRule, StandKernel,
};
use chain_sim::rng::SplitMix64;
use chain_sim::{
    ClosedChain, Observer, Outcome, PackedChain, Progress, RoundCtx, RoundSummary, RunLimits,
    SchedulerKind, Sim, Strategy,
};
use grid_geom::Point;
use workloads::Family;

/// Everything a run exposes that must be identical across the two paths.
struct RunRecord {
    outcome: Outcome,
    progress: Progress,
    positions: Vec<Point>,
    tape: Vec<RoundSummary>,
}

/// Records every round summary the boxed engine publishes.
struct Tape(Vec<RoundSummary>);

impl<S: Strategy> Observer<S> for Tape {
    fn on_round(&mut self, ctx: &RoundCtx<'_>, _strategy: &mut S) {
        self.0.push(ctx.summary);
    }
}

fn boxed_run(
    kind: StrategyKind,
    chain: ClosedChain,
    sched: SchedulerKind,
    seed: u64,
    limits: RunLimits,
) -> RunRecord {
    let strategy = kind.build().expect("closed-chain kind");
    let mut sim = Sim::new(chain, strategy)
        .with_scheduler(sched.build(seed))
        .observe(Tape(Vec::new()));
    let outcome = sim.run(limits);
    RunRecord {
        outcome,
        progress: sim.progress(),
        positions: sim.chain().positions().to_vec(),
        tape: sim.observer::<Tape>().expect("tape attached").0.clone(),
    }
}

fn kernel_run_rule<K: RoundKernel, A: ActivationRule>(
    chain: KernelChain,
    kernel: K,
    rule: A,
    limits: RunLimits,
) -> RunRecord {
    let mut sim = KernelSim::new(chain, kernel, rule);
    let mut tape = Vec::new();
    let outcome = sim.run_with(limits, |summary| tape.push(*summary));
    RunRecord {
        outcome,
        progress: *sim.progress(),
        positions: sim.chain().positions(),
        tape,
    }
}

fn kernel_run_sched<K: RoundKernel>(
    chain: KernelChain,
    kernel: K,
    sched: SchedulerKind,
    seed: u64,
    limits: RunLimits,
) -> RunRecord {
    match sched {
        SchedulerKind::Fsync => kernel_run_rule(chain, kernel, FsyncRule, limits),
        SchedulerKind::RoundRobin(g) => {
            kernel_run_rule(chain, kernel, RoundRobinRule::new(g), limits)
        }
        SchedulerKind::Random(p) => {
            kernel_run_rule(chain, kernel, RandomRule::new(seed, p), limits)
        }
        SchedulerKind::KFair(k) => kernel_run_rule(chain, kernel, KFairRule::new(seed, k), limits),
    }
}

fn kernel_run(
    kind: StrategyKind,
    chain: &ClosedChain,
    sched: SchedulerKind,
    seed: u64,
    limits: RunLimits,
) -> RunRecord {
    let packed = PackedChain::from_chain(chain).expect("family chains are taut");
    let kc = KernelChain::new(packed);
    match kind {
        StrategyKind::CompassSe => {
            kernel_run_sched(kc, CompassSeKernel::new(), sched, seed, limits)
        }
        StrategyKind::NaiveLocal => {
            kernel_run_sched(kc, NaiveLocalKernel::new(), sched, seed, limits)
        }
        StrategyKind::GlobalVision => {
            kernel_run_sched(kc, GlobalVisionKernel::new(), sched, seed, limits)
        }
        StrategyKind::Stand => kernel_run_sched(kc, StandKernel, sched, seed, limits),
        other => panic!("not a kernel kind: {other:?}"),
    }
}

#[test]
fn five_hundred_random_draws_are_byte_identical() {
    const DRAWS: usize = 500;
    const STRATEGIES: [StrategyKind; 4] = [
        StrategyKind::CompassSe,
        StrategyKind::NaiveLocal,
        StrategyKind::GlobalVision,
        StrategyKind::Stand,
    ];
    let mut rng = SplitMix64::new(0x6b65_726e_656c);
    for draw in 0..DRAWS {
        let family = Family::ALL[(rng.next_u64() % Family::ALL.len() as u64) as usize];
        let n = 8 + (rng.next_u64() % 160) as usize;
        let strategy = STRATEGIES[(rng.next_u64() % 4) as usize];
        let sched = match rng.next_u64() % 4 {
            0 => SchedulerKind::Fsync,
            1 => SchedulerKind::RoundRobin(2 + (rng.next_u64() % 3) as u32),
            2 => SchedulerKind::Random([25u8, 50, 75, 100][(rng.next_u64() % 4) as usize]),
            _ => SchedulerKind::KFair(2 + (rng.next_u64() % 4) as u32),
        };
        let seed = rng.next_u64() % 1024;
        let tag = format!(
            "draw {draw}: {} n={n} seed={seed} {} {}",
            family.name(),
            strategy.name(),
            sched.name()
        );

        let spec = ScenarioSpec::strategy(family, n, seed, strategy).with_scheduler(sched);
        let chain = spec.generate();
        let limits = spec.resolve_limits(&chain);

        let fast = kernel_run(strategy, &chain, sched, seed, limits);
        let slow = boxed_run(strategy, chain, sched, seed, limits);

        assert_eq!(slow.outcome, fast.outcome, "{tag}");
        assert_eq!(slow.tape, fast.tape, "{tag}");
        assert_eq!(slow.progress, fast.progress, "{tag}");
        if !matches!(slow.outcome, Outcome::ChainBroken { .. }) {
            assert_eq!(slow.positions, fast.positions, "{tag}");
        }
    }
}
