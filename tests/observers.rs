//! Observer passivity: instrumentation must never change a run.
//!
//! The engine has exactly one run loop; observers (trace recording, Lemma
//! audits, invariant checks, frame capture) watch it from the outside.
//! These property tests pin the contract that makes the composition safe:
//! a fully-instrumented run is *byte-identical* — outcome, merge totals,
//! gap accounting, final configuration — to the observer-free run of the
//! same seeded workload.

use chain_sim::observe::Invariants;
use chain_sim::{Recorder, RunLimits, Sim, TraceConfig};
use chain_viz::FrameCapture;
use gathering_core::audit::LemmaAuditor;
use gathering_core::ClosedChainGathering;
use workloads::{Family, SplitMix64};

/// Deterministic sampled workload grid (seeded-loop property test; the
/// offline build has no proptest).
fn sampled_cases() -> Vec<(Family, usize, u64)> {
    let mut rng = SplitMix64::new(0x0b5e_77e5);
    let mut cases = Vec::new();
    for fam in [
        Family::Rectangle,
        Family::Skyline,
        Family::RandomLoop,
        Family::StaircaseDiamond,
        Family::HairpinFlower,
    ] {
        cases.push((fam, 48, 0));
        for _ in 0..3 {
            cases.push((fam, rng.range_usize(16, 220), rng.next_u64() % 512));
        }
    }
    cases
}

#[test]
fn instrumented_runs_are_byte_identical_to_headless() {
    for (fam, n, seed) in sampled_cases() {
        let tag = format!("{} n={n} seed={seed}", fam.name());

        // Headless: the zero-retention hot path.
        let chain = fam.generate(n, seed);
        let limits = RunLimits::for_chain_len(chain.len());
        let mut headless = Sim::new(chain, ClosedChainGathering::paper());
        let outcome_headless = headless.run(limits);

        // Fully instrumented: trace (reports + snapshots) + Lemma audit +
        // invariant checks + frame capture, all on the same loop. Event
        // recording is on for the auditor; it must not change decisions.
        let strategy = ClosedChainGathering::paper().with_event_recording();
        let auditor = LemmaAuditor::new(&strategy);
        let mut observed = Sim::new(fam.generate(n, seed), strategy)
            .observe(Recorder::with_config(TraceConfig {
                snapshot_every: 8,
                max_snapshots: 64,
                keep_reports: true,
            }))
            .observe(auditor)
            .observe(Invariants::new())
            .observe(FrameCapture::every(32, 16));
        let outcome_observed = observed.run(limits);

        // Byte-identical run results.
        assert_eq!(outcome_headless, outcome_observed, "{tag}");
        assert_eq!(headless.progress(), observed.progress(), "{tag}");
        assert_eq!(
            headless.chain().positions(),
            observed.chain().positions(),
            "{tag}"
        );

        // And the observers agree with the engine's own accounting.
        let progress = headless.progress();
        let trace = observed.observer::<Recorder>().unwrap().trace();
        assert_eq!(trace.total_removed(), progress.total_removed(), "{tag}");
        assert_eq!(
            trace.longest_mergeless_gap(),
            progress.longest_mergeless_gap(),
            "{tag}"
        );
        assert_eq!(trace.reports.len() as u64, progress.rounds(), "{tag}");
        let audit = observed.observer_mut::<LemmaAuditor>().unwrap().summary();
        assert_eq!(audit.rounds, progress.rounds(), "{tag}");
        assert_eq!(
            audit.longest_mergeless_gap,
            progress.longest_mergeless_gap(),
            "{tag}"
        );
        assert_eq!(audit.total_merged_robots, progress.total_removed(), "{tag}");
        assert!(
            observed.observer::<Invariants>().unwrap().is_clean(),
            "{tag}"
        );
        assert!(
            !observed
                .observer::<FrameCapture>()
                .unwrap()
                .frames()
                .is_empty(),
            "{tag}"
        );
    }
}

#[test]
fn attachment_order_does_not_matter() {
    let fam = Family::Skyline;
    let (n, seed) = (96usize, 7u64);
    let run = |flip: bool| {
        let strategy = ClosedChainGathering::paper().with_event_recording();
        let auditor = LemmaAuditor::new(&strategy);
        let mut sim = Sim::new(fam.generate(n, seed), strategy);
        if flip {
            sim.add_observer(auditor);
            sim.add_observer(Recorder::new());
        } else {
            sim.add_observer(Recorder::new());
            sim.add_observer(auditor);
        }
        let outcome = sim.run_default();
        let summary = sim.observer::<LemmaAuditor>().unwrap().summary();
        (outcome, sim.progress(), summary.longest_mergeless_gap)
    };
    assert_eq!(run(false), run(true));
}
