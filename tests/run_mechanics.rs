//! Integration tests for the run machinery's observable behavior
//! (Sections 3.2–3.4 / 4.1–4.3 of the paper), asserted through the
//! strategy's statistics and events on structured inputs.

use chain_sim::{RunLimits, Sim};
use gathering_core::{ClosedChainGathering, GatherConfig, RunEvent, StopReason};
use workloads::Family;

fn run_stats(fam: Family, n: usize, seed: u64) -> gathering_core::RunStats {
    let chain = fam.generate(n, seed);
    let len = chain.len();
    let mut sim = Sim::new(chain, ClosedChainGathering::paper());
    let outcome = sim.run(RunLimits::for_chain_len(len));
    assert!(outcome.is_gathered(), "{} n={len}: {outcome:?}", fam.name());
    sim.strategy().stats().clone()
}

#[test]
fn runs_do_real_reshapement_work() {
    // On large mergeless-at-start structures, folds must happen.
    for fam in [Family::Rectangle, Family::Spiral, Family::Serpentine] {
        let stats = run_stats(fam, 400, 1);
        assert!(stats.folds > 0, "{}: no folds", fam.name());
        assert!(stats.started_total() > 0, "{}: no runs", fam.name());
    }
}

#[test]
fn termination_conditions_all_exercised() {
    // Across a mixed suite, every paper termination condition fires
    // somewhere (Table 1): endpoint visibility, merge participation,
    // robot removal.
    let mut total = gathering_core::RunStats::default();
    for fam in Family::ALL {
        for seed in 0..3 {
            let s = run_stats(fam, 250, seed);
            total.stopped_sequent += s.stopped_sequent;
            total.stopped_endpoint += s.stopped_endpoint;
            total.stopped_merged += s.stopped_merged;
            total.stopped_robot_removed += s.stopped_robot_removed;
            total.stopped_target_removed += s.stopped_target_removed;
            total.passings_started += s.passings_started;
        }
    }
    assert!(total.stopped_endpoint > 0, "condition 2 never fired");
    assert!(
        total.stopped_merged + total.stopped_robot_removed > 0,
        "condition 3 never fired"
    );
    assert!(total.passings_started > 0, "run passing never happened");
}

#[test]
fn pipelining_cadence_is_l_rounds() {
    // Run starts only occur at rounds ≡ 0 (mod 13).
    let chain = Family::Rectangle.generate(300, 0);
    let len = chain.len();
    let mut sim = Sim::new(chain, ClosedChainGathering::paper().with_event_recording());
    for _ in 0..80 {
        if sim.is_gathered() {
            break;
        }
        sim.step().unwrap();
    }
    let events = sim.strategy_mut().take_events();
    for e in &events {
        if let RunEvent::Started { round, .. } = e {
            assert_eq!(round % 13, 0, "start at round {round}");
        }
    }
    let _ = len;
}

#[test]
fn custom_l_period_respected() {
    let cfg = GatherConfig {
        l_period: 7,
        ..GatherConfig::paper()
    };
    let chain = Family::Rectangle.generate(200, 0);
    let mut sim = Sim::new(chain, ClosedChainGathering::new(cfg).with_event_recording());
    for _ in 0..40 {
        if sim.is_gathered() {
            break;
        }
        sim.step().unwrap();
    }
    let events = sim.strategy_mut().take_events();
    let mut starts = 0;
    for e in &events {
        if let RunEvent::Started { round, .. } = e {
            assert_eq!(round % 7, 0, "start at round {round}");
            starts += 1;
        }
    }
    assert!(starts > 0);
}

#[test]
fn stop_reasons_accounted_consistently() {
    // started == stopped + live-at-end for a completed gathering (all
    // runs eventually die since the final 2×2 has no quasi lines).
    let chain = Family::Skyline.generate(300, 4);
    let len = chain.len();
    let mut sim = Sim::new(chain, ClosedChainGathering::paper());
    let outcome = sim.run(RunLimits::for_chain_len(len));
    assert!(outcome.is_gathered());
    let stats = sim.strategy().stats();
    let live: u64 = sim
        .strategy()
        .cells()
        .iter()
        .map(|c| c.count() as u64)
        .sum();
    assert_eq!(
        stats.started_total(),
        stats.stopped_total() + live,
        "run lifecycle accounting: {stats:?}"
    );
}

#[test]
fn event_stream_is_consistent() {
    // Every Stopped/Folded event refers to a previously started run.
    let chain = Family::StaircaseDiamond.generate(200, 0);
    let len = chain.len();
    let mut sim = Sim::new(chain, ClosedChainGathering::paper().with_event_recording());
    let _ = sim.run(RunLimits::for_chain_len(len));
    let events = sim.strategy_mut().take_events();
    let mut started = std::collections::HashSet::new();
    for e in &events {
        match e {
            RunEvent::Started { run_id, .. } => {
                assert!(started.insert(*run_id), "run {run_id} started twice");
            }
            RunEvent::Stopped { run_id, reason, .. } => {
                assert!(
                    started.contains(run_id),
                    "run {run_id} stopped ({reason:?}) before starting"
                );
            }
            RunEvent::Folded { run_id, .. } | RunEvent::PassingStarted { run_id, .. } => {
                assert!(started.contains(run_id), "unknown run {run_id}");
            }
        }
    }
    assert!(!started.is_empty());
}

#[test]
fn no_slot_collisions_in_practice() {
    // Slot collisions indicate pipelining hygiene failures; they must not
    // occur on the standard suite.
    for fam in Family::ALL {
        let s = run_stats(fam, 200, 2);
        assert_eq!(
            s.stopped_slot_collision,
            0,
            "{}: slot collisions",
            fam.name()
        );
    }
}

#[test]
fn passing_preserves_both_runs_momentarily() {
    // Build a run passing situation and check both runs survive the cross
    // (they die later of ordinary causes, not at the crossing).
    let chain = Family::Serpentine.generate(400, 0);
    let len = chain.len();
    let mut sim = Sim::new(chain, ClosedChainGathering::paper().with_event_recording());
    let outcome = sim.run(RunLimits::for_chain_len(len));
    assert!(outcome.is_gathered());
    let events = sim.strategy_mut().take_events();
    let mut passing_runs = std::collections::HashSet::new();
    let mut died_to_target: u64 = 0;
    for e in &events {
        match e {
            RunEvent::PassingStarted { run_id, .. } => {
                passing_runs.insert(*run_id);
            }
            RunEvent::Stopped {
                reason: StopReason::TargetRemoved,
                ..
            } => died_to_target += 1,
            _ => {}
        }
    }
    // If passings happened, target-removal deaths are allowed but bounded
    // by the number of passing runs.
    assert!(died_to_target <= passing_runs.len() as u64 * 2 + 2);
}
