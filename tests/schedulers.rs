//! Scheduler-subsystem properties: FSYNC pinning, reproducibility, and
//! observer passivity under SSYNC.
//!
//! Three contracts are pinned here:
//!
//! 1. **FSYNC is byte-identical to the pre-scheduler engine.** The
//!    activation mask is a refactor of the hot loop, so the default
//!    (FSYNC) path must reproduce the exact fingerprints the engine
//!    produced before the `Scheduler` trait existed — the golden values
//!    below were recorded against that engine.
//! 2. **Schedules are pure functions of their seed.** The same seed
//!    yields the identical activation sequence, and `run_batch`
//!    fingerprints cannot depend on worker-thread count.
//! 3. **Observers stay passive under SSYNC.** An instrumented SSYNC run —
//!    including one in which the strategy breaks the chain, the common
//!    SSYNC fate of FSYNC-designed algorithms — is identical to the
//!    headless run of the same spec.

use baselines::CompassSe;
use bench::scenario::{run_batch_with, BatchOptions, ScenarioSpec, StrategyKind};
use chain_sim::observe::Invariants;
use chain_sim::scheduler::Scheduler;
use chain_sim::{Observer, Recorder, RoundCtx, SchedulerKind, Sim, Strategy};
use gathering_core::ClosedChainGathering;
use workloads::Family;

/// Golden FSYNC fingerprints `(n, rounds, merges, longest_gap)` recorded
/// against the engine *before* the scheduler refactor. The default
/// engine path and the explicit FSYNC scheduler must both reproduce them
/// exactly.
fn golden_fsync() -> Vec<(ScenarioSpec, (usize, u64, usize, u64))> {
    vec![
        (
            ScenarioSpec::paper(Family::Rectangle, 48, 0),
            (48, 7, 44, 0),
        ),
        (
            ScenarioSpec::paper(Family::Rectangle, 96, 3),
            (96, 176, 92, 18),
        ),
        (ScenarioSpec::paper(Family::Skyline, 64, 1), (84, 12, 80, 0)),
        (
            ScenarioSpec::paper(Family::RandomLoop, 80, 2),
            (80, 6, 79, 0),
        ),
        (
            ScenarioSpec::paper(Family::StaircaseDiamond, 72, 5),
            (72, 27, 71, 18),
        ),
        (
            ScenarioSpec::strategy(Family::Rectangle, 64, 0, StrategyKind::GlobalVision),
            (64, 10, 63, 0),
        ),
        (
            ScenarioSpec::strategy(Family::Skyline, 64, 7, StrategyKind::CompassSe),
            (72, 20, 68, 1),
        ),
        (
            ScenarioSpec::strategy(Family::RandomLoop, 48, 4, StrategyKind::NaiveLocal),
            (48, 10, 46, 1),
        ),
        (ScenarioSpec::audited(Family::Comb, 56, 9), (52, 5, 48, 0)),
    ]
}

#[test]
fn fsync_via_scheduler_is_byte_identical_to_the_pre_scheduler_engine() {
    let (specs, expected): (Vec<_>, Vec<_>) = golden_fsync().into_iter().unzip();
    // Implicit FSYNC (the default spec)...
    let results = run_batch_with(&specs, BatchOptions::threads(2));
    for (r, want) in results.iter().zip(&expected) {
        assert_eq!(
            r.fingerprint(),
            *want,
            "default path diverged: {:?}",
            r.spec
        );
    }
    // ...and the *explicit* FSYNC scheduler: same grid cell semantics
    // apart from the spec-hash (FSYNC is encoded either way).
    let explicit: Vec<ScenarioSpec> = specs
        .iter()
        .map(|s| s.with_scheduler(SchedulerKind::Fsync))
        .collect();
    for (r, want) in run_batch_with(&explicit, BatchOptions::threads(2))
        .iter()
        .zip(&expected)
    {
        assert_eq!(
            r.fingerprint(),
            *want,
            "explicit fsync diverged: {:?}",
            r.spec
        );
    }
}

/// Records every activation mask the engine hands to observers.
struct MaskTape(Vec<Vec<bool>>);

impl<S: Strategy> Observer<S> for MaskTape {
    fn on_round(&mut self, ctx: &RoundCtx<'_>, _strategy: &mut S) {
        self.0.push(ctx.active.to_vec());
    }
}

/// Same seed ⇒ identical activation sequence, for every SSYNC kind;
/// different seed ⇒ a different sequence for the seeded kinds.
#[test]
fn same_seed_means_identical_activation_sequence() {
    let tape = |kind: SchedulerKind, seed: u64| -> Vec<Vec<bool>> {
        let chain = Family::Skyline.generate(72, 3);
        let mut sim = Sim::new(chain, CompassSe::new())
            .with_scheduler(kind.build(seed))
            .observe(MaskTape(Vec::new()));
        for _ in 0..24 {
            sim.step().unwrap();
        }
        sim.observer_mut::<MaskTape>().unwrap().0.clone()
    };
    for kind in SchedulerKind::SWEEP {
        assert_eq!(tape(kind, 11), tape(kind, 11), "{}", kind.name());
    }
    for kind in [SchedulerKind::Random(50), SchedulerKind::KFair(4)] {
        assert_ne!(tape(kind, 11), tape(kind, 12), "{}", kind.name());
    }
}

/// SSYNC fingerprints are a pure function of the spec: thread count and
/// repetition cannot change them.
#[test]
fn ssync_fingerprints_are_thread_count_invariant() {
    let mut specs = Vec::new();
    for &sched in &SchedulerKind::SWEEP {
        for (family, kind) in [
            (Family::Rectangle, StrategyKind::paper()),
            (Family::Skyline, StrategyKind::CompassSe),
            (Family::RandomLoop, StrategyKind::NaiveLocal),
        ] {
            specs.push(ScenarioSpec::strategy(family, 64, 5, kind).with_scheduler(sched));
        }
    }
    let serial = run_batch_with(&specs, BatchOptions::threads(1));
    for threads in [2, 4] {
        let parallel = run_batch_with(&specs, BatchOptions::threads(threads));
        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!(
                a.fingerprint(),
                b.fingerprint(),
                "threads={threads}: {:?} {:?}",
                a.spec.strategy.name(),
                a.spec.scheduler.name()
            );
        }
    }
}

/// Observer passivity under every SSYNC scheduler: instrumented ≡
/// headless, for a strategy that survives (compass-se) and one that
/// breaks the chain (the paper's FSYNC-designed algorithm).
#[test]
fn instrumented_ssync_runs_match_headless() {
    for &sched in &SchedulerKind::SWEEP {
        let tag = sched.name();
        let (n, seed) = (96usize, 1u64);

        // compass-se: gathers under every schedule.
        let chain = Family::Rectangle.generate(n, seed);
        let limits = ScenarioSpec::strategy(Family::Rectangle, n, seed, StrategyKind::CompassSe)
            .with_scheduler(sched)
            .resolve_limits(&chain);
        let mut headless = Sim::new(chain, CompassSe::new()).with_scheduler(sched.build(seed));
        let out_headless = headless.run(limits);
        let mut observed = Sim::new(Family::Rectangle.generate(n, seed), CompassSe::new())
            .with_scheduler(sched.build(seed))
            .observe(Recorder::new())
            .observe(Invariants::new());
        let out_observed = observed.run(limits);
        assert_eq!(out_headless, out_observed, "{tag}");
        assert_eq!(headless.progress(), observed.progress(), "{tag}");
        assert_eq!(
            headless.chain().positions(),
            observed.chain().positions(),
            "{tag}"
        );
        assert!(
            observed.observer::<Invariants>().unwrap().is_clean(),
            "{tag}"
        );
        assert!(out_headless.is_gathered(), "compass-se survives {tag}");

        // The paper's algorithm: breaks the chain under SSYNC, and the
        // instrumented run must break identically.
        if sched.is_fsync() {
            continue;
        }
        let chain = Family::Rectangle.generate(n, seed);
        let limits = ScenarioSpec::paper(Family::Rectangle, n, seed)
            .with_scheduler(sched)
            .resolve_limits(&chain);
        let mut headless =
            Sim::new(chain, ClosedChainGathering::paper()).with_scheduler(sched.build(seed));
        let out_headless = headless.run(limits);
        let mut observed = Sim::new(
            Family::Rectangle.generate(n, seed),
            ClosedChainGathering::paper(),
        )
        .with_scheduler(sched.build(seed))
        .observe(Recorder::new())
        .observe(Invariants::new());
        let out_observed = observed.run(limits);
        assert_eq!(out_headless, out_observed, "{tag}");
        assert_eq!(headless.progress(), observed.progress(), "{tag}");
        assert!(
            matches!(out_headless, chain_sim::Outcome::ChainBroken { .. }),
            "the FSYNC-designed paper algorithm relies on synchronized \
             neighbor motion; under {tag} it must break the chain, got {out_headless:?}"
        );
    }
}

/// The quiescence fix at scenario level: the stand control's stalled
/// cells shrink from O(stall_window) to O(QUIESCENCE_WINDOW) rounds —
/// ≥ 100× below the rounds BENCH_scaling.json recorded (12 800 at n=64,
/// 176 128 at n=256).
#[test]
fn stand_campaign_cells_terminate_in_o_window_rounds() {
    for (n, old_rounds) in [(64usize, 12_800u64), (256, 176_128)] {
        let spec = ScenarioSpec::strategy(Family::Rectangle, n, 0, StrategyKind::Stand);
        let r = bench::scenario::run_scenario(&spec);
        let rounds = r.outcome.rounds();
        assert!(
            matches!(r.outcome, chain_sim::Outcome::Stalled { .. }),
            "{:?}",
            r.outcome
        );
        assert!(
            rounds * 100 <= old_rounds,
            "n={n}: stand now stalls at {rounds} rounds, expected ≥100× under {old_rounds}"
        );
    }
}

/// Counts the longest streak of rounds with no movement and no merge —
/// the quantity the engine's quiescence cutoff judges.
struct GapMeter {
    current: u64,
    longest: u64,
}

impl<S: Strategy> Observer<S> for GapMeter {
    fn on_round(&mut self, ctx: &RoundCtx<'_>, _strategy: &mut S) {
        if ctx.summary.moved == 0 && ctx.summary.removed == 0 {
            self.current += 1;
            self.longest = self.longest.max(self.current);
        } else {
            self.current = 0;
        }
    }
}

/// Regression: large-`k` KFair schedules have a duty cycle of `1/k`, so
/// legitimate runs sit motionless for far longer than the unscaled
/// [`QUIESCENCE_WINDOW`] — the engine must scale the cutoff by
/// [`SchedulerKind::slowdown`] or it declares a live run falsely
/// quiescent. The `GapMeter` proves the test bites: the gathered run
/// really does contain a no-move gap past the unscaled window.
#[test]
fn large_k_kfair_runs_are_not_declared_falsely_quiescent() {
    use chain_sim::QUIESCENCE_WINDOW;
    use gathering_core::SsyncGathering;

    let k = 1000u32;
    let chain = Family::Rectangle.generate(16, 0);
    let len = chain.len() as u64;
    let d = chain.bounding().diameter() as u64;
    let mut sim = Sim::new(chain, SsyncGathering::paper())
        .with_scheduler(SchedulerKind::KFair(k).build(0))
        .observe(GapMeter {
            current: 0,
            longest: 0,
        });
    let outcome = sim.run(chain_sim::RunLimits {
        max_rounds: (8 * len * d + 4096).saturating_mul(k.into()),
        stall_window: (4 * len * d + 1024).saturating_mul(k.into()),
    });
    assert!(
        outcome.is_gathered(),
        "KFair({k}) must gather, not stall: {outcome:?}"
    );
    let longest = sim.observer::<GapMeter>().unwrap().longest;
    assert!(
        longest > QUIESCENCE_WINDOW,
        "test lost its teeth: longest no-move gap {longest} never exceeded \
         the unscaled window {QUIESCENCE_WINDOW}"
    );
}

/// Custom schedulers compose with the engine like observers do: the
/// trait is open (here: a schedule that freezes the second half of the
/// chain), and the boxed blanket impl forwards.
#[test]
fn custom_scheduler_plugs_in() {
    struct FreezeUpperHalf;
    impl Scheduler for FreezeUpperHalf {
        fn activate(&mut self, _round: u64, mask: &mut [bool]) {
            let half = mask.len() / 2;
            for slot in &mut mask[half..] {
                *slot = false;
            }
        }
    }
    let chain = Family::Rectangle.generate(32, 0);
    let boxed: Box<dyn Scheduler + Send> = Box::new(FreezeUpperHalf);
    let mut sim = Sim::new(chain, CompassSe::new())
        .with_scheduler(Box::new(boxed))
        .observe(MaskTape(Vec::new()));
    sim.step().unwrap();
    let mask = &sim.observer::<MaskTape>().unwrap().0[0];
    assert!(mask[..mask.len() / 2].iter().all(|&a| a));
    assert!(mask[mask.len() / 2..].iter().all(|&a| !a));
}
