//! Hard assertions for the paper-figure scenarios (the executable versions
//! live in `examples/figures.rs`; these tests pin their outcomes).

use chain_sim::{ClosedChain, Outcome, RunLimits, Sim};
use gathering_core::{ClosedChainGathering, GatherConfig, MergeScan, RunEvent, StartShape};
use grid_geom::{Offset, Point};

fn chain(coords: &[(i64, i64)]) -> ClosedChain {
    ClosedChain::new(coords.iter().map(|&(x, y)| Point::new(x, y)).collect()).unwrap()
}

fn rectangle(w: i64, h: i64) -> ClosedChain {
    let mut pts = vec![Point::new(0, 0)];
    pts.extend((1..w).map(|x| Point::new(x, 0)));
    pts.extend((1..h).map(|y| Point::new(w - 1, y)));
    pts.extend((1..w).map(|x| Point::new(w - 1 - x, h - 1)));
    pts.extend((1..h - 1).map(|y| Point::new(0, h - 1 - y)));
    ClosedChain::new(pts).unwrap()
}

/// Figure 1: the 2×3 ring merges and is gathered after one round.
#[test]
fn figure1_merge() {
    let c = chain(&[(0, 0), (0, 1), (0, 2), (1, 2), (1, 1), (1, 0)]);
    let mut sim = Sim::new(c, ClosedChainGathering::paper());
    let report = sim.step().unwrap();
    assert!(report.removed >= 2, "Figure 1 must shorten the chain");
    assert!(sim.is_gathered());
}

/// Figure 2 (k = 1): hairpin tips merge onto their coinciding neighbors.
#[test]
fn figure2_k1() {
    let c = chain(&[(0, 0), (1, 0), (2, 0), (1, 0)]);
    let mut scan = MergeScan::default();
    scan.scan(&c, &GatherConfig::paper());
    // Both fold tips are k=1 patterns.
    assert_eq!(scan.patterns.iter().filter(|p| p.k == 1).count(), 2);
    let mut sim = Sim::new(c, ClosedChainGathering::paper());
    sim.step().unwrap();
    assert!(sim.is_gathered());
}

/// Figure 2 (k > 1): a length-4 black segment with same-side whites fires.
#[test]
fn figure2_k4() {
    let c = chain(&[
        (0, 0),
        (0, 1),
        (1, 1),
        (2, 1),
        (3, 1),
        (3, 0),
        (2, 0),
        (1, 0),
    ]);
    let mut scan = MergeScan::default();
    scan.scan(&c, &GatherConfig::paper());
    assert!(scan.patterns.iter().any(|p| p.k == 4));
    let mut sim = Sim::new(c, ClosedChainGathering::paper());
    let report = sim.step().unwrap();
    assert!(report.removed >= 2);
}

/// Figure 3b: corner robots black in two patterns hop diagonally.
#[test]
fn figure3b_diagonal_hops() {
    let c = rectangle(4, 2);
    let mut scan = MergeScan::default();
    scan.scan(&c, &GatherConfig::paper());
    let diagonals = (0..c.len())
        .filter(|&i| scan.merge_hop(i).is_diagonal())
        .count();
    assert_eq!(diagonals, 4, "all four corners combine two black roles");
    let mut sim = Sim::new(c, ClosedChainGathering::paper());
    let outcome = sim.run_default();
    assert!(outcome.is_gathered());
}

/// Figure 5(ii): rectangle corners start two runs each.
#[test]
fn figure5_corner_starts() {
    let c = rectangle(20, 12);
    let mut sim = Sim::new(c, ClosedChainGathering::paper().with_event_recording());
    sim.step().unwrap();
    let events = sim.strategy_mut().take_events();
    let corner_starts = events
        .iter()
        .filter(|e| {
            matches!(
                e,
                RunEvent::Started {
                    shape: StartShape::CornerEnd,
                    ..
                }
            )
        })
        .count();
    assert_eq!(corner_starts, 8, "4 corners × 2 runs");
}

/// Figures 6/7: a good pair folds a long edge inward — folds happen and
/// the pair's merges arrive.
#[test]
fn figure7_good_pair_folds_and_merges() {
    let c = rectangle(20, 12);
    let len = c.len();
    let mut sim = Sim::new(c, ClosedChainGathering::paper());
    let outcome = sim.run(RunLimits::for_chain_len(len));
    assert!(outcome.is_gathered());
    let stats = sim.strategy().stats();
    assert!(stats.folds > 0, "reshapement hops must happen");
    assert!(
        stats.started_total() > 8,
        "pipelining starts several generations"
    );
}

/// Figure 8: a non-good pair passes; passing is observed on combs where
/// corridor walls carry opposite-fold-side runs.
#[test]
fn figure8_passing_happens_somewhere() {
    let mut total_passings = 0;
    for (fam, n, seed) in [
        (workloads::Family::Rectangle, 400usize, 0u64),
        (workloads::Family::StaircaseDiamond, 400, 0),
        (workloads::Family::Skyline, 400, 5),
    ] {
        let c = fam.generate(n, seed);
        let len = c.len();
        let mut sim = Sim::new(c, ClosedChainGathering::paper());
        let _ = sim.run(RunLimits::for_chain_len(len));
        total_passings += sim.strategy().stats().passings_started;
    }
    assert!(
        total_passings > 0,
        "run passing must occur on mixed structures"
    );
}

/// Figure 9: pipelining — multiple run generations alive at once.
#[test]
fn figure9_pipelining_parallelism() {
    let c = rectangle(40, 20);
    let len = c.len();
    let mut sim = Sim::new(c, ClosedChainGathering::paper());
    let _ = sim.run(RunLimits::for_chain_len(len));
    assert!(
        sim.strategy().stats().max_live_runs >= 8,
        "got {}",
        sim.strategy().stats().max_live_runs
    );
}

/// Figure 16: long stairways host no merge patterns in their interior.
#[test]
fn figure16_stairways_merge_free() {
    let c = workloads::staircase_diamond(10);
    let mut scan = MergeScan::default();
    scan.scan(&c, &GatherConfig::paper());
    // Only tip patterns, all short.
    for p in &scan.patterns {
        assert!(p.k <= 2, "{p:?}");
    }
    assert!(scan.patterns.len() <= 8);
}

/// The 2×2 square is the target: the algorithm stops there and does not
/// try to break its symmetry (the paper's justification for the 2×2 goal).
#[test]
fn two_by_two_is_terminal() {
    let c = chain(&[(0, 0), (0, 1), (1, 1), (1, 0)]);
    let mut sim = Sim::new(c, ClosedChainGathering::paper());
    let outcome = sim.run(RunLimits {
        max_rounds: 100,
        stall_window: 50,
    });
    assert_eq!(outcome, Outcome::Gathered { rounds: 0 });
}

/// Mergeless-chain structure: in a chain where no merge fires, run starts
/// appear at quasi-line endpoints (Lemma 1's structural claim).
#[test]
fn mergeless_chain_starts_runs() {
    // A 30×14 rectangle has no initial merge patterns (k = 29/13 > 10).
    let c = rectangle(30, 14);
    let mut scan = MergeScan::default();
    scan.scan(&c, &GatherConfig::paper());
    assert!(scan.patterns.is_empty(), "mergeless by construction");
    let mut sim = Sim::new(c, ClosedChainGathering::paper().with_event_recording());
    sim.step().unwrap();
    let starts = sim
        .strategy_mut()
        .take_events()
        .iter()
        .filter(|e| matches!(e, RunEvent::Started { .. }))
        .count();
    assert_eq!(starts, 8);
}

/// Offset sanity for the diagonal reshapement hop (Fig. 6): folds move a
/// runner diagonally, one step along the line and one toward the fold side.
#[test]
fn fold_hops_are_diagonal() {
    let c = rectangle(20, 12);
    let len = c.len();
    let mut sim = Sim::new(c, ClosedChainGathering::paper());
    // Round 0 starts runs; by round 1 the corner robots fold diagonally.
    sim.step().unwrap();
    let before: Vec<Point> = sim.chain().positions().to_vec();
    sim.step().unwrap();
    let after: Vec<Point> = sim.chain().positions().to_vec();
    let mut diagonal_moves = 0;
    if before.len() == after.len() {
        for (a, b) in before.iter().zip(after.iter()) {
            let d: Offset = *b - *a;
            if d.is_diagonal() {
                diagonal_moves += 1;
            }
        }
    }
    assert!(diagonal_moves > 0, "corner folds must be diagonal hops");
    let _ = len;
}
