//! Property-based tests over random closed chains (seeded-loop form; the
//! offline build has no proptest, so cases are enumerated from a seeded
//! deterministic generator — failures print the seed for replay).
//!
//! The generator below produces arbitrary *balanced step multisets* in
//! random order — every instance is a legal closed chain, including
//! self-crossing and zero-area degenerate loops. The properties assert the
//! model-level invariants the paper's correctness rests on.

use chain_sim::{ClosedChain, RunLimits, Sim};
use gathering_core::{ClosedChainGathering, GatherConfig};
use grid_geom::{Offset, Point};
use workloads::SplitMix64;

/// A shuffled balanced step multiset → closed chain. `a` pairs of ±x steps
/// and `b` pairs of ±y steps always close into a valid chain.
fn arb_closed_chain(rng: &mut SplitMix64, max_half: usize) -> ClosedChain {
    let a = rng.range_usize(1, max_half + 1);
    let b = rng.range_usize(1, max_half + 1);
    let mut steps: Vec<Offset> = Vec::with_capacity(2 * (a + b));
    steps.extend(std::iter::repeat_n(Offset::RIGHT, a));
    steps.extend(std::iter::repeat_n(Offset::LEFT, a));
    steps.extend(std::iter::repeat_n(Offset::UP, b));
    steps.extend(std::iter::repeat_n(Offset::DOWN, b));
    rng.shuffle(&mut steps);
    let mut pts = Vec::with_capacity(steps.len());
    let mut p = Point::new(0, 0);
    for s in &steps[..steps.len() - 1] {
        pts.push(p);
        p += *s;
    }
    pts.push(p);
    ClosedChain::new(pts).expect("balanced steps form a valid closed chain")
}

/// The central safety property: the strategy never breaks the chain, and
/// always gathers within the engine's generous linear limits.
#[test]
fn gathers_any_closed_chain() {
    for case in 0..64u64 {
        let mut rng = SplitMix64::new(0xA11CE ^ case);
        let chain = arb_closed_chain(&mut rng, 40);
        let len = chain.len();
        let mut sim = Sim::new(chain, ClosedChainGathering::paper());
        let outcome = sim.run(RunLimits::for_chain_len(len));
        assert!(outcome.is_gathered(), "case={case} n={len}: {outcome:?}");
    }
}

/// Merges only ever remove robots; the chain length is monotone.
#[test]
fn chain_length_monotone() {
    for case in 0..64u64 {
        let mut rng = SplitMix64::new(0xB0B ^ (case << 8));
        let chain = arb_closed_chain(&mut rng, 24);
        let len = chain.len();
        let mut sim = Sim::new(chain, ClosedChainGathering::paper());
        let mut prev = len;
        for _ in 0..(8 * len) {
            if sim.is_gathered() {
                break;
            }
            let rep = sim.step().unwrap();
            assert!(rep.len_after <= prev, "case={case}");
            prev = rep.len_after;
        }
    }
}

/// Equivariance: translated inputs behave identically.
#[test]
fn translation_equivariance() {
    for case in 0..48u64 {
        let mut rng = SplitMix64::new(0xC0FFEE ^ case);
        let chain = arb_closed_chain(&mut rng, 16);
        let dx = rng.range_i64_inclusive(-50, 49);
        let dy = rng.range_i64_inclusive(-50, 49);
        let len = chain.len();
        let mut moved = chain.clone();
        moved.translate(Offset::new(dx, dy));
        let mut a = Sim::new(chain, ClosedChainGathering::paper());
        let mut b = Sim::new(moved, ClosedChainGathering::paper());
        let oa = a.run(RunLimits::for_chain_len(len));
        let ob = b.run(RunLimits::for_chain_len(len));
        assert_eq!(oa.rounds(), ob.rounds(), "case={case} dx={dx} dy={dy}");
    }
}

/// The conservative merge bound (k = 3) still gathers everything — the run
/// machinery carries the load (Lemma 1/2 in action).
#[test]
fn k3_gathers() {
    for case in 0..64u64 {
        let mut rng = SplitMix64::new(0x3 ^ (case << 16));
        let chain = arb_closed_chain(&mut rng, 20);
        let len = chain.len();
        let cfg = GatherConfig {
            max_merge_k: 3,
            ..GatherConfig::paper()
        };
        let mut sim = Sim::new(chain, ClosedChainGathering::new(cfg));
        let outcome = sim.run(RunLimits::for_chain_len(len));
        assert!(outcome.is_gathered(), "case={case} n={len}: {outcome:?}");
    }
}

/// The engine's merge pass plus strategy hops keep the taut-chain invariant
/// at every round boundary (validated inside step()); this property
/// additionally checks the bounding box never grows.
#[test]
fn bounding_box_never_grows() {
    for case in 0..64u64 {
        let mut rng = SplitMix64::new(0xB0CC5 ^ (case << 4));
        let chain = arb_closed_chain(&mut rng, 24);
        let len = chain.len();
        let mut sim = Sim::new(chain, ClosedChainGathering::paper());
        let mut prev = sim.chain().bounding();
        for _ in 0..(8 * len) {
            if sim.is_gathered() {
                break;
            }
            sim.step().unwrap();
            let now = sim.chain().bounding();
            assert!(
                now.min.x >= prev.min.x && now.min.y >= prev.min.y,
                "case={case}"
            );
            assert!(
                now.max.x <= prev.max.x && now.max.y <= prev.max.y,
                "case={case}"
            );
            prev = now;
        }
    }
}

/// Snapshot round trip for arbitrary chains.
#[test]
fn snapshot_round_trip() {
    for case in 0..32u64 {
        let mut rng = SplitMix64::new(0x5AFE ^ (case << 20));
        let chain = arb_closed_chain(&mut rng, 32);
        let s = chain_sim::snapshot::to_string(&chain);
        let back = chain_sim::snapshot::from_str(&s).unwrap();
        assert_eq!(back.positions(), chain.positions(), "case={case}");
    }
}
