//! Property-based tests (proptest) over random closed chains.
//!
//! The generator below produces arbitrary *balanced step multisets* in
//! random order — every instance is a legal closed chain, including
//! self-crossing and zero-area degenerate loops. The properties assert the
//! model-level invariants the paper's correctness rests on.

use chain_sim::{ClosedChain, RunLimits, Sim};
use gathering_core::{ClosedChainGathering, GatherConfig};
use grid_geom::{Offset, Point};
use proptest::prelude::*;

/// Strategy: a shuffled balanced step multiset → closed chain.
fn arb_closed_chain(max_half: usize) -> impl Strategy<Value = ClosedChain> {
    (1usize..=max_half, 1usize..=max_half, any::<u64>()).prop_map(|(a, b, shuffle_seed)| {
        let mut steps: Vec<Offset> = Vec::with_capacity(2 * (a + b));
        steps.extend(std::iter::repeat_n(Offset::RIGHT, a));
        steps.extend(std::iter::repeat_n(Offset::LEFT, a));
        steps.extend(std::iter::repeat_n(Offset::UP, b));
        steps.extend(std::iter::repeat_n(Offset::DOWN, b));
        // Deterministic Fisher–Yates driven by the seed.
        let mut state = shuffle_seed | 1;
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for i in (1..steps.len()).rev() {
            let j = (next() % (i as u64 + 1)) as usize;
            steps.swap(i, j);
        }
        let mut pts = Vec::with_capacity(steps.len());
        let mut p = Point::new(0, 0);
        for s in &steps[..steps.len() - 1] {
            pts.push(p);
            p += *s;
        }
        pts.push(p);
        ClosedChain::new(pts).expect("balanced steps form a valid closed chain")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The central safety property: the strategy never breaks the chain,
    /// and always gathers within the engine's generous linear limits.
    #[test]
    fn gathers_any_closed_chain(chain in arb_closed_chain(40)) {
        let len = chain.len();
        let mut sim = Sim::new(chain, ClosedChainGathering::paper());
        let outcome = sim.run(RunLimits::for_chain_len(len));
        prop_assert!(
            outcome.is_gathered(),
            "n={len}: {outcome:?}"
        );
    }

    /// Merges only ever remove robots; the chain length is monotone.
    #[test]
    fn chain_length_monotone(chain in arb_closed_chain(24)) {
        let len = chain.len();
        let mut sim = Sim::new(chain, ClosedChainGathering::paper());
        let mut prev = len;
        for _ in 0..(8 * len) {
            if sim.is_gathered() { break; }
            let rep = sim.step().unwrap();
            prop_assert!(rep.len_after <= prev);
            prev = rep.len_after;
        }
    }

    /// Equivariance: translated inputs behave identically.
    #[test]
    fn translation_equivariance(chain in arb_closed_chain(16), dx in -50i64..50, dy in -50i64..50) {
        let len = chain.len();
        let mut moved = chain.clone();
        moved.translate(Offset::new(dx, dy));
        let mut a = Sim::new(chain, ClosedChainGathering::paper());
        let mut b = Sim::new(moved, ClosedChainGathering::paper());
        let oa = a.run(RunLimits::for_chain_len(len));
        let ob = b.run(RunLimits::for_chain_len(len));
        prop_assert_eq!(oa.rounds(), ob.rounds());
    }

    /// The conservative merge bound (k = 3) still gathers everything —
    /// the run machinery carries the load (Lemma 1/2 in action).
    #[test]
    fn k3_gathers(chain in arb_closed_chain(20)) {
        let len = chain.len();
        let cfg = GatherConfig { max_merge_k: 3, ..GatherConfig::paper() };
        let mut sim = Sim::new(chain, ClosedChainGathering::new(cfg));
        let outcome = sim.run(RunLimits::for_chain_len(len));
        prop_assert!(outcome.is_gathered(), "n={len}: {outcome:?}");
    }

    /// The engine's merge pass plus strategy hops keep the taut-chain
    /// invariant at every round boundary (validated inside step()); this
    /// property additionally checks the bounding box never grows.
    #[test]
    fn bounding_box_never_grows(chain in arb_closed_chain(24)) {
        let len = chain.len();
        let mut sim = Sim::new(chain, ClosedChainGathering::paper());
        let mut prev = sim.chain().bounding();
        for _ in 0..(8 * len) {
            if sim.is_gathered() { break; }
            sim.step().unwrap();
            let now = sim.chain().bounding();
            prop_assert!(now.min.x >= prev.min.x && now.min.y >= prev.min.y);
            prop_assert!(now.max.x <= prev.max.x && now.max.y <= prev.max.y);
            prev = now;
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Snapshot round trip for arbitrary chains.
    #[test]
    fn snapshot_round_trip(chain in arb_closed_chain(32)) {
        let s = chain_sim::snapshot::to_string(&chain);
        let back = chain_sim::snapshot::from_str(&s).unwrap();
        prop_assert_eq!(back.positions(), chain.positions());
    }
}
