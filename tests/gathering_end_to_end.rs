//! End-to-end integration tests: the paper's algorithm across all workload
//! families, checked against the Theorem 1 contract.

use chain_sim::{Outcome, Recorder, RunLimits, Sim};
use gathering_core::{ClosedChainGathering, GatherConfig};
use workloads::Family;

fn run_family(fam: Family, n: usize, seed: u64) -> (usize, Outcome) {
    let chain = fam.generate(n, seed);
    let len = chain.len();
    let mut sim = Sim::new(chain, ClosedChainGathering::paper());
    let outcome = sim.run(RunLimits::for_chain_len(len));
    (len, outcome)
}

#[test]
fn every_family_gathers_small() {
    for fam in Family::ALL {
        for n in [8usize, 16, 32, 64] {
            for seed in 0..4 {
                let (len, outcome) = run_family(fam, n, seed);
                assert!(
                    outcome.is_gathered(),
                    "{} n={len} seed={seed}: {outcome:?}",
                    fam.name()
                );
            }
        }
    }
}

#[test]
fn every_family_gathers_medium_within_linear_bound() {
    // Theorem 1: ≤ 2Ln + n rounds. Our measured constants are ≤ ~3.3n;
    // assert the paper's bound with room to spare.
    for fam in Family::ALL {
        for seed in 0..2 {
            let (len, outcome) = run_family(fam, 300, seed);
            match outcome {
                Outcome::Gathered { rounds } => {
                    let bound = 27 * len as u64 + 27;
                    assert!(
                        rounds <= bound,
                        "{} n={len} seed={seed}: {rounds} rounds > bound {bound}",
                        fam.name()
                    );
                }
                other => panic!("{} n={len} seed={seed}: {other:?}", fam.name()),
            }
        }
    }
}

#[test]
fn proof_mode_with_k3_gathers() {
    // The Lemma-1 proof restricts merges to k ≤ 2 *analytically*; the
    // algorithm needs k ≥ 3 to finish odd remnants (see EXPERIMENTS.md T9).
    let cfg = GatherConfig {
        max_merge_k: 3,
        ..GatherConfig::paper()
    };
    for fam in Family::ALL {
        let chain = fam.generate(120, 9);
        let len = chain.len();
        let mut sim = Sim::new(chain, ClosedChainGathering::new(cfg));
        let outcome = sim.run(RunLimits::for_chain_len(len));
        assert!(
            outcome.is_gathered(),
            "{} (k=3) n={len}: {outcome:?}",
            fam.name()
        );
    }
}

#[test]
fn chain_never_breaks_even_on_adversarial_loops() {
    // The engine aborts with ChainBroken on any connectivity violation;
    // being Gathered implies the chain stayed connected throughout.
    for seed in 0..30 {
        let chain = workloads::random_loop(200, seed);
        let len = chain.len();
        let mut sim = Sim::new(chain, ClosedChainGathering::paper());
        let outcome = sim.run(RunLimits::for_chain_len(len));
        assert!(
            !matches!(outcome, Outcome::ChainBroken { .. }),
            "seed {seed}: {outcome:?}"
        );
        assert!(outcome.is_gathered(), "seed {seed}: {outcome:?}");
    }
}

#[test]
fn merge_count_accounts_for_all_robots() {
    let chain = Family::Rectangle.generate(150, 0);
    let len = chain.len();
    let mut sim = Sim::new(chain, ClosedChainGathering::paper());
    let outcome = sim.run(RunLimits::for_chain_len(len));
    assert!(outcome.is_gathered());
    let final_len = sim.chain().len();
    assert_eq!(sim.progress().total_removed(), len - final_len);
    assert!(final_len <= 4, "2×2 gathering leaves at most 4 robots");
}

#[test]
fn round_reports_are_monotone_in_length() {
    let chain = Family::Skyline.generate(200, 3);
    let len = chain.len();
    let mut sim = Sim::new(chain, ClosedChainGathering::paper()).observe(Recorder::new());
    let _ = sim.run(RunLimits::for_chain_len(len));
    let mut prev = len;
    for report in &sim.observer::<Recorder>().unwrap().trace().reports {
        assert!(
            report.len_after <= prev,
            "chain grew at round {}",
            report.round
        );
        assert_eq!(prev - report.len_after, report.removed);
        prev = report.len_after;
    }
}

#[test]
fn perturbed_families_still_gather() {
    // Inject adversarial local structure (detours, zero-area hairpins)
    // into every family and verify gathering still completes.
    for fam in Family::ALL {
        let base = fam.generate(100, 5);
        let chain = workloads::perturb(&base, 20, 11);
        let len = chain.len();
        let mut sim = Sim::new(chain, ClosedChainGathering::paper());
        let outcome = sim.run(RunLimits::for_chain_len(len));
        assert!(
            outcome.is_gathered(),
            "{} perturbed n={len}: {outcome:?}",
            fam.name()
        );
    }
}

#[test]
fn heavily_perturbed_random_loops_gather() {
    for seed in 0..8 {
        let base = workloads::random_loop(60, seed);
        let chain = workloads::perturb(&base, 60, seed * 31 + 1);
        let len = chain.len();
        let mut sim = Sim::new(chain, ClosedChainGathering::paper());
        let outcome = sim.run(RunLimits::for_chain_len(len));
        assert!(outcome.is_gathered(), "seed {seed} n={len}: {outcome:?}");
    }
}
