//! Property tests for the workload generators and the scenario pipeline
//! (seeded-loop form; the offline build has no proptest).
//!
//! Two contracts matter to every consumer of `workloads`:
//!
//! 1. **Validity and size** — `Family::generate(n, seed)` always returns a
//!    valid taut closed chain whose length tracks the request within the
//!    documented factor (`4 ≤ len ≤ 4n + 64`, and `len ≥ n/8` once
//!    `n ≥ 32` — families quantize to their structural period, so tiny
//!    requests round to the family minimum).
//! 2. **Determinism** — the same `(family, n, seed)` always produces the
//!    identical chain, and the same [`ScenarioSpec`] always produces the
//!    identical run, round for round, regardless of batch parallelism.

use bench::{run_batch, run_batch_with, BatchOptions, ScenarioSpec};
use chain_sim::{Recorder, Sim};
use gathering_core::ClosedChainGathering;
use workloads::{Family, SplitMix64};

/// Sampled (n, seed) grid: deterministic but irregular, covering small,
/// medium, and large requests for every family.
fn sampled_cases() -> Vec<(usize, u64)> {
    let mut rng = SplitMix64::new(0x5eed_ca5e);
    let mut cases: Vec<(usize, u64)> = vec![(8, 0), (32, 1), (100, 2), (333, 3)];
    for _ in 0..12 {
        cases.push((rng.range_usize(8, 600), rng.next_u64() % 1000));
    }
    cases
}

#[test]
fn every_family_generates_valid_chains_within_size_factor() {
    for fam in Family::ALL {
        for &(n, seed) in &sampled_cases() {
            let c = fam.generate(n, seed);
            c.validate()
                .unwrap_or_else(|e| panic!("{} n={n} seed={seed}: {e}", fam.name()));
            let len = c.len();
            assert!(len >= 4, "{} n={n}: too small ({len})", fam.name());
            assert!(
                len <= 4 * n + 64,
                "{} n={n}: {len} exceeds the documented upper factor",
                fam.name()
            );
            if n >= 32 {
                assert!(
                    len >= n / 8,
                    "{} n={n}: {len} below the documented lower factor",
                    fam.name()
                );
            }
        }
    }
}

#[test]
fn generation_is_deterministic_in_family_n_seed() {
    for fam in Family::ALL {
        for &(n, seed) in &sampled_cases()[..6] {
            let a = fam.generate(n, seed);
            let b = fam.generate(n, seed);
            assert_eq!(
                a.positions(),
                b.positions(),
                "{} n={n} seed={seed}",
                fam.name()
            );
        }
    }
}

/// Same spec → identical run through `run_batch`, at every parallelism
/// level: the batch fingerprint (actual n, rounds, merges, gap) is a pure
/// function of the spec list.
#[test]
fn run_batch_is_deterministic_across_parallelism() {
    let specs: Vec<ScenarioSpec> = Family::ALL
        .iter()
        .flat_map(|&fam| (0..2u64).map(move |seed| ScenarioSpec::paper(fam, 64, seed)))
        .collect();
    let a = run_batch(&specs);
    let b = run_batch(&specs);
    let serial = run_batch_with(&specs, BatchOptions::threads(1));
    let two = run_batch_with(&specs, BatchOptions::threads(2));
    for (((ra, rb), rs), r2) in a.iter().zip(&b).zip(&serial).zip(&two) {
        assert_eq!(ra.spec, rb.spec);
        assert_eq!(ra.fingerprint(), rb.fingerprint(), "{:?}", ra.spec);
        assert_eq!(ra.fingerprint(), rs.fingerprint(), "{:?}", ra.spec);
        assert_eq!(ra.fingerprint(), r2.fingerprint(), "{:?}", ra.spec);
    }
}

/// Determinism down to the individual round: two full-trace replays of the
/// same spec agree on every round report.
#[test]
fn same_spec_identical_trace() {
    let spec = ScenarioSpec::paper(Family::Skyline, 96, 5);
    let run = |spec: &ScenarioSpec| {
        let mut sim =
            Sim::new(spec.generate(), ClosedChainGathering::paper()).observe(Recorder::new());
        let out = sim.run_default();
        assert!(out.is_gathered());
        sim.observer_mut::<Recorder>().unwrap().take_trace()
    };
    let ta = run(&spec);
    let tb = run(&spec);
    assert_eq!(ta.reports.len(), tb.reports.len());
    for (a, b) in ta.reports.iter().zip(&tb.reports) {
        assert_eq!(a.round, b.round);
        assert_eq!(a.moved, b.moved);
        assert_eq!(a.removed, b.removed);
        assert_eq!(a.len_after, b.len_after);
        assert_eq!(a.bbox, b.bbox);
        assert_eq!(a.merges, b.merges);
    }
}
