//! Chain-safety guard: adversarial activation-subset audit and the
//! FSYNC-passivity contract.
//!
//! Two contracts are pinned here:
//!
//! 1. **Subset safety.** The guard's output is safe under the activation
//!    subset it was given — and since the engine applies the mask *before*
//!    the guard, this quantifies over the adversary's whole move set: for
//!    every round of a live `paper-ssync` run, masking the computed hops
//!    by **every** activation subset (exhaustive at n ≤ 12, seeded-sampled
//!    above) and guarding the result must yield a hop set that keeps every
//!    chain edge adjacent. `ClosedChain::apply_hops` re-checks
//!    connectivity independently, so the assertion does not trust the
//!    guard's own adjacency predicate.
//! 2. **FSYNC passivity.** Under the FSYNC scheduler the paper's hop sets
//!    are already safe, so the guard must never cancel and the SSYNC
//!    fallback must never arm: `paper-ssync` under `Fsync` reproduces the
//!    PR 4 golden `paper` fingerprints *exactly* — not merely within a
//!    bounded factor.

use bench::scenario::{run_batch_with, BatchOptions, ScenarioSpec, StrategyKind};
use chain_sim::chain::SpliceLog;
use chain_sim::rng::SplitMix64;
use chain_sim::{enforce_chain_safety, ClosedChain, RunLimits, Sim, Strategy};
use gathering_core::SsyncGathering;
use grid_geom::Offset;
use workloads::Family;

/// Exhaustive enumeration is affordable up to this chain length; larger
/// families fall back to seeded mask sampling.
const EXHAUSTIVE_MAX_N: usize = 12;

/// Sampled masks per round for families whose smallest instance exceeds
/// [`EXHAUSTIVE_MAX_N`] (crenellated 14, serpentine 16, spiral/cross 28).
const SAMPLED_MASKS: usize = 1024;

/// The smallest instance a family can generate (hints below the family's
/// structural minimum are clamped up by the generator).
fn smallest_instance(family: Family) -> ClosedChain {
    (2..=16)
        .map(|hint| family.generate(hint, 0))
        .min_by_key(ClosedChain::len)
        .expect("non-empty hint range")
}

/// Drive one `paper-ssync` trajectory under a seeded random schedule,
/// auditing every (or, above the exhaustive cutoff, a seeded sample of)
/// activation subset at every round before committing one of them.
fn subset_audit(family: Family, rng_seed: u64) {
    let mut chain = smallest_instance(family);
    let n0 = chain.len();
    let mut strat = SsyncGathering::paper();
    strat.init(&chain);
    let mut rng = SplitMix64::new(rng_seed);
    let mut log = SpliceLog::default();
    let cap = 256 * n0 as u64 + 4096;
    let mut round = 0u64;

    while !chain.is_gathered() {
        assert!(
            round < cap,
            "{}: n0={n0} not gathered within {cap} rounds",
            family.name()
        );
        let n = chain.len();
        let mut hops = vec![Offset::ZERO; n];
        strat.compute(&chain, round, &mut hops);

        // Quantify over activation subsets: mask, guard, apply to a probe
        // chain, and let `apply_hops` assert connectivity.
        let masks: Vec<u64> = if n <= EXHAUSTIVE_MAX_N {
            (0..(1u64 << n)).collect()
        } else {
            assert!(n <= 64, "sampled masks are one machine word");
            (0..SAMPLED_MASKS).map(|_| rng.next_u64()).collect()
        };
        for mask in masks {
            let mut masked = hops.clone();
            for (i, hop) in masked.iter_mut().enumerate() {
                if mask >> i & 1 == 0 {
                    *hop = Offset::ZERO;
                }
            }
            enforce_chain_safety(&chain, &mut masked);
            let mut probe = chain.clone();
            probe.apply_hops(&masked).unwrap_or_else(|e| {
                panic!(
                    "{}: round {round}, mask {mask:#x}: guarded hops broke the chain: {e}",
                    family.name()
                )
            });
        }

        // Commit one uniformly drawn subset, mirroring the engine's round
        // order (mask → guard → move → post_move → merge → post_merge).
        let commit = rng.next_u64();
        for (i, hop) in hops.iter_mut().enumerate() {
            if commit >> (i % 64) & 1 == 0 {
                *hop = Offset::ZERO;
            }
        }
        enforce_chain_safety(&chain, &mut hops);
        chain
            .apply_hops(&hops)
            .expect("the committed subset was audited above");
        strat.post_move(&chain, round);
        chain.merge_pass(&mut log);
        strat.post_merge(&chain, round, &log);
        if chain.len() > 1 {
            chain.validate().expect("taut between rounds");
        }
        round += 1;
    }
}

macro_rules! subset_safety {
    ($name:ident, $family:expr, $seed:expr) => {
        #[test]
        fn $name() {
            subset_audit($family, $seed);
        }
    };
}

subset_safety!(subset_safety_rectangle, Family::Rectangle, 0x51);
subset_safety!(subset_safety_crenellated, Family::Crenellated, 0x52);
subset_safety!(
    subset_safety_staircase_diamond,
    Family::StaircaseDiamond,
    0x53
);
subset_safety!(subset_safety_comb, Family::Comb, 0x54);
subset_safety!(subset_safety_skyline, Family::Skyline, 0x55);
subset_safety!(subset_safety_hairpin_flower, Family::HairpinFlower, 0x56);
subset_safety!(subset_safety_random_loop, Family::RandomLoop, 0x57);
subset_safety!(subset_safety_spiral, Family::Spiral, 0x58);
subset_safety!(subset_safety_serpentine, Family::Serpentine, 0x59);
subset_safety!(subset_safety_cross, Family::Cross, 0x5a);

/// Scenario fingerprint: `(n, rounds, merges, longest_gap)`.
type Fingerprint = (usize, u64, usize, u64);

/// PR 4 golden `paper` workloads under the default (FSYNC) scheduler —
/// the fingerprints recorded in `tests/schedulers.rs`.
fn golden_paper() -> Vec<(Family, usize, u64, Fingerprint)> {
    vec![
        (Family::Rectangle, 48, 0, (48, 7, 44, 0)),
        (Family::Rectangle, 96, 3, (96, 176, 92, 18)),
        (Family::Skyline, 64, 1, (84, 12, 80, 0)),
        (Family::RandomLoop, 80, 2, (80, 6, 79, 0)),
        (Family::StaircaseDiamond, 72, 5, (72, 27, 71, 18)),
    ]
}

/// FSYNC passivity at the registry level: `paper-ssync` under the default
/// scheduler reproduces the golden `paper` fingerprints exactly.
#[test]
fn paper_ssync_under_fsync_matches_the_paper_goldens() {
    let specs: Vec<ScenarioSpec> = golden_paper()
        .iter()
        .map(|&(family, n, seed, _)| {
            ScenarioSpec::strategy(family, n, seed, StrategyKind::paper_ssync())
        })
        .collect();
    let results = run_batch_with(&specs, BatchOptions::threads(2));
    for (r, (family, n, seed, want)) in results.iter().zip(golden_paper()) {
        assert_eq!(
            r.fingerprint(),
            want,
            "paper-ssync diverged from paper under FSYNC: {} n={n} seed={seed}",
            family.name()
        );
    }
}

/// FSYNC passivity at the engine level: on the golden workloads the guard
/// never cancels a hop and the SSYNC fallback never arms.
#[test]
fn guard_and_fallback_stay_silent_under_fsync() {
    for (family, n, seed, want) in golden_paper() {
        let chain = family.generate(n, seed);
        let d = chain.bounding().diameter() as u64;
        let len = chain.len() as u64;
        let mut sim = Sim::new(chain, SsyncGathering::paper());
        assert!(sim.chain_guard_enabled(), "wants_chain_guard must opt in");
        let outcome = sim.run(RunLimits {
            max_rounds: 8 * len * d + 4096,
            stall_window: 4 * len * d + 1024,
        });
        assert_eq!(
            outcome.rounds(),
            want.1,
            "{} n={n} seed={seed}",
            family.name()
        );
        assert!(outcome.is_gathered(), "{outcome:?}");
        assert_eq!(
            sim.guard_cancels(),
            0,
            "guard fired under FSYNC: {} n={n} seed={seed}",
            family.name()
        );
        let strat = sim.strategy();
        assert!(!strat.ssync_observed(), "FSYNC misdetected as SSYNC");
        assert_eq!(strat.fallback_hops(), 0, "fallback armed under FSYNC");
    }
}
