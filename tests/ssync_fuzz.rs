//! Seeded schedule fuzzing: `paper-ssync` must gather — chain intact,
//! invariants clean — under every built-in scheduler on a large random
//! sample of workloads.
//!
//! 1000 SplitMix64-drawn `(family, n, workload seed, scheduler)` combos
//! run to completion with the [`Invariants`] observer attached. The
//! acceptance bar is absolute: zero `ChainBroken`, zero invariant
//! violations, every run `Gathered`. The draw is deterministic (one seed
//! below), so a failure here is a reproducible counterexample, not a
//! flake — the panic message carries the full combo.

use chain_sim::observe::Invariants;
use chain_sim::rng::SplitMix64;
use chain_sim::{Outcome, RunLimits, SchedulerKind, Sim};
use gathering_core::SsyncGathering;
use workloads::Family;

const COMBOS: usize = 1000;
const FUZZ_SEED: u64 = 0x55f2;

#[derive(Clone, Copy, Debug)]
struct Combo {
    family: Family,
    n_hint: usize,
    seed: u64,
    sched: SchedulerKind,
}

fn draw_combos() -> Vec<Combo> {
    let mut rng = SplitMix64::new(FUZZ_SEED);
    (0..COMBOS)
        .map(|_| Combo {
            family: *rng.choose(&Family::ALL),
            // Small chains keep 1000 debug-mode runs affordable while
            // still exercising every merge pattern and run state; the
            // robustness campaign covers the large-n regime in release.
            n_hint: rng.range_usize(8, 25),
            seed: rng.next_u64(),
            sched: *rng.choose(&SchedulerKind::SWEEP),
        })
        .collect()
}

fn run_combo(c: Combo) {
    let chain = c.family.generate(c.n_hint, c.seed);
    let len = chain.len() as u64;
    let d = chain.bounding().diameter() as u64;
    let s = c.sched.slowdown();
    let mut sim = Sim::new(chain, SsyncGathering::paper())
        .with_scheduler(c.sched.build(c.seed))
        .observe(Invariants::new());
    let outcome = sim.run(RunLimits {
        max_rounds: (8 * len * d + 4096).saturating_mul(s),
        stall_window: (4 * len * d + 1024).saturating_mul(s),
    });
    assert!(
        !matches!(outcome, Outcome::ChainBroken { .. }),
        "{c:?}: chain broke: {outcome:?}"
    );
    assert!(outcome.is_gathered(), "{c:?}: {outcome:?}");
    let inv = sim.observer::<Invariants>().unwrap();
    assert!(inv.is_clean(), "{c:?}: invariant violations: {inv:?}");
}

/// The full fuzz sweep, spread over worker threads (each combo is
/// independent; the draw order fixes the combo list, not the execution
/// order, so sharding cannot change what is tested).
#[test]
fn paper_ssync_survives_1000_fuzzed_schedules() {
    let combos = draw_combos();
    let workers = std::thread::available_parallelism()
        .map(|p| p.get().min(8))
        .unwrap_or(4);
    std::thread::scope(|scope| {
        for shard in 0..workers {
            let combos = &combos;
            scope.spawn(move || {
                for c in combos.iter().skip(shard).step_by(workers) {
                    run_combo(*c);
                }
            });
        }
    });
}

/// The drawn sample actually covers the whole grid of axes: every family
/// and every scheduler kind shows up. (Guards against a silent draw bug
/// turning the fuzz sweep into an FSYNC-only test.)
#[test]
fn fuzz_draw_covers_every_family_and_scheduler() {
    let combos = draw_combos();
    for family in Family::ALL {
        assert!(
            combos.iter().any(|c| c.family == family),
            "family {} never drawn",
            family.name()
        );
    }
    for sched in SchedulerKind::SWEEP {
        assert!(
            combos.iter().any(|c| c.sched == sched),
            "scheduler {} never drawn",
            sched.name()
        );
    }
}
