//! A registry of named metrics with stable flat-text and JSON
//! exposition.
//!
//! Metrics are registered get-or-create by name and handed back as
//! `Arc`s, so the hot path holds a direct pointer and never touches the
//! registry lock again. Exposition walks the name-sorted map, which
//! makes both renderings byte-stable for a given set of values — the
//! service's `/metrics` endpoint and its `?json` variant are built on
//! this.

use crate::hist::Histogram;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, Mutex};

/// A monotone counter.
#[derive(Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Increment by one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Relaxed);
    }

    /// Increment by `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Relaxed)
    }
}

/// A gauge: a value that can move both ways.
#[derive(Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// Overwrite the value.
    pub fn set(&self, v: u64) {
        self.0.store(v, Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Relaxed)
    }
}

enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Hist(Arc<Histogram>),
}

/// A named collection of counters, gauges, and histograms.
#[derive(Default)]
pub struct Registry {
    inner: Mutex<BTreeMap<String, Metric>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Get or create the counter named `name`.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = self.inner.lock().unwrap();
        match map
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Arc::new(Counter::default())))
        {
            Metric::Counter(c) => c.clone(),
            _ => panic!("metric {name:?} already registered with a different kind"),
        }
    }

    /// Get or create the gauge named `name`.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut map = self.inner.lock().unwrap();
        match map
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Arc::new(Gauge::default())))
        {
            Metric::Gauge(g) => g.clone(),
            _ => panic!("metric {name:?} already registered with a different kind"),
        }
    }

    /// Get or create the histogram named `name`.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut map = self.inner.lock().unwrap();
        match map
            .entry(name.to_string())
            .or_insert_with(|| Metric::Hist(Arc::new(Histogram::new())))
        {
            Metric::Hist(h) => h.clone(),
            _ => panic!("metric {name:?} already registered with a different kind"),
        }
    }

    /// Flat-text exposition: one `<prefix><name> <value>` line per
    /// scalar metric, and six lines (`_count`, `_sum`, `_p50`, `_p90`,
    /// `_p99`, `_max`) per histogram. Names come out sorted, so the
    /// format is stable.
    pub fn render_text(&self, prefix: &str) -> String {
        let map = self.inner.lock().unwrap();
        let mut out = String::new();
        for (name, metric) in map.iter() {
            match metric {
                Metric::Counter(c) => out.push_str(&format!("{prefix}{name} {}\n", c.get())),
                Metric::Gauge(g) => out.push_str(&format!("{prefix}{name} {}\n", g.get())),
                Metric::Hist(h) => {
                    let s = h.summary();
                    for (suffix, v) in [
                        ("count", s.count),
                        ("sum", s.sum),
                        ("p50", s.p50),
                        ("p90", s.p90),
                        ("p99", s.p99),
                        ("max", s.max),
                    ] {
                        out.push_str(&format!("{prefix}{name}_{suffix} {v}\n"));
                    }
                }
            }
        }
        out
    }

    /// JSON exposition: scalars under `"counters"` / `"gauges"`,
    /// histogram digests under `"histograms"` as
    /// `{"count":..,"sum":..,"p50":..,"p90":..,"p99":..,"max":..}`.
    /// Key order is sorted (stable).
    pub fn render_json(&self) -> String {
        let map = self.inner.lock().unwrap();
        let mut counters = String::new();
        let mut gauges = String::new();
        let mut hists = String::new();
        for (name, metric) in map.iter() {
            match metric {
                Metric::Counter(c) => {
                    push_kv(&mut counters, name, &c.get().to_string());
                }
                Metric::Gauge(g) => {
                    push_kv(&mut gauges, name, &g.get().to_string());
                }
                Metric::Hist(h) => {
                    let s = h.summary();
                    let digest = format!(
                        "{{\"count\":{},\"sum\":{},\"p50\":{},\"p90\":{},\"p99\":{},\"max\":{}}}",
                        s.count, s.sum, s.p50, s.p90, s.p99, s.max
                    );
                    push_kv(&mut hists, name, &digest);
                }
            }
        }
        format!(
            "{{\"counters\":{{{counters}}},\"gauges\":{{{gauges}}},\"histograms\":{{{hists}}}}}"
        )
    }
}

/// Append `"key":value` (escaping the key) with a comma separator.
fn push_kv(out: &mut String, key: &str, value: &str) {
    if !out.is_empty() {
        out.push(',');
    }
    out.push('"');
    out.push_str(&escape(key));
    out.push_str("\":");
    out.push_str(value);
}

/// Minimal JSON string escaping — metric names are expected to be
/// identifiers, but a stray quote must not corrupt the document.
pub(crate) fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_or_create_returns_the_same_metric() {
        let r = Registry::new();
        let a = r.counter("hits");
        let b = r.counter("hits");
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
        assert!(Arc::ptr_eq(&a, &b));
        let h1 = r.histogram("lat");
        let h2 = r.histogram("lat");
        h1.record(7);
        assert_eq!(h2.count(), 1);
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn kind_conflicts_panic() {
        let r = Registry::new();
        r.counter("x");
        r.gauge("x");
    }

    #[test]
    fn text_exposition_is_sorted_and_stable() {
        let r = Registry::new();
        r.counter("zeta").add(5);
        r.gauge("alpha").set(9);
        r.histogram("mid").record(100);
        let text = r.render_text("svc_");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "svc_alpha 9");
        assert_eq!(lines[1], "svc_mid_count 1");
        assert_eq!(lines[2], "svc_mid_sum 100");
        assert!(lines[3].starts_with("svc_mid_p50 "));
        assert_eq!(lines[7], "svc_zeta 5");
        assert_eq!(text, r.render_text("svc_"));
    }

    #[test]
    fn json_exposition_shape() {
        let r = Registry::new();
        r.counter("hits").add(2);
        r.gauge("depth").set(4);
        r.histogram("lat").record(50);
        let json = r.render_json();
        assert!(json.starts_with("{\"counters\":{"));
        assert!(json.contains("\"hits\":2"));
        assert!(json.contains("\"depth\":4"));
        assert!(json.contains("\"lat\":{\"count\":1,\"sum\":50,\"p50\":50"));
        assert!(json.ends_with("}}"));
    }
}
