//! Sampling per-round phase timing.
//!
//! A [`PhaseTimer`] attributes wall time inside a simulation round to a
//! fixed set of phases (compute / guard / apply / merge). It is built
//! to sit *next to* a hot loop without perturbing it:
//!
//! - **Sampling.** Only rounds where `round % sample_every == 0` are
//!   timed; on every other round [`PhaseTimer::round_clock`] returns
//!   `None` and the loop pays one modulo and a branch.
//! - **Passivity.** The timer only reads clocks; it never touches
//!   simulation state, so timed and untimed runs produce byte-identical
//!   results.
//! - **Shared.** The timer is used through an `Arc`: histograms are
//!   lock-free, and the trace buffer takes a short lock only on sampled
//!   rounds, so one timer can serve a whole batch of worker threads.
//!
//! Sampled spans land in per-phase nanosecond [`Histogram`]s and, up to
//! a cap, in a Chrome trace-event buffer exportable with
//! [`PhaseTimer::to_chrome_json`].

use crate::hist::Histogram;
use crate::trace::{trace_tid, TraceEvents};
use std::sync::Arc;
use std::time::Instant;

/// The phases of one simulation round, in execution order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Phase {
    /// Strategy hop computation (for the dense path: the whole fused
    /// kernel round).
    Compute = 0,
    /// Chain-safety guard enforcement.
    Guard = 1,
    /// Hop application and travel accounting.
    Apply = 2,
    /// Merge pass and post-merge bookkeeping.
    Merge = 3,
}

impl Phase {
    /// All phases in execution order.
    pub const ALL: [Phase; 4] = [Phase::Compute, Phase::Guard, Phase::Apply, Phase::Merge];

    /// Lower-case phase name, as used in exposition and traces.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Compute => "compute",
            Phase::Guard => "guard",
            Phase::Apply => "apply",
            Phase::Merge => "merge",
        }
    }
}

/// A sampling per-phase wall-clock timer. See the module docs.
#[derive(Debug)]
pub struct PhaseTimer {
    sample_every: u64,
    hists: [Histogram; 4],
    rounds: Histogram,
    trace: TraceEvents,
}

impl PhaseTimer {
    /// The default sampling rate: time one round in 16.
    pub const DEFAULT_SAMPLE_EVERY: u64 = 16;

    /// A timer sampling every `sample_every`-th round (0 is treated
    /// as 1: every round).
    pub fn new(sample_every: u64) -> PhaseTimer {
        PhaseTimer {
            sample_every: sample_every.max(1),
            hists: [
                Histogram::new(),
                Histogram::new(),
                Histogram::new(),
                Histogram::new(),
            ],
            rounds: Histogram::new(),
            trace: TraceEvents::default(),
        }
    }

    /// A timer at [`PhaseTimer::DEFAULT_SAMPLE_EVERY`].
    pub fn default_rate() -> PhaseTimer {
        PhaseTimer::new(PhaseTimer::DEFAULT_SAMPLE_EVERY)
    }

    /// `true` when `round` falls on the sampling grid.
    pub fn sampled(&self, round: u64) -> bool {
        round.is_multiple_of(self.sample_every)
    }

    /// Start timing `round` if it is sampled; `None` otherwise. The
    /// returned clock records into this timer when dropped.
    pub fn round_clock(self: &Arc<Self>, round: u64) -> Option<RoundClock> {
        if !self.sampled(round) {
            return None;
        }
        let now = Instant::now();
        Some(RoundClock {
            timer: Arc::clone(self),
            round,
            t0: now,
            last: now,
            spans: [0; 4],
        })
    }

    /// Per-phase span histogram, in nanoseconds.
    pub fn histogram(&self, phase: Phase) -> &Histogram {
        &self.hists[phase as usize]
    }

    /// Whole-round (sum of phases) histogram, in nanoseconds.
    pub fn round_histogram(&self) -> &Histogram {
        &self.rounds
    }

    /// Number of sampled rounds recorded.
    pub fn rounds_sampled(&self) -> u64 {
        self.rounds.count()
    }

    /// Render the sampled spans as Chrome trace-event JSON.
    pub fn to_chrome_json(&self) -> String {
        self.trace.to_chrome_json()
    }

    /// A one-line human summary: per-phase p50 and share of sampled
    /// round time.
    pub fn report(&self) -> String {
        let total = self.rounds.sum().max(1);
        let mut out = format!("phase timing ({} sampled rounds):", self.rounds_sampled());
        for phase in Phase::ALL {
            let h = self.histogram(phase);
            out.push_str(&format!(
                " {}: p50 {} ns ({}%)",
                phase.name(),
                h.p50(),
                h.sum() * 100 / total
            ));
        }
        out
    }

    fn finish_round(&self, round: u64, t0: Instant, spans: &[u64; 4]) {
        let mut start = t0;
        let tid = trace_tid();
        let mut total = 0u64;
        for phase in Phase::ALL {
            let ns = spans[phase as usize];
            self.hists[phase as usize].record(ns);
            total += ns;
            if ns > 0 {
                let dur = std::time::Duration::from_nanos(ns);
                self.trace
                    .complete(phase.name(), tid, start, dur, Some(("round", round)));
                start += dur;
            }
        }
        self.rounds.record(total);
    }
}

/// An in-flight timed round. Call [`RoundClock::mark`] at the end of
/// each phase; dropping the clock records the round.
pub struct RoundClock {
    timer: Arc<PhaseTimer>,
    round: u64,
    t0: Instant,
    last: Instant,
    spans: [u64; 4],
}

impl RoundClock {
    /// Close the span for `phase`: the time since the previous mark
    /// (or the clock's creation) is attributed to it.
    pub fn mark(&mut self, phase: Phase) {
        let now = Instant::now();
        let ns = now
            .checked_duration_since(self.last)
            .unwrap_or_default()
            .as_nanos()
            .min(u64::MAX as u128) as u64;
        self.spans[phase as usize] += ns;
        self.last = now;
    }
}

impl Drop for RoundClock {
    fn drop(&mut self) {
        self.timer.finish_round(self.round, self.t0, &self.spans);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampling_grid() {
        let every = Arc::new(PhaseTimer::new(1));
        let sparse = Arc::new(PhaseTimer::new(4));
        for round in 0..8u64 {
            assert!(every.sampled(round));
            assert_eq!(sparse.sampled(round), round % 4 == 0);
            assert_eq!(sparse.round_clock(round).is_some(), round % 4 == 0);
        }
        assert_eq!(PhaseTimer::new(0).sample_every, 1);
    }

    #[test]
    fn clock_records_phases_and_trace() {
        let timer = Arc::new(PhaseTimer::new(1));
        for round in 0..5u64 {
            let mut clock = timer.round_clock(round).unwrap();
            clock.mark(Phase::Compute);
            clock.mark(Phase::Guard);
            clock.mark(Phase::Apply);
            clock.mark(Phase::Merge);
        }
        assert_eq!(timer.rounds_sampled(), 5);
        for phase in Phase::ALL {
            assert_eq!(timer.histogram(phase).count(), 5);
        }
        let json = timer.to_chrome_json();
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"args\":{\"round\":"));
        assert!(timer.report().contains("compute"));
    }

    /// The per-round histogram is the sum of the per-phase spans — the
    /// attribution never invents time.
    #[test]
    fn round_total_is_sum_of_phases() {
        let timer = Arc::new(PhaseTimer::new(1));
        {
            let mut clock = timer.round_clock(0).unwrap();
            clock.mark(Phase::Compute);
            std::hint::black_box((0..1000).sum::<u64>());
            clock.mark(Phase::Merge);
        }
        let total: u64 = Phase::ALL.iter().map(|&p| timer.histogram(p).sum()).sum();
        assert_eq!(timer.round_histogram().sum(), total);
    }
}
