//! Chrome trace-event collection and export.
//!
//! [`TraceEvents`] is a bounded, thread-safe buffer of complete
//! (`"ph":"X"`) spans. [`TraceEvents::to_chrome_json`] renders the
//! standard `{"traceEvents":[...]}` document that `chrome://tracing`
//! and Perfetto load directly. Timestamps are microseconds relative to
//! the collector's creation; the buffer is capped so a long run cannot
//! balloon memory — overflow is counted, not stored.

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Default cap on stored events (~4 MiB of JSON).
pub const DEFAULT_EVENT_CAP: usize = 50_000;

/// One complete span.
#[derive(Clone, Copy, Debug)]
pub struct TraceEvent {
    /// Span name (`"compute"`, `"connect"`, ...).
    pub name: &'static str,
    /// Start, nanoseconds since the collector's epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// Track (thread lane) the span renders on.
    pub tid: u64,
    /// Optional `args` entry (`("round", 42)`).
    pub arg: Option<(&'static str, u64)>,
}

/// A bounded collector of trace spans.
#[derive(Debug)]
pub struct TraceEvents {
    epoch: Instant,
    events: Mutex<Vec<TraceEvent>>,
    cap: usize,
    dropped: AtomicU64,
}

impl Default for TraceEvents {
    fn default() -> Self {
        TraceEvents::new(DEFAULT_EVENT_CAP)
    }
}

impl TraceEvents {
    /// A collector that keeps at most `cap` events.
    pub fn new(cap: usize) -> TraceEvents {
        TraceEvents {
            epoch: Instant::now(),
            events: Mutex::new(Vec::new()),
            cap,
            dropped: AtomicU64::new(0),
        }
    }

    /// The instant all span timestamps are measured from.
    pub fn epoch(&self) -> Instant {
        self.epoch
    }

    /// Record a complete span. `start` values before the epoch clamp
    /// to 0.
    pub fn complete(
        &self,
        name: &'static str,
        tid: u64,
        start: Instant,
        dur: Duration,
        arg: Option<(&'static str, u64)>,
    ) {
        let start_ns = start
            .checked_duration_since(self.epoch)
            .unwrap_or(Duration::ZERO)
            .as_nanos()
            .min(u64::MAX as u128) as u64;
        let ev = TraceEvent {
            name,
            start_ns,
            dur_ns: dur.as_nanos().min(u64::MAX as u128) as u64,
            tid,
            arg,
        };
        let mut events = self.events.lock().unwrap();
        if events.len() < self.cap {
            events.push(ev);
        } else {
            self.dropped.fetch_add(1, Relaxed);
        }
    }

    /// Number of stored events.
    pub fn len(&self) -> usize {
        self.events.lock().unwrap().len()
    }

    /// `true` when no events are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events discarded after the cap was hit.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Relaxed)
    }

    /// Render the Chrome trace-event JSON document.
    pub fn to_chrome_json(&self) -> String {
        let events = self.events.lock().unwrap();
        let mut out = String::with_capacity(events.len() * 96 + 32);
        out.push_str("{\"traceEvents\":[");
        for (i, ev) in events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"cat\":\"obs\",\"ph\":\"X\",\"pid\":1,\"tid\":{},\
                 \"ts\":{}.{:03},\"dur\":{}.{:03}",
                crate::registry::escape(ev.name),
                ev.tid,
                ev.start_ns / 1_000,
                ev.start_ns % 1_000,
                ev.dur_ns / 1_000,
                ev.dur_ns % 1_000,
            ));
            if let Some((k, v)) = ev.arg {
                out.push_str(&format!(
                    ",\"args\":{{\"{}\":{v}}}",
                    crate::registry::escape(k)
                ));
            }
            out.push('}');
        }
        out.push_str("]}");
        out
    }
}

/// A small per-thread lane id for trace tracks: stable within a thread,
/// dense across threads, and cheap to read.
pub fn trace_tid() -> u64 {
    use std::cell::Cell;
    static NEXT: AtomicU64 = AtomicU64::new(1);
    thread_local! {
        static TID: Cell<u64> = const { Cell::new(0) };
    }
    TID.with(|t| {
        if t.get() == 0 {
            t.set(NEXT.fetch_add(1, Relaxed));
        }
        t.get()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chrome_json_shape_and_cap() {
        let t = TraceEvents::new(2);
        let now = t.epoch();
        t.complete(
            "alpha",
            1,
            now,
            Duration::from_micros(5),
            Some(("round", 3)),
        );
        t.complete(
            "beta",
            2,
            now + Duration::from_micros(5),
            Duration::from_nanos(1500),
            None,
        );
        t.complete("gamma", 1, now, Duration::ZERO, None); // over cap
        assert_eq!(t.len(), 2);
        assert_eq!(t.dropped(), 1);
        let json = t.to_chrome_json();
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"name\":\"alpha\""));
        assert!(json.contains("\"args\":{\"round\":3}"));
        assert!(json.contains("\"dur\":1.500"));
        assert!(!json.contains("gamma"));
        assert!(json.ends_with("]}"));
    }

    #[test]
    fn tids_are_stable_per_thread_and_distinct() {
        let here = trace_tid();
        assert_eq!(here, trace_tid());
        let other = std::thread::spawn(trace_tid).join().unwrap();
        assert_ne!(here, other);
    }
}
