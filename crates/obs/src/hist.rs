//! Lock-free log-bucketed histogram.
//!
//! The value axis is split into a linear region (`0..32`, exact) and
//! log-linear octaves above it: each power-of-two range is divided into
//! [`SUB`] equal sub-buckets, so any recorded value lands in a bucket
//! whose width is at most `value / 32` — a fixed ~3% relative error,
//! which is plenty for latency percentiles. The whole table is 1920
//! buckets (15 KiB) and covers the full `u64` range, so microsecond
//! recordings never saturate.
//!
//! Recording is wait-free: one relaxed `fetch_add` on the bucket plus
//! relaxed updates of `count`/`sum`/`max`. Readers take a relaxed
//! snapshot; the only consistency contract is that after all writers
//! have finished (joined), totals are exact — which is what the
//! concurrent stress test pins.

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

/// log2 of the sub-bucket count per octave.
pub const SUB_BITS: u32 = 5;

/// Sub-buckets per power-of-two octave (also the size of the exact
/// linear region at the bottom of the value axis).
pub const SUB: u64 = 1 << SUB_BITS;

/// Total bucket count: the linear block plus one block per octave with
/// a most-significant bit in `SUB_BITS..=63`.
pub const BUCKETS: usize = (64 - SUB_BITS as usize) * SUB as usize + SUB as usize;

/// Map a value to its bucket index.
///
/// Values below [`SUB`] map to themselves (exact); above, the index is
/// built from the position of the most significant bit and the next
/// [`SUB_BITS`] bits below it.
pub fn bucket_index(value: u64) -> usize {
    if value < SUB {
        value as usize
    } else {
        let msb = 63 - value.leading_zeros(); // >= SUB_BITS
        let shift = msb - SUB_BITS;
        let sub = (value >> shift) & (SUB - 1);
        ((msb - SUB_BITS + 1) as u64 * SUB + sub) as usize
    }
}

/// The largest value that maps to bucket `index` — what percentile
/// queries report, so the estimate always errs toward the conservative
/// (larger) side of the bucket.
pub fn bucket_bound(index: usize) -> u64 {
    let block = index as u64 / SUB;
    let sub = index as u64 % SUB;
    if block == 0 {
        sub
    } else {
        let msb = SUB_BITS as u64 + block - 1;
        let shift = msb - SUB_BITS as u64;
        let low = (1u64 << msb) | (sub << shift);
        low + ((1u64 << shift) - 1)
    }
}

/// A lock-free log-bucketed histogram of `u64` samples.
pub struct Histogram {
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("summary", &self.summary())
            .finish_non_exhaustive()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Record one sample. Wait-free; callable from any thread.
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Relaxed);
        self.count.fetch_add(1, Relaxed);
        self.sum.fetch_add(value, Relaxed);
        self.max.fetch_max(value, Relaxed);
    }

    /// Record a [`std::time::Duration`] in microseconds.
    pub fn record_duration_us(&self, d: std::time::Duration) {
        self.record(d.as_micros().min(u64::MAX as u128) as u64);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Relaxed)
    }

    /// Sum of all recorded samples.
    pub fn sum(&self) -> u64 {
        self.sum.load(Relaxed)
    }

    /// Largest recorded sample (exact), 0 when empty.
    pub fn max(&self) -> u64 {
        self.max.load(Relaxed)
    }

    /// `true` when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count() == 0
    }

    /// The value at quantile `q` in `[0, 1]`: the upper bound of the
    /// bucket holding the sample of rank `ceil(q * count)`, clamped to
    /// the exact maximum. Returns 0 on an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let target = ((q * count as f64).ceil() as u64).clamp(1, count);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Relaxed);
            if seen >= target {
                return bucket_bound(i).min(self.max());
            }
        }
        self.max()
    }

    /// Median estimate.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 90th-percentile estimate.
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// 99th-percentile estimate.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Fold another histogram into this one (bucket-wise add). Merging
    /// is commutative and associative, so per-thread histograms can be
    /// combined in any order.
    pub fn merge(&self, other: &Histogram) {
        for (dst, src) in self.buckets.iter().zip(other.buckets.iter()) {
            let n = src.load(Relaxed);
            if n > 0 {
                dst.fetch_add(n, Relaxed);
            }
        }
        self.count.fetch_add(other.count(), Relaxed);
        self.sum.fetch_add(other.sum(), Relaxed);
        self.max.fetch_max(other.max(), Relaxed);
    }

    /// A snapshot of all bucket counts (index-aligned with
    /// [`bucket_bound`]); mostly useful for tests and exposition.
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.buckets.iter().map(|b| b.load(Relaxed)).collect()
    }

    /// Snapshot the headline statistics in one call.
    pub fn summary(&self) -> Summary {
        Summary {
            count: self.count(),
            sum: self.sum(),
            p50: self.p50(),
            p90: self.p90(),
            p99: self.p99(),
            max: self.max(),
        }
    }
}

/// A point-in-time digest of a [`Histogram`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Summary {
    /// Number of samples.
    pub count: u64,
    /// Sum of samples.
    pub sum: u64,
    /// Median estimate.
    pub p50: u64,
    /// 90th-percentile estimate.
    pub p90: u64,
    /// 99th-percentile estimate.
    pub p99: u64,
    /// Exact maximum.
    pub max: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The linear region is exact; above it, a bucket's bound is within
    /// `value / SUB` of the value, and index/bound round-trip.
    #[test]
    fn bucket_boundaries() {
        for v in 0..SUB {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_bound(bucket_index(v)), v);
        }
        // Octave edges: 2^k lands in a fresh bucket and 2^k - 1 in the
        // last bucket of the previous block.
        for k in SUB_BITS..63 {
            let lo = 1u64 << k;
            assert_eq!(
                bucket_index(lo),
                bucket_index(lo) / SUB as usize * SUB as usize
            );
            assert_eq!(bucket_index(lo - 1) + 1, bucket_index(lo));
        }
        // Bound is conservative and tight everywhere we can sweep.
        let mut probes: Vec<u64> = (0..4096).collect();
        for k in 5..64 {
            let p = 1u64 << k;
            probes.extend([p - 1, p, p + 1, p + p / 3]);
        }
        probes.push(u64::MAX);
        for &v in &probes {
            let bound = bucket_bound(bucket_index(v));
            assert!(bound >= v, "bound {bound} < value {v}");
            assert!(bound - v <= v / SUB + 1, "bucket too wide at {v}");
        }
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn exact_stats_and_quantiles() {
        let h = Histogram::new();
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.summary().count, 0);
        for v in 1..=100u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.sum(), 5050);
        assert_eq!(h.max(), 100);
        // Values <= 31 are exact; larger ones carry <= 3% bucket error.
        assert_eq!(h.quantile(0.01), 1);
        assert!(h.p50() >= 50 && h.p50() <= 52);
        assert!(h.p99() >= 99 && h.p99() <= 100);
        assert_eq!(h.quantile(1.0), 100);
    }

    #[test]
    fn percentile_monotonicity() {
        let h = Histogram::new();
        let mut x = 0x2545f4914f6cdd1du64;
        for _ in 0..10_000 {
            // SplitMix64-ish scramble for a spread of magnitudes.
            x = x.wrapping_mul(0x9e3779b97f4a7c15).rotate_left(27);
            h.record(x >> (x % 50));
        }
        let mut last = 0;
        for i in 0..=100 {
            let q = h.quantile(i as f64 / 100.0);
            assert!(q >= last, "quantile not monotone at {i}%");
            last = q;
        }
        assert!(h.p50() <= h.p90());
        assert!(h.p90() <= h.p99());
        assert!(h.p99() <= h.max());
    }

    #[test]
    fn merge_is_associative() {
        let fill = |seed: u64, n: u64| {
            let h = Histogram::new();
            let mut x = seed;
            for _ in 0..n {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                h.record(x >> 32);
            }
            h
        };
        let (a, b, c) = (fill(1, 100), fill(2, 200), fill(3, 300));
        let left = Histogram::new(); // (a + b) + c
        left.merge(&a);
        left.merge(&b);
        left.merge(&c);
        let bc = Histogram::new(); // a + (b + c)
        bc.merge(&b);
        bc.merge(&c);
        let right = Histogram::new();
        right.merge(&a);
        right.merge(&bc);
        assert_eq!(left.bucket_counts(), right.bucket_counts());
        assert_eq!(left.summary(), right.summary());
        assert_eq!(left.count(), 600);
        assert_eq!(left.sum(), a.sum() + b.sum() + c.sum());
    }

    /// N threads hammer one histogram; after joining, totals are exact.
    #[test]
    fn concurrent_recording_conserves_totals() {
        const THREADS: u64 = 8;
        const PER_THREAD: u64 = 10_000;
        let h = Histogram::new();
        std::thread::scope(|s| {
            for t in 0..THREADS {
                let h = &h;
                s.spawn(move || {
                    for i in 0..PER_THREAD {
                        h.record(t * PER_THREAD + i);
                    }
                });
            }
        });
        assert_eq!(h.count(), THREADS * PER_THREAD);
        let n = THREADS * PER_THREAD;
        assert_eq!(h.sum(), n * (n - 1) / 2);
        assert_eq!(h.max(), n - 1);
        assert_eq!(h.bucket_counts().iter().sum::<u64>(), n);
    }
}
