//! Dependency-free observability primitives for the gathering stack.
//!
//! Three layers, each usable on its own:
//!
//! - [`hist`] — lock-free log-bucketed [`Histogram`]s (power-of-two
//!   octaves with 32 linear sub-buckets, ~3% relative error) with
//!   `p50/p90/p99/max`, count/sum, and order-insensitive merge.
//! - [`registry`] — a [`Registry`] of named counters / gauges /
//!   histograms with stable flat-text and JSON exposition; the
//!   service's `/metrics` endpoint is a thin wrapper over it.
//! - [`phase`] + [`trace`] — a sampling [`PhaseTimer`] attributing
//!   per-round wall time to compute/guard/apply/merge spans, and a
//!   bounded Chrome trace-event buffer ([`TraceEvents`]) whose JSON
//!   loads directly in Perfetto / `chrome://tracing`.
//!
//! The crate holds the stack's passivity line: everything here only
//! *reads* clocks and counters. Attaching any of it to the engine, the
//! kernels, or the service must never change a simulation result.

#![deny(missing_docs)]

pub mod hist;
pub mod phase;
pub mod registry;
pub mod trace;

pub use hist::{Histogram, Summary};
pub use phase::{Phase, PhaseTimer, RoundClock};
pub use registry::{Counter, Gauge, Registry};
pub use trace::{trace_tid, TraceEvents};
