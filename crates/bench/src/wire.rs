//! The service wire dialect: [`ScenarioSpec`]s and results as JSON.
//!
//! `gatherd` speaks the campaign store's JSON dialect on the wire — a
//! request is the identity fields of a
//! [`CampaignRow`](crate::campaign::CampaignRow) (`family`, `n`, `seed`,
//! `strategy`, optional `scheduler`), a result is the row's store
//! representation
//! ([`CampaignRow::to_store_json`](crate::campaign::CampaignRow::to_store_json))
//! — so a service response
//! and a campaign store line are the same bytes for the same spec, and the
//! service's content-addressed cache can be backed by the JSON Lines
//! store unchanged. The cache key is [`spec_hash`](super::campaign::spec_hash)
//! of the decoded spec, exactly like campaign resume.
//!
//! Decoding validates instead of trusting: unknown names report the
//! registry inventory, non-integer or out-of-range sizes are rejected,
//! and open-chain strategies refuse SSYNC schedulers at decode time (the
//! pipeline would panic later — the same combination campaign grids skip
//! at construction time).

use crate::campaign::json::Json;
use crate::scenario::{ScenarioSpec, StrategyKind};
use chain_sim::SchedulerKind;
use geom_core::GeometryKind;
use workloads::Family;

/// Smallest accepted request size. Families quantize tiny hints into
/// degenerate chains; four robots (the gathered configuration itself) is
/// the floor below which a request is a mistake.
pub const MIN_N: usize = 4;

/// Largest accepted request size: one shared simulation should stay
/// interactive. The full campaign ladder tops out at 65 536; the service
/// accepts double that before calling a request abusive.
pub const MAX_N: usize = 131_072;

/// Decode a [`ScenarioSpec`] from the wire dialect.
///
/// Required fields: `family`, `n`, `seed`, `strategy`. Optional:
/// `scheduler` (default `fsync`), `geometry` (default follows the
/// strategy: `euclid` for `euclid-chain`, `grid` otherwise). Every error
/// names the offending field and, for registry names, the *full* accepted
/// inventory — the service turns these into 400 responses.
pub fn spec_from_json(v: &Json) -> Result<ScenarioSpec, String> {
    let Json::Obj(pairs) = v else {
        return Err("request must be a JSON object".to_string());
    };
    // Strict keys: a misspelled optional field ("schedular") must not
    // silently measure the default instead of what was asked for.
    const KNOWN: [&str; 6] = ["family", "n", "seed", "strategy", "scheduler", "geometry"];
    if let Some((key, _)) = pairs.iter().find(|(k, _)| !KNOWN.contains(&k.as_str())) {
        return Err(format!(
            "unknown field '{key}' (expected: {})",
            KNOWN.join(", ")
        ));
    }
    let family_name = v
        .get("family")
        .and_then(Json::as_str)
        .ok_or("missing string field 'family'")?;
    let family = Family::from_name(family_name).ok_or_else(|| {
        let names: Vec<&str> = Family::ALL.iter().map(|f| f.name()).collect();
        format!(
            "unknown family '{family_name}' (expected one of: {})",
            names.join(", ")
        )
    })?;
    let n = v
        .get("n")
        .and_then(Json::as_usize)
        .ok_or("missing non-negative integer field 'n'")?;
    if !(MIN_N..=MAX_N).contains(&n) {
        return Err(format!("n={n} out of range [{MIN_N}, {MAX_N}]"));
    }
    let seed = v
        .get("seed")
        .and_then(Json::as_u64)
        .ok_or("missing non-negative integer field 'seed'")?;
    let strategy_name = v
        .get("strategy")
        .and_then(Json::as_str)
        .ok_or("missing string field 'strategy'")?;
    let strategy = StrategyKind::from_name(strategy_name).ok_or_else(|| {
        format!(
            "unknown strategy '{strategy_name}' (expected one of: {})",
            StrategyKind::ALL_NAMES.join(", ")
        )
    })?;
    let scheduler = match v.get("scheduler") {
        None | Some(Json::Null) => SchedulerKind::Fsync,
        Some(s) => {
            let name = s.as_str().ok_or("field 'scheduler' must be a string")?;
            SchedulerKind::from_name(name).ok_or_else(|| {
                format!(
                    "unknown scheduler '{name}' (expected one of: {})",
                    SchedulerKind::NAME_FORMS.join(", ")
                )
            })?
        }
    };
    if strategy.is_open_chain() && !scheduler.is_fsync() {
        return Err(format!(
            "open-chain strategy '{}' has no SSYNC semantics (scheduler '{}')",
            strategy.name(),
            scheduler.name()
        ));
    }
    // Geometry defaults to what the strategy implies (euclid-chain is a
    // continuous-backend strategy, everything else runs on the grid); an
    // explicit value is validated against the inventory and the strategy.
    let mut spec = ScenarioSpec::strategy(family, n, seed, strategy).with_scheduler(scheduler);
    if let Some(g) = v.get("geometry") {
        if !matches!(g, Json::Null) {
            let name = g.as_str().ok_or("field 'geometry' must be a string")?;
            let geometry = GeometryKind::from_name(name).ok_or_else(|| {
                format!(
                    "unknown geometry '{name}' (expected one of: {})",
                    GeometryKind::ALL_NAMES.join(", ")
                )
            })?;
            spec = spec.with_geometry(geometry);
        }
    }
    if let Some(err) = spec.geometry_error() {
        return Err(err);
    }
    Ok(spec)
}

/// Encode a spec back into the wire dialect (the inverse of
/// [`spec_from_json`] for canonical registry specs).
pub fn spec_to_json(spec: &ScenarioSpec) -> Json {
    Json::obj(vec![
        ("family", Json::str(spec.family.name())),
        ("n", Json::usize(spec.n)),
        ("seed", Json::u64(spec.seed)),
        ("strategy", Json::str(spec.strategy.name())),
        ("scheduler", Json::str(spec.scheduler.name())),
        ("geometry", Json::str(spec.geometry.name())),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::{spec_hash, CampaignRow};
    use crate::scenario::run_scenario;

    #[test]
    fn decodes_minimal_and_full_requests() {
        let v =
            Json::parse(r#"{"family":"rectangle","n":64,"seed":3,"strategy":"paper"}"#).unwrap();
        let spec = spec_from_json(&v).unwrap();
        assert_eq!(spec.family, Family::Rectangle);
        assert_eq!(spec.n, 64);
        assert_eq!(spec.seed, 3);
        assert_eq!(spec.scheduler, SchedulerKind::Fsync);

        let v = Json::parse(
            r#"{"family":"skyline","n":128,"seed":0,"strategy":"compass-se","scheduler":"kfair4"}"#,
        )
        .unwrap();
        let spec = spec_from_json(&v).unwrap();
        assert_eq!(spec.scheduler, SchedulerKind::KFair(4));
        // Round-trips through the encoder.
        assert_eq!(spec_from_json(&spec_to_json(&spec)).unwrap(), spec);

        // The SSYNC repair is reachable over the wire under any scheduler.
        let v = Json::parse(
            r#"{"family":"rectangle","n":64,"seed":0,"strategy":"paper-ssync","scheduler":"rr2"}"#,
        )
        .unwrap();
        let spec = spec_from_json(&v).unwrap();
        assert_eq!(spec.strategy, StrategyKind::paper_ssync());
        assert_eq!(spec.scheduler, SchedulerKind::RoundRobin(2));
        assert_eq!(spec_from_json(&spec_to_json(&spec)).unwrap(), spec);

        // Euclidean requests decode with geometry implied by the strategy
        // (no explicit field needed) and round-trip with it explicit.
        let v =
            Json::parse(r#"{"family":"random-loop","n":64,"seed":1,"strategy":"euclid-chain"}"#)
                .unwrap();
        let spec = spec_from_json(&v).unwrap();
        assert_eq!(spec.geometry, GeometryKind::Euclid);
        assert_eq!(spec_from_json(&spec_to_json(&spec)).unwrap(), spec);

        // An explicit redundant geometry is accepted.
        let v = Json::parse(
            r#"{"family":"rectangle","n":64,"seed":0,"strategy":"paper","geometry":"grid"}"#,
        )
        .unwrap();
        assert_eq!(spec_from_json(&v).unwrap().geometry, GeometryKind::Grid);
    }

    #[test]
    fn rejects_bad_requests_with_named_fields() {
        let cases = [
            (r#"[1,2]"#, "object"),
            (r#"{"n":64,"seed":0,"strategy":"paper"}"#, "family"),
            (
                r#"{"family":"nope","n":64,"seed":0,"strategy":"paper"}"#,
                "unknown family",
            ),
            (
                r#"{"family":"rectangle","seed":0,"strategy":"paper"}"#,
                "'n'",
            ),
            (
                r#"{"family":"rectangle","n":2.5,"seed":0,"strategy":"paper"}"#,
                "'n'",
            ),
            (
                r#"{"family":"rectangle","n":2,"seed":0,"strategy":"paper"}"#,
                "out of range",
            ),
            (
                r#"{"family":"rectangle","n":99999999,"seed":0,"strategy":"paper"}"#,
                "out of range",
            ),
            (
                r#"{"family":"rectangle","n":64,"seed":-1,"strategy":"paper"}"#,
                "'seed'",
            ),
            (
                r#"{"family":"rectangle","n":64,"seed":0,"strategy":"quantum"}"#,
                "unknown strategy",
            ),
            (
                r#"{"family":"rectangle","n":64,"seed":0,"strategy":"paper","scheduler":"x"}"#,
                "unknown scheduler",
            ),
            (
                r#"{"family":"rectangle","n":64,"seed":0,"strategy":"open-zip","scheduler":"rr2"}"#,
                "SSYNC",
            ),
            (
                r#"{"family":"rectangle","n":64,"seed":0,"strategy":"paper","schedular":"kfair4"}"#,
                "unknown field 'schedular'",
            ),
            (
                r#"{"family":"rectangle","n":64,"seed":0,"strategy":"paper","geometry":"hex"}"#,
                "unknown geometry",
            ),
            (
                r#"{"family":"rectangle","n":64,"seed":0,"strategy":"euclid-chain","geometry":"grid"}"#,
                "requires geometry 'euclid'",
            ),
            (
                r#"{"family":"rectangle","n":64,"seed":0,"strategy":"paper","geometry":"euclid"}"#,
                "supports only strategy 'euclid-chain'",
            ),
            (
                r#"{"family":"rectangle","n":64,"seed":0,"strategy":"euclid-chain","scheduler":"rr2"}"#,
                "FSYNC-only",
            ),
        ];
        for (input, needle) in cases {
            let err = spec_from_json(&Json::parse(input).unwrap()).unwrap_err();
            assert!(err.contains(needle), "{input}: {err}");
        }
    }

    /// Unknown registry names report the *full* inventory — a client can
    /// recover the valid name set from the error alone.
    #[test]
    fn unknown_name_errors_carry_full_inventory() {
        let v = Json::parse(
            r#"{"family":"rectangle","n":64,"seed":0,"strategy":"paper","scheduler":"turbo"}"#,
        )
        .unwrap();
        let err = spec_from_json(&v).unwrap_err();
        for form in SchedulerKind::NAME_FORMS {
            assert!(
                err.contains(form),
                "scheduler inventory missing {form}: {err}"
            );
        }

        let v = Json::parse(
            r#"{"family":"rectangle","n":64,"seed":0,"strategy":"paper","geometry":"hex"}"#,
        )
        .unwrap();
        let err = spec_from_json(&v).unwrap_err();
        for name in GeometryKind::ALL_NAMES {
            assert!(
                err.contains(name),
                "geometry inventory missing {name}: {err}"
            );
        }

        let v = Json::parse(r#"{"family":"rectangle","n":64,"seed":0,"strategy":"warp"}"#).unwrap();
        let err = spec_from_json(&v).unwrap_err();
        for name in StrategyKind::ALL_NAMES {
            assert!(
                err.contains(name),
                "strategy inventory missing {name}: {err}"
            );
        }
    }

    /// The wire result of a run is exactly the campaign store line, and
    /// its hash matches the decoded spec's — one dialect end to end.
    #[test]
    fn results_are_store_rows() {
        let v =
            Json::parse(r#"{"family":"rectangle","n":32,"seed":0,"strategy":"paper"}"#).unwrap();
        let spec = spec_from_json(&v).unwrap();
        let row = CampaignRow::from_result(&run_scenario(&spec));
        let encoded = row.to_store_json().to_compact();
        let parsed = CampaignRow::from_json(&Json::parse(&encoded).unwrap()).unwrap();
        assert_eq!(parsed, row);
        assert_eq!(parsed.spec_hash().unwrap(), spec_hash(&spec));
    }
}
