//! A minimal, dependency-free JSON value with a writer and a recursive
//! descent parser.
//!
//! The workspace is deliberately offline (no serde); the campaign store
//! needs exactly this much JSON: compact deterministic emission for the
//! JSON Lines result store and the `BENCH_*.json` artifacts, and enough
//! parsing to read them back for resume / merge / report. Objects preserve
//! insertion order so emission is byte-stable.

use std::fmt::Write as _;

/// A parsed or under-construction JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (integers round-trip exactly up to 2^53).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object as an ordered key/value list (insertion order is emission
    /// order — the property the byte-stable artifacts rely on).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Construct an object value from ordered pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Construct a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Construct a number from an unsigned integer.
    pub fn u64(x: u64) -> Json {
        Json::Num(x as f64)
    }

    /// Construct a number from a usize.
    pub fn usize(x: usize) -> Json {
        Json::Num(x as f64)
    }

    /// Object field lookup (None on non-objects / missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload as u64, if this is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(x) if *x >= 0.0 && x.fract() == 0.0 && *x <= (1u64 << 53) as f64 => {
                Some(*x as u64)
            }
            _ => None,
        }
    }

    /// The numeric payload as usize (via [`Json::as_u64`]).
    pub fn as_usize(&self) -> Option<usize> {
        self.as_u64().map(|x| x as usize)
    }

    /// The array elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serialize compactly (no whitespace). Integers below 2^53 are
    /// emitted without a fractional part, so `u64` counters round-trip
    /// textually.
    pub fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(x) => {
                if x.fract() == 0.0 && x.abs() <= (1u64 << 53) as f64 {
                    let _ = write!(out, "{}", *x as i64);
                } else {
                    let _ = write!(out, "{x}");
                }
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Serialize compactly into a fresh string.
    pub fn to_compact(&self) -> String {
        let mut s = String::new();
        self.write(&mut s);
        s
    }

    /// Parse one JSON value from the full input (trailing non-whitespace
    /// is an error).
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let bytes = input.as_bytes();
        let mut p = Parser { bytes, pos: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != bytes.len() {
            return Err(p.err("trailing characters after value"));
        }
        Ok(v)
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure with a byte offset into the input.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset where parsing failed.
    pub pos: usize,
    /// What went wrong.
    pub msg: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json parse error at byte {}: {}", self.pos, self.msg)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError {
            pos: self.pos,
            msg: msg.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("non-ascii \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogate pairs are not needed for the store's
                            // ascii identifiers; map them to U+FFFD.
                            s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar. The input arrived as a
                    // &str and every branch advances by whole scalars, so
                    // decoding should always succeed — but a scanner bug
                    // must surface as a parse error on the offending
                    // input, never as a panic inside merge/report. Decode
                    // from a ≤ 4-byte window (one scalar is at most 4
                    // bytes) so string scanning stays O(n): validating
                    // the whole remaining document per character would be
                    // quadratic in the artifact size.
                    let rest = &self.bytes[self.pos..];
                    let window = &rest[..rest.len().min(4)];
                    let c = match std::str::from_utf8(window) {
                        Ok(text) => text.chars().next(),
                        // A trailing *incomplete* scalar at the window
                        // edge still yields the valid prefix.
                        Err(e) => std::str::from_utf8(&window[..e.valid_up_to()])
                            .ok()
                            .and_then(|text| text.chars().next()),
                    };
                    let Some(c) = c else {
                        return Err(self.err("invalid utf-8 inside string"));
                    };
                    s.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+')) {
            self.pos += 1;
        }
        // A '-' inside an exponent ("1e-3") is consumed by the loop above
        // only via this extra check:
        if matches!(self.bytes.get(self.pos.wrapping_sub(1)), Some(b'e' | b'E'))
            && self.peek() == Some(b'-')
        {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        // The scanned range is ASCII by construction; fail as a parse
        // error rather than a panic all the same.
        std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("bad number"))?
            .parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("bad number"))
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_compact() {
        let v = Json::obj(vec![
            ("name", Json::str("scaling")),
            ("n", Json::u64(65536)),
            ("ok", Json::Bool(true)),
            ("none", Json::Null),
            ("rows", Json::Arr(vec![Json::u64(1), Json::u64(2)])),
        ]);
        let s = v.to_compact();
        assert_eq!(
            s,
            r#"{"name":"scaling","n":65536,"ok":true,"none":null,"rows":[1,2]}"#
        );
        assert_eq!(Json::parse(&s).unwrap(), v);
    }

    #[test]
    fn integers_round_trip_textually() {
        for x in [0u64, 1, 13, 65536, (1 << 53)] {
            let s = Json::u64(x).to_compact();
            assert_eq!(s, x.to_string());
            assert_eq!(Json::parse(&s).unwrap().as_u64(), Some(x));
        }
    }

    #[test]
    fn string_escapes() {
        let v = Json::str("a\"b\\c\nd\te\u{1}");
        let s = v.to_compact();
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\\te\\u0001\"");
        assert_eq!(Json::parse(&s).unwrap(), v);
    }

    #[test]
    fn parses_whitespace_and_nesting() {
        let v = Json::parse(" { \"a\" : [ 1 , { \"b\" : -2.5 } ] } ").unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 2);
        let inner = &v.get("a").unwrap().as_arr().unwrap()[1];
        assert_eq!(inner.get("b"), Some(&Json::Num(-2.5)));
    }

    #[test]
    fn parse_errors_are_positioned() {
        assert!(Json::parse("{\"a\":}").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("tru").is_err());
        assert!(Json::parse("1 2").is_err());
        assert!(Json::parse("\"open").is_err());
    }

    #[test]
    fn exponent_numbers_parse() {
        assert_eq!(Json::parse("1e3").unwrap(), Json::Num(1000.0));
        assert_eq!(Json::parse("2.5e-2").unwrap(), Json::Num(0.025));
        assert_eq!(Json::parse("-4").unwrap(), Json::Num(-4.0));
    }

    #[test]
    fn as_u64_rejects_fractions_and_negatives() {
        assert_eq!(Json::Num(1.5).as_u64(), None);
        assert_eq!(Json::Num(-1.0).as_u64(), None);
        assert_eq!(Json::Num(7.0).as_u64(), Some(7));
    }
}
