//! The on-disk side of the campaign subsystem: the JSON Lines result
//! store, shard-file discovery, and the `BENCH_*.json` artifact.
//!
//! Layout: a campaign named `scaling` persists under a store directory
//! (default `bench-results/`) as
//!
//! * `scaling.jsonl` — the unsharded (or merged) result store, one
//!   [`CampaignRow`] object per line, appended as chunks complete, and
//! * `scaling.shard-I-of-K.jsonl` — one store per shard of a fan-out run.
//!
//! Every reader tolerates all of these at once: resume and merge collect
//! rows from *all* store files of the campaign (plus an existing artifact)
//! and deduplicate by spec hash, so shards, partial runs, and merged
//! stores compose freely.

use std::collections::HashMap;
use std::fs;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};

use super::json::Json;
use super::CampaignRow;

/// Store file for one campaign (optionally one shard of it) inside `dir`.
pub fn store_path(dir: &Path, name: &str, shard: Option<(usize, usize)>) -> PathBuf {
    match shard {
        None => dir.join(format!("{name}.jsonl")),
        Some((i, k)) => dir.join(format!("{name}.shard-{i}-of-{k}.jsonl")),
    }
}

/// Default artifact path for a campaign: `BENCH_{name}.json` in the
/// current directory (run the binary from the repo root to land it there).
pub fn artifact_path(name: &str) -> PathBuf {
    PathBuf::from(format!("BENCH_{name}.json"))
}

/// All existing store files of a campaign inside `dir` (the unsharded
/// store plus every shard store), in sorted order for determinism.
pub fn store_files(dir: &Path, name: &str) -> io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    if !dir.exists() {
        return Ok(files);
    }
    let base = format!("{name}.jsonl");
    let shard_prefix = format!("{name}.shard-");
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        let Some(file) = path.file_name().and_then(|s| s.to_str()) else {
            continue;
        };
        if file == base || (file.starts_with(&shard_prefix) && file.ends_with(".jsonl")) {
            files.push(path);
        }
    }
    files.sort();
    Ok(files)
}

/// Read one JSON Lines store file into rows. Blank lines are skipped;
/// a malformed line is a hard error (a truncated final line from a killed
/// run should be repaired by deleting it, not silently dropped).
pub fn read_rows(path: &Path) -> io::Result<Vec<CampaignRow>> {
    let text = fs::read_to_string(path)?;
    let mut rows = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let value = Json::parse(line)
            .map_err(|e| io::Error::other(format!("{}:{}: {e}", path.display(), lineno + 1)))?;
        let row = CampaignRow::from_json(&value)
            .map_err(|e| io::Error::other(format!("{}:{}: {e}", path.display(), lineno + 1)))?;
        rows.push(row);
    }
    Ok(rows)
}

/// Append rows to a store file (creating it and its directory on first
/// use). Each row is written as one compact JSON line and flushed, so a
/// killed run loses at most the in-flight chunk.
pub fn append_rows(path: &Path, rows: &[CampaignRow]) -> io::Result<()> {
    if rows.is_empty() {
        return Ok(());
    }
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            fs::create_dir_all(parent)?;
        }
    }
    let mut file = fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)?;
    let mut buf = String::new();
    for row in rows {
        row.to_store_json().write(&mut buf);
        buf.push('\n');
    }
    file.write_all(buf.as_bytes())?;
    file.flush()
}

/// Atomically replace a store file with exactly these rows: write to a
/// sibling temp file, then rename over the target, so a crash mid-write
/// can never lose the existing store.
pub fn rewrite_rows(path: &Path, rows: &[CampaignRow]) -> io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            fs::create_dir_all(parent)?;
        }
    }
    let mut buf = String::new();
    for row in rows {
        row.to_store_json().write(&mut buf);
        buf.push('\n');
    }
    let tmp = path.with_extension("jsonl.tmp");
    fs::write(&tmp, buf)?;
    fs::rename(&tmp, path)
}

/// Collect every known row of a campaign — all store files in `dir` plus
/// (if it exists) a previously emitted artifact — deduplicated by spec
/// hash. Store rows win over artifact rows (they carry the extra
/// merge/gap detail the artifact schema omits).
pub fn collect_rows(
    dir: &Path,
    name: &str,
    artifact: Option<&Path>,
) -> io::Result<HashMap<String, CampaignRow>> {
    let mut by_hash: HashMap<String, CampaignRow> = HashMap::new();
    for path in store_files(dir, name)? {
        for row in read_rows(&path)? {
            if let Some(hash) = row.spec_hash() {
                by_hash.entry(hash).or_insert(row);
            }
        }
    }
    if let Some(path) = artifact {
        if path.exists() {
            for row in read_artifact(path)?.1 {
                if let Some(hash) = row.spec_hash() {
                    by_hash.entry(hash).or_insert(row);
                }
            }
        }
    }
    Ok(by_hash)
}

/// Write the `BENCH_{name}.json` artifact: the stable machine-readable
/// schema `{campaign, commit, date, rows: [{family, n, n_actual, seed,
/// strategy, scheduler, rounds, wall_us, outcome}]}`, with `rows` in the
/// order given (callers pass canonical grid order, so emission is
/// deterministic).
pub fn write_artifact(
    path: &Path,
    name: &str,
    commit: &str,
    date: &str,
    rows: &[&CampaignRow],
) -> io::Result<()> {
    // Pretty-ish: one row per line so artifact diffs review like the store.
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!(
        "  \"campaign\": {},\n",
        Json::str(name).to_compact()
    ));
    out.push_str(&format!(
        "  \"commit\": {},\n",
        Json::str(commit).to_compact()
    ));
    out.push_str(&format!("  \"date\": {},\n", Json::str(date).to_compact()));
    out.push_str("  \"rows\": [\n");
    for (i, row) in rows.iter().enumerate() {
        out.push_str("    ");
        out.push_str(&row.to_artifact_json().to_compact());
        out.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    fs::write(path, out)
}

/// Read an artifact back: `(header (campaign, commit, date), rows)`.
pub fn read_artifact(path: &Path) -> io::Result<((String, String, String), Vec<CampaignRow>)> {
    let text = fs::read_to_string(path)?;
    let doc =
        Json::parse(&text).map_err(|e| io::Error::other(format!("{}: {e}", path.display())))?;
    let field = |key: &str| -> String {
        doc.get(key)
            .and_then(|v| v.as_str())
            .unwrap_or("unknown")
            .to_string()
    };
    let rows = doc
        .get("rows")
        .and_then(|v| v.as_arr())
        .ok_or_else(|| io::Error::other(format!("{}: missing rows array", path.display())))?
        .iter()
        .map(CampaignRow::from_json)
        .collect::<Result<Vec<_>, _>>()
        .map_err(|e| io::Error::other(format!("{}: {e}", path.display())))?;
    Ok(((field("campaign"), field("commit"), field("date")), rows))
}

/// Short commit hash of HEAD, or `"unknown"` outside a git checkout.
pub fn git_commit() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short=12", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Today's UTC date as `YYYY-MM-DD`, derived from the system clock with
/// the standard civil-from-days conversion (no chrono in the workspace).
pub fn today_utc() -> String {
    let secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let (y, m, d) = civil_from_days((secs / 86_400) as i64);
    format!("{y:04}-{m:02}-{d:02}")
}

/// Days-since-1970-01-01 to (year, month, day), Howard Hinnant's
/// `civil_from_days` algorithm.
fn civil_from_days(z: i64) -> (i64, u32, u32) {
    let z = z + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = z - era * 146_097;
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32;
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32;
    (if m <= 2 { y + 1 } else { y }, m, d)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn civil_dates() {
        assert_eq!(civil_from_days(0), (1970, 1, 1));
        assert_eq!(civil_from_days(19_723), (2024, 1, 1));
        assert_eq!(civil_from_days(20_663), (2026, 7, 29));
        assert_eq!(civil_from_days(-1), (1969, 12, 31));
    }

    #[test]
    fn store_paths() {
        let dir = Path::new("bench-results");
        assert_eq!(store_path(dir, "scaling", None), dir.join("scaling.jsonl"));
        assert_eq!(
            store_path(dir, "scaling", Some((1, 4))),
            dir.join("scaling.shard-1-of-4.jsonl")
        );
        assert_eq!(
            artifact_path("scaling"),
            PathBuf::from("BENCH_scaling.json")
        );
    }
}
