//! Campaign-scale experiment sweeps: sharded, resumable, persistent.
//!
//! A [`CampaignSpec`] names a *grid* of [`ScenarioSpec`]s — the cartesian
//! product of workload families × an n-ladder × seeds × registry
//! strategies (each strategy with its own size cap, so diameter-bound
//! baselines don't hold the 65k paper runs hostage) × activation
//! schedulers (FSYNC-only for ordinary campaigns; the `robustness`
//! campaign sweeps the SSYNC registry). The grid order is canonical
//! (family-major, then size, seed, strategy, scheduler), every spec has a
//! stable 64-bit FNV-1a hash ([`spec_hash`]) over its canonical encoding
//! ([`spec_id`]), and everything downstream keys off that hash:
//!
//! * **Sharding** — [`CampaignSpec::shard`] deals the grid round-robin
//!   over `k` disjoint, covering shards for CI fan-out (`--shard i/k`).
//! * **Resume** — [`run`] skips every spec whose hash already has a row in
//!   any store file of the campaign (or in a previously emitted artifact),
//!   so re-running a finished campaign executes zero scenarios.
//! * **Persistence** — results land as JSON Lines ([`store`]) chunk by
//!   chunk, and a completed grid is exported as the `BENCH_{name}.json`
//!   artifact in the stable schema `{campaign, commit, date, rows}`.
//!
//! Execution itself is [`run_batch_with`] — the same self-balancing
//! scoped-thread executor the tables use — over the pending specs only.
//! Campaign runs always use the headless engine path (no per-round report
//! retention), so a 65 536-robot run costs O(n) memory.

pub mod json;
pub mod store;

use std::collections::HashSet;
use std::io;
use std::path::{Path, PathBuf};

use crate::scenario::{run_batch_with, BatchOptions, LimitPolicy, ScenarioSpec, StrategyKind};
use crate::table::Table;
use chain_sim::SchedulerKind;
use geom_core::GeometryKind;
use json::Json;
use workloads::Family;

/// One strategy of a campaign, with the largest `n` it participates in.
///
/// The cap keeps grids honest about asymptotics: the paper's algorithm is
/// O(n) rounds and sweeps the full ladder, while e.g. the stand control
/// only exists to calibrate the stall detector and stops at small sizes.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct StrategySweep {
    /// The registry strategy to run.
    pub kind: StrategyKind,
    /// Largest requested `n` this strategy is swept to (inclusive).
    pub max_n: usize,
}

impl StrategySweep {
    /// Sweep `kind` up to and including requested size `max_n`.
    pub fn up_to(kind: StrategyKind, max_n: usize) -> Self {
        StrategySweep { kind, max_n }
    }
}

/// A named grid of scenarios: the unit the campaign runner executes,
/// shards, resumes, and reports on.
#[derive(Clone, Debug)]
pub struct CampaignSpec {
    /// Campaign name — store files are `{name}.jsonl` /
    /// `{name}.shard-i-of-k.jsonl`, the artifact is `BENCH_{name}.json`.
    pub name: String,
    /// Workload families on the grid (row groups of the report).
    pub families: Vec<Family>,
    /// Requested sizes (the n-ladder), ascending.
    pub sizes: Vec<usize>,
    /// Seeds per (family, size, strategy) cell.
    pub seeds: Vec<u64>,
    /// Strategies with their per-strategy size caps (report columns).
    pub strategies: Vec<StrategySweep>,
    /// Activation schedules every (family, size, seed, strategy) cell is
    /// swept over. `[Fsync]` — the paper's model — for ordinary
    /// campaigns; the `robustness` campaign sweeps the SSYNC registry.
    /// Open-chain strategies are FSYNC-only and skip SSYNC combinations.
    pub schedulers: Vec<SchedulerKind>,
    /// Geometry backends the grid is swept over. `[Grid]` for ordinary
    /// campaigns; the `euclid` campaign sweeps both. The grid pairs each
    /// geometry only with the strategies that run on it (`euclid-chain`
    /// on the continuous backend, everything else on the grid) and keeps
    /// the continuous backend FSYNC-only.
    pub geometries: Vec<GeometryKind>,
}

impl CampaignSpec {
    /// Look up a built-in campaign by name.
    ///
    /// * `scaling` — the rounds-vs-n scaling campaign behind
    ///   `BENCH_scaling.json`: three structurally distinct families
    ///   (rectangle, skyline, random-loop), an n-ladder from 64 to 65 536,
    ///   the paper's algorithm against every closed-chain registry
    ///   baseline (each baseline capped where its round complexity stops
    ///   being affordable), two seeds. `quick` shrinks the ladder to
    ///   {64, 256} × one seed — a strict subset of the full grid, so quick
    ///   results resume into a full run.
    /// * `robustness` — the scheduler sweep behind T11/T12: the same
    ///   three families × the closed-chain strategies (including
    ///   `paper-ssync`, the guarded SSYNC repair) × every scheduler of
    ///   [`SchedulerKind::SWEEP`], measuring which strategies survive
    ///   semi-synchrony and at what round-count cost.
    pub fn named(name: &str, quick: bool) -> Option<CampaignSpec> {
        match name {
            "scaling" => Some(Self::scaling(quick)),
            "robustness" => Some(Self::robustness(quick)),
            "euclid" => Some(Self::euclid(quick)),
            _ => None,
        }
    }

    /// Names [`CampaignSpec::named`] accepts (for CLI error messages).
    pub const BUILTIN_NAMES: [&'static str; 3] = ["scaling", "robustness", "euclid"];

    /// The built-in scaling campaign (see [`CampaignSpec::named`]).
    pub fn scaling(quick: bool) -> CampaignSpec {
        let (sizes, seeds): (Vec<usize>, Vec<u64>) = if quick {
            (vec![64, 256], vec![0])
        } else {
            (vec![64, 256, 1024, 4096, 16384, 65536], vec![0, 1])
        };
        CampaignSpec {
            name: "scaling".to_string(),
            families: vec![Family::Rectangle, Family::Skyline, Family::RandomLoop],
            sizes,
            seeds,
            strategies: vec![
                StrategySweep::up_to(StrategyKind::paper(), 65536),
                StrategySweep::up_to(StrategyKind::GlobalVision, 65536),
                StrategySweep::up_to(StrategyKind::CompassSe, 16384),
                StrategySweep::up_to(StrategyKind::NaiveLocal, 4096),
                StrategySweep::up_to(StrategyKind::Stand, 256),
            ],
            schedulers: vec![SchedulerKind::Fsync],
            geometries: vec![GeometryKind::Grid],
        }
    }

    /// The built-in geometry-comparison campaign: the paper's algorithm on
    /// the grid next to `euclid-chain` on the continuous backend, same
    /// families, same n-ladder, same seeds — the data behind the grid-vs-
    /// Euclidean rounds/n table. Both strategies are linear-time, so the
    /// ladder sweeps the full range.
    pub fn euclid(quick: bool) -> CampaignSpec {
        let (sizes, seeds): (Vec<usize>, Vec<u64>) = if quick {
            (vec![64, 256], vec![0])
        } else {
            (vec![64, 256, 1024, 4096, 16384], vec![0, 1])
        };
        CampaignSpec {
            name: "euclid".to_string(),
            families: vec![Family::Rectangle, Family::Skyline, Family::RandomLoop],
            sizes,
            seeds,
            strategies: vec![
                StrategySweep::up_to(StrategyKind::paper(), 16384),
                StrategySweep::up_to(StrategyKind::EuclidChain, 16384),
            ],
            schedulers: vec![SchedulerKind::Fsync],
            geometries: vec![GeometryKind::Grid, GeometryKind::Euclid],
        }
    }

    /// The built-in robustness campaign (see [`CampaignSpec::named`]):
    /// every closed-chain strategy under every scheduler of
    /// [`SchedulerKind::SWEEP`]. Sizes stay moderate — SSYNC runs pay the
    /// scheduler's slowdown factor, and the interesting signal (who breaks
    /// the chain, who merely slows down) saturates early.
    pub fn robustness(quick: bool) -> CampaignSpec {
        let (sizes, seeds): (Vec<usize>, Vec<u64>) = if quick {
            (vec![64], vec![0])
        } else {
            (vec![64, 256, 1024], vec![0, 1])
        };
        CampaignSpec {
            name: "robustness".to_string(),
            families: vec![Family::Rectangle, Family::Skyline, Family::RandomLoop],
            sizes,
            seeds,
            strategies: vec![
                StrategySweep::up_to(StrategyKind::paper(), 1024),
                StrategySweep::up_to(StrategyKind::paper_ssync(), 1024),
                StrategySweep::up_to(StrategyKind::GlobalVision, 1024),
                StrategySweep::up_to(StrategyKind::CompassSe, 1024),
                StrategySweep::up_to(StrategyKind::NaiveLocal, 1024),
            ],
            schedulers: SchedulerKind::SWEEP.to_vec(),
            geometries: vec![GeometryKind::Grid],
        }
    }

    /// The full grid in canonical order: family-major, then size, then
    /// seed, then strategy (registry order), then scheduler, then
    /// geometry — strategies filtered by their size cap, open-chain
    /// strategies filtered to FSYNC, and each geometry paired only with
    /// the strategies that run on it (`euclid-chain` on the continuous
    /// backend — FSYNC-only — and every other strategy on the grid).
    /// Everything downstream — sharding, resume bookkeeping, store order,
    /// artifact row order — derives from this one ordering.
    pub fn grid(&self) -> Vec<ScenarioSpec> {
        let mut specs = Vec::new();
        for &family in &self.families {
            for &n in &self.sizes {
                for &seed in &self.seeds {
                    for sweep in &self.strategies {
                        if n > sweep.max_n {
                            continue;
                        }
                        for &sched in &self.schedulers {
                            if sweep.kind.is_open_chain() && !sched.is_fsync() {
                                continue;
                            }
                            for &geom in &self.geometries {
                                let spec = ScenarioSpec::strategy(family, n, seed, sweep.kind)
                                    .with_scheduler(sched)
                                    .with_geometry(geom);
                                if spec.geometry_error().is_some() {
                                    continue;
                                }
                                specs.push(spec);
                            }
                        }
                    }
                }
            }
        }
        specs
    }

    /// Shard `i` of `k`: every `k`-th grid entry starting at `i`
    /// (round-robin). The `k` shards are pairwise disjoint and cover the
    /// grid, and round-robin dealing spreads the expensive large-n specs
    /// evenly across shards.
    ///
    /// # Panics
    /// If `i >= k` or `k == 0` — the CLI validates `--shard i/k` first.
    pub fn shard(&self, i: usize, k: usize) -> Vec<ScenarioSpec> {
        assert!(
            k > 0 && i < k,
            "shard index {i} out of range for {k} shards"
        );
        self.grid()
            .into_iter()
            .enumerate()
            .filter(|(idx, _)| idx % k == i)
            .map(|(_, s)| s)
            .collect()
    }
}

/// Canonical textual encoding of a spec — the preimage of [`spec_hash`].
///
/// Versioned so a future encoding change invalidates old stores loudly
/// (every hash changes) instead of silently colliding. `v2` added the
/// `sched=` axis when the engine grew SSYNC schedulers; `v3` added the
/// `geom=` axis with the continuous Euclidean backend. Each bump is
/// deliberate: every older hash on disk is invalid, but stores and
/// artifacts survive, because readers recompute hashes from the row's
/// identity fields (legacy rows default to `sched=fsync` and
/// `geom=grid`, which is what they measured). Paper kinds encode their
/// full [`gathering_core::GatherConfig`], so an ablated config never
/// collides with the canonical one.
pub fn spec_id(spec: &ScenarioSpec) -> String {
    let cfg = match spec.strategy {
        StrategyKind::Paper(c) | StrategyKind::PaperAudited(c) | StrategyKind::PaperSsync(c) => {
            format!(
                "L{},V{},K{},opc{},c2{}",
                c.l_period,
                c.view,
                c.max_merge_k,
                u8::from(c.op_c_walk),
                u8::from(c.cond2_guard)
            )
        }
        _ => "-".to_string(),
    };
    let limits = match spec.limits {
        LimitPolicy::Auto => "auto".to_string(),
        LimitPolicy::Fixed(l) => format!("fixed:{}:{}", l.max_rounds, l.stall_window),
    };
    format!(
        "v3|family={}|n={}|seed={}|strategy={}|cfg={}|sched={}|geom={}|limits={}",
        spec.family.name(),
        spec.n,
        spec.seed,
        spec.strategy.name(),
        cfg,
        spec.scheduler.name(),
        spec.geometry.name(),
        limits
    )
}

/// Stable 64-bit FNV-1a hash of [`spec_id`], rendered as 16 lowercase hex
/// digits. This is the key of the result store: a row whose hash matches a
/// grid entry marks that entry as done. Golden values are pinned in
/// `tests/campaign.rs` — changing this function invalidates every store
/// on disk and must be deliberate.
pub fn spec_hash(spec: &ScenarioSpec) -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in spec_id(spec).bytes() {
        h ^= byte as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    format!("{h:016x}")
}

/// One persisted campaign result — the row type of both the JSON Lines
/// store and the artifact's `rows` array.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CampaignRow {
    /// Workload family name ([`Family::name`]).
    pub family: String,
    /// *Requested* size — the grid coordinate (families quantize, so the
    /// generated chain differs; resume hashing uses this value).
    pub n: usize,
    /// Actual generated chain length (plot scaling curves against this).
    pub n_actual: usize,
    /// Generator seed.
    pub seed: u64,
    /// Registry strategy name ([`StrategyKind::name`]).
    pub strategy: String,
    /// Activation scheduler name ([`SchedulerKind::name`]); `fsync` for
    /// every row written before the scheduler axis existed.
    pub scheduler: String,
    /// Geometry backend name ([`GeometryKind::name`]); `grid` for every
    /// row written before the geometry axis existed.
    pub geometry: String,
    /// Rounds executed (rounds-to-gather when `outcome == "gathered"`).
    pub rounds: u64,
    /// Last round with any movement or merge (min-max makespan; 0 for
    /// rows written before the objective existed or paths that do not
    /// track it).
    pub makespan: u64,
    /// Maximum per-robot cumulative travel in integer milli-units
    /// (`round(max_travel × 1000)` — integral so rows stay `Eq` and the
    /// store stays byte-stable). `None` on paths that do not track travel
    /// and on rows written before the objective existed.
    pub max_travel_milli: Option<u64>,
    /// Wall-clock microseconds of this scenario alone (the one field that
    /// is *not* a pure function of the spec). Microseconds, not
    /// milliseconds: sub-millisecond cells used to truncate to
    /// `wall_ms: 0` and corrupt every throughput aggregate downstream.
    pub wall_us: u64,
    /// Outcome label: `gathered`, `round-limit`, `stalled`, or
    /// `chain-broken`.
    pub outcome: String,
    /// Robots removed by merges (store detail; 0 when re-ingested from an
    /// artifact, which omits it).
    pub merges: usize,
    /// Longest mergeless gap in rounds (store detail, like `merges`).
    pub longest_gap: u64,
}

impl CampaignRow {
    /// Fold a completed scenario into a row. The spec must be a canonical
    /// registry spec (campaign grids only produce those).
    pub fn from_result(r: &crate::scenario::ScenarioResult) -> CampaignRow {
        use chain_sim::Outcome;
        let outcome = match r.outcome {
            Outcome::Gathered { .. } => "gathered",
            Outcome::RoundLimit { .. } => "round-limit",
            Outcome::Stalled { .. } => "stalled",
            Outcome::ChainBroken { .. } => "chain-broken",
        };
        CampaignRow {
            family: r.spec.family.name().to_string(),
            n: r.spec.n,
            n_actual: r.n,
            seed: r.spec.seed,
            strategy: r.spec.strategy.name().to_string(),
            scheduler: r.spec.scheduler.name(),
            geometry: r.spec.geometry.name().to_string(),
            rounds: r.outcome.rounds(),
            makespan: r.makespan,
            max_travel_milli: r.max_travel.map(|t| (t * 1000.0).round() as u64),
            wall_us: r.wall.as_micros() as u64,
            outcome: outcome.to_string(),
            merges: r.merges_total,
            longest_gap: r.longest_gap,
        }
    }

    /// The row's wall time in (fractional) milliseconds, derived from the
    /// stored microseconds — what human-facing reports print.
    pub fn wall_ms(&self) -> f64 {
        self.wall_us as f64 / 1000.0
    }

    /// Reconstruct the canonical [`ScenarioSpec`] this row answers for,
    /// or `None` if its family/strategy/scheduler names are unknown to
    /// this build (e.g. a store written by a newer version).
    pub fn to_spec(&self) -> Option<ScenarioSpec> {
        let family = Family::from_name(&self.family)?;
        let strategy = StrategyKind::from_name(&self.strategy)?;
        let scheduler = SchedulerKind::from_name(&self.scheduler)?;
        let geometry = GeometryKind::from_name(&self.geometry)?;
        Some(
            ScenarioSpec::strategy(family, self.n, self.seed, strategy)
                .with_scheduler(scheduler)
                .with_geometry(geometry),
        )
    }

    /// The row's resume key: [`spec_hash`] of its reconstructed spec.
    pub fn spec_hash(&self) -> Option<String> {
        self.to_spec().map(|s| spec_hash(&s))
    }

    /// The JSON Lines representation (full detail, plus the hash as a
    /// leading informational field for grep-ability — readers recompute
    /// it from the identity fields rather than trusting it).
    pub fn to_store_json(&self) -> Json {
        let mut pairs = vec![("spec_hash", Json::str(self.spec_hash().unwrap_or_default()))];
        pairs.extend(self.identity_pairs());
        pairs.extend([
            ("merges", Json::usize(self.merges)),
            ("longest_gap", Json::u64(self.longest_gap)),
        ]);
        Json::obj(pairs)
    }

    /// The artifact representation — exactly the stable schema fields.
    pub fn to_artifact_json(&self) -> Json {
        Json::obj(self.identity_pairs())
    }

    fn identity_pairs(&self) -> Vec<(&'static str, Json)> {
        let mut pairs = vec![
            ("family", Json::str(&self.family)),
            ("n", Json::usize(self.n)),
            ("n_actual", Json::usize(self.n_actual)),
            ("seed", Json::u64(self.seed)),
            ("strategy", Json::str(&self.strategy)),
            ("scheduler", Json::str(&self.scheduler)),
            ("geometry", Json::str(&self.geometry)),
            ("rounds", Json::u64(self.rounds)),
            ("makespan", Json::u64(self.makespan)),
        ];
        if let Some(milli) = self.max_travel_milli {
            pairs.push(("max_travel_milli", Json::u64(milli)));
        }
        pairs.extend([
            ("wall_us", Json::u64(self.wall_us)),
            ("outcome", Json::str(&self.outcome)),
        ]);
        pairs
    }

    /// Parse a row from either representation. The store-only detail
    /// fields (`merges`, `longest_gap`, `n_actual`) are optional so
    /// artifact rows re-ingest for resume; legacy spellings are honored
    /// so stores and artifacts written before an axis existed keep
    /// resuming — a missing `scheduler` means `fsync`, a missing
    /// `geometry` means `grid`, a missing `makespan` is 0, a missing
    /// `max_travel_milli` stays unmeasured, and a legacy `wall_ms` is
    /// widened to microseconds.
    pub fn from_json(v: &Json) -> Result<CampaignRow, String> {
        let s = |key: &str| -> Result<String, String> {
            v.get(key)
                .and_then(|x| x.as_str())
                .map(str::to_string)
                .ok_or_else(|| format!("missing string field '{key}'"))
        };
        let u = |key: &str| -> Result<u64, String> {
            v.get(key)
                .and_then(|x| x.as_u64())
                .ok_or_else(|| format!("missing integer field '{key}'"))
        };
        let n = u("n")? as usize;
        let wall_us = match v.get("wall_us").and_then(|x| x.as_u64()) {
            Some(us) => us,
            None => match v.get("wall_ms").and_then(|x| x.as_u64()) {
                Some(ms) => ms.saturating_mul(1000),
                None => {
                    return Err("missing integer field 'wall_us' (or legacy 'wall_ms')".to_string())
                }
            },
        };
        Ok(CampaignRow {
            family: s("family")?,
            n,
            n_actual: v.get("n_actual").and_then(|x| x.as_usize()).unwrap_or(n),
            seed: u("seed")?,
            strategy: s("strategy")?,
            scheduler: v
                .get("scheduler")
                .and_then(|x| x.as_str())
                .unwrap_or("fsync")
                .to_string(),
            geometry: v
                .get("geometry")
                .and_then(|x| x.as_str())
                .unwrap_or("grid")
                .to_string(),
            rounds: u("rounds")?,
            makespan: v.get("makespan").and_then(|x| x.as_u64()).unwrap_or(0),
            max_travel_milli: v.get("max_travel_milli").and_then(|x| x.as_u64()),
            wall_us,
            outcome: s("outcome")?,
            merges: v.get("merges").and_then(|x| x.as_usize()).unwrap_or(0),
            longest_gap: v.get("longest_gap").and_then(|x| x.as_u64()).unwrap_or(0),
        })
    }
}

/// Knobs for [`run`].
#[derive(Clone, Debug)]
pub struct RunOptions {
    /// Execute only shard `(i, k)` of the grid; `None` runs it all.
    pub shard: Option<(usize, usize)>,
    /// Store directory (default `bench-results/`).
    pub dir: PathBuf,
    /// Worker threads for the batch executor (`0` = one per core).
    pub threads: usize,
    /// Artifact path; `None` suppresses artifact emission (tests, shards
    /// that will be merged later).
    pub artifact: Option<PathBuf>,
    /// Specs per executor batch between store appends — the resume
    /// granularity (a killed run loses at most one chunk).
    pub chunk: usize,
    /// Print per-chunk progress to stderr.
    pub progress: bool,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            shard: None,
            dir: PathBuf::from("bench-results"),
            threads: 0,
            artifact: None,
            chunk: 32,
            progress: false,
        }
    }
}

/// What [`run`] did.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// Grid (or shard) size this invocation was responsible for.
    pub assigned: usize,
    /// Specs skipped because a stored row already covered them.
    pub resumed: usize,
    /// Specs actually executed by this invocation.
    pub executed: usize,
    /// Store file this invocation appended to.
    pub store: PathBuf,
    /// Artifact written (only when the *full* grid is complete and an
    /// artifact path was configured).
    pub artifact: Option<PathBuf>,
}

/// Execute a campaign (or one shard of it), resuming from every store
/// file and artifact already on disk, appending new rows chunk by chunk,
/// and emitting the artifact once the full grid is covered.
pub fn run(spec: &CampaignSpec, opts: &RunOptions) -> io::Result<RunReport> {
    let assigned = match opts.shard {
        None => spec.grid(),
        Some((i, k)) => spec.shard(i, k),
    };
    let artifact = opts.artifact.as_deref();
    let done: HashSet<String> = store::collect_rows(&opts.dir, &spec.name, artifact)?
        .into_keys()
        .collect();
    let pending: Vec<ScenarioSpec> = assigned
        .iter()
        .filter(|s| !done.contains(&spec_hash(s)))
        .copied()
        .collect();
    let store_path = store::store_path(&opts.dir, &spec.name, opts.shard);

    let mut executed = 0usize;
    for chunk in pending.chunks(opts.chunk.max(1)) {
        let results = run_batch_with(chunk, BatchOptions::threads(opts.threads));
        let rows: Vec<CampaignRow> = results.iter().map(CampaignRow::from_result).collect();
        store::append_rows(&store_path, &rows)?;
        executed += rows.len();
        if opts.progress {
            eprintln!(
                "campaign {}: {executed}/{} executed ({} resumed)",
                spec.name,
                pending.len(),
                assigned.len() - pending.len(),
            );
        }
    }

    let artifact_written = match artifact {
        Some(path) => emit_artifact_if_complete(spec, &opts.dir, path)?,
        None => None,
    };
    Ok(RunReport {
        assigned: assigned.len(),
        resumed: assigned.len() - pending.len(),
        executed,
        store: store_path,
        artifact: artifact_written,
    })
}

/// Write `BENCH_{name}.json` if every grid entry has a row on disk;
/// returns the path when written. Rows are emitted in canonical grid
/// order, so a sharded-then-merged campaign and an unsharded run produce
/// identical artifacts (up to the measured `wall_us`).
///
/// Never shrinks: if the existing artifact's rows are a strict superset
/// of what would be written (a `--quick` run next to a completed full
/// campaign — the quick grid is a subset of the full grid), the richer
/// artifact is kept untouched and `None` is returned.
pub fn emit_artifact_if_complete(
    spec: &CampaignSpec,
    dir: &Path,
    artifact: &Path,
) -> io::Result<Option<PathBuf>> {
    let rows = store::collect_rows(dir, &spec.name, Some(artifact))?;
    let grid = spec.grid();
    let ordered: Vec<&CampaignRow> = grid
        .iter()
        .filter_map(|s| rows.get(&spec_hash(s)))
        .collect();
    if ordered.len() < grid.len() {
        return Ok(None);
    }
    if artifact.exists() {
        let existing: HashSet<Option<String>> = store::read_artifact(artifact)?
            .1
            .iter()
            .map(CampaignRow::spec_hash)
            .collect();
        let shrinks = existing.len() > ordered.len()
            && ordered.iter().all(|r| existing.contains(&r.spec_hash()));
        if shrinks {
            return Ok(None);
        }
    }
    store::write_artifact(
        artifact,
        &spec.name,
        &store::git_commit(),
        &store::today_utc(),
        &ordered,
    )?;
    Ok(Some(artifact.to_path_buf()))
}

/// What [`merge`] found and wrote.
#[derive(Clone, Debug)]
pub struct MergeReport {
    /// Total grid entries of the campaign.
    pub grid: usize,
    /// Entries with a row in some store file / artifact.
    pub covered: usize,
    /// Merged store written (`{name}.jsonl`, canonical grid order).
    pub store: PathBuf,
    /// Artifact written, when coverage is complete.
    pub artifact: Option<PathBuf>,
}

/// Merge every store file (shards included) into the unsharded store
/// `{name}.jsonl`: rows of the current grid first, in canonical grid
/// order, then every other known row of the campaign (hash order) — a
/// `merge --quick` next to full-campaign results must never discard the
/// out-of-grid rows. The rewrite goes through a temp file + rename, so a
/// crash mid-merge cannot lose the store. Emits the artifact when the
/// grid is fully covered. Idempotent; shard files are left in place
/// (subsequent runs deduplicate by hash anyway).
pub fn merge(spec: &CampaignSpec, dir: &Path, artifact: Option<&Path>) -> io::Result<MergeReport> {
    let mut rows = store::collect_rows(dir, &spec.name, artifact)?;
    let grid = spec.grid();
    let mut ordered: Vec<CampaignRow> = grid
        .iter()
        .filter_map(|s| rows.remove(&spec_hash(s)))
        .collect();
    let covered = ordered.len();
    // Whatever is left belongs to a different grid of the same campaign
    // (e.g. the full ladder while merging --quick); keep it, stably.
    let mut extras: Vec<(String, CampaignRow)> = rows.drain().collect();
    extras.sort_by(|a, b| a.0.cmp(&b.0));
    ordered.extend(extras.into_iter().map(|(_, r)| r));
    let store_path = store::store_path(dir, &spec.name, None);
    store::rewrite_rows(&store_path, &ordered)?;
    let artifact_written = match artifact {
        Some(path) if covered == grid.len() => emit_artifact_if_complete(spec, dir, path)?,
        _ => None,
    };
    Ok(MergeReport {
        grid: grid.len(),
        covered,
        store: store_path,
        artifact: artifact_written,
    })
}

/// Per-strategy completion counts for [`status`].
#[derive(Clone, Debug)]
pub struct StatusReport {
    /// Total grid entries.
    pub grid: usize,
    /// Entries already covered by stored rows.
    pub covered: usize,
    /// `(strategy name, covered, total)` per campaign strategy.
    pub by_strategy: Vec<(String, usize, usize)>,
    /// `(shard index, covered, total)` per shard of the requested
    /// fan-out (one pseudo-shard covering the grid when none was
    /// requested) — what a CI fan-out consults to restart only the
    /// shards that still have work.
    pub by_shard: Vec<(usize, usize, usize)>,
    /// Spec hashes of the grid entries with no stored row yet, in
    /// canonical grid order — machine-readable "what's left" (the
    /// service and CI consume these instead of scraping markdown).
    pub missing: Vec<String>,
}

impl StatusReport {
    /// `true` when every grid entry has a stored result.
    pub fn complete(&self) -> bool {
        self.covered == self.grid
    }

    /// Machine-readable status: the schema behind `campaign status
    /// --json`. Stable field order; `missing` lists spec hashes in
    /// canonical grid order.
    pub fn to_json(&self, name: &str) -> Json {
        Json::obj(vec![
            ("campaign", Json::str(name)),
            ("grid", Json::usize(self.grid)),
            ("covered", Json::usize(self.covered)),
            ("complete", Json::Bool(self.complete())),
            (
                "strategies",
                Json::Arr(
                    self.by_strategy
                        .iter()
                        .map(|(strategy, done, total)| {
                            Json::obj(vec![
                                ("strategy", Json::str(strategy)),
                                ("done", Json::usize(*done)),
                                ("total", Json::usize(*total)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "shards",
                Json::Arr(
                    self.by_shard
                        .iter()
                        .map(|(shard, done, total)| {
                            Json::obj(vec![
                                ("shard", Json::usize(*shard)),
                                ("done", Json::usize(*done)),
                                ("total", Json::usize(*total)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "missing",
                Json::Arr(self.missing.iter().map(Json::str).collect()),
            ),
        ])
    }

    /// Render as a table (`campaign status` output).
    pub fn table(&self, name: &str) -> Table {
        let mut t = Table::new(
            "STATUS",
            &format!(
                "campaign '{name}': {}/{} scenarios done",
                self.covered, self.grid
            ),
            &["strategy", "done", "total", "state"],
        );
        for (strategy, done, total) in &self.by_strategy {
            t.row(vec![
                strategy.clone(),
                done.to_string(),
                total.to_string(),
                if done == total { "complete" } else { "pending" }.to_string(),
            ]);
        }
        t
    }
}

/// Compare the stores on disk against the campaign grid (one
/// pseudo-shard; see [`status_sharded`] for a per-shard breakdown).
pub fn status(
    spec: &CampaignSpec,
    dir: &Path,
    artifact: Option<&Path>,
) -> io::Result<StatusReport> {
    status_sharded(spec, dir, artifact, 1)
}

/// [`status`] with the grid viewed as `shards` round-robin shards
/// ([`CampaignSpec::shard`]): the report's `by_shard` counts coverage per
/// shard, so a CI fan-out can restart exactly the shards with pending
/// work. `shards = 1` degenerates to one pseudo-shard covering the grid.
///
/// # Panics
/// If `shards == 0` — the CLI validates `--shards` first.
pub fn status_sharded(
    spec: &CampaignSpec,
    dir: &Path,
    artifact: Option<&Path>,
    shards: usize,
) -> io::Result<StatusReport> {
    assert!(shards > 0, "a campaign has at least one shard");
    let rows = store::collect_rows(dir, &spec.name, artifact)?;
    let grid = spec.grid();
    // One hash pass over one grid; everything below derives from it.
    // Shard membership is positional (round-robin: entry i belongs to
    // shard i % k), matching `CampaignSpec::shard` by construction.
    let mut covered = 0usize;
    let mut by_strategy: Vec<(String, usize, usize)> = spec
        .strategies
        .iter()
        .map(|sweep| (sweep.kind.name().to_string(), 0, 0))
        .collect();
    let mut by_shard: Vec<(usize, usize, usize)> = (0..shards).map(|i| (i, 0, 0)).collect();
    let mut missing = Vec::new();
    for (idx, s) in grid.iter().enumerate() {
        let hash = spec_hash(s);
        let done = rows.contains_key(&hash);
        if done {
            covered += 1;
        } else {
            missing.push(hash);
        }
        if let Some(entry) = by_strategy
            .iter_mut()
            .find(|(name, _, _)| name == s.strategy.name())
        {
            entry.1 += usize::from(done);
            entry.2 += 1;
        }
        let shard = &mut by_shard[idx % shards];
        shard.1 += usize::from(done);
        shard.2 += 1;
    }
    Ok(StatusReport {
        grid: grid.len(),
        covered,
        by_strategy,
        by_shard,
        missing,
    })
}

/// Build the report tables from the stored rows: rounds-to-gather and
/// wall-clock per grid cell, one column per strategy (per scheduler, when
/// the campaign sweeps more than FSYNC), seeds averaged. Cells show `-`
/// where no row exists yet, the outcome label where a run did not gather.
pub fn report(spec: &CampaignSpec, dir: &Path, artifact: Option<&Path>) -> io::Result<Vec<Table>> {
    let rows = store::collect_rows(dir, &spec.name, artifact)?;
    // One column per (strategy, scheduler) pair of the grid; plain
    // strategy names when the campaign is FSYNC-only (the common case).
    let fsync_only = spec.schedulers.iter().all(SchedulerKind::is_fsync);
    let mut columns: Vec<(StrategySweep, SchedulerKind, String)> = Vec::new();
    for sweep in &spec.strategies {
        for &sched in &spec.schedulers {
            if sweep.kind.is_open_chain() && !sched.is_fsync() {
                continue;
            }
            let label = if fsync_only {
                sweep.kind.name().to_string()
            } else {
                format!("{}@{}", sweep.kind.name(), sched.name())
            };
            columns.push((*sweep, sched, label));
        }
    }

    let mut header = vec!["family", "n", "n_actual"];
    header.extend(columns.iter().map(|(_, _, label)| label.as_str()));
    let mut rounds_table = Table::new(
        "C1",
        &format!(
            "campaign '{}': rounds to gather (seeds averaged)",
            spec.name
        ),
        &header,
    );
    let mut wall_table = Table::new(
        "C2",
        &format!(
            "campaign '{}': wall-clock ms per scenario (seeds averaged)",
            spec.name
        ),
        &header,
    );
    let mut makespan_table = Table::new(
        "C3",
        &format!(
            "campaign '{}': makespan — last active round (seeds averaged)",
            spec.name
        ),
        &header,
    );
    let mut travel_table = Table::new(
        "C4",
        &format!(
            "campaign '{}': max per-robot travel distance (seeds averaged)",
            spec.name
        ),
        &header,
    );

    for &family in &spec.families {
        for &n in &spec.sizes {
            let mut rounds_cells = Vec::new();
            let mut wall_cells = Vec::new();
            let mut makespan_cells = Vec::new();
            let mut travel_cells = Vec::new();
            let mut n_actual = None;
            for (sweep, sched, _) in &columns {
                if n > sweep.max_n {
                    rounds_cells.push("-".to_string());
                    wall_cells.push("-".to_string());
                    makespan_cells.push("-".to_string());
                    travel_cells.push("-".to_string());
                    continue;
                }
                let cell_rows: Vec<&CampaignRow> = spec
                    .seeds
                    .iter()
                    .filter_map(|&seed| {
                        let s = ScenarioSpec::strategy(family, n, seed, sweep.kind)
                            .with_scheduler(*sched);
                        rows.get(&spec_hash(&s))
                    })
                    .collect();
                if cell_rows.is_empty() {
                    rounds_cells.push("-".to_string());
                    wall_cells.push("-".to_string());
                    makespan_cells.push("-".to_string());
                    travel_cells.push("-".to_string());
                    continue;
                }
                n_actual.get_or_insert(cell_rows[0].n_actual);
                let failed = cell_rows.iter().find(|r| r.outcome != "gathered");
                rounds_cells.push(match failed {
                    Some(r) => r.outcome.clone(),
                    None => {
                        let mean = cell_rows.iter().map(|r| r.rounds).sum::<u64>() as f64
                            / cell_rows.len() as f64;
                        format!("{mean:.0}")
                    }
                });
                let wall =
                    cell_rows.iter().map(|r| r.wall_ms()).sum::<f64>() / cell_rows.len() as f64;
                wall_cells.push(format!("{wall:.2}"));
                let makespan = cell_rows.iter().map(|r| r.makespan).sum::<u64>() as f64
                    / cell_rows.len() as f64;
                makespan_cells.push(format!("{makespan:.0}"));
                // Travel is only measured on paths that track it; a cell
                // mixes rows uniformly (one strategy), so any-None ⇒ "-".
                let travel: Option<Vec<u64>> =
                    cell_rows.iter().map(|r| r.max_travel_milli).collect();
                travel_cells.push(match travel {
                    Some(ms) if !ms.is_empty() => {
                        let mean = ms.iter().sum::<u64>() as f64 / ms.len() as f64 / 1000.0;
                        format!("{mean:.2}")
                    }
                    _ => "-".to_string(),
                });
            }
            if n_actual.is_none() && rounds_cells.iter().all(|c| c == "-") {
                continue;
            }
            let prefix = |cells: Vec<String>| {
                let mut row = vec![
                    family.name().to_string(),
                    n.to_string(),
                    n_actual.map_or("-".to_string(), |x| x.to_string()),
                ];
                row.extend(cells);
                row
            };
            rounds_table.row(prefix(rounds_cells));
            wall_table.row(prefix(wall_cells));
            makespan_table.row(prefix(makespan_cells));
            travel_table.row(prefix(travel_cells));
        }
    }
    rounds_table.note(
        "Rows missing entirely have not been run yet; non-gathered cells show the outcome label.",
    );
    wall_table.note("Wall-clock is machine-dependent — compare shapes, not absolute values.");
    makespan_table
        .note("Makespan is the last round with any movement or merge (0 on legacy rows).");
    travel_table.note(
        "Max travel: L2 distance on euclid, hop-length sum on grid; '-' where the \
         execution path does not track travel (kernel fast path, open-chain).",
    );
    Ok(vec![rounds_table, wall_table, makespan_table, travel_table])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_respects_caps_and_order() {
        let spec = CampaignSpec {
            name: "t".into(),
            families: vec![Family::Rectangle, Family::Skyline],
            sizes: vec![16, 32],
            seeds: vec![0, 1],
            strategies: vec![
                StrategySweep::up_to(StrategyKind::paper(), 32),
                StrategySweep::up_to(StrategyKind::Stand, 16),
            ],
            schedulers: vec![SchedulerKind::Fsync],
            geometries: vec![GeometryKind::Grid],
        };
        let grid = spec.grid();
        // 2 families × (n=16: 2 strategies + n=32: 1 strategy) × 2 seeds.
        assert_eq!(grid.len(), 2 * (2 + 1) * 2);
        assert_eq!(grid[0].family, Family::Rectangle);
        assert_eq!(grid[0].strategy.name(), "paper");
        assert_eq!(grid[1].strategy.name(), "stand");
        // n=32 rows never contain the capped strategy.
        assert!(grid
            .iter()
            .filter(|s| s.n == 32)
            .all(|s| s.strategy.name() == "paper"));
    }

    #[test]
    fn scaling_quick_is_subset_of_full() {
        let quick: HashSet<String> = CampaignSpec::scaling(true)
            .grid()
            .iter()
            .map(spec_hash)
            .collect();
        let full: HashSet<String> = CampaignSpec::scaling(false)
            .grid()
            .iter()
            .map(spec_hash)
            .collect();
        assert!(quick.is_subset(&full));
        assert!(quick.len() >= 20);
        // The full ladder reaches the paper's asymptotic regime.
        assert!(CampaignSpec::scaling(false)
            .grid()
            .iter()
            .any(|s| s.n >= 65536));
    }

    #[test]
    fn spec_ids_are_injective_over_a_grid() {
        for campaign in [
            CampaignSpec::scaling(false),
            CampaignSpec::robustness(false),
        ] {
            let grid = campaign.grid();
            let ids: HashSet<String> = grid.iter().map(spec_id).collect();
            assert_eq!(ids.len(), grid.len(), "{}", campaign.name);
        }
    }

    #[test]
    fn robustness_sweeps_every_scheduler() {
        let spec = CampaignSpec::robustness(true);
        let grid = spec.grid();
        // families × sizes × seeds × strategies × schedulers, no caps hit.
        assert_eq!(grid.len(), 3 * 5 * SchedulerKind::SWEEP.len());
        for &sched in &SchedulerKind::SWEEP {
            assert!(grid.iter().any(|s| s.scheduler == sched));
        }
        // Quick is a strict subset of the full robustness grid.
        let quick: HashSet<String> = grid.iter().map(spec_hash).collect();
        let full: HashSet<String> = CampaignSpec::robustness(false)
            .grid()
            .iter()
            .map(spec_hash)
            .collect();
        assert!(quick.is_subset(&full));
    }

    #[test]
    fn grid_skips_open_chain_ssync_combinations() {
        let spec = CampaignSpec {
            name: "t".into(),
            families: vec![Family::Rectangle],
            sizes: vec![16],
            seeds: vec![0],
            strategies: vec![
                StrategySweep::up_to(StrategyKind::paper(), 16),
                StrategySweep::up_to(StrategyKind::OpenZip, 16),
            ],
            schedulers: vec![SchedulerKind::Fsync, SchedulerKind::KFair(4)],
            geometries: vec![GeometryKind::Grid],
        };
        let grid = spec.grid();
        // paper × both schedulers + open-zip × fsync only.
        assert_eq!(grid.len(), 3);
        assert!(grid
            .iter()
            .filter(|s| s.strategy.is_open_chain())
            .all(|s| s.scheduler.is_fsync()));
    }

    #[test]
    fn row_round_trips_through_store_json() {
        let spec = ScenarioSpec::strategy(Family::Rectangle, 64, 3, StrategyKind::paper());
        let result = crate::scenario::run_scenario(&spec);
        let row = CampaignRow::from_result(&result);
        let parsed = CampaignRow::from_json(&row.to_store_json()).unwrap();
        assert_eq!(parsed, row);
        assert_eq!(parsed.spec_hash().unwrap(), spec_hash(&spec));
        // Artifact representation drops the detail fields but keeps the key.
        let from_artifact = CampaignRow::from_json(&row.to_artifact_json()).unwrap();
        assert_eq!(from_artifact.spec_hash(), parsed.spec_hash());
        assert_eq!(from_artifact.merges, 0);
    }

    #[test]
    fn unknown_names_do_not_panic() {
        let mut row = CampaignRow {
            family: "future-family".into(),
            n: 10,
            n_actual: 10,
            seed: 0,
            strategy: "paper".into(),
            scheduler: "fsync".into(),
            geometry: "grid".into(),
            rounds: 1,
            makespan: 0,
            max_travel_milli: None,
            wall_us: 1,
            outcome: "gathered".into(),
            merges: 0,
            longest_gap: 0,
        };
        assert_eq!(row.to_spec(), None);
        assert_eq!(row.spec_hash(), None);
        // An unknown scheduler name is equally non-fatal.
        row.family = "rectangle".into();
        row.scheduler = "quantum9000".into();
        assert_eq!(row.to_spec(), None);
    }

    /// Legacy rows (written before the scheduler axis / the microsecond
    /// wall clock) keep parsing: `scheduler` defaults to fsync and
    /// `wall_ms` widens to microseconds, so old stores and artifacts
    /// resume instead of erroring.
    #[test]
    fn legacy_rows_parse_with_defaults() {
        let legacy = Json::parse(
            r#"{"family":"rectangle","n":64,"n_actual":64,"seed":0,
                "strategy":"paper","rounds":94,"wall_ms":12,"outcome":"gathered"}"#,
        )
        .unwrap();
        let row = CampaignRow::from_json(&legacy).unwrap();
        assert_eq!(row.scheduler, "fsync");
        assert_eq!(row.geometry, "grid");
        assert_eq!(row.makespan, 0);
        assert_eq!(row.max_travel_milli, None);
        assert_eq!(row.wall_us, 12_000);
        assert_eq!(row.wall_ms(), 12.0);
        let spec = row.to_spec().unwrap();
        assert_eq!(spec.scheduler, SchedulerKind::Fsync);
        assert_eq!(spec.geometry, GeometryKind::Grid);
        assert_eq!(row.spec_hash().unwrap(), spec_hash(&spec));
        // A row with neither wall field is malformed — and the error
        // steers the user to the modern field, not the legacy one.
        let bad = Json::parse(r#"{"family":"rectangle","n":64,"seed":0,"strategy":"paper","rounds":1,"outcome":"gathered"}"#).unwrap();
        let err = CampaignRow::from_json(&bad).unwrap_err();
        assert!(err.contains("wall_us"), "{err}");
    }

    /// The euclid campaign pairs each geometry with exactly the
    /// strategies that run on it: paper×grid and euclid-chain×euclid,
    /// never the cross combinations.
    #[test]
    fn euclid_campaign_grid_pairs_geometry_with_strategy() {
        let spec = CampaignSpec::euclid(true);
        let grid = spec.grid();
        // families × sizes × seeds × 2 (strategy, geometry) pairs.
        assert_eq!(grid.len(), 3 * 2 * 2);
        for s in &grid {
            assert!(s.geometry_error().is_none());
            assert_eq!(s.geometry == GeometryKind::Euclid, s.strategy.is_euclid());
        }
        assert!(grid.iter().any(|s| s.geometry == GeometryKind::Euclid));
        // Quick is a subset of the full euclid grid.
        let quick: HashSet<String> = grid.iter().map(spec_hash).collect();
        let full: HashSet<String> = CampaignSpec::euclid(false)
            .grid()
            .iter()
            .map(spec_hash)
            .collect();
        assert!(quick.is_subset(&full));
    }

    /// A Euclidean row round-trips through the store with its geometry,
    /// makespan, and travel objective, and hashes to the euclid grid
    /// cell, not the grid one.
    #[test]
    fn euclid_rows_round_trip_with_objectives() {
        let spec = ScenarioSpec::euclid(Family::Rectangle, 32, 0);
        assert_ne!(
            spec_hash(&spec),
            spec_hash(&ScenarioSpec::paper(Family::Rectangle, 32, 0))
        );
        let result = crate::scenario::run_scenario(&spec);
        let row = CampaignRow::from_result(&result);
        assert_eq!(row.geometry, "euclid");
        assert_eq!(row.outcome, "gathered");
        assert!(row.makespan > 0);
        assert!(row.max_travel_milli.unwrap() > 0);
        let parsed = CampaignRow::from_json(&row.to_store_json()).unwrap();
        assert_eq!(parsed, row);
        assert_eq!(parsed.spec_hash().unwrap(), spec_hash(&spec));
    }

    /// An SSYNC row round-trips with its scheduler, and hashes to the
    /// SSYNC grid cell, not the FSYNC one.
    #[test]
    fn ssync_rows_round_trip_and_hash_distinctly() {
        let base = ScenarioSpec::strategy(Family::Rectangle, 32, 0, StrategyKind::CompassSe);
        let ssync = base.with_scheduler(SchedulerKind::KFair(4));
        assert_ne!(spec_hash(&base), spec_hash(&ssync));
        let result = crate::scenario::run_scenario(&ssync);
        let row = CampaignRow::from_result(&result);
        assert_eq!(row.scheduler, "kfair4");
        let parsed = CampaignRow::from_json(&row.to_store_json()).unwrap();
        assert_eq!(parsed, row);
        assert_eq!(parsed.spec_hash().unwrap(), spec_hash(&ssync));
    }
}
