//! The paper-reproduction experiments (tables T1–T12 of DESIGN.md §4).
//!
//! Every table corresponds to a claim or construction of the paper; the
//! table's note states the expected *shape* and the success criterion. The
//! harness never asserts — EXPERIMENTS.md records measured vs expected —
//! but `tests/` contains hard assertions for the load-bearing claims.
//!
//! Every table is produced the same way: enumerate one [`ScenarioSpec`]
//! per experiment cell, execute the whole grid with [`run_batch`] (one
//! parallel fan-out per table), then fold the ordered
//! [`ScenarioResult`]s into rows.

use crate::scenario::{run_batch, ScenarioResult, ScenarioSpec, StrategyKind};
use crate::Table;
use chain_sim::SchedulerKind;
use gathering_core::GatherConfig;
use workloads::Family;

/// Which workload families an experiment run covers — the `experiments`
/// binary's `--family` flag. The default ([`FamilySelection::all`]) keeps
/// every table's built-in family list; a restricted selection intersects
/// with it (tables keep their own ordering, and a table none of whose
/// families are selected simply emits no rows).
#[derive(Clone, Debug, Default)]
pub struct FamilySelection(Option<Vec<Family>>);

impl FamilySelection {
    /// No restriction: every table uses its built-in families.
    pub fn all() -> Self {
        FamilySelection(None)
    }

    /// Restrict to exactly these families.
    pub fn only(families: Vec<Family>) -> Self {
        FamilySelection(Some(families))
    }

    /// Parse registry names ([`Family::name`]); returns the unknown names
    /// if any fail (callers print the inventory and bail). An empty name
    /// list means no restriction.
    pub fn parse(names: &[String]) -> Result<Self, Vec<String>> {
        if names.is_empty() {
            return Ok(Self::all());
        }
        let mut families = Vec::new();
        let mut unknown = Vec::new();
        for name in names {
            match Family::from_name(name) {
                Some(f) => families.push(f),
                None => unknown.push(name.clone()),
            }
        }
        if unknown.is_empty() {
            Ok(Self::only(families))
        } else {
            Err(unknown)
        }
    }

    /// Intersect a table's built-in family list with the selection,
    /// preserving the table's order.
    pub fn pick(&self, defaults: &[Family]) -> Vec<Family> {
        match &self.0 {
            None => defaults.to_vec(),
            Some(sel) => defaults
                .iter()
                .copied()
                .filter(|f| sel.contains(f))
                .collect(),
        }
    }
}

/// Experiment effort: quick for CI smoke, full for the real tables.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Effort {
    /// CI smoke sizes: small ladder, few seeds.
    Quick,
    /// The real tables (what EXPERIMENTS.md records).
    Full,
}

impl Effort {
    fn sizes(&self) -> &'static [usize] {
        match self {
            Effort::Quick => &[64, 128, 256],
            Effort::Full => &[64, 128, 256, 512, 1024, 2048],
        }
    }

    fn seeds(&self) -> u64 {
        match self {
            Effort::Quick => 2,
            Effort::Full => 5,
        }
    }

    fn audit_n(&self) -> usize {
        match self {
            Effort::Quick => 128,
            Effort::Full => 384,
        }
    }
}

fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

fn outcome_cell(r: &ScenarioResult) -> String {
    match r.rounds() {
        Some(rounds) => rounds.to_string(),
        None => "stall".to_string(),
    }
}

/// T1 — Theorem 1: gathering completes and the round count is linear in n.
pub fn t1_theorem1(e: Effort, sel: &FamilySelection) -> Table {
    let mut t = Table::new(
        "T1",
        "Theorem 1: rounds to gather vs n (paper bound 2Ln + n = 27n)",
        &[
            "family",
            "n",
            "runs",
            "rounds(avg)",
            "rounds/n",
            "bound?",
            "gap(max)",
        ],
    );
    let l = GatherConfig::paper().l_period;
    let seeds = e.seeds();
    let specs: Vec<ScenarioSpec> = sel
        .pick(&Family::ALL)
        .into_iter()
        .flat_map(|fam| {
            e.sizes().iter().flat_map(move |&size| {
                (0..seeds).map(move |seed| ScenarioSpec::paper(fam, size, seed))
            })
        })
        .collect();
    let results = run_batch(&specs);
    for group in results.chunks(seeds as usize) {
        let fam = group[0].spec.family;
        let n_avg = mean(&group.iter().map(|r| r.n as f64).collect::<Vec<_>>());
        let ok: Vec<&ScenarioResult> = group.iter().filter(|r| r.is_gathered()).collect();
        let failed = group.len() - ok.len();
        let rounds = mean(
            &ok.iter()
                .filter_map(|r| r.rounds().map(|x| x as f64))
                .collect::<Vec<_>>(),
        );
        let ratio = rounds / n_avg;
        let bound_ok = failed == 0 && ratio <= (2 * l + 1) as f64;
        let gap = group.iter().map(|r| r.longest_gap).max().unwrap_or(0);
        t.row(vec![
            fam.name().to_string(),
            format!("{n_avg:.0}"),
            format!(
                "{}{}",
                group.len(),
                if failed > 0 {
                    format!(" ({failed} FAIL)")
                } else {
                    String::new()
                }
            ),
            format!("{rounds:.0}"),
            format!("{ratio:.2}"),
            if bound_ok { "yes".into() } else { "NO".into() },
            gap.to_string(),
        ]);
    }
    t.note(
        "Expected shape: rounds/n converges to a family constant far below 27; all runs gather.",
    );
    t
}

/// T2 — Lemma 1: every L = 13 rounds a merge happened or a new progress
/// pair started.
pub fn t2_lemma1(e: Effort, sel: &FamilySelection) -> Table {
    let mut t = Table::new(
        "T2",
        "Lemma 1: L-window accounting (merge or new progress pair)",
        &[
            "family",
            "n",
            "seed",
            "rounds",
            "windows",
            "violations",
            "longest gap",
        ],
    );
    let l = GatherConfig::paper().l_period;
    let specs: Vec<ScenarioSpec> = sel
        .pick(&Family::ALL)
        .into_iter()
        .flat_map(|fam| {
            (0..e.seeds().min(3)).map(move |seed| ScenarioSpec::audited(fam, e.audit_n(), seed))
        })
        .collect();
    for r in run_batch(&specs) {
        let s = r.audit.as_ref().expect("audited spec");
        t.row(vec![
            r.spec.family.name().to_string(),
            r.n.to_string(),
            r.spec.seed.to_string(),
            format!(
                "{}{}",
                r.outcome.rounds(),
                if r.is_gathered() { "" } else { " (FAIL)" }
            ),
            (s.rounds / l).to_string(),
            s.lemma1_violations.len().to_string(),
            s.longest_mergeless_gap.to_string(),
        ]);
    }
    t.note("Expected: zero violations — every 13-round window shows a merge or starts a progress pair.");
    t
}

/// T3 — Lemma 2: progress pairs enable merges within ≤ n rounds.
pub fn t3_lemma2(e: Effort, sel: &FamilySelection) -> Table {
    let mut t = Table::new(
        "T3",
        "Lemma 2: progress pairs enable (distinct) merges within n rounds",
        &[
            "family",
            "n",
            "pairs",
            "good",
            "progress",
            "merged",
            "max latency",
            "latency ≤ n?",
        ],
    );
    let specs: Vec<ScenarioSpec> = sel
        .pick(&Family::ALL)
        .into_iter()
        .map(|fam| ScenarioSpec::audited(fam, e.audit_n(), 1))
        .collect();
    for r in run_batch(&specs) {
        let s = r.audit.as_ref().expect("audited spec");
        t.row(vec![
            r.spec.family.name().to_string(),
            r.n.to_string(),
            s.pairs_started.to_string(),
            s.good_pairs.to_string(),
            s.progress_pairs.to_string(),
            s.progress_pairs_merged.to_string(),
            s.max_pair_latency.to_string(),
            if s.max_pair_latency <= r.n as u64 {
                "yes".into()
            } else {
                "NO".to_string()
            },
        ]);
    }
    t.note("Expected: progress pairs are credited with merges; latency stays ≤ n (pairs outstanding at gathering time are not counted).");
    t
}

/// T4 — Lemma 3: run invariants hold every round.
pub fn t4_lemma3(e: Effort, sel: &FamilySelection) -> Table {
    let mut t = Table::new(
        "T4",
        "Lemma 3: run invariants (speed 1; no sequent run visible ahead)",
        &[
            "family",
            "n",
            "rounds",
            "speed viol.",
            "sequent viol.",
            "clean?",
        ],
    );
    let specs: Vec<ScenarioSpec> = sel
        .pick(&Family::ALL)
        .into_iter()
        .map(|fam| ScenarioSpec::audited(fam, e.audit_n(), 2))
        .collect();
    for r in run_batch(&specs) {
        let s = r.audit.as_ref().expect("audited spec");
        t.row(vec![
            r.spec.family.name().to_string(),
            r.n.to_string(),
            r.outcome.rounds().to_string(),
            s.speed_violations.to_string(),
            s.sequent_visibility_violations.to_string(),
            if s.speed_violations == 0 && s.sequent_visibility_violations == 0 {
                "yes".to_string()
            } else {
                "NO".into()
            },
        ]);
    }
    t.note("Expected: zero violations of Lemma 3.1 (every run moves one robot per round) and 3.3 (no sequent run in view ahead).");
    t
}

/// T5 — Fig. 9: pipelining — many runs work in parallel.
pub fn t5_pipelining(e: Effort, sel: &FamilySelection) -> Table {
    let mut t = Table::new(
        "T5",
        "Pipelining (Fig. 9): parallel runs and their work profile",
        &[
            "family", "n", "starts", "max live", "folds", "walks", "passings",
        ],
    );
    let specs: Vec<ScenarioSpec> = sel
        .pick(&[
            Family::Rectangle,
            Family::Comb,
            Family::Spiral,
            Family::Serpentine,
            Family::StaircaseDiamond,
        ])
        .into_iter()
        .map(|fam| ScenarioSpec::paper(fam, e.audit_n(), 3))
        .collect();
    for r in run_batch(&specs) {
        let stats = r.stats.as_ref().expect("paper runs carry stats");
        t.row(vec![
            r.spec.family.name().to_string(),
            r.n.to_string(),
            stats.started_total().to_string(),
            stats.max_live_runs.to_string(),
            stats.folds.to_string(),
            stats.walks.to_string(),
            stats.passings_started.to_string(),
        ]);
    }
    t.note(
        "Expected: max live runs well above 2 (new generations every 13 rounds work concurrently).",
    );
    t
}

/// T6 — Section 5.1 / Fig. 16–18: mergeless chains always develop good
/// pairs (the structural heart of Lemma 1's proof).
pub fn t6_goodpairs(e: Effort, sel: &FamilySelection) -> Table {
    let mut t = Table::new(
        "T6",
        "Good pairs in mergeless phases (Fig. 17/18 argument)",
        &[
            "family",
            "n",
            "mergeless start-rounds",
            "with good pair",
            "without",
        ],
    );
    let specs: Vec<ScenarioSpec> = sel
        .pick(&[
            Family::StaircaseDiamond,
            Family::Crenellated,
            Family::Comb,
            Family::Skyline,
        ])
        .into_iter()
        .map(|fam| ScenarioSpec::audited(fam, e.audit_n(), 4))
        .collect();
    for r in run_batch(&specs) {
        let s = r.audit.as_ref().expect("audited spec");
        // Progress pairs are exactly good pairs started in mergeless
        // windows; lemma1_violations counts mergeless windows without one.
        let without = s.lemma1_violations.len();
        let with = s.progress_pairs;
        t.row(vec![
            r.spec.family.name().to_string(),
            r.n.to_string(),
            (with + without).to_string(),
            with.to_string(),
            without.to_string(),
        ]);
    }
    t.note("Expected: 'without' is zero — a mergeless chain cannot close without offering a good pair.");
    t
}

/// T7 — Section 1: what global information would buy (baseline race).
pub fn t7_baselines(e: Effort, sel: &FamilySelection) -> Table {
    let mut t = Table::new(
        "T7",
        "Baselines: rounds to gather (same inputs)",
        &[
            "family",
            "n",
            "paper (local)",
            "global-vision",
            "compass-se",
            "naive-local*",
        ],
    );
    const RACE: [StrategyKind; 3] = [
        StrategyKind::GlobalVision,
        StrategyKind::CompassSe,
        StrategyKind::NaiveLocal,
    ];
    let size = e.audit_n();
    let specs: Vec<ScenarioSpec> = sel
        .pick(&[
            Family::Rectangle,
            Family::Skyline,
            Family::RandomLoop,
            Family::HairpinFlower,
        ])
        .into_iter()
        .flat_map(|fam| {
            std::iter::once(ScenarioSpec::paper(fam, size, 5)).chain(
                RACE.iter()
                    .map(move |&kind| ScenarioSpec::strategy(fam, size, 5, kind)),
            )
        })
        .collect();
    let results = run_batch(&specs);
    for group in results.chunks(1 + RACE.len()) {
        let mut row = vec![
            group[0].spec.family.name().to_string(),
            group[0].n.to_string(),
        ];
        row.extend(group.iter().map(outcome_cell));
        t.row(row);
    }
    t.note("Global vision gathers in Θ(diameter) — the information the local model lacks. *naive-local needs a global safety oracle (inadmissible); shown for reference.");
    t
}

/// T8 — the \[KM09\] relation: open chains are easy (zip), closed chains pay
/// a constant factor for indistinguishability.
pub fn t8_open_vs_closed(e: Effort, sel: &FamilySelection) -> Table {
    let mut t = Table::new(
        "T8",
        "Open-chain zip [KM09 setting] vs closed-chain algorithm (same geometry)",
        &[
            "family",
            "n",
            "open zip rounds",
            "closed rounds",
            "closed/open",
        ],
    );
    let specs: Vec<ScenarioSpec> = sel
        .pick(&[Family::Rectangle, Family::Skyline, Family::Comb])
        .into_iter()
        .flat_map(|fam| {
            e.sizes()[..e.sizes().len().min(4)]
                .iter()
                .flat_map(move |&size| {
                    [
                        ScenarioSpec::strategy(fam, size, 6, StrategyKind::OpenZip),
                        ScenarioSpec::paper(fam, size, 6),
                    ]
                })
        })
        .collect();
    let results = run_batch(&specs);
    for pair in results.chunks(2) {
        let (zip, closed) = (&pair[0], &pair[1]);
        let zip_rounds = zip.open.expect("zip detail").rounds;
        let ratio = closed
            .rounds()
            .map(|r| format!("{:.1}", r as f64 / zip_rounds.max(1) as f64))
            .unwrap_or_else(|| "-".into());
        t.row(vec![
            closed.spec.family.name().to_string(),
            closed.n.to_string(),
            zip_rounds.to_string(),
            outcome_cell(closed),
            ratio,
        ]);
    }
    t.note("Both linear; the closed chain's factor is the price of indistinguishable robots (no endpoints).");
    t
}

/// T8b — the Manhattan Hopper \[KM09\]: fixed-endpoint open chains reach
/// the optimal (Manhattan-shortest) length.
pub fn t8b_hopper(e: Effort, sel: &FamilySelection) -> Table {
    let mut t = Table::new(
        "T8b",
        "Manhattan Hopper [KM09 setting]: open chain with fixed endpoints reaches optimal length",
        &[
            "family (cut open)",
            "n",
            "rounds",
            "final len",
            "optimal len",
            "optimal?",
        ],
    );
    let specs: Vec<ScenarioSpec> = sel
        .pick(&[Family::Skyline, Family::Comb, Family::StaircaseDiamond])
        .into_iter()
        .map(|fam| ScenarioSpec::strategy(fam, e.audit_n(), 7, StrategyKind::Hopper))
        .collect();
    for r in run_batch(&specs) {
        let out = r.open.expect("hopper detail");
        let optimal = out.optimal_len.expect("hopper reports the optimum");
        t.row(vec![
            r.spec.family.name().to_string(),
            r.n.to_string(),
            out.rounds.to_string(),
            out.final_len.to_string(),
            optimal.to_string(),
            if out.final_len == optimal {
                "yes".into()
            } else {
                "NO".to_string()
            },
        ]);
    }
    t.note("[KM09]'s grid result: the open chain contracts to a Manhattan-shortest path between its fixed endpoints.");
    t
}

/// T9 — ablation of the paper's constants (L = 13, V = 11, merge length).
pub fn t9_ablation(e: Effort, sel: &FamilySelection) -> Table {
    let mut t = Table::new(
        "T9",
        "Ablation: pipelining period L, viewing path length V, merge bound k",
        &["config", "gathered", "of", "worst rounds/n"],
    );
    let suite: Vec<(Family, usize, u64)> = {
        let mut v = Vec::new();
        for fam in sel.pick(&[
            Family::Rectangle,
            Family::Skyline,
            Family::RandomLoop,
            Family::StaircaseDiamond,
        ]) {
            for seed in 0..e.seeds().min(3) {
                v.push((fam, e.audit_n() / 2, seed));
            }
        }
        v
    };
    let configs: Vec<(String, GatherConfig)> = vec![
        ("paper (L=13,V=11,k=10)".into(), GatherConfig::paper()),
        (
            "L=7".into(),
            GatherConfig {
                l_period: 7,
                ..GatherConfig::paper()
            },
        ),
        (
            "L=26".into(),
            GatherConfig {
                l_period: 26,
                ..GatherConfig::paper()
            },
        ),
        (
            "V=7".into(),
            GatherConfig {
                view: 7,
                max_merge_k: 6,
                ..GatherConfig::paper()
            },
        ),
        (
            "V=15".into(),
            GatherConfig {
                view: 15,
                max_merge_k: 14,
                ..GatherConfig::paper()
            },
        ),
        ("k=2 (proof mode)".into(), GatherConfig::proof_mode()),
        (
            "k=3".into(),
            GatherConfig {
                max_merge_k: 3,
                ..GatherConfig::paper()
            },
        ),
        (
            "no op-c walk".into(),
            GatherConfig {
                op_c_walk: false,
                ..GatherConfig::paper()
            },
        ),
        (
            "no cond2 guard".into(),
            GatherConfig {
                cond2_guard: false,
                ..GatherConfig::paper()
            },
        ),
    ];
    if suite.is_empty() {
        // Family selection excluded every ablation input.
        return t;
    }
    let specs: Vec<ScenarioSpec> = configs
        .iter()
        .flat_map(|(_, cfg)| {
            suite
                .iter()
                .map(move |&(fam, n, seed)| ScenarioSpec::with_config(fam, n, seed, *cfg))
        })
        .collect();
    let results = run_batch(&specs);
    for ((name, _), group) in configs.iter().zip(results.chunks(suite.len())) {
        let gathered = group.iter().filter(|r| r.is_gathered()).count();
        let worst = group
            .iter()
            .filter_map(|r| r.rounds().map(|x| x as f64 / r.n as f64))
            .fold(0.0f64, f64::max);
        t.row(vec![
            name.clone(),
            gathered.to_string(),
            group.len().to_string(),
            format!("{worst:.2}"),
        ]);
    }
    t.note("Expected: k=2 stalls (odd remnants are unmergeable and unfoldable — the Lemma 1 proof's k≤2 is analytical, not algorithmic); k≥3 and all L/V variants gather.");
    t
}

/// T10 — oscillation suppression (DESIGN.md §2.3): the symmetry breaker is
/// dormant on healthy inputs and fires only on closed interference cycles.
pub fn t10_suppression(e: Effort, sel: &FamilySelection) -> Table {
    let mut t = Table::new(
        "T10",
        "Oscillation suppression activity (symmetry breaker for closed merge-interference cycles)",
        &["family", "n", "rounds", "suppression triggers", "gathered?"],
    );
    let specs: Vec<ScenarioSpec> = sel
        .pick(&Family::ALL)
        .into_iter()
        .map(|fam| ScenarioSpec::paper(fam, e.audit_n(), 2))
        .collect();
    for r in run_batch(&specs) {
        let stats = r.stats.as_ref().expect("paper runs carry stats");
        t.row(vec![
            r.spec.family.name().to_string(),
            r.n.to_string(),
            r.outcome.rounds().to_string(),
            stats.suppressions.to_string(),
            if r.is_gathered() {
                "yes".into()
            } else {
                "NO".to_string()
            },
        ]);
    }
    t.note("Suppression fires on period-2 swap states (closed interference cycles, common in late-stage dense blobs), stays dormant elsewhere, and every input still gathers.");
    t
}

/// T11 — scheduler robustness: which strategies survive semi-synchrony
/// (SSYNC activation schedules), and at what round-count cost.
pub fn t11_schedulers(e: Effort, sel: &FamilySelection) -> Table {
    let mut t = Table::new(
        "T11",
        "Scheduler robustness: outcomes and round cost under SSYNC activation schedules",
        &[
            "family",
            "n",
            "strategy",
            "fsync",
            "rr2",
            "rand50",
            "kfair4",
            "worst/fsync",
        ],
    );
    let race = [
        StrategyKind::paper(),
        StrategyKind::GlobalVision,
        StrategyKind::CompassSe,
        StrategyKind::NaiveLocal,
    ];
    let size = e.audit_n() / 2;
    let specs: Vec<ScenarioSpec> = sel
        .pick(&[Family::Rectangle, Family::Skyline, Family::RandomLoop])
        .into_iter()
        .flat_map(|fam| {
            race.into_iter().flat_map(move |kind| {
                SchedulerKind::SWEEP.into_iter().map(move |sched| {
                    ScenarioSpec::strategy(fam, size, 8, kind).with_scheduler(sched)
                })
            })
        })
        .collect();
    let results = run_batch(&specs);
    for group in results.chunks(SchedulerKind::SWEEP.len()) {
        let mut row = vec![
            group[0].spec.family.name().to_string(),
            group[0].n.to_string(),
            group[0].spec.strategy.name().to_string(),
        ];
        let cell = |r: &ScenarioResult| match r.rounds() {
            Some(rounds) => rounds.to_string(),
            None => match r.outcome {
                chain_sim::Outcome::Stalled { .. } => "stalled".to_string(),
                chain_sim::Outcome::RoundLimit { .. } => "round-limit".to_string(),
                chain_sim::Outcome::ChainBroken { .. } => "BROKEN".to_string(),
                chain_sim::Outcome::Gathered { .. } => unreachable!(),
            },
        };
        row.extend(group.iter().map(cell));
        // Worst gathered SSYNC cost relative to FSYNC; '-' once anything
        // failed (a broken chain has no meaningful round cost).
        let fsync_rounds = group[0].rounds();
        let worst = group[1..].iter().filter_map(ScenarioResult::rounds).max();
        row.push(
            match (fsync_rounds, worst, group.iter().all(|r| r.is_gathered())) {
                (Some(f), Some(w), true) => format!("{:.1}", w as f64 / f.max(1) as f64),
                _ => "-".to_string(),
            },
        );
        t.row(row);
    }
    t.note(
        "Expected: strategies whose per-robot moves preserve adjacency unilaterally \
         (compass-se, naive-local) gather under every schedule at ~slowdown-proportional \
         cost; strategies relying on synchronized neighbor motion (paper, global-vision) \
         break the chain under SSYNC — the paper's FSYNC assumption is load-bearing.",
    );
    t
}

/// T12 — the SSYNC repair: `paper-ssync` (the paper's rule inside the
/// chain-safety guard, with the adaptive SE-drain fallback) gathers under
/// every scheduler of [`SchedulerKind::SWEEP`]; the table quantifies the
/// FSYNC→SSYNC round-count slowdown. The `paper parity` column pins the
/// FSYNC-passivity contract at experiment level: under FSYNC the wrapper
/// must cost exactly what the unwrapped paper rule costs.
pub fn t12_ssync_repair(e: Effort, sel: &FamilySelection) -> Table {
    let mut t = Table::new(
        "T12",
        "SSYNC repair: paper-ssync outcome and FSYNC→SSYNC round-count slowdown",
        &[
            "family",
            "n",
            "fsync",
            "rr2",
            "rand50",
            "kfair4",
            "worst/fsync",
            "paper parity",
        ],
    );
    let size = e.audit_n() / 2;
    let families = sel.pick(&[Family::Rectangle, Family::Skyline, Family::RandomLoop]);
    let specs: Vec<ScenarioSpec> = families
        .iter()
        .flat_map(|&fam| {
            SchedulerKind::SWEEP.into_iter().map(move |sched| {
                ScenarioSpec::strategy(fam, size, 8, StrategyKind::paper_ssync())
                    .with_scheduler(sched)
            })
        })
        .collect();
    // FSYNC reference runs of the unwrapped paper rule, one per family.
    let reference: Vec<ScenarioSpec> = families
        .iter()
        .map(|&fam| ScenarioSpec::paper(fam, size, 8))
        .collect();
    let results = run_batch(&specs);
    let reference = run_batch(&reference);
    for (group, paper) in results.chunks(SchedulerKind::SWEEP.len()).zip(&reference) {
        let mut row = vec![
            group[0].spec.family.name().to_string(),
            group[0].n.to_string(),
        ];
        row.extend(group.iter().map(|r| match r.rounds() {
            Some(rounds) => rounds.to_string(),
            None => match r.outcome {
                chain_sim::Outcome::Stalled { .. } => "stalled".to_string(),
                chain_sim::Outcome::RoundLimit { .. } => "round-limit".to_string(),
                chain_sim::Outcome::ChainBroken { .. } => "BROKEN".to_string(),
                chain_sim::Outcome::Gathered { .. } => unreachable!(),
            },
        }));
        let fsync_rounds = group[0].rounds();
        let worst = group[1..].iter().filter_map(ScenarioResult::rounds).max();
        row.push(
            match (fsync_rounds, worst, group.iter().all(|r| r.is_gathered())) {
                (Some(f), Some(w), true) => format!("{:.1}", w as f64 / f.max(1) as f64),
                _ => "-".to_string(),
            },
        );
        row.push(if fsync_rounds == paper.rounds() {
            "exact".to_string()
        } else {
            format!("DIVERGED ({:?} vs {:?})", fsync_rounds, paper.rounds())
        });
        t.row(row);
    }
    t.note(
        "Expected: every cell gathers (the guard makes the paper rule safe, the fallback \
         keeps it live), the FSYNC column matches the unwrapped paper exactly (the guard \
         cancels nothing on FSYNC-safe hop sets), and SSYNC cost stays within a small \
         multiple of the scheduler's inverse duty cycle.",
    );
    t
}

/// T13 — geometry backends: the same workload families gathered on the
/// grid (paper rule) and lifted to the Euclidean plane (fold/reflect
/// chain strategy). The rounds/n columns are the point: both backends
/// gather in linear time, with the constant reported per family.
pub fn t13_geometry(e: Effort, sel: &FamilySelection) -> Table {
    let mut t = Table::new(
        "T13",
        "Geometry backends: grid (paper) vs Euclidean (euclid-chain) rounds to gather",
        &[
            "family",
            "n",
            "grid rounds",
            "euclid rounds",
            "grid r/n",
            "euclid r/n",
            "euclid max travel",
        ],
    );
    let families = sel.pick(&[Family::Rectangle, Family::Skyline, Family::RandomLoop]);
    for &fam in &families {
        for &n in e.sizes() {
            let grid = ScenarioSpec::paper(fam, n, 8);
            let euclid = ScenarioSpec::euclid(fam, n, 8);
            let results = run_batch(&[grid, euclid]);
            let (g, u) = (&results[0], &results[1]);
            let cell = |r: &ScenarioResult| match r.rounds() {
                Some(rounds) => rounds.to_string(),
                None => format!("{:?}", r.outcome),
            };
            let per_n = |r: &ScenarioResult| match r.rounds() {
                Some(rounds) => format!("{:.2}", rounds as f64 / r.n as f64),
                None => "-".to_string(),
            };
            t.row(vec![
                fam.name().to_string(),
                g.n.to_string(),
                cell(g),
                cell(u),
                per_n(g),
                per_n(u),
                match u.max_travel {
                    Some(d) => format!("{d:.1}"),
                    None => "-".to_string(),
                },
            ]);
        }
    }
    t.note(
        "Expected: both backends gather every cell with rounds/n flat across the ladder \
         (linear-time gathering on either geometry); the Euclidean constant sits well \
         below 1 (contraction rounds transport Θ(1) distance per round). Max travel is \
         the min-max objective: the farthest distance any single robot walked.",
    );
    t
}

/// The table inventory, in presentation order (the valid values of the
/// experiments binary's `--table` flag, matched case-insensitively).
pub const TABLE_IDS: [&str; 14] = [
    "T1", "T2", "T3", "T4", "T5", "T6", "T7", "T8", "T8b", "T9", "T10", "T11", "T12", "T13",
];

/// Compute one table by its id (case-insensitive); `None` for ids outside
/// [`TABLE_IDS`]. Unlike filtering [`all_tables`], this runs only the
/// requested table's scenarios (restricted further by the family
/// selection).
pub fn table_by_id(id: &str, e: Effort, sel: &FamilySelection) -> Option<Table> {
    match id.to_uppercase().as_str() {
        "T1" => Some(t1_theorem1(e, sel)),
        "T2" => Some(t2_lemma1(e, sel)),
        "T3" => Some(t3_lemma2(e, sel)),
        "T4" => Some(t4_lemma3(e, sel)),
        "T5" => Some(t5_pipelining(e, sel)),
        "T6" => Some(t6_goodpairs(e, sel)),
        "T7" => Some(t7_baselines(e, sel)),
        "T8" => Some(t8_open_vs_closed(e, sel)),
        "T8B" => Some(t8b_hopper(e, sel)),
        "T9" => Some(t9_ablation(e, sel)),
        "T10" => Some(t10_suppression(e, sel)),
        "T11" => Some(t11_schedulers(e, sel)),
        "T12" => Some(t12_ssync_repair(e, sel)),
        "T13" => Some(t13_geometry(e, sel)),
        _ => None,
    }
}

/// All tables in order, unrestricted families.
pub fn all_tables(e: Effort) -> Vec<Table> {
    let sel = FamilySelection::all();
    TABLE_IDS
        .iter()
        .map(|id| table_by_id(id, e, &sel).expect("inventory ids all dispatch"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all() -> FamilySelection {
        FamilySelection::all()
    }

    #[test]
    fn quick_t5_runs() {
        let t = t5_pipelining(Effort::Quick, &all());
        assert_eq!(t.rows.len(), 5);
    }

    #[test]
    fn quick_t7_has_all_columns() {
        let t = t7_baselines(Effort::Quick, &all());
        assert_eq!(t.header.len(), 6);
        assert!(!t.rows.is_empty());
    }

    #[test]
    fn quick_t1_groups_by_family_and_size() {
        let e = Effort::Quick;
        let t = t1_theorem1(e, &all());
        assert_eq!(t.rows.len(), Family::ALL.len() * e.sizes().len());
    }

    #[test]
    fn quick_t9_has_one_row_per_config() {
        let t = t9_ablation(Effort::Quick, &all());
        assert_eq!(t.rows.len(), 9);
    }

    #[test]
    fn quick_t11_covers_strategies_and_schedules() {
        let t = t11_schedulers(Effort::Quick, &all());
        // 3 families × 4 strategies, one column per scheduler.
        assert_eq!(t.rows.len(), 12);
        assert_eq!(t.header.len(), 3 + SchedulerKind::SWEEP.len() + 1);
        // The FSYNC column is the control: every strategy gathers there.
        for row in &t.rows {
            assert!(
                row[3].parse::<u64>().is_ok(),
                "fsync cell must be a round count: {row:?}"
            );
        }
        // SSYNC survivors exist, and so do casualties — the table is not
        // degenerate in either direction.
        let kfair: Vec<&str> = t.rows.iter().map(|r| r[6].as_str()).collect();
        assert!(kfair.iter().any(|c| c.parse::<u64>().is_ok()));
        assert!(kfair.contains(&"BROKEN"));
    }

    #[test]
    fn quick_t12_gathers_everywhere_with_fsync_parity() {
        let t = t12_ssync_repair(Effort::Quick, &all());
        assert_eq!(t.rows.len(), 3);
        assert_eq!(t.header.len(), 2 + SchedulerKind::SWEEP.len() + 2);
        for row in &t.rows {
            // Every scheduler cell is a round count — no BROKEN, no stall.
            for cell in &row[2..2 + SchedulerKind::SWEEP.len()] {
                assert!(
                    cell.parse::<u64>().is_ok(),
                    "paper-ssync failed a scheduler: {row:?}"
                );
            }
            assert_eq!(row[7], "exact", "FSYNC passivity broke: {row:?}");
        }
    }

    #[test]
    fn quick_t13_gathers_on_both_geometries() {
        let t = t13_geometry(
            Effort::Quick,
            &FamilySelection::only(vec![Family::Rectangle]),
        );
        assert_eq!(t.rows.len(), Effort::Quick.sizes().len());
        for row in &t.rows {
            assert!(row[2].parse::<u64>().is_ok(), "grid cell failed: {row:?}");
            assert!(row[3].parse::<u64>().is_ok(), "euclid cell failed: {row:?}");
            assert!(row[6].parse::<f64>().is_ok(), "travel missing: {row:?}");
        }
    }

    #[test]
    fn table_ids_dispatch_and_match() {
        for id in TABLE_IDS {
            let t = table_by_id(id, Effort::Quick, &all()).expect("inventory id dispatches");
            assert_eq!(t.id, id, "dispatch must return the table it names");
            // Case-insensitive lookup.
            assert!(table_by_id(&id.to_lowercase(), Effort::Quick, &all()).is_some());
        }
        assert!(table_by_id("T99", Effort::Quick, &all()).is_none());
        assert!(table_by_id("", Effort::Quick, &all()).is_none());
    }

    #[test]
    fn family_selection_parses_and_rejects() {
        assert!(FamilySelection::parse(&[]).is_ok());
        let sel = FamilySelection::parse(&["rectangle".into(), "comb".into()]).unwrap();
        assert_eq!(
            sel.pick(&Family::ALL),
            vec![Family::Rectangle, Family::Comb]
        );
        // Picks preserve the table's order, not the selection's.
        let sel = FamilySelection::parse(&["comb".into(), "rectangle".into()]).unwrap();
        assert_eq!(
            sel.pick(&Family::ALL),
            vec![Family::Rectangle, Family::Comb]
        );
        let err =
            FamilySelection::parse(&["rectangle".into(), "nope".into(), "zig".into()]).unwrap_err();
        assert_eq!(err, vec!["nope".to_string(), "zig".to_string()]);
    }

    #[test]
    fn family_selection_restricts_tables() {
        let e = Effort::Quick;
        let sel = FamilySelection::only(vec![Family::Rectangle]);
        let t1 = t1_theorem1(e, &sel);
        assert_eq!(t1.rows.len(), e.sizes().len());
        assert!(t1.rows.iter().all(|r| r[0] == "rectangle"));
        // A table whose family list misses the selection emits no rows
        // (T8b runs skyline/comb/staircase-diamond only) — and T9's
        // grouped fold stays well-defined.
        assert!(t8b_hopper(e, &sel).rows.is_empty());
        let sel_none = FamilySelection::only(vec![Family::Cross]);
        assert!(t9_ablation(e, &sel_none).rows.is_empty());
    }
}
