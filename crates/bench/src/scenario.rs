//! The unified scenario pipeline.
//!
//! Every experiment in the harness — every cell of every table T1–T11 — is
//! one [`ScenarioSpec`]: a workload family, a target size, a seed, a
//! strategy from the registry ([`StrategyKind`]), an activation schedule
//! ([`SchedulerKind`], FSYNC by default), and a limit policy. The
//! batch executor [`run_batch`] fans a spec list out over worker threads
//! (std's scoped threads with an atomic work queue — self-balancing, no
//! locks, order-preserving) and returns one [`ScenarioResult`] per spec.
//!
//! The registry covers the paper's algorithm, the four closed-chain
//! baselines of Section 1 (behind one `Box<dyn Strategy>` factory), the
//! audited paper runs that feed the Lemma tables, and the two open-chain
//! \[KM09\] settings (zip, Manhattan hopper) the paper generalizes.
//!
//! Execution is **one pipeline**: [`run_scenario`] asks the registry for a
//! [`ScenarioDriver`] and runs it under the spec's [`RunLimits`] — no
//! per-kind branching. The audited kind is not a separate engine path; its
//! driver is the paper strategy on the same engine with the
//! `LemmaAuditor` observer attached (see `chain_sim::observe`), and the
//! open-chain settings run behind the same driver interface and limit
//! policy as everything else.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use baselines::{
    manhattan_hopper, open_chain_zip, CompassSe, CompassSeKernel, GlobalVision, GlobalVisionKernel,
    NaiveLocal, NaiveLocalKernel,
};
use chain_sim::kernel::{
    ActivationRule, FsyncRule, KFairRule, KernelChain, KernelSim, RandomRule, RoundKernel,
    RoundRobinRule, StandKernel,
};
use chain_sim::strategy::Stand;
use chain_sim::{
    ClosedChain, FrameRing, OpenChain, Outcome, PackedChain, ProgressProbe, ProgressSlot,
    ReplaySink, ReplayWriter, RunLimits, SchedulerKind, Sim, Strategy,
};
use euclid_geom::{EuclidChain, EuclidSim, FoldReflect, Vec2};
use gathering_core::audit::{AuditSummary, LemmaAuditor};
use gathering_core::{ClosedChainGathering, GatherConfig, RunStats, SsyncGathering};
use geom_core::GeometryKind;
use obs::PhaseTimer;
use workloads::Family;

/// The strategy registry: everything the pipeline can run on a scenario.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum StrategyKind {
    /// The paper's local gathering algorithm with the given configuration.
    Paper(GatherConfig),
    /// The paper's algorithm with the Lemma auditors attached (event
    /// recording on; [`ScenarioResult::audit`] is populated).
    PaperAudited(GatherConfig),
    /// The paper's rule wrapped for SSYNC safety: chain-safety guard +
    /// adaptive SE-drain fallback (`gathering_core::SsyncGathering`).
    /// Identical to [`StrategyKind::Paper`] under FSYNC; gathers under
    /// every scheduler in [`SchedulerKind::SWEEP`].
    PaperSsync(GatherConfig),
    /// Baseline: global smallest-enclosing-square vision.
    GlobalVision,
    /// Baseline: global compass, drain to the south-east.
    CompassSe,
    /// Baseline: midpoint pull with a global safety oracle (inadmissible;
    /// measured for reference).
    NaiveLocal,
    /// Baseline: nobody moves (degenerate control).
    Stand,
    /// \[KM09\] setting: the chain cut open, endpoints zip inward.
    OpenZip,
    /// \[KM09\] setting: fixed-endpoint Manhattan hopper.
    Hopper,
    /// The linear-time Euclidean closed-chain strategy (continuous
    /// geometry backend; requires [`GeometryKind::Euclid`], FSYNC-only).
    EuclidChain,
}

impl StrategyKind {
    /// Paper algorithm with the canonical configuration.
    pub fn paper() -> Self {
        StrategyKind::Paper(GatherConfig::paper())
    }

    /// SSYNC-safe paper wrapper with the canonical configuration.
    pub fn paper_ssync() -> Self {
        StrategyKind::PaperSsync(GatherConfig::paper())
    }

    /// Registry name (stable, used in table headers and trace labels).
    pub fn name(&self) -> &'static str {
        match self {
            StrategyKind::Paper(_) => "paper",
            StrategyKind::PaperAudited(_) => "paper-audited",
            StrategyKind::PaperSsync(_) => "paper-ssync",
            StrategyKind::GlobalVision => "global-vision",
            StrategyKind::CompassSe => "compass-se",
            StrategyKind::NaiveLocal => "naive-local",
            StrategyKind::Stand => "stand",
            StrategyKind::OpenZip => "open-zip",
            StrategyKind::Hopper => "hopper",
            StrategyKind::EuclidChain => "euclid-chain",
        }
    }

    /// Every registry name, in registry order (the order campaign grids
    /// and report columns use).
    pub const ALL_NAMES: [&'static str; 10] = [
        "paper",
        "paper-audited",
        "paper-ssync",
        "global-vision",
        "compass-se",
        "naive-local",
        "stand",
        "open-zip",
        "hopper",
        "euclid-chain",
    ];

    /// Parse a registry name back into a strategy (the inverse of
    /// [`StrategyKind::name`]). The paper kinds come back with the
    /// *canonical* configuration — ablated configs are not representable
    /// as bare names, which is exactly the property the campaign store
    /// relies on: a name in a result row denotes one canonical spec.
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "paper" => Some(StrategyKind::paper()),
            "paper-audited" => Some(StrategyKind::PaperAudited(GatherConfig::paper())),
            "paper-ssync" => Some(StrategyKind::paper_ssync()),
            "global-vision" => Some(StrategyKind::GlobalVision),
            "compass-se" => Some(StrategyKind::CompassSe),
            "naive-local" => Some(StrategyKind::NaiveLocal),
            "stand" => Some(StrategyKind::Stand),
            "open-zip" => Some(StrategyKind::OpenZip),
            "hopper" => Some(StrategyKind::Hopper),
            "euclid-chain" => Some(StrategyKind::EuclidChain),
            _ => None,
        }
    }

    /// The closed-chain strategy factory: the paper's algorithm and all
    /// four baselines behind one object-safe interface. The audited kind
    /// builds the same paper strategy with event recording on — the audit
    /// itself is an *observer* the driver attaches, not a different
    /// strategy. A recording strategy accumulates run events until
    /// something drains them, so run it with an auditor attached (or go
    /// through [`StrategyKind::driver`], which composes one); bare engine
    /// runs that want zero overhead should build
    /// [`StrategyKind::Paper`] instead. Returns `None` only for the
    /// open-chain settings, which have no closed-chain `Strategy`.
    pub fn build(&self) -> Option<Box<dyn Strategy + Send>> {
        match self {
            StrategyKind::Paper(cfg) => Some(Box::new(ClosedChainGathering::new(*cfg))),
            StrategyKind::PaperAudited(cfg) => Some(Box::new(
                ClosedChainGathering::new(*cfg).with_event_recording(),
            )),
            StrategyKind::PaperSsync(cfg) => Some(Box::new(SsyncGathering::new(*cfg))),
            StrategyKind::GlobalVision => Some(Box::new(GlobalVision::new())),
            StrategyKind::CompassSe => Some(Box::new(CompassSe::new())),
            StrategyKind::NaiveLocal => Some(Box::new(NaiveLocal::new())),
            StrategyKind::Stand => Some(Box::new(Stand)),
            StrategyKind::OpenZip | StrategyKind::Hopper | StrategyKind::EuclidChain => None,
        }
    }

    /// `true` for the open-chain \[KM09\] settings, which run outside the
    /// engine (and therefore outside the scheduler axis: they are
    /// FSYNC-only; campaign grids skip their SSYNC combinations).
    pub fn is_open_chain(&self) -> bool {
        matches!(self, StrategyKind::OpenZip | StrategyKind::Hopper)
    }

    /// `true` for the Euclidean geometry strategy, which runs on the
    /// continuous backend ([`GeometryKind::Euclid`] only, FSYNC-only).
    pub fn is_euclid(&self) -> bool {
        matches!(self, StrategyKind::EuclidChain)
    }

    /// The registry's limit policy: how [`LimitPolicy::Auto`] resolves for
    /// this kind on a *generated* chain. Paper kinds get the Theorem 1
    /// bound ([`RunLimits::for_gathering`] with the config's `L`),
    /// diameter-bound baselines get [`RunLimits::generous`], and the
    /// open-chain settings get the linear [`RunLimits::for_open_chain`].
    pub fn auto_limits(&self, chain: &ClosedChain) -> RunLimits {
        let n = chain.len();
        match self {
            StrategyKind::Paper(cfg) | StrategyKind::PaperAudited(cfg) => {
                RunLimits::for_gathering(n, cfg.l_period)
            }
            // The SSYNC wrapper's fallback layer is the diameter-bound SE
            // drain, so it gets the baselines' diameter-scaled budget
            // (times the scheduler slowdown, applied by `resolve_limits`).
            StrategyKind::PaperSsync(_)
            | StrategyKind::GlobalVision
            | StrategyKind::CompassSe
            | StrategyKind::NaiveLocal
            | StrategyKind::Stand => RunLimits::generous(n, chain.bounding().diameter() as u64),
            StrategyKind::OpenZip | StrategyKind::Hopper => RunLimits::for_open_chain(n),
            StrategyKind::EuclidChain => RunLimits::for_euclid_chain(n),
        }
    }

    /// Build the driver that executes this kind on `chain` under the
    /// given activation `scheduler` — the single entry point
    /// [`run_scenario`] uses for every registry kind. Closed kinds get
    /// the engine (audited = paper + the `LemmaAuditor` observer) with
    /// the scheduler attached, `seed` feeding its randomized kinds (one
    /// scenario seed determines both the chain and the schedule). The
    /// open-chain kinds get the corresponding \[KM09\] procedure over the
    /// chain cut open; the \[KM09\] procedures are FSYNC-only, so an
    /// SSYNC scheduler on an open kind is rejected at grid-construction
    /// time rather than silently ignored.
    ///
    /// # Panics
    /// If `scheduler` is an SSYNC kind and `self` is an open-chain kind.
    pub fn driver(
        &self,
        chain: ClosedChain,
        scheduler: SchedulerKind,
        seed: u64,
    ) -> Box<dyn ScenarioDriver> {
        self.driver_probed(chain, scheduler, seed, None)
    }

    /// [`StrategyKind::driver`] with an optional live-progress feed: when
    /// a [`ProgressSlot`] is supplied, engine kinds attach a
    /// [`ProgressProbe`] observer so other threads can watch the run
    /// round by round (the `gatherd` progress endpoint), and the
    /// open-chain kinds publish their start and end states (their \[KM09\]
    /// procedures run outside the engine, so there is no per-round feed).
    ///
    /// # Panics
    /// If `scheduler` is an SSYNC kind and `self` is an open-chain kind.
    pub fn driver_probed(
        &self,
        chain: ClosedChain,
        scheduler: SchedulerKind,
        seed: u64,
        probe: Option<Arc<ProgressSlot>>,
    ) -> Box<dyn ScenarioDriver> {
        StrategyFactory::resolve(*self).driver_tapped(
            chain,
            scheduler,
            seed,
            RunTaps::probed(probe),
        )
    }

    /// The boxed/engine execution paths — everything except the kernel
    /// fast path, which [`StrategyFactory::driver_tapped`] dispatches in
    /// front of this.
    fn driver_boxed(
        &self,
        chain: ClosedChain,
        scheduler: SchedulerKind,
        seed: u64,
        taps: RunTaps,
    ) -> Box<dyn ScenarioDriver> {
        // Attach whatever taps were requested. Observers are passive: the
        // run's result is byte-identical with or without them.
        fn attach<S: Strategy + 'static>(sim: &mut Sim<S>, taps: RunTaps) {
            if let Some(slot) = taps.probe {
                sim.add_observer(ProgressProbe::new(slot));
            }
            if let Some(tap) = taps.replay {
                let mut writer = ReplayWriter::new(tap.sink);
                if let Some(ring) = tap.ring {
                    writer = writer.with_ring(ring);
                }
                sim.add_observer(writer);
            }
            if let Some(timer) = taps.phases {
                sim.set_phase_timer(timer);
            }
        }
        match self {
            StrategyKind::Paper(cfg) => {
                let mut sim = Sim::new(chain, ClosedChainGathering::new(*cfg))
                    .with_scheduler(scheduler.build(seed));
                attach(&mut sim, taps);
                Box::new(PaperDriver {
                    sim,
                    audited: false,
                })
            }
            StrategyKind::PaperAudited(cfg) => {
                let strategy = ClosedChainGathering::new(*cfg).with_event_recording();
                let auditor = LemmaAuditor::new(&strategy);
                let mut sim = Sim::new(chain, strategy)
                    .with_scheduler(scheduler.build(seed))
                    .observe(auditor);
                attach(&mut sim, taps);
                Box::new(PaperDriver { sim, audited: true })
            }
            StrategyKind::PaperSsync(_)
            | StrategyKind::GlobalVision
            | StrategyKind::CompassSe
            | StrategyKind::NaiveLocal
            | StrategyKind::Stand => {
                // `PaperSsync` builds `SsyncGathering`, whose
                // `wants_chain_guard` turns the engine's chain-safety
                // guard on through the boxed forwarding.
                let mut sim = Sim::new(
                    chain,
                    self.build().expect("closed-chain kinds always build"),
                )
                .with_scheduler(scheduler.build(seed));
                attach(&mut sim, taps);
                Box::new(EngineDriver { sim })
            }
            StrategyKind::OpenZip | StrategyKind::Hopper => {
                assert!(
                    scheduler.is_fsync(),
                    "open-chain kind {} has no SSYNC semantics (scheduler {})",
                    self.name(),
                    scheduler.name()
                );
                assert!(
                    taps.replay.is_none(),
                    "open-chain kind {} runs outside the engine; no replay recording",
                    self.name()
                );
                Box::new(OpenDriver {
                    chain,
                    hopper: matches!(self, StrategyKind::Hopper),
                    probe: taps.probe,
                })
            }
            StrategyKind::EuclidChain => {
                assert!(
                    scheduler.is_fsync(),
                    "euclid-chain is FSYNC-only (scheduler {}); its safety argument \
                     needs the active parity class's neighbors static",
                    scheduler.name()
                );
                assert!(
                    taps.replay.is_none(),
                    "euclid-chain runs on the continuous backend; the replay format \
                     encodes grid hop codes and cannot record it"
                );
                // Lift the grid family instance into Euclidean general
                // position (seed-derived rotation, edges rescaled to unit
                // viability) — see `workloads::euclid_points`.
                let pts = workloads::euclid_points(&chain, seed);
                let euclid =
                    EuclidChain::new(pts.into_iter().map(|(x, y)| Vec2::new(x, y)).collect())
                        .expect("lifted family chains are viable Euclidean chains");
                Box::new(EuclidDriver {
                    sim: EuclidSim::new(euclid, FoldReflect),
                    probe: taps.probe,
                })
            }
        }
    }
}

/// Telemetry taps for one scenario run: a live progress slot, replay
/// recording, or both. All taps are passive — the run's
/// [`ScenarioResult`] is byte-identical with or without them; what
/// changes is only the execution path (replay recording needs the
/// observer-capable boxed engine, which the kernel path replicates byte
/// for byte).
#[derive(Clone, Debug, Default)]
pub struct RunTaps {
    /// Live progress counters (the gatherd `/progress` feed).
    pub probe: Option<Arc<ProgressSlot>>,
    /// Replay recording (the gatherd `?replay` / `/watch` feed).
    pub replay: Option<ReplayTap>,
    /// Sampling phase timer ([`obs::PhaseTimer`]): per-round
    /// compute/guard/apply/merge wall-time attribution on the engine and
    /// kernel paths (the open-chain and Euclidean procedures run outside
    /// the grid round loop and ignore it). Shared: one timer can
    /// aggregate a whole batch.
    pub phases: Option<Arc<PhaseTimer>>,
}

impl RunTaps {
    /// Taps carrying only a progress slot (the pre-replay probed shape).
    pub fn probed(probe: Option<Arc<ProgressSlot>>) -> Self {
        RunTaps {
            probe,
            ..Self::default()
        }
    }

    /// Taps carrying only a phase timer.
    pub fn timed(timer: Arc<PhaseTimer>) -> Self {
        RunTaps {
            phases: Some(timer),
            ..Self::default()
        }
    }
}

/// The replay half of [`RunTaps`]: where the finished replay blob goes,
/// plus an optional live frame ring for streaming watchers.
#[derive(Clone, Debug)]
pub struct ReplayTap {
    /// Receives the complete replay bytes when the run's outcome is
    /// decided.
    pub sink: ReplaySink,
    /// When present, one encoded [`chain_sim::LiveFrame`] per round is
    /// published here for streaming consumers.
    pub ring: Option<Arc<FrameRing>>,
}

/// A resolved kind→driver factory: the registry resolution for one
/// strategy kind — which execution path it takes, in particular whether
/// its specs are eligible for the data-oriented kernel path — done once
/// and reused by every spec sharing the kind. The batch executor hoists
/// these into a [`FactorySet`], so batch setup resolves O(kinds)
/// factories, not O(specs).
#[derive(Clone, Copy, Debug)]
pub struct StrategyFactory {
    kind: StrategyKind,
    kernel_eligible: bool,
}

impl StrategyFactory {
    /// Resolve `kind` against the registry.
    pub fn resolve(kind: StrategyKind) -> Self {
        StrategyFactory {
            kernel_eligible: matches!(
                kind,
                StrategyKind::GlobalVision
                    | StrategyKind::CompassSe
                    | StrategyKind::NaiveLocal
                    | StrategyKind::Stand
            ),
            kind,
        }
    }

    /// The kind this factory builds drivers for.
    pub fn kind(&self) -> StrategyKind {
        self.kind
    }

    /// `true` when this kind's scenarios run on the data-oriented kernel
    /// path (see `chain_sim::kernel`).
    pub fn kernel_eligible(&self) -> bool {
        self.kernel_eligible
    }

    /// Build the driver for one scenario of this factory's kind — the
    /// dispatch behind [`StrategyKind::driver_probed`].
    ///
    /// Kernel-eligible kinds ride the monomorphized kernel path
    /// (byte-identical to the boxed engine; `tests/kernel_diff.rs`). A
    /// progress slot is passive shared state the kernel driver publishes
    /// into natively, so probed runs — the gatherd cache misses — stay
    /// on the fast path too. Only an input chain the packed
    /// representation rejects (coinciding neighbors, which only a
    /// hand-built chain can have) falls back to the boxed engine, which
    /// merges them away on round one.
    pub fn driver_probed(
        &self,
        chain: ClosedChain,
        scheduler: SchedulerKind,
        seed: u64,
        probe: Option<Arc<ProgressSlot>>,
    ) -> Box<dyn ScenarioDriver> {
        self.driver_tapped(chain, scheduler, seed, RunTaps::probed(probe))
    }

    /// [`StrategyFactory::driver_probed`] generalized to the full
    /// [`RunTaps`]: progress slot, replay recording, or both.
    ///
    /// Replay recording routes through the boxed engine even for
    /// kernel-eligible kinds — the kernel path has no observers by
    /// design, and its byte-identity with the boxed engine (CI-gated in
    /// `tests/kernel_diff.rs`) is exactly what makes the detour safe: a
    /// recorded run produces the same [`DriveReport`] the kernel would.
    pub fn driver_tapped(
        &self,
        chain: ClosedChain,
        scheduler: SchedulerKind,
        seed: u64,
        taps: RunTaps,
    ) -> Box<dyn ScenarioDriver> {
        if self.kernel_eligible && taps.replay.is_none() {
            match kernel_driver(
                &self.kind,
                chain,
                scheduler,
                seed,
                taps.probe.clone(),
                taps.phases.clone(),
            ) {
                Ok(driver) => return driver,
                Err(chain) => return self.kind.driver_boxed(chain, scheduler, seed, taps),
            }
        }
        self.kind.driver_boxed(chain, scheduler, seed, taps)
    }
}

/// The hoisted kind→factory table of a batch: exactly one
/// [`StrategyFactory::resolve`] per *distinct* strategy kind in the spec
/// list.
pub struct FactorySet {
    factories: Vec<StrategyFactory>,
}

impl FactorySet {
    /// Resolve every distinct kind appearing in `specs` exactly once
    /// (linear scan — kind counts are single digits).
    pub fn for_specs(specs: &[ScenarioSpec]) -> Self {
        let mut factories: Vec<StrategyFactory> = Vec::new();
        for spec in specs {
            if !factories.iter().any(|f| f.kind() == spec.strategy) {
                factories.push(StrategyFactory::resolve(spec.strategy));
            }
        }
        FactorySet { factories }
    }

    /// Resolved factories — equals the number of distinct kinds in the
    /// batch, never the number of specs.
    pub fn len(&self) -> usize {
        self.factories.len()
    }

    /// `true` when the batch had no specs.
    pub fn is_empty(&self) -> bool {
        self.factories.is_empty()
    }

    /// The factory for `kind`. Falls back to an on-the-fly resolution if
    /// a kind outside the construction set is asked for, keeping the
    /// lookup total.
    pub fn get(&self, kind: StrategyKind) -> StrategyFactory {
        self.factories
            .iter()
            .find(|f| f.kind() == kind)
            .copied()
            .unwrap_or_else(|| StrategyFactory::resolve(kind))
    }
}

/// What any [`ScenarioDriver`] reports back: the uniform superset of every
/// kind's detail (paper stats, audit summaries, open-chain outcomes).
#[derive(Clone, Debug)]
pub struct DriveReport {
    /// How the run ended.
    pub outcome: Outcome,
    /// Total robots removed by merges over the run.
    pub merges_total: usize,
    /// Longest mergeless gap (rounds).
    pub longest_gap: u64,
    /// Run statistics of the paper's strategy (paper kinds only).
    pub stats: Option<RunStats>,
    /// Lemma audit summary (audited kinds only).
    pub audit: Option<AuditSummary>,
    /// Open-chain detail (open kinds only).
    pub open: Option<OpenChainOutcome>,
    /// Last round with any movement or merge — the makespan half of the
    /// min-max objectives (0 for paths that do not track it).
    pub makespan: u64,
    /// Maximum per-robot cumulative travel distance — the min-max travel
    /// objective. `None` on paths that do not track travel (the kernel
    /// fast path and the open-chain procedures).
    pub max_travel: Option<f64>,
}

/// The uniform execution interface behind [`run_scenario`]: one driver per
/// registry kind, built by [`StrategyKind::driver`], run once under the
/// spec's [`RunLimits`]. Closed-chain kinds wrap the engine's single run
/// loop (plus whatever observers the kind composes); open-chain kinds wrap
/// the \[KM09\] procedures.
pub trait ScenarioDriver {
    /// Run to completion under `limits` and report. Consumes the driver —
    /// a driver executes exactly one scenario (build a fresh one per run).
    fn drive(self: Box<Self>, limits: RunLimits) -> DriveReport;
}

/// Closed-chain driver for the paper's algorithm — plain or with the
/// Lemma audit observer attached (`audited`).
struct PaperDriver {
    sim: Sim<ClosedChainGathering>,
    audited: bool,
}

impl ScenarioDriver for PaperDriver {
    fn drive(mut self: Box<Self>, limits: RunLimits) -> DriveReport {
        let outcome = self.sim.run(limits);
        let progress = self.sim.progress();
        // Preserve the registry's reporting split: audited results carry
        // the audit summary (whose gap/merge accounting is authoritative
        // for the Lemma tables), plain paper results carry the run stats.
        let audit = self.audited.then(|| {
            self.sim
                .observer::<LemmaAuditor>()
                .expect("audited driver attached the auditor")
                .summary()
        });
        let makespan = progress.makespan();
        let max_travel = Some(self.sim.max_travel());
        match audit {
            Some(summary) => DriveReport {
                outcome,
                merges_total: summary.total_merged_robots,
                longest_gap: summary.longest_mergeless_gap,
                stats: None,
                audit: Some(summary),
                open: None,
                makespan,
                max_travel,
            },
            None => DriveReport {
                outcome,
                merges_total: progress.total_removed(),
                longest_gap: progress.longest_mergeless_gap(),
                stats: Some(self.sim.strategy().stats().clone()),
                audit: None,
                open: None,
                makespan,
                max_travel,
            },
        }
    }
}

/// Closed-chain driver for the boxed baseline strategies (the fallback
/// when the packed representation rejects the input chain).
struct EngineDriver {
    sim: Sim<Box<dyn Strategy + Send>>,
}

impl ScenarioDriver for EngineDriver {
    fn drive(mut self: Box<Self>, limits: RunLimits) -> DriveReport {
        let outcome = self.sim.run(limits);
        let progress = self.sim.progress();
        DriveReport {
            outcome,
            merges_total: progress.total_removed(),
            longest_gap: progress.longest_mergeless_gap(),
            stats: None,
            audit: None,
            open: None,
            makespan: progress.makespan(),
            max_travel: Some(self.sim.max_travel()),
        }
    }
}

/// Closed-chain driver on the data-oriented fast path: a monomorphized
/// `(RoundKernel, ActivationRule)` pair over packed hop-code state,
/// byte-identical to [`EngineDriver`] on the same spec. When a progress
/// slot is attached it publishes exactly what a [`ProgressProbe`] would
/// (the slot is passive shared state, not an observer, so the kernel
/// path keeps its no-observers guarantee).
struct KernelDriver<K: RoundKernel, A: ActivationRule> {
    sim: KernelSim<K, A>,
    probe: Option<Arc<ProgressSlot>>,
}

impl<K: RoundKernel, A: ActivationRule> ScenarioDriver for KernelDriver<K, A> {
    fn drive(mut self: Box<Self>, limits: RunLimits) -> DriveReport {
        let outcome = match &self.probe {
            None => self.sim.run(limits),
            Some(slot) => {
                slot.publish(0, self.sim.chain().len(), 0, 0);
                let mut removed_total = 0usize;
                let feed = Arc::clone(slot);
                // Kernel-eligible strategies never opt into the chain
                // guard, so the guard counter stays 0 on this path.
                let outcome = self.sim.run_with(limits, |summary| {
                    removed_total += summary.removed;
                    feed.publish(summary.round + 1, summary.len_after, removed_total, 0);
                });
                // Mirror `ProgressProbe::on_finish`: republish the final
                // state at the last published round, then close the feed.
                slot.publish(
                    slot.snapshot().round,
                    self.sim.chain().len(),
                    removed_total,
                    0,
                );
                slot.finish();
                outcome
            }
        };
        let progress = self.sim.progress();
        DriveReport {
            outcome,
            merges_total: progress.total_removed(),
            longest_gap: progress.longest_mergeless_gap(),
            stats: None,
            audit: None,
            open: None,
            makespan: progress.makespan(),
            // The kernel path deliberately tracks no per-robot travel —
            // it would cost a float write per hop on the hot loop and the
            // byte-identity gate compares Progress, not travel.
            max_travel: None,
        }
    }
}

/// Closed-chain driver on the continuous Euclidean backend:
/// [`EuclidSim`] running the [`FoldReflect`] strategy over an
/// [`EuclidChain`] lifted from the grid family instance. Mirrors
/// [`KernelDriver`]'s probe handling (the slot is passive shared state).
struct EuclidDriver {
    sim: EuclidSim<FoldReflect>,
    probe: Option<Arc<ProgressSlot>>,
}

impl ScenarioDriver for EuclidDriver {
    fn drive(mut self: Box<Self>, limits: RunLimits) -> DriveReport {
        let outcome = match &self.probe {
            None => self.sim.run(limits),
            Some(slot) => {
                slot.publish(0, self.sim.chain().len(), 0, 0);
                let mut removed_total = 0usize;
                let feed = Arc::clone(slot);
                let outcome = self.sim.run_with(limits, |summary| {
                    removed_total += summary.removed;
                    feed.publish(summary.round + 1, summary.len_after, removed_total, 0);
                });
                slot.publish(
                    slot.snapshot().round,
                    self.sim.chain().len(),
                    removed_total,
                    0,
                );
                slot.finish();
                outcome
            }
        };
        let progress = self.sim.progress();
        DriveReport {
            outcome,
            merges_total: progress.total_removed(),
            longest_gap: progress.longest_mergeless_gap(),
            stats: None,
            audit: None,
            open: None,
            makespan: progress.makespan(),
            max_travel: Some(self.sim.max_travel()),
        }
    }
}

/// Build the kernel-path driver for a kernel-eligible strategy kind, or
/// hand the chain back if the packed representation rejects it (input
/// chains with coinciding neighbors — the boxed engine merges those on
/// round one, the packed invariant forbids them).
///
/// The double match monomorphizes one driver per (strategy, scheduler)
/// combination; every combination replicates the boxed engine byte for
/// byte (`tests/kernel_diff.rs`).
fn kernel_driver(
    kind: &StrategyKind,
    chain: ClosedChain,
    scheduler: SchedulerKind,
    seed: u64,
    probe: Option<Arc<ProgressSlot>>,
    phases: Option<Arc<PhaseTimer>>,
) -> Result<Box<dyn ScenarioDriver>, ClosedChain> {
    fn with_rule<K: RoundKernel + 'static>(
        kernel: K,
        chain: KernelChain,
        scheduler: SchedulerKind,
        seed: u64,
        probe: Option<Arc<ProgressSlot>>,
        phases: Option<Arc<PhaseTimer>>,
    ) -> Box<dyn ScenarioDriver> {
        fn boxed<K: RoundKernel + 'static, A: ActivationRule + 'static>(
            mut sim: KernelSim<K, A>,
            probe: Option<Arc<ProgressSlot>>,
            phases: Option<Arc<PhaseTimer>>,
        ) -> Box<dyn ScenarioDriver> {
            if let Some(timer) = phases {
                sim.set_phase_timer(timer);
            }
            Box::new(KernelDriver { sim, probe })
        }
        match scheduler {
            SchedulerKind::Fsync => boxed(KernelSim::new(chain, kernel, FsyncRule), probe, phases),
            SchedulerKind::RoundRobin(groups) => boxed(
                KernelSim::new(chain, kernel, RoundRobinRule::new(groups)),
                probe,
                phases,
            ),
            SchedulerKind::Random(percent) => boxed(
                KernelSim::new(chain, kernel, RandomRule::new(seed, percent)),
                probe,
                phases,
            ),
            SchedulerKind::KFair(k) => boxed(
                KernelSim::new(chain, kernel, KFairRule::new(seed, k)),
                probe,
                phases,
            ),
        }
    }

    let packed = match PackedChain::from_chain(&chain) {
        Ok(packed) => packed,
        Err(_) => return Err(chain),
    };
    let kc = KernelChain::new(packed);
    Ok(match kind {
        StrategyKind::CompassSe => {
            with_rule(CompassSeKernel::new(), kc, scheduler, seed, probe, phases)
        }
        StrategyKind::NaiveLocal => {
            with_rule(NaiveLocalKernel::new(), kc, scheduler, seed, probe, phases)
        }
        StrategyKind::GlobalVision => with_rule(
            GlobalVisionKernel::new(),
            kc,
            scheduler,
            seed,
            probe,
            phases,
        ),
        StrategyKind::Stand => with_rule(StandKernel, kc, scheduler, seed, probe, phases),
        other => unreachable!("no kernel for strategy kind {}", other.name()),
    })
}

/// Open-chain driver: the generated closed chain is cut open
/// ([`OpenChain::from_closed_positions`]) and run through the zip or the
/// Manhattan hopper.
struct OpenDriver {
    chain: ClosedChain,
    hopper: bool,
    probe: Option<Arc<ProgressSlot>>,
}

impl ScenarioDriver for OpenDriver {
    fn drive(self: Box<Self>, limits: RunLimits) -> DriveReport {
        let chain = self.chain;
        let n = chain.len();
        if let Some(slot) = &self.probe {
            slot.publish(0, n, 0, 0);
        }
        let open = OpenChain::from_closed_positions(chain.positions())
            .expect("family chains cut open cleanly");
        let (outcome, detail) = if self.hopper {
            let out = manhattan_hopper(open, limits.max_rounds);
            let outcome = if out.is_optimal() {
                Outcome::Gathered { rounds: out.rounds }
            } else {
                Outcome::RoundLimit { rounds: out.rounds }
            };
            (
                outcome,
                OpenChainOutcome {
                    rounds: out.rounds,
                    final_len: out.final_len,
                    optimal_len: Some(out.optimal_len),
                },
            )
        } else {
            let zip = open_chain_zip(open, limits.max_rounds);
            let outcome = if zip.gathered {
                Outcome::Gathered { rounds: zip.rounds }
            } else {
                Outcome::RoundLimit { rounds: zip.rounds }
            };
            (
                outcome,
                OpenChainOutcome {
                    rounds: zip.rounds,
                    final_len: zip.final_len,
                    optimal_len: None,
                },
            )
        };
        if let Some(slot) = &self.probe {
            slot.publish(detail.rounds, detail.final_len, n - detail.final_len, 0);
            slot.finish();
        }
        DriveReport {
            outcome,
            merges_total: n - detail.final_len,
            longest_gap: 0,
            stats: None,
            audit: None,
            open: Some(detail),
            // The [KM09] procedures run every robot every round until they
            // stop, so the last active round is the round count; they
            // track no per-robot travel.
            makespan: detail.rounds,
            max_travel: None,
        }
    }
}

/// How a scenario's run limits are chosen.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LimitPolicy {
    /// Derive from the strategy and the *generated* chain: the paper's
    /// algorithm gets [`RunLimits::for_gathering`] with its config's `L`,
    /// diameter-bound baselines get [`RunLimits::generous`].
    Auto,
    /// Use exactly these limits.
    Fixed(RunLimits),
}

/// One cell of the experiment grid.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ScenarioSpec {
    /// Workload family generating the input chain.
    pub family: Family,
    /// Target robot count (the family's `generate` treats it as a hint;
    /// the generated chain's `len()` is authoritative and lands in
    /// [`ScenarioResult::n`]).
    pub n: usize,
    /// Generator seed (pure: same spec, same chain).
    pub seed: u64,
    /// Registry strategy to run on the generated chain.
    pub strategy: StrategyKind,
    /// Activation schedule the engine runs under
    /// ([`SchedulerKind::Fsync`] — the paper's model — unless a
    /// robustness sweep says otherwise).
    pub scheduler: SchedulerKind,
    /// Geometry backend the scenario runs on
    /// ([`GeometryKind::Grid`] — the paper's model — everywhere except
    /// the Euclidean comparison runs).
    pub geometry: GeometryKind,
    /// How the run limits are derived.
    pub limits: LimitPolicy,
}

impl ScenarioSpec {
    /// Paper algorithm, canonical config, automatic limits.
    pub fn paper(family: Family, n: usize, seed: u64) -> Self {
        Self::with_config(family, n, seed, GatherConfig::paper())
    }

    /// Paper algorithm with a custom (e.g. ablated) configuration.
    pub fn with_config(family: Family, n: usize, seed: u64, cfg: GatherConfig) -> Self {
        ScenarioSpec {
            family,
            n,
            seed,
            strategy: StrategyKind::Paper(cfg),
            scheduler: SchedulerKind::Fsync,
            geometry: GeometryKind::Grid,
            limits: LimitPolicy::Auto,
        }
    }

    /// Audited paper run (Lemma instrumentation on).
    pub fn audited(family: Family, n: usize, seed: u64) -> Self {
        ScenarioSpec {
            family,
            n,
            seed,
            strategy: StrategyKind::PaperAudited(GatherConfig::paper()),
            scheduler: SchedulerKind::Fsync,
            geometry: GeometryKind::Grid,
            limits: LimitPolicy::Auto,
        }
    }

    /// Any registry strategy with automatic limits.
    pub fn strategy(family: Family, n: usize, seed: u64, strategy: StrategyKind) -> Self {
        ScenarioSpec {
            family,
            n,
            seed,
            strategy,
            scheduler: SchedulerKind::Fsync,
            geometry: if strategy.is_euclid() {
                GeometryKind::Euclid
            } else {
                GeometryKind::Grid
            },
            limits: LimitPolicy::Auto,
        }
    }

    /// The Euclidean comparison run: the family instance lifted off the
    /// lattice and gathered by `euclid-chain` on the continuous backend.
    pub fn euclid(family: Family, n: usize, seed: u64) -> Self {
        Self::strategy(family, n, seed, StrategyKind::EuclidChain)
    }

    /// Run under an SSYNC (or explicit FSYNC) activation schedule
    /// (builder style; the default everywhere else is FSYNC).
    pub fn with_scheduler(mut self, scheduler: SchedulerKind) -> Self {
        self.scheduler = scheduler;
        self
    }

    /// Run on an explicit geometry backend (builder style; the default
    /// everywhere else follows the strategy: `euclid-chain` runs
    /// Euclidean, everything else grid).
    pub fn with_geometry(mut self, geometry: GeometryKind) -> Self {
        self.geometry = geometry;
        self
    }

    /// Geometry-axis compatibility: the continuous backend supports
    /// exactly the `euclid-chain` strategy under FSYNC, and `euclid-chain`
    /// cannot run on the grid. Returns the human-readable rejection, or
    /// `None` when the combination is runnable. Service layers surface
    /// this before building a driver; [`run_scenario`] panics on it (a
    /// spec that bypassed validation is a caller bug).
    pub fn geometry_error(&self) -> Option<String> {
        match self.geometry {
            GeometryKind::Grid => self.strategy.is_euclid().then(|| {
                format!(
                    "strategy '{}' requires geometry 'euclid' (got 'grid')",
                    self.strategy.name()
                )
            }),
            GeometryKind::Euclid => {
                if !self.strategy.is_euclid() {
                    Some(format!(
                        "geometry 'euclid' supports only strategy 'euclid-chain' \
                         (got '{}')",
                        self.strategy.name()
                    ))
                } else if !self.scheduler.is_fsync() {
                    Some(format!(
                        "geometry 'euclid' is FSYNC-only (got scheduler '{}')",
                        self.scheduler.name()
                    ))
                } else {
                    None
                }
            }
        }
    }

    /// Generate this scenario's input chain (pure in `(family, n, seed)`).
    pub fn generate(&self) -> ClosedChain {
        self.family.generate(self.n, self.seed)
    }

    /// The limits this spec runs under, given its generated chain: the
    /// fixed override, or the registry's [`StrategyKind::auto_limits`]
    /// scaled by the scheduler's inverse duty cycle
    /// ([`SchedulerKind::slowdown`]) — an SSYNC run that activates 1/k of
    /// the robots per round gets k× the FSYNC round budget before a limit
    /// trips. Fixed limits are used verbatim.
    pub fn resolve_limits(&self, chain: &ClosedChain) -> RunLimits {
        match self.limits {
            LimitPolicy::Fixed(l) => l,
            LimitPolicy::Auto => {
                let base = self.strategy.auto_limits(chain);
                let s = self.scheduler.slowdown();
                RunLimits {
                    max_rounds: base.max_rounds.saturating_mul(s),
                    stall_window: base.stall_window.saturating_mul(s),
                }
            }
        }
    }
}

/// Extra outcome detail for the open-chain settings.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OpenChainOutcome {
    /// Rounds until the open-chain procedure stopped.
    pub rounds: u64,
    /// Chain length when it stopped.
    pub final_len: usize,
    /// The Manhattan optimum between the fixed endpoints (hopper only).
    pub optimal_len: Option<usize>,
}

/// What one scenario produced.
#[derive(Clone, Debug)]
pub struct ScenarioResult {
    /// The spec that produced this result (specs are `Copy`; the echo
    /// makes batch results self-describing for grouping).
    pub spec: ScenarioSpec,
    /// Actual generated chain length.
    pub n: usize,
    /// How the run ended.
    pub outcome: Outcome,
    /// Total robots removed by merges over the run.
    pub merges_total: usize,
    /// Longest mergeless gap (rounds), the Theorem 1 progress measure.
    pub longest_gap: u64,
    /// Run statistics of the paper's strategy (Paper kinds only).
    pub stats: Option<RunStats>,
    /// Lemma audit summary (PaperAudited only).
    pub audit: Option<AuditSummary>,
    /// Open-chain detail (OpenZip / Hopper only).
    pub open: Option<OpenChainOutcome>,
    /// Last round with any movement or merge (min-max makespan objective;
    /// 0 on paths that do not track it).
    pub makespan: u64,
    /// Maximum per-robot cumulative travel distance (min-max travel
    /// objective; `None` on the kernel fast path and the open-chain
    /// procedures, which do not track travel).
    pub max_travel: Option<f64>,
    /// Wall-clock time of this scenario alone.
    pub wall: Duration,
}

impl ScenarioResult {
    /// `true` if the scenario reached the gathered (2×2) configuration.
    pub fn is_gathered(&self) -> bool {
        self.outcome.is_gathered()
    }

    /// Rounds to gather, if the scenario gathered.
    pub fn rounds(&self) -> Option<u64> {
        match self.outcome {
            Outcome::Gathered { rounds } => Some(rounds),
            _ => None,
        }
    }

    /// Fingerprint for determinism checks: everything that must be a pure
    /// function of the spec.
    pub fn fingerprint(&self) -> (usize, u64, usize, u64) {
        (
            self.n,
            self.outcome.rounds(),
            self.merges_total,
            self.longest_gap,
        )
    }
}

/// Run one scenario to completion: generate the chain, resolve the limits,
/// build the registry driver, drive. One pipeline for every kind — the
/// per-kind differences live entirely in [`StrategyKind::driver`].
pub fn run_scenario(spec: &ScenarioSpec) -> ScenarioResult {
    run_scenario_probed(spec, None)
}

/// [`run_scenario`] with an optional live-progress feed: supply a shared
/// [`ProgressSlot`] and watch the run from another thread while it
/// executes (see [`StrategyKind::driver_probed`]). The probe changes
/// nothing about the result — observers are passive.
pub fn run_scenario_probed(
    spec: &ScenarioSpec,
    probe: Option<Arc<ProgressSlot>>,
) -> ScenarioResult {
    run_scenario_tapped(spec, RunTaps::probed(probe))
}

/// [`run_scenario`] with the full telemetry tap set: live progress,
/// replay recording into a [`ReplaySink`], and/or live frame streaming
/// through a [`FrameRing`] (see [`RunTaps`]). Taps are passive — the
/// result is byte-identical to an untapped run of the same spec.
///
/// # Panics
/// If `taps.replay` is set for an open-chain strategy kind — the \[KM09\]
/// procedures run outside the engine, so there is no per-round record to
/// write. Service layers reject that combination at request-validation
/// time.
pub fn run_scenario_tapped(spec: &ScenarioSpec, taps: RunTaps) -> ScenarioResult {
    run_scenario_resolved(spec, &StrategyFactory::resolve(spec.strategy), taps)
}

/// [`run_scenario_tapped`] against a pre-resolved factory — the batch
/// executor's per-spec body, with the kind→factory resolution hoisted
/// out ([`FactorySet`]).
fn run_scenario_resolved(
    spec: &ScenarioSpec,
    factory: &StrategyFactory,
    taps: RunTaps,
) -> ScenarioResult {
    if let Some(err) = spec.geometry_error() {
        panic!("invalid scenario spec: {err} (service layers validate before running)");
    }
    let t0 = Instant::now();
    let chain = spec.generate();
    let n = chain.len();
    let limits = spec.resolve_limits(&chain);
    let report = factory
        .driver_tapped(chain, spec.scheduler, spec.seed, taps)
        .drive(limits);

    ScenarioResult {
        spec: *spec,
        n,
        outcome: report.outcome,
        merges_total: report.merges_total,
        longest_gap: report.longest_gap,
        stats: report.stats,
        audit: report.audit,
        open: report.open,
        makespan: report.makespan,
        max_travel: report.max_travel,
        wall: t0.elapsed(),
    }
}

/// Process-wide default worker-thread count consulted whenever
/// [`BatchOptions::threads`] is `0` (see [`set_default_threads`]).
static DEFAULT_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Set the process-wide default worker-thread count for batch execution.
///
/// Every [`run_batch`] call (and every [`run_batch_with`] call whose
/// options say `threads: 0`) uses this value instead of
/// `available_parallelism` once it is nonzero — the `--threads` override
/// of the `experiments` and `campaign` binaries. `0` restores the
/// per-core default. Thread count never changes results (determinism is a
/// batch guarantee), only parallelism.
pub fn set_default_threads(threads: usize) {
    DEFAULT_THREADS.store(threads, Ordering::Relaxed);
}

/// Process-wide default phase timer consulted by the batch executor
/// whenever a batch carries no explicit timer (see
/// [`set_default_phase_timer`]) — the `--trace-out` hook of the
/// `experiments` binary, mirroring [`set_default_threads`].
static DEFAULT_PHASE_TIMER: std::sync::RwLock<Option<Arc<PhaseTimer>>> =
    std::sync::RwLock::new(None);

/// Install (or clear, with `None`) the process-wide default phase timer.
///
/// While set, every [`run_batch`] / [`run_batch_with`] call attaches the
/// timer to its runs exactly as [`run_batch_timed`] would — so a binary
/// can phase-profile code paths that call the batch executor internally
/// (the experiment tables) without threading a timer through them.
/// Passive: results are unchanged; only wall-time attribution is
/// collected.
pub fn set_default_phase_timer(timer: Option<Arc<PhaseTimer>>) {
    *DEFAULT_PHASE_TIMER.write().unwrap() = timer;
}

/// Executor knobs for [`run_batch_with`].
#[derive(Clone, Copy, Debug, Default)]
pub struct BatchOptions {
    /// Worker threads; `0` means the process default
    /// ([`set_default_threads`]), falling back to one per available core.
    pub threads: usize,
}

impl BatchOptions {
    /// Options with an explicit worker-thread count (`0` = process
    /// default, then per core).
    pub fn threads(threads: usize) -> Self {
        BatchOptions { threads }
    }

    fn effective_threads(&self, jobs: usize) -> usize {
        let hw = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(4);
        let t = match (self.threads, DEFAULT_THREADS.load(Ordering::Relaxed)) {
            (0, 0) => hw,
            (0, d) => d,
            (t, _) => t,
        };
        t.min(jobs.max(1))
    }
}

/// Run every scenario of a batch, in parallel, preserving input order.
pub fn run_batch(specs: &[ScenarioSpec]) -> Vec<ScenarioResult> {
    run_batch_with(specs, BatchOptions::default())
}

/// [`run_batch`] with explicit executor options.
///
/// Work distribution is an atomic next-index queue over scoped threads:
/// self-balancing like a work-stealing pool for this shape of workload
/// (independent jobs, one queue), with no locks and no result reordering —
/// each worker returns its `(index, result)` pairs and the batch is
/// reassembled positionally.
pub fn run_batch_with(specs: &[ScenarioSpec], opts: BatchOptions) -> Vec<ScenarioResult> {
    run_batch_shared(specs, opts, &RunTaps::default())
}

/// [`run_batch_with`] with a shared sampling [`PhaseTimer`]: every spec's
/// run attributes its rounds into the one timer (histograms are
/// lock-free; trace spans carry per-thread lane ids), so a whole table's
/// phase profile — and its Chrome trace — comes out of a single object.
/// Timing is passive; results are byte-identical to [`run_batch_with`].
pub fn run_batch_timed(
    specs: &[ScenarioSpec],
    opts: BatchOptions,
    timer: Arc<PhaseTimer>,
) -> Vec<ScenarioResult> {
    run_batch_shared(specs, opts, &RunTaps::timed(timer))
}

/// The batch executor body. `base` taps are cloned into every spec's run
/// — only taps that make sense shared across runs belong here (a phase
/// timer; *not* a progress slot or replay sink, which are per-run).
fn run_batch_shared(
    specs: &[ScenarioSpec],
    opts: BatchOptions,
    base: &RunTaps,
) -> Vec<ScenarioResult> {
    if specs.is_empty() {
        return Vec::new();
    }
    // A batch without its own timer inherits the process-wide default
    // (one read per batch, not per spec).
    let inherited;
    let base = if base.phases.is_none() {
        match DEFAULT_PHASE_TIMER.read().unwrap().clone() {
            Some(timer) => {
                inherited = RunTaps {
                    phases: Some(timer),
                    ..base.clone()
                };
                &inherited
            }
            None => base,
        }
    } else {
        base
    };
    // Hoisted batch setup: one factory per distinct kind, shared by every
    // worker — O(kinds), not O(specs).
    let factories = FactorySet::for_specs(specs);
    let threads = opts.effective_threads(specs.len());
    if threads <= 1 {
        return specs
            .iter()
            .map(|s| run_scenario_resolved(s, &factories.get(s.strategy), base.clone()))
            .collect();
    }

    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<ScenarioResult>> = specs.iter().map(|_| None).collect();
    std::thread::scope(|scope| {
        let factories = &factories;
        let base = &*base;
        let workers: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut local: Vec<(usize, ScenarioResult)> = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= specs.len() {
                            break;
                        }
                        let spec = &specs[i];
                        local.push((
                            i,
                            run_scenario_resolved(
                                spec,
                                &factories.get(spec.strategy),
                                base.clone(),
                            ),
                        ));
                    }
                    local
                })
            })
            .collect();
        for worker in workers {
            for (i, result) in worker.join().expect("scenario worker panicked") {
                slots[i] = Some(result);
            }
        }
    });
    slots
        .into_iter()
        .map(|s| s.expect("every index was claimed exactly once"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_preserves_order_and_matches_serial() {
        let specs: Vec<ScenarioSpec> = (0..8)
            .map(|seed| ScenarioSpec::paper(Family::Rectangle, 32 + 4 * seed as usize, seed))
            .collect();
        let parallel = run_batch(&specs);
        let serial = run_batch_with(&specs, BatchOptions::threads(1));
        assert_eq!(parallel.len(), specs.len());
        for ((p, s), spec) in parallel.iter().zip(&serial).zip(&specs) {
            assert_eq!(p.spec, *spec);
            assert_eq!(p.fingerprint(), s.fingerprint());
            assert!(p.is_gathered());
        }
    }

    /// Satellite: batch setup resolves each distinct strategy kind once —
    /// `FactorySet` is O(kinds), not O(specs) — and the hoisted factories
    /// produce the same results as per-spec resolution.
    #[test]
    fn batch_setup_is_o_kinds_and_matches_per_spec_runs() {
        let specs: Vec<ScenarioSpec> = (0..32)
            .flat_map(|seed| {
                [
                    ScenarioSpec::strategy(Family::Rectangle, 32, seed, StrategyKind::CompassSe),
                    ScenarioSpec::strategy(Family::Skyline, 32, seed, StrategyKind::NaiveLocal),
                ]
            })
            .collect();
        let factories = FactorySet::for_specs(&specs);
        assert_eq!(factories.len(), 2, "64 specs over 2 kinds resolve twice");
        for kind in [StrategyKind::CompassSe, StrategyKind::NaiveLocal] {
            assert!(factories.get(kind).kernel_eligible());
        }
        let batch = run_batch_with(&specs, BatchOptions::threads(2));
        for (r, spec) in batch.iter().zip(&specs) {
            assert_eq!(r.fingerprint(), run_scenario(spec).fingerprint());
        }
    }

    #[test]
    fn registry_names_round_trip() {
        for name in StrategyKind::ALL_NAMES {
            let kind = StrategyKind::from_name(name).expect("every listed name parses");
            assert_eq!(kind.name(), name);
        }
        assert_eq!(StrategyKind::from_name("no-such-strategy"), None);
        // Ablated configs serialize to the same name but are not the
        // canonical kind — from_name intentionally returns the canonical.
        let ablated = StrategyKind::Paper(GatherConfig {
            l_period: 7,
            ..GatherConfig::paper()
        });
        assert_eq!(
            StrategyKind::from_name(ablated.name()),
            Some(StrategyKind::paper())
        );
    }

    #[test]
    fn registry_builds_paper_and_all_baselines() {
        let kinds = [
            StrategyKind::paper(),
            StrategyKind::PaperAudited(GatherConfig::paper()),
            StrategyKind::GlobalVision,
            StrategyKind::CompassSe,
            StrategyKind::NaiveLocal,
            StrategyKind::Stand,
        ];
        let chain = Family::Rectangle.generate(16, 0);
        for kind in kinds {
            let mut strategy = kind.build().expect("closed-chain strategy");
            strategy.init(&chain);
            assert!(!strategy.name().is_empty());
        }
        // Only the open-chain settings have no closed-chain strategy; they
        // still get a driver like everything else.
        assert!(StrategyKind::OpenZip.build().is_none());
        assert!(StrategyKind::Hopper.build().is_none());
    }

    #[test]
    fn every_kind_gets_a_driver() {
        for name in StrategyKind::ALL_NAMES {
            let kind = StrategyKind::from_name(name).unwrap();
            let chain = Family::Rectangle.generate(16, 0);
            let limits = kind.auto_limits(&chain);
            let report = kind.driver(chain, SchedulerKind::Fsync, 0).drive(limits);
            // Stand stalls; every other kind finishes this tiny input.
            if name != "stand" {
                assert!(report.outcome.is_gathered(), "{name}: {:?}", report.outcome);
            }
            assert_eq!(report.audit.is_some(), name == "paper-audited", "{name}");
            assert_eq!(report.stats.is_some(), name == "paper", "{name}");
            assert_eq!(
                report.open.is_some(),
                name == "open-zip" || name == "hopper",
                "{name}"
            );
        }
    }

    #[test]
    fn boxed_paper_runs_on_the_engine() {
        let chain = Family::Rectangle.generate(24, 0);
        let n = chain.len();
        let strategy = StrategyKind::paper().build().unwrap();
        let mut sim = Sim::new(chain, strategy);
        let outcome = sim.run(RunLimits::for_chain_len(n));
        assert!(outcome.is_gathered());
    }

    /// Satellite: `from_closed_positions` round-trips under the unified
    /// driver — the open drivers cut the *same* generated geometry open,
    /// and the reported final lengths are consistent with the cut chain.
    #[test]
    fn open_chain_round_trip_under_unified_driver() {
        let spec = ScenarioSpec::strategy(Family::Comb, 48, 2, StrategyKind::OpenZip);
        let chain = spec.generate();
        let cut = OpenChain::from_closed_positions(chain.positions()).unwrap();
        assert_eq!(cut.positions(), chain.positions());
        let r = run_scenario(&spec);
        let detail = r.open.expect("zip detail");
        assert_eq!(r.n, cut.len());
        assert_eq!(r.merges_total, cut.len() - detail.final_len);
        assert!(r.is_gathered());
        // The hopper on the same geometry reports the Manhattan optimum
        // between the cut's endpoints.
        let hop = run_scenario(&ScenarioSpec::strategy(
            Family::Comb,
            48,
            2,
            StrategyKind::Hopper,
        ));
        let a = cut.pos(0);
        let b = cut.pos(cut.len() - 1);
        assert_eq!(
            hop.open.unwrap().optimal_len,
            Some((a.x - b.x).unsigned_abs() as usize + (a.y - b.y).unsigned_abs() as usize + 1)
        );
    }

    #[test]
    fn audited_scenario_produces_summary() {
        let spec = ScenarioSpec::audited(Family::Rectangle, 48, 0);
        let r = run_scenario(&spec);
        assert!(r.is_gathered());
        let audit = r.audit.expect("audited runs carry a summary");
        assert!(audit.clean(), "rectangle audits must be clean");
        assert_eq!(r.merges_total, audit.total_merged_robots);
    }

    #[test]
    fn open_chain_scenarios_report_detail() {
        let zip = run_scenario(&ScenarioSpec::strategy(
            Family::Rectangle,
            32,
            0,
            StrategyKind::OpenZip,
        ));
        assert!(zip.open.is_some());
        assert!(zip.rounds().is_some());
        let hop = run_scenario(&ScenarioSpec::strategy(
            Family::Skyline,
            32,
            7,
            StrategyKind::Hopper,
        ));
        let detail = hop.open.expect("hopper detail");
        assert!(detail.optimal_len.is_some());
    }

    /// The probe is passive (identical fingerprints) and the shared slot
    /// ends finished with the run's final counters, for engine and
    /// open-chain kinds alike.
    #[test]
    fn probed_runs_match_and_publish_final_state() {
        let spec = ScenarioSpec::paper(Family::Rectangle, 32, 0);
        let slot = ProgressSlot::new();
        let probed = run_scenario_probed(&spec, Some(slot.clone()));
        assert_eq!(probed.fingerprint(), run_scenario(&spec).fingerprint());
        let snap = slot.snapshot();
        assert!(snap.finished);
        assert_eq!(snap.removed, probed.merges_total);
        assert_eq!(snap.len, probed.n - probed.merges_total);
        assert!(snap.round > 0);

        let zip = ScenarioSpec::strategy(Family::Rectangle, 32, 0, StrategyKind::OpenZip);
        let zslot = ProgressSlot::new();
        let z = run_scenario_probed(&zip, Some(zslot.clone()));
        let zs = zslot.snapshot();
        assert!(zs.finished);
        assert_eq!(zs.removed, z.merges_total);
    }

    #[test]
    fn determinism_same_spec_same_fingerprint() {
        let specs: Vec<ScenarioSpec> = Family::ALL
            .iter()
            .map(|&family| ScenarioSpec::paper(family, 40, 3))
            .collect();
        let a = run_batch(&specs);
        let b = run_batch(&specs);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.fingerprint(), y.fingerprint(), "{:?}", x.spec);
        }
    }
}
