//! Plain-text table formatting for the experiment reports.

use std::fmt;

/// A titled, column-aligned table with free-form notes.
#[derive(Clone, Debug, Default)]
pub struct Table {
    /// Short identifier (`T1` … `T10`, `C1` …), used by `--table` lookup.
    pub id: String,
    /// Human-readable caption.
    pub title: String,
    /// Column names.
    pub header: Vec<String>,
    /// Data cells; every row has exactly `header.len()` cells.
    pub rows: Vec<Vec<String>>,
    /// Free-form footnotes rendered after the rows.
    pub notes: Vec<String>,
}

impl Table {
    /// A titled empty table with the given column names.
    pub fn new(id: &str, title: &str, header: &[&str]) -> Self {
        Table {
            id: id.to_string(),
            title: title.to_string(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Append one row; panics if the cell count mismatches the header.
    pub fn row<S: ToString>(&mut self, cells: Vec<S>) {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows
            .push(cells.into_iter().map(|c| c.to_string()).collect());
    }

    /// Append a footnote.
    pub fn note(&mut self, s: impl Into<String>) {
        self.notes.push(s.into());
    }

    fn widths(&self) -> Vec<usize> {
        let mut w: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                w[i] = w[i].max(cell.len());
            }
        }
        w
    }

    /// Render as a GitHub-flavored markdown table (for EXPERIMENTS.md).
    pub fn to_markdown(&self) -> String {
        let mut s = format!("### {} — {}\n\n", self.id, self.title);
        s.push('|');
        for h in &self.header {
            s.push_str(&format!(" {h} |"));
        }
        s.push_str("\n|");
        for _ in &self.header {
            s.push_str("---|");
        }
        s.push('\n');
        for row in &self.rows {
            s.push('|');
            for cell in row {
                s.push_str(&format!(" {cell} |"));
            }
            s.push('\n');
        }
        for n in &self.notes {
            s.push_str(&format!("\n> {n}\n"));
        }
        s
    }

    /// Render as RFC-4180-style CSV (header + rows; cells containing a
    /// comma, quote, or newline are quoted). Notes and the title are not
    /// emitted — CSV is the machine-readable view.
    pub fn to_csv(&self) -> String {
        fn cell(s: &str) -> String {
            if s.contains([',', '"', '\n']) {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        }
        let mut out = String::new();
        for row in std::iter::once(&self.header).chain(self.rows.iter()) {
            let line: Vec<String> = row.iter().map(|c| cell(c)).collect();
            out.push_str(&line.join(","));
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "== {}: {} ==", self.id, self.title)?;
        let w = self.widths();
        let fmt_row = |row: &[String]| -> String {
            row.iter()
                .enumerate()
                .map(|(i, c)| format!("{:>width$}", c, width = w[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        writeln!(f, "{}", fmt_row(&self.header))?;
        writeln!(
            f,
            "{}",
            "-".repeat(w.iter().sum::<usize>() + 2 * (w.len() - 1))
        )?;
        for row in &self.rows {
            writeln!(f, "{}", fmt_row(row))?;
        }
        for n in &self.notes {
            writeln!(f, "note: {n}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("T0", "demo", &["family", "n", "rounds"]);
        t.row(vec!["rectangle".to_string(), "64".into(), "120".into()]);
        t.row(vec!["x".to_string(), "2048".into(), "7".into()]);
        t.note("a note");
        let s = t.to_string();
        assert!(s.contains("T0: demo"));
        assert!(s.contains("note: a note"));
        let md = t.to_markdown();
        assert!(md.starts_with("### T0"));
        assert!(md.contains("| rectangle |"));
    }

    #[test]
    fn csv_quotes_only_when_needed() {
        let mut t = Table::new("T0", "demo", &["a", "b"]);
        t.row(vec!["plain".to_string(), "has,comma".into()]);
        t.row(vec!["has\"quote".to_string(), "x".into()]);
        t.note("notes are not emitted");
        let csv = t.to_csv();
        assert_eq!(csv, "a,b\nplain,\"has,comma\"\n\"has\"\"quote\",x\n");
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_checked() {
        let mut t = Table::new("T0", "demo", &["a", "b"]);
        t.row(vec!["only-one"]);
    }
}
