//! Regenerate the paper's evaluation tables (EXPERIMENTS.md).
//!
//! ```text
//! cargo run --release -p bench --bin experiments            # full tables
//! cargo run --release -p bench --bin experiments -- --quick # smoke sizes
//! cargo run --release -p bench --bin experiments -- --table T1 --table T9
//! cargo run --release -p bench --bin experiments -- --markdown
//! ```

use bench::{all_tables, Effort};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let markdown = args.iter().any(|a| a == "--markdown");
    let wanted: Vec<String> = args
        .windows(2)
        .filter(|w| w[0] == "--table")
        .map(|w| w[1].to_uppercase())
        .collect();
    let effort = if quick { Effort::Quick } else { Effort::Full };

    eprintln!(
        "running experiments ({}), this reproduces DESIGN.md §4 tables...",
        if quick { "quick" } else { "full" }
    );
    let t0 = std::time::Instant::now();
    for table in all_tables(effort) {
        if !wanted.is_empty() && !wanted.contains(&table.id.to_uppercase()) {
            continue;
        }
        if markdown {
            println!("{}", table.to_markdown());
        } else {
            println!("{table}");
        }
    }
    eprintln!("total experiment time: {:.1}s", t0.elapsed().as_secs_f64());
}
