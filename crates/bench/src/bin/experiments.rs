//! Regenerate the paper's evaluation tables (EXPERIMENTS.md).
//!
//! ```text
//! cargo run --release -p bench --bin experiments            # full tables
//! cargo run --release -p bench --bin experiments -- --quick # smoke sizes
//! cargo run --release -p bench --bin experiments -- --table T1 --table T9
//! cargo run --release -p bench --bin experiments -- --family rectangle --family comb
//! cargo run --release -p bench --bin experiments -- --markdown
//! cargo run --release -p bench --bin experiments -- --threads 4
//! cargo run --release -p bench --bin experiments -- --quick --table T1 --trace-out run.trace.json
//! ```
//!
//! `--threads N` overrides the batch executor's worker count (default:
//! one per available core) for every table — results are identical at any
//! thread count (a `run_batch` guarantee); only wall-clock changes.
//!
//! `--trace-out FILE` attaches a sampling phase timer to every table run
//! and writes the sampled compute/guard/apply/merge spans as Chrome
//! trace-event JSON — load FILE in Perfetto or `chrome://tracing`. A
//! per-phase summary goes to stderr. Timing is passive (results are
//! unchanged) and sampled (one round in 16), so the tables cost the same.
//!
//! Unknown `--table` or `--family` names are an error: the binary prints
//! the respective inventory and exits with code 2 instead of silently
//! producing nothing.

use bench::experiments::{table_by_id, FamilySelection, TABLE_IDS};
use bench::{set_default_phase_timer, set_default_threads, Effort};
use obs::PhaseTimer;
use std::sync::Arc;
use workloads::Family;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let markdown = args.iter().any(|a| a == "--markdown");
    if let Some(last) = args.last() {
        if last == "--table" || last == "--family" || last == "--threads" || last == "--trace-out" {
            eprintln!("error: {last} needs a value");
            std::process::exit(2);
        }
    }
    let flag_values = |flag: &str| -> Vec<String> {
        args.windows(2)
            .filter(|w| w[0] == flag)
            .map(|w| w[1].clone())
            .collect()
    };
    let wanted = flag_values("--table");
    let families = flag_values("--family");
    let effort = if quick { Effort::Quick } else { Effort::Full };
    if let Some(threads) = flag_values("--threads").last() {
        match threads.parse::<usize>() {
            Ok(t) => set_default_threads(t),
            Err(_) => {
                eprintln!("error: --threads needs an integer (got '{threads}')");
                std::process::exit(2);
            }
        }
    }

    let trace_out = flag_values("--trace-out").last().cloned();
    let timer = trace_out.as_ref().map(|_| {
        let timer = Arc::new(PhaseTimer::default_rate());
        set_default_phase_timer(Some(timer.clone()));
        timer
    });

    let unknown: Vec<&String> = wanted
        .iter()
        .filter(|w| !TABLE_IDS.iter().any(|id| id.eq_ignore_ascii_case(w)))
        .collect();
    if !unknown.is_empty() {
        for w in &unknown {
            eprintln!("error: unknown table '{w}'");
        }
        eprintln!("valid tables: {}", TABLE_IDS.join(", "));
        std::process::exit(2);
    }

    let selection = FamilySelection::parse(&families).unwrap_or_else(|unknown| {
        for f in &unknown {
            eprintln!("error: unknown family '{f}'");
        }
        let names: Vec<&str> = Family::ALL.iter().map(|f| f.name()).collect();
        eprintln!("valid families: {}", names.join(", "));
        std::process::exit(2);
    });

    let ids: Vec<&str> = if wanted.is_empty() {
        TABLE_IDS.to_vec()
    } else {
        // Preserve inventory order and deduplicate repeated requests.
        TABLE_IDS
            .iter()
            .filter(|id| wanted.iter().any(|w| id.eq_ignore_ascii_case(w)))
            .copied()
            .collect()
    };

    eprintln!(
        "running experiments ({}), this reproduces DESIGN.md §4 tables...",
        if quick { "quick" } else { "full" }
    );
    let t0 = std::time::Instant::now();
    for id in ids {
        let table = table_by_id(id, effort, &selection).expect("ids are validated above");
        if markdown {
            println!("{}", table.to_markdown());
        } else {
            println!("{table}");
        }
    }
    eprintln!("total experiment time: {:.1}s", t0.elapsed().as_secs_f64());

    if let (Some(path), Some(timer)) = (trace_out, timer) {
        if let Err(e) = std::fs::write(&path, timer.to_chrome_json()) {
            eprintln!("error: writing trace to {path}: {e}");
            std::process::exit(1);
        }
        eprintln!("{}", timer.report());
        eprintln!("chrome trace written to {path} (load in Perfetto)");
    }
}
