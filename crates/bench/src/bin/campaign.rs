//! Campaign runner CLI: sharded, resumable experiment sweeps with
//! persistent JSON benchmark artifacts (see docs/CAMPAIGNS.md).
//!
//! ```text
//! campaign run    --name scaling [--quick] [--shard I/K] [--dir D] [--threads T] [--no-artifact]
//! campaign status --name scaling [--quick] [--dir D] [--json] [--shards K]
//! campaign merge  --name scaling [--quick] [--dir D]
//! campaign report --name scaling [--quick] [--dir D] [--csv]
//! ```
//!
//! `run` executes the campaign grid (or one shard of it), skipping every
//! scenario whose result is already stored, and emits `BENCH_{name}.json`
//! once the grid is complete. `merge` folds shard stores into the
//! unsharded store. `status` shows coverage — `--json` emits the
//! machine-readable schema (done/total per strategy and per shard of a
//! `--shards K` fan-out, plus the missing spec hashes) that `gatherd` and
//! CI consume instead of scraping markdown; `report` prints the result
//! tables as markdown (or CSV with `--csv`).

use std::path::PathBuf;
use std::process::exit;

use bench::campaign::{self, store, CampaignSpec, RunOptions};

struct Cli {
    cmd: String,
    name: String,
    quick: bool,
    shard: Option<(usize, usize)>,
    dir: PathBuf,
    threads: usize,
    csv: bool,
    json: bool,
    shards: usize,
    artifact: Option<PathBuf>,
}

fn usage() -> ! {
    eprintln!(
        "usage: campaign <run|status|merge|report> --name <campaign> \
         [--quick] [--shard I/K] [--dir DIR] [--threads T] [--csv] [--json] [--shards K] \
         [--no-artifact]\n\
         built-in campaigns: {}",
        CampaignSpec::BUILTIN_NAMES.join(", ")
    );
    exit(2)
}

fn parse_shard(s: &str) -> Option<(usize, usize)> {
    let (i, k) = s.split_once('/')?;
    let (i, k) = (i.parse().ok()?, k.parse().ok()?);
    (k > 0 && i < k).then_some((i, k))
}

fn parse_cli() -> Cli {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first().cloned() else {
        usage();
    };
    if !["run", "status", "merge", "report"].contains(&cmd.as_str()) {
        eprintln!("error: unknown subcommand '{cmd}'");
        usage();
    }
    let mut cli = Cli {
        cmd,
        name: String::new(),
        quick: false,
        shard: None,
        dir: PathBuf::from("bench-results"),
        threads: 0,
        csv: false,
        json: false,
        shards: 1,
        artifact: None,
    };
    let mut no_artifact = false;
    let mut it = args[1..].iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| -> String {
            it.next().cloned().unwrap_or_else(|| {
                eprintln!("error: {flag} needs a value");
                usage();
            })
        };
        match arg.as_str() {
            "--name" => cli.name = value("--name"),
            "--quick" => cli.quick = true,
            "--csv" => cli.csv = true,
            "--json" => cli.json = true,
            "--no-artifact" => no_artifact = true,
            "--shards" => {
                cli.shards = value("--shards").parse().unwrap_or(0);
                if cli.shards == 0 {
                    eprintln!("error: --shards needs a positive integer");
                    usage();
                }
            }
            "--dir" => cli.dir = PathBuf::from(value("--dir")),
            "--threads" => {
                cli.threads = value("--threads").parse().unwrap_or_else(|_| {
                    eprintln!("error: --threads needs an integer");
                    usage();
                })
            }
            "--shard" => {
                let raw = value("--shard");
                cli.shard = Some(parse_shard(&raw).unwrap_or_else(|| {
                    eprintln!("error: --shard wants I/K with I < K (got '{raw}')");
                    usage();
                }));
            }
            other => {
                eprintln!("error: unknown flag '{other}'");
                usage();
            }
        }
    }
    if cli.name.is_empty() {
        eprintln!("error: --name is required");
        usage();
    }
    if !no_artifact {
        cli.artifact = Some(store::artifact_path(&cli.name));
    }
    cli
}

fn main() {
    let cli = parse_cli();
    let Some(spec) = CampaignSpec::named(&cli.name, cli.quick) else {
        eprintln!(
            "error: unknown campaign '{}'; built-ins: {}",
            cli.name,
            CampaignSpec::BUILTIN_NAMES.join(", ")
        );
        exit(2);
    };

    let result = match cli.cmd.as_str() {
        "run" => {
            let opts = RunOptions {
                shard: cli.shard,
                dir: cli.dir.clone(),
                threads: cli.threads,
                // Sharded runs never emit the artifact — merge does.
                artifact: if cli.shard.is_none() {
                    cli.artifact.clone()
                } else {
                    None
                },
                progress: true,
                ..RunOptions::default()
            };
            campaign::run(&spec, &opts).map(|r| {
                eprintln!(
                    "campaign '{}': {} assigned, {} resumed, {} executed -> {}",
                    spec.name,
                    r.assigned,
                    r.resumed,
                    r.executed,
                    r.store.display()
                );
                match &r.artifact {
                    Some(path) => eprintln!("artifact written: {}", path.display()),
                    None if cli.shard.is_some() => {
                        eprintln!("shard run: merge shards to emit the artifact")
                    }
                    None => eprintln!(
                        "artifact not (re)written: grid incomplete, suppressed, or an \
                         existing artifact already covers a superset of this grid"
                    ),
                }
            })
        }
        "status" => campaign::status_sharded(&spec, &cli.dir, cli.artifact.as_deref(), cli.shards)
            .map(|s| {
                if cli.json {
                    println!("{}", s.to_json(&spec.name).to_compact());
                } else {
                    println!("{}", s.table(&spec.name));
                    if !s.complete() {
                        eprintln!("{} scenarios still pending", s.grid - s.covered);
                    }
                }
            }),
        "merge" => campaign::merge(&spec, &cli.dir, cli.artifact.as_deref()).map(|m| {
            eprintln!(
                "campaign '{}': merged {}/{} rows -> {}",
                spec.name,
                m.covered,
                m.grid,
                m.store.display()
            );
            match &m.artifact {
                Some(path) => eprintln!("artifact written: {}", path.display()),
                None => eprintln!("grid not fully covered; artifact not written"),
            }
        }),
        "report" => campaign::report(&spec, &cli.dir, cli.artifact.as_deref()).map(|tables| {
            for t in tables {
                if cli.csv {
                    println!("{}", t.to_csv());
                } else {
                    println!("{}", t.to_markdown());
                }
            }
        }),
        _ => unreachable!("subcommand validated in parse_cli"),
    };

    if let Err(e) = result {
        // Malformed stores/artifacts (and plain IO failures) land here:
        // the error message carries the offending path and position. Exit
        // 2 like the other usage/validation failures — never panic on bad
        // input files.
        eprintln!("error: {e}");
        exit(2);
    }
}
