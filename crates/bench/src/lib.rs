//! # bench
//!
//! The experiment harness regenerating the paper's evaluation (DESIGN.md
//! §4, tables T1–T9) plus criterion performance benches for the simulator
//! itself.
//!
//! The same experiment code backs three entry points:
//!
//! * `cargo run -p bench --bin experiments [--quick] [--table tN]` —
//!   prints the tables for EXPERIMENTS.md,
//! * `cargo bench -p bench --bench paper_experiments` — same tables under
//!   `cargo bench --workspace` so the paper artifacts regenerate with the
//!   benches,
//! * `cargo bench -p bench --bench engine_perf` — criterion micro/macro
//!   benches (rounds/sec, robot-rounds/sec).
//!
//! Sweeps fan out over worker threads with `crossbeam::scope`; results are
//! aggregated under a `parking_lot::Mutex` (see the perf-book guidance on
//! simple data-parallel sweeps).

pub mod experiments;
pub mod table;

pub use experiments::{all_tables, Effort};
pub use table::Table;

use chain_sim::{ClosedChain, Outcome, RunLimits, Sim, Strategy};
use gathering_core::{ClosedChainGathering, GatherConfig};

/// One gathering measurement.
#[derive(Clone, Debug)]
pub struct GatherRun {
    pub n: usize,
    pub outcome: Outcome,
    pub merges_total: usize,
    pub longest_gap: u64,
}

impl GatherRun {
    pub fn rounds(&self) -> Option<u64> {
        match self.outcome {
            Outcome::Gathered { rounds } => Some(rounds),
            _ => None,
        }
    }
}

/// Run the paper's algorithm on a chain and collect the round trace
/// summary.
pub fn measure_gathering(chain: ClosedChain, cfg: GatherConfig) -> GatherRun {
    let n = chain.len();
    let mut sim = Sim::new(chain, ClosedChainGathering::new(cfg));
    let outcome = sim.run(RunLimits::for_chain_len(n));
    let trace = sim.trace();
    GatherRun {
        n,
        outcome,
        merges_total: trace.total_removed(),
        longest_gap: trace.longest_mergeless_gap(),
    }
}

/// Run an arbitrary strategy to completion with generous limits.
pub fn measure_strategy<S: Strategy>(chain: ClosedChain, strategy: S) -> GatherRun {
    let n = chain.len();
    let d = chain.bounding().diameter().max(4) as u64;
    let mut sim = Sim::new(chain, strategy);
    let outcome = sim.run(RunLimits {
        max_rounds: 16 * n as u64 * d + 4096,
        stall_window: 8 * n as u64 * d + 2048,
    });
    let trace = sim.trace();
    GatherRun {
        n,
        outcome,
        merges_total: trace.total_removed(),
        longest_gap: trace.longest_mergeless_gap(),
    }
}

/// Parallel map over independent experiment inputs, preserving order.
pub fn par_map<I, O, F>(inputs: Vec<I>, f: F) -> Vec<O>
where
    I: Send + Sync,
    O: Send,
    F: Fn(&I) -> O + Sync,
{
    let threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4)
        .min(inputs.len().max(1));
    let results = parking_lot::Mutex::new(Vec::with_capacity(inputs.len()));
    let next = std::sync::atomic::AtomicUsize::new(0);
    crossbeam::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|_| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= inputs.len() {
                    break;
                }
                let out = f(&inputs[i]);
                results.lock().push((i, out));
            });
        }
    })
    .expect("worker panicked");
    let mut indexed = results.into_inner();
    indexed.sort_by_key(|(i, _)| *i);
    indexed.into_iter().map(|(_, o)| o).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::Family;

    #[test]
    fn par_map_preserves_order() {
        let inputs: Vec<u64> = (0..64).collect();
        let out = par_map(inputs.clone(), |x| x * 2);
        assert_eq!(out, inputs.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn measure_gathering_smoke() {
        let chain = Family::Rectangle.generate(40, 0);
        let run = measure_gathering(chain, GatherConfig::paper());
        assert!(run.outcome.is_gathered());
        assert!(run.merges_total > 0);
    }
}
