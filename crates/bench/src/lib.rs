//! # bench
//!
//! The experiment harness regenerating the paper's evaluation (DESIGN.md
//! §4, tables T1–T10) plus wall-clock performance benches for the
//! simulator itself.
//!
//! The same experiment code backs three entry points:
//!
//! * `cargo run -p bench --bin experiments [--quick] [--table tN]` —
//!   prints the tables for EXPERIMENTS.md,
//! * `cargo bench -p bench --bench paper_experiments` — same tables under
//!   `cargo bench --workspace` so the paper artifacts regenerate with the
//!   benches,
//! * `cargo bench -p bench --bench engine_perf` — wall-clock micro/macro
//!   benches (rounds/sec, robot-rounds/sec, batch scaling across cores).
//!
//! Every experiment flows through the unified [`scenario`] pipeline: tables
//! enumerate [`ScenarioSpec`]s and consume [`ScenarioResult`]s from
//! [`run_batch`], which fans out over std's scoped threads.
//!
//! ## Batch execution guarantees
//!
//! [`run_batch`] / [`run_batch_with`] promise, for any spec list:
//!
//! * **Ordering** — the result vector is index-aligned with the input
//!   (`results[i].spec == specs[i]`), regardless of which worker ran
//!   which spec or in what order they finished.
//! * **Balancing** — work is claimed from a single atomic next-index
//!   queue, so workers self-balance: a worker that draws a cheap spec
//!   immediately claims another, and a heterogeneous batch (65k paper
//!   runs next to 64-robot controls) keeps every core busy until the
//!   queue drains.
//! * **Determinism** — every result is a pure function of its spec
//!   (modulo the measured [`ScenarioResult::wall`]); thread count and
//!   scheduling cannot change fingerprints.
//!
//! ## Campaigns
//!
//! On top of the batch executor, the [`campaign`] module scales sweeps to
//! campaign size: named scenario grids, sharded execution for CI fan-out,
//! a resumable JSON Lines result store keyed by stable spec hashes, and
//! the `BENCH_*.json` scaling artifacts (see docs/CAMPAIGNS.md).

#![deny(missing_docs)]

pub mod campaign;
pub mod experiments;
pub mod scenario;
pub mod table;
pub mod wire;

pub use campaign::{CampaignRow, CampaignSpec, RunOptions, StrategySweep};
pub use experiments::{all_tables, Effort, FamilySelection};
pub use scenario::{
    run_batch, run_batch_timed, run_batch_with, run_scenario, run_scenario_probed,
    set_default_phase_timer, set_default_threads, BatchOptions, DriveReport, LimitPolicy,
    OpenChainOutcome, ScenarioDriver, ScenarioResult, ScenarioSpec, StrategyKind,
};
pub use table::Table;
// The scheduler registry is engine-level (`chain_sim::scheduler`) but is a
// grid axis here; re-exported so campaign construction needs one import.
pub use chain_sim::SchedulerKind;
// Same for the geometry registry (`geom_core::GeometryKind`): an
// engine-level axis that campaign grids and wire specs select by name.
pub use geom_core::GeometryKind;

use chain_sim::{ClosedChain, Outcome, RunLimits, Sim, Strategy};
use gathering_core::{ClosedChainGathering, GatherConfig};

/// One gathering measurement (single-run convenience API; sweeps should go
/// through [`run_batch`]).
#[derive(Clone, Debug)]
pub struct GatherRun {
    /// Chain length at the start of the run.
    pub n: usize,
    /// How the run ended.
    pub outcome: Outcome,
    /// Total robots removed by merges over the run.
    pub merges_total: usize,
    /// Longest mergeless gap (rounds), the Theorem 1 progress measure.
    pub longest_gap: u64,
}

impl GatherRun {
    /// Rounds to gather, if the run gathered.
    pub fn rounds(&self) -> Option<u64> {
        match self.outcome {
            Outcome::Gathered { rounds } => Some(rounds),
            _ => None,
        }
    }
}

/// Run the paper's algorithm on a chain and collect the trace summary.
/// Limits derive from the config's `L` via [`RunLimits::for_gathering`] —
/// the one constructor every limit derivation routes through.
pub fn measure_gathering(chain: ClosedChain, cfg: GatherConfig) -> GatherRun {
    let n = chain.len();
    let mut sim = Sim::new(chain, ClosedChainGathering::new(cfg));
    let outcome = sim.run(RunLimits::for_gathering(n, cfg.l_period));
    let progress = sim.progress();
    GatherRun {
        n,
        outcome,
        merges_total: progress.total_removed(),
        longest_gap: progress.longest_mergeless_gap(),
    }
}

/// Run an arbitrary strategy to completion with generous diameter-derived
/// limits ([`RunLimits::generous`]).
pub fn measure_strategy<S: Strategy>(chain: ClosedChain, strategy: S) -> GatherRun {
    let n = chain.len();
    let d = chain.bounding().diameter() as u64;
    let mut sim = Sim::new(chain, strategy);
    let outcome = sim.run(RunLimits::generous(n, d));
    let progress = sim.progress();
    GatherRun {
        n,
        outcome,
        merges_total: progress.total_removed(),
        longest_gap: progress.longest_mergeless_gap(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::Family;

    #[test]
    fn measure_gathering_smoke() {
        let chain = Family::Rectangle.generate(40, 0);
        let run = measure_gathering(chain, GatherConfig::paper());
        assert!(run.outcome.is_gathered());
        assert!(run.merges_total > 0);
    }

    #[test]
    fn measure_strategy_runs_baselines() {
        let chain = Family::Rectangle.generate(32, 0);
        let run = measure_strategy(chain, baselines::GlobalVision::new());
        assert!(run.outcome.is_gathered());
    }
}
