//! Campaign subsystem integration tests: spec-hash stability, shard
//! partition correctness, resume, and shard+merge ≡ unsharded equivalence.

use std::collections::HashSet;
use std::path::PathBuf;

use bench::campaign::StrategySweep;
use bench::campaign::{self, spec_hash, spec_id, store, CampaignRow, CampaignSpec, RunOptions};
use bench::scenario::{ScenarioSpec, StrategyKind};
use chain_sim::SchedulerKind;
use workloads::Family;

/// A fresh scratch directory under the system temp dir.
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("bench-campaign-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A fast campaign small enough for tests: 6 scenarios, n ≤ 32.
fn tiny_campaign() -> CampaignSpec {
    CampaignSpec {
        name: "tiny".to_string(),
        families: vec![Family::Rectangle],
        sizes: vec![16, 32],
        seeds: vec![0, 1],
        strategies: vec![
            StrategySweep::up_to(StrategyKind::paper(), 32),
            StrategySweep::up_to(StrategyKind::GlobalVision, 16),
        ],
        schedulers: vec![SchedulerKind::Fsync],
        geometries: vec![bench::GeometryKind::Grid],
    }
}

fn opts(dir: &std::path::Path) -> RunOptions {
    RunOptions {
        dir: dir.to_path_buf(),
        threads: 2,
        ..RunOptions::default()
    }
}

/// Golden spec hashes. These pin the canonical encoding (`spec_id`) and
/// the FNV-1a hash: if this test fails, every campaign store on disk is
/// invalidated — bump the version prefix and regenerate artifacts
/// deliberately instead of shipping a silent change. (`v1` → `v2` added
/// the scheduler axis; `v2` → `v3` added the geometry axis. Old stores
/// still resume: hashes are recomputed from row identity fields, and rows
/// without a `geometry` field decode as grid — see
/// `legacy_v2_store_resumes_under_v3_hashes`.)
#[test]
fn spec_hashes_are_stable() {
    let golden = [
        (
            ScenarioSpec::strategy(Family::Rectangle, 64, 0, StrategyKind::paper()),
            "v3|family=rectangle|n=64|seed=0|strategy=paper|cfg=L13,V11,K10,opc1,c21|sched=fsync|geom=grid|limits=auto",
        ),
        (
            ScenarioSpec::strategy(Family::Skyline, 65536, 1, StrategyKind::GlobalVision),
            "v3|family=skyline|n=65536|seed=1|strategy=global-vision|cfg=-|sched=fsync|geom=grid|limits=auto",
        ),
        (
            ScenarioSpec::strategy(Family::RandomLoop, 256, 7, StrategyKind::Stand),
            "v3|family=random-loop|n=256|seed=7|strategy=stand|cfg=-|sched=fsync|geom=grid|limits=auto",
        ),
        (
            ScenarioSpec::strategy(Family::Rectangle, 64, 0, StrategyKind::CompassSe)
                .with_scheduler(SchedulerKind::KFair(4)),
            "v3|family=rectangle|n=64|seed=0|strategy=compass-se|cfg=-|sched=kfair4|geom=grid|limits=auto",
        ),
        (
            ScenarioSpec::euclid(Family::RandomLoop, 128, 3),
            "v3|family=random-loop|n=128|seed=3|strategy=euclid-chain|cfg=-|sched=fsync|geom=euclid|limits=auto",
        ),
    ];
    for (spec, id) in &golden {
        assert_eq!(spec_id(spec), *id);
    }
    // The hashes themselves (16 lowercase hex digits of FNV-1a 64).
    let hashes: Vec<String> = golden.iter().map(|(s, _)| spec_hash(s)).collect();
    assert_eq!(
        hashes,
        vec![
            "4427f99593a4451b".to_string(),
            "4206d4d6f6882d25".to_string(),
            "450132c42af8a3ae".to_string(),
            "7f5a821bb708c0c8".to_string(),
            "c1bbeb13e205319e".to_string(),
        ]
    );
}

#[test]
fn hash_distinguishes_every_spec_dimension() {
    let base = ScenarioSpec::strategy(Family::Rectangle, 64, 0, StrategyKind::paper());
    let variants = [
        ScenarioSpec::strategy(Family::Skyline, 64, 0, StrategyKind::paper()),
        ScenarioSpec::strategy(Family::Rectangle, 65, 0, StrategyKind::paper()),
        ScenarioSpec::strategy(Family::Rectangle, 64, 1, StrategyKind::paper()),
        ScenarioSpec::strategy(Family::Rectangle, 64, 0, StrategyKind::GlobalVision),
        ScenarioSpec::audited(Family::Rectangle, 64, 0),
        base.with_scheduler(SchedulerKind::RoundRobin(2)),
        base.with_scheduler(SchedulerKind::Random(50)),
        base.with_scheduler(SchedulerKind::KFair(4)),
        // Geometry is an identity axis: the Euclidean run of the same
        // family/n/seed is a different cell.
        ScenarioSpec::euclid(Family::Rectangle, 64, 0),
    ];
    for v in &variants {
        assert_ne!(spec_hash(&base), spec_hash(v), "{v:?}");
    }
    // Scheduler parameters are part of the identity too.
    assert_ne!(
        spec_hash(&base.with_scheduler(SchedulerKind::KFair(4))),
        spec_hash(&base.with_scheduler(SchedulerKind::KFair(8))),
    );
}

#[test]
fn shards_partition_the_grid() {
    let spec = CampaignSpec::scaling(false);
    let grid = spec.grid();
    for k in [1usize, 2, 3, 5, 7] {
        let shards: Vec<Vec<ScenarioSpec>> = (0..k).map(|i| spec.shard(i, k)).collect();
        // Disjoint: no hash appears in two shards.
        let mut seen: HashSet<String> = HashSet::new();
        for shard in &shards {
            for s in shard {
                assert!(seen.insert(spec_hash(s)), "duplicate across shards: {s:?}");
            }
        }
        // Covering: every grid entry is in exactly one shard.
        assert_eq!(seen.len(), grid.len());
        for s in &grid {
            assert!(seen.contains(&spec_hash(s)));
        }
        // Balanced: round-robin sizes differ by at most one.
        let sizes: Vec<usize> = shards.iter().map(Vec::len).collect();
        assert!(sizes.iter().max().unwrap() - sizes.iter().min().unwrap() <= 1);
    }
}

#[test]
fn run_resumes_and_skips_completed() {
    let dir = scratch("resume");
    let spec = tiny_campaign();
    let o = opts(&dir);

    let first = campaign::run(&spec, &o).unwrap();
    assert_eq!(first.assigned, spec.grid().len());
    assert_eq!(first.executed, first.assigned);
    assert_eq!(first.resumed, 0);

    let second = campaign::run(&spec, &o).unwrap();
    assert_eq!(second.executed, 0, "resume must skip every stored result");
    assert_eq!(second.resumed, second.assigned);

    // The store did not grow duplicate rows.
    let rows = store::read_rows(&first.store).unwrap();
    assert_eq!(rows.len(), first.assigned);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn artifact_alone_is_enough_to_resume() {
    let dir = scratch("artifact-resume");
    let spec = tiny_campaign();
    let artifact = dir.join("BENCH_tiny.json");
    let mut o = opts(&dir);
    o.artifact = Some(artifact.clone());

    let first = campaign::run(&spec, &o).unwrap();
    assert_eq!(first.executed, first.assigned);
    assert_eq!(first.artifact.as_deref(), Some(artifact.as_path()));
    assert!(artifact.exists());

    // Blow away the JSONL store; the artifact still covers the grid.
    std::fs::remove_file(&first.store).unwrap();
    let second = campaign::run(&spec, &o).unwrap();
    assert_eq!(
        second.executed, 0,
        "a present artifact must satisfy resume on its own"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Normalize the one non-deterministic field.
fn strip_wall(mut row: CampaignRow) -> CampaignRow {
    row.wall_us = 0;
    row
}

#[test]
fn sharded_runs_plus_merge_match_unsharded() {
    let spec = tiny_campaign();

    // Unsharded reference run.
    let ref_dir = scratch("merge-ref");
    let ref_run = campaign::run(&spec, &opts(&ref_dir)).unwrap();
    let mut reference = store::read_rows(&ref_run.store).unwrap();

    // Two shards into a separate store, then merge.
    let dir = scratch("merge-sharded");
    for i in 0..2 {
        let mut o = opts(&dir);
        o.shard = Some((i, 2));
        let r = campaign::run(&spec, &o).unwrap();
        assert_eq!(r.executed, r.assigned);
    }
    let artifact = dir.join("BENCH_tiny.json");
    let m = campaign::merge(&spec, &dir, Some(&artifact)).unwrap();
    assert_eq!(m.covered, m.grid);
    assert_eq!(m.artifact.as_deref(), Some(artifact.as_path()));
    let mut merged = store::read_rows(&m.store).unwrap();

    // Identical rows (grid order) up to wall-clock, byte-for-byte in the
    // serialized representation.
    assert_eq!(merged.len(), reference.len());
    // The reference store is already in grid order (unsharded append order
    // == grid order); compare directly.
    for (a, b) in merged.drain(..).zip(reference.drain(..)) {
        let (a, b) = (strip_wall(a), strip_wall(b));
        assert_eq!(
            a.to_store_json().to_compact(),
            b.to_store_json().to_compact()
        );
    }

    // The artifact parses back and its rows carry the same hashes in the
    // same order as the grid.
    let ((name, _commit, date), rows) = store::read_artifact(&artifact).unwrap();
    assert_eq!(name, "tiny");
    assert_eq!(date.len(), 10);
    let grid_hashes: Vec<String> = spec.grid().iter().map(spec_hash).collect();
    let row_hashes: Vec<String> = rows.iter().map(|r| r.spec_hash().unwrap()).collect();
    assert_eq!(row_hashes, grid_hashes);

    let _ = std::fs::remove_dir_all(&ref_dir);
    let _ = std::fs::remove_dir_all(&dir);
}

/// The quick grid of the tiny campaign: a strict subset (one size, one
/// seed), mirroring `scaling --quick` vs the full scaling grid.
fn tiny_quick_campaign() -> CampaignSpec {
    CampaignSpec {
        sizes: vec![16],
        seeds: vec![0],
        ..tiny_campaign()
    }
}

#[test]
fn quick_rerun_never_shrinks_a_full_artifact_or_store() {
    let dir = scratch("no-shrink");
    let artifact = dir.join("BENCH_tiny.json");
    let full = tiny_campaign();
    let quick = tiny_quick_campaign();
    let mut o = opts(&dir);
    o.artifact = Some(artifact.clone());

    // Complete the full campaign.
    let full_run = campaign::run(&full, &o).unwrap();
    assert_eq!(full_run.artifact.as_deref(), Some(artifact.as_path()));
    let full_rows = store::read_artifact(&artifact).unwrap().1.len();
    assert_eq!(full_rows, full.grid().len());

    // A quick run over the same store/artifact resumes everything and
    // must leave the richer artifact untouched.
    let quick_run = campaign::run(&quick, &o).unwrap();
    assert_eq!(quick_run.executed, 0);
    assert_eq!(
        quick_run.artifact, None,
        "quick must not rewrite the artifact"
    );
    assert_eq!(store::read_artifact(&artifact).unwrap().1.len(), full_rows);

    // `merge --quick` keeps the out-of-grid rows in the store too.
    let m = campaign::merge(&quick, &dir, Some(&artifact)).unwrap();
    assert_eq!(m.covered, quick.grid().len());
    assert_eq!(
        store::read_rows(&m.store).unwrap().len(),
        full.grid().len(),
        "merge with a narrower grid must not drop rows"
    );
    assert_eq!(store::read_artifact(&artifact).unwrap().1.len(), full_rows);

    // And the full grid still resumes to zero afterwards.
    let again = campaign::run(&full, &o).unwrap();
    assert_eq!(again.executed, 0);
    let _ = std::fs::remove_dir_all(&dir);
}

/// A tiny SSYNC campaign: the scheduler axis flows through run / store /
/// resume / report end to end.
fn tiny_ssync_campaign() -> CampaignSpec {
    CampaignSpec {
        name: "tiny-ssync".to_string(),
        families: vec![Family::Rectangle],
        sizes: vec![16],
        seeds: vec![0, 1],
        strategies: vec![StrategySweep::up_to(StrategyKind::CompassSe, 16)],
        schedulers: vec![SchedulerKind::Fsync, SchedulerKind::KFair(4)],
        geometries: vec![bench::GeometryKind::Grid],
    }
}

#[test]
fn ssync_campaign_runs_resumes_and_reports() {
    let dir = scratch("ssync");
    let spec = tiny_ssync_campaign();
    let o = opts(&dir);

    let first = campaign::run(&spec, &o).unwrap();
    assert_eq!(first.assigned, 4, "2 seeds × 2 schedulers");
    assert_eq!(first.executed, 4);
    let second = campaign::run(&spec, &o).unwrap();
    assert_eq!(second.executed, 0, "SSYNC rows must resume by hash");

    let rows = store::read_rows(&first.store).unwrap();
    let schedulers: Vec<&str> = rows.iter().map(|r| r.scheduler.as_str()).collect();
    assert_eq!(schedulers, vec!["fsync", "kfair4", "fsync", "kfair4"]);

    // The report gets one column per (strategy, scheduler) pair, and the
    // k-fair column shows the SSYNC slowdown.
    let tables = campaign::report(&spec, &dir, None).unwrap();
    assert_eq!(
        tables[0].header,
        vec![
            "family",
            "n",
            "n_actual",
            "compass-se@fsync",
            "compass-se@kfair4"
        ]
    );
    let row = &tables[0].rows[0];
    let (fsync, kfair) = (
        row[3].parse::<f64>().unwrap(),
        row[4].parse::<f64>().unwrap(),
    );
    assert!(
        kfair > fsync,
        "k-fair activation must cost extra rounds ({kfair} vs {fsync})"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Satellite regression: malformed or truncated store/artifact files must
/// surface as proper errors (with the offending path in the message) from
/// every campaign entry point — run, status, merge, report — never as
/// panics.
#[test]
fn malformed_artifacts_error_instead_of_panicking() {
    let spec = tiny_campaign();

    // Garbage JSONL store line.
    let dir = scratch("malformed-store");
    std::fs::write(dir.join("tiny.jsonl"), "this is not json\n").unwrap();
    for result in [
        campaign::run(&spec, &opts(&dir)).map(|_| ()),
        campaign::status(&spec, &dir, None).map(|_| ()),
        campaign::merge(&spec, &dir, None).map(|_| ()),
        campaign::report(&spec, &dir, None).map(|_| ()),
    ] {
        let err = result.expect_err("garbage store must error");
        assert!(
            err.to_string().contains("tiny.jsonl"),
            "error must name the offending file: {err}"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);

    // Truncated artifact (killed mid-write).
    let dir = scratch("malformed-artifact");
    let artifact = dir.join("BENCH_tiny.json");
    std::fs::write(&artifact, "{\"campaign\":\"tiny\",\"rows\":[{\"family\":").unwrap();
    let err = campaign::status(&spec, &dir, Some(&artifact)).expect_err("truncated artifact");
    assert!(err.to_string().contains("BENCH_tiny.json"), "{err}");
    let err = campaign::run(
        &spec,
        &RunOptions {
            artifact: Some(artifact.clone()),
            ..opts(&dir)
        },
    )
    .expect_err("run must refuse a truncated artifact");
    assert!(err.to_string().contains("BENCH_tiny.json"), "{err}");

    // Structurally valid JSON that is not an artifact (no rows array).
    std::fs::write(&artifact, "{\"campaign\":\"tiny\"}").unwrap();
    let err = campaign::merge(&spec, &dir, Some(&artifact)).expect_err("missing rows array");
    assert!(err.to_string().contains("missing rows"), "{err}");

    // Rows present but a row is missing required fields.
    std::fs::write(&artifact, "{\"rows\":[{\"family\":\"rectangle\"}]}").unwrap();
    let err = campaign::report(&spec, &dir, Some(&artifact)).expect_err("incomplete row");
    assert!(err.to_string().contains("missing"), "{err}");
    let _ = std::fs::remove_dir_all(&dir);
}

/// A store line truncated mid-object (the documented killed-run repair
/// case) is a positioned hard error, not a silent drop.
#[test]
fn truncated_store_line_is_a_positioned_error() {
    let dir = scratch("truncated-line");
    let path = dir.join("tiny.jsonl");
    let spec = ScenarioSpec::strategy(Family::Rectangle, 16, 0, StrategyKind::paper());
    let row = CampaignRow::from_result(&bench::scenario::run_scenario(&spec));
    let mut text = String::new();
    row.to_store_json().write(&mut text);
    let keep = text.len() / 2;
    std::fs::write(&path, format!("{}\n{}", text, &text[..keep])).unwrap();
    let err = store::read_rows(&path).expect_err("truncated line");
    assert!(
        err.to_string().contains(":2:"),
        "error must carry the line number: {err}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Satellite: the worker-thread count is a pure performance knob — a
/// campaign run with 1 thread and one with 4 produce byte-identical
/// stores (up to the measured wall clock).
#[test]
fn thread_count_never_changes_results() {
    let spec = tiny_campaign();
    let mut stores = Vec::new();
    for threads in [1usize, 4] {
        let dir = scratch(&format!("threads-{threads}"));
        let r = campaign::run(
            &spec,
            &RunOptions {
                threads,
                ..opts(&dir)
            },
        )
        .unwrap();
        let rows: Vec<String> = store::read_rows(&r.store)
            .unwrap()
            .into_iter()
            .map(|row| strip_wall(row).to_store_json().to_compact())
            .collect();
        stores.push(rows);
        let _ = std::fs::remove_dir_all(&dir);
    }
    assert_eq!(stores[0], stores[1], "threads=1 and threads=4 must agree");
}

/// Satellite: `status --json` — machine-readable coverage with per-shard
/// done/total and the missing spec hashes, in canonical grid order.
#[test]
fn status_json_reports_shards_and_missing_hashes() {
    let dir = scratch("status-json");
    let spec = tiny_campaign();

    // Run only shard 0 of 2; shard 1 stays missing.
    let mut o = opts(&dir);
    o.shard = Some((0, 2));
    campaign::run(&spec, &o).unwrap();

    let s = campaign::status_sharded(&spec, &dir, None, 2).unwrap();
    assert_eq!(s.by_shard.len(), 2);
    let (i0, done0, total0) = s.by_shard[0];
    let (i1, done1, total1) = s.by_shard[1];
    assert_eq!((i0, i1), (0, 1));
    assert_eq!(done0, total0, "shard 0 ran to completion");
    assert_eq!(done1, 0, "shard 1 has not run");
    assert_eq!(total0 + total1, s.grid);
    // The missing hashes are exactly shard 1, in grid order.
    let shard1: Vec<String> = spec.shard(1, 2).iter().map(spec_hash).collect();
    assert_eq!(s.missing, shard1);

    // The JSON rendering parses back and carries the same numbers.
    let text = s.to_json(&spec.name).to_compact();
    let v = bench::campaign::json::Json::parse(&text).unwrap();
    assert_eq!(v.get("campaign").unwrap().as_str(), Some("tiny"));
    assert_eq!(v.get("grid").unwrap().as_usize(), Some(s.grid));
    assert_eq!(
        v.get("complete"),
        Some(&bench::campaign::json::Json::Bool(false))
    );
    assert_eq!(
        v.get("missing").unwrap().as_arr().unwrap().len(),
        s.missing.len()
    );
    assert_eq!(v.get("shards").unwrap().as_arr().unwrap().len(), 2);

    // A complete campaign reports complete:true and no missing hashes.
    o.shard = Some((1, 2));
    campaign::run(&spec, &o).unwrap();
    let s = campaign::status_sharded(&spec, &dir, None, 2).unwrap();
    assert!(s.complete());
    assert!(s.missing.is_empty());
    let _ = std::fs::remove_dir_all(&dir);
}

/// Pre-v3 stores (no `geometry` / `makespan` / `max_travel_milli` keys)
/// must still resume: hashes are recomputed from row identity fields and
/// a missing geometry decodes as grid, landing in the same v3 cell.
#[test]
fn legacy_v2_store_resumes_under_v3_hashes() {
    let dir = scratch("legacy-v2");
    let spec = tiny_campaign();
    let o = opts(&dir);

    let first = campaign::run(&spec, &o).unwrap();
    assert_eq!(first.executed, first.assigned);

    // Rewrite the store as a v2-era file: drop every key the v3 row
    // format added. String surgery keeps the test honest — this is the
    // byte shape old stores actually have on disk.
    let text = std::fs::read_to_string(&first.store).unwrap();
    let mut legacy = String::new();
    for line in text.lines() {
        let mut line = line.to_string();
        for key in ["geometry", "makespan", "max_travel_milli"] {
            if let Some(start) = line.find(&format!(",\"{key}\":")) {
                let rest = &line[start + 1..];
                let end = rest.find(",\"").map(|e| start + 1 + e).unwrap_or_else(|| {
                    line.rfind('}').unwrap() // last key before the brace
                });
                line.replace_range(start..end, "");
            }
        }
        legacy.push_str(&line);
        legacy.push('\n');
    }
    assert!(!legacy.contains("geometry"), "surgery must strip the keys");
    std::fs::write(&first.store, legacy).unwrap();

    let rows = store::read_rows(&first.store).unwrap();
    assert!(rows.iter().all(|r| r.geometry == "grid" && r.makespan == 0));

    let second = campaign::run(&spec, &o).unwrap();
    assert_eq!(
        second.executed, 0,
        "legacy rows must hash into the v3 grid cells and resume"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// The euclid built-in campaign end to end: grid pairing skips invalid
/// geometry×strategy combos, rows carry the new objective columns, resume
/// works, and the report renders all four tables.
#[test]
fn euclid_campaign_runs_resumes_and_reports() {
    let dir = scratch("euclid");
    let mut spec = CampaignSpec::euclid(true);
    // Trim to one family/size/seed so the test stays fast.
    spec.families = vec![Family::Rectangle];
    spec.sizes = vec![32];
    spec.seeds = vec![0];
    let o = opts(&dir);

    let first = campaign::run(&spec, &o).unwrap();
    assert_eq!(first.assigned, 2, "paper@grid + euclid-chain@euclid");
    assert_eq!(first.executed, 2);
    let second = campaign::run(&spec, &o).unwrap();
    assert_eq!(second.executed, 0, "euclid rows must resume by hash");

    let rows = store::read_rows(&first.store).unwrap();
    let geoms: Vec<&str> = rows.iter().map(|r| r.geometry.as_str()).collect();
    assert_eq!(geoms, vec!["grid", "euclid"]);
    let euclid = &rows[1];
    assert_eq!(euclid.outcome, "gathered");
    assert!(euclid.makespan > 0, "makespan must be recorded");
    assert!(
        euclid.max_travel_milli.unwrap() > 0,
        "euclid runs must record max travel"
    );

    let tables = campaign::report(&spec, &dir, None).unwrap();
    assert_eq!(tables.len(), 4);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn status_and_report_reflect_coverage() {
    let dir = scratch("status");
    let spec = tiny_campaign();

    let empty = campaign::status(&spec, &dir, None).unwrap();
    assert_eq!(empty.covered, 0);
    assert!(!empty.complete());

    // Run only shard 0 of 2.
    let mut o = opts(&dir);
    o.shard = Some((0, 2));
    campaign::run(&spec, &o).unwrap();
    let partial = campaign::status(&spec, &dir, None).unwrap();
    assert_eq!(partial.covered, spec.shard(0, 2).len());
    assert!(!partial.complete());

    // Finish and check the report shape.
    o.shard = Some((1, 2));
    campaign::run(&spec, &o).unwrap();
    let full = campaign::status(&spec, &dir, None).unwrap();
    assert!(full.complete());
    let tables = campaign::report(&spec, &dir, None).unwrap();
    assert_eq!(tables.len(), 4, "rounds, wall-clock, makespan, max travel");
    let rounds = &tables[0];
    // family, n, n_actual + one column per strategy.
    assert_eq!(rounds.header.len(), 3 + spec.strategies.len());
    assert_eq!(rounds.rows.len(), spec.sizes.len());
    // The capped strategy has no n=32 cell.
    let n32 = rounds.rows.iter().find(|r| r[1] == "32").unwrap();
    assert_eq!(n32[4], "-");
    assert_ne!(n32[3], "-");
    // CSV view round-trips the header.
    assert!(rounds
        .to_csv()
        .starts_with("family,n,n_actual,paper,global-vision"));
    let _ = std::fs::remove_dir_all(&dir);
}
