//! Committed replay goldens: the engine must reproduce two recorded runs
//! byte-for-byte, forever.
//!
//! The blobs under `tests/goldens/` were recorded once with
//! [`ReplayWriter`] via the scenario pipeline and committed; this test
//! re-records the same specs and compares bytes. Any drift in movement
//! semantics, scheduling, merge order, or the replay encoding itself
//! trips it — a standing tripwire for refactors that claim the grid path
//! is a no-op (the geometry-backend split that introduced it being the
//! first).
//!
//! Regenerating (deliberately, after an intentional semantic change):
//!
//! ```text
//! REPLAY_GOLDEN_BLESS=1 cargo test -p bench --test replay_goldens
//! ```

use std::path::PathBuf;

use bench::scenario::{run_scenario_tapped, ReplayTap, RunTaps, ScenarioSpec, StrategyKind};
use chain_sim::{ReplayReader, ReplaySink, SchedulerKind};
use workloads::Family;

/// The two pinned draws: the paper rule on FSYNC (the canonical path) and
/// the SSYNC repair under a round-robin schedule (masks + guard records —
/// the densest record layout).
fn goldens() -> [(&'static str, ScenarioSpec); 2] {
    [
        (
            "paper_fsync_rect24_seed0.replay",
            ScenarioSpec::strategy(Family::Rectangle, 24, 0, StrategyKind::paper()),
        ),
        (
            "paper_ssync_rr2_skyline24_seed1.replay",
            ScenarioSpec::strategy(Family::Skyline, 24, 1, StrategyKind::paper_ssync())
                .with_scheduler(SchedulerKind::RoundRobin(2)),
        ),
    ]
}

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/goldens")
        .join(name)
}

fn record(spec: &ScenarioSpec) -> Vec<u8> {
    let sink = ReplaySink::new();
    let result = run_scenario_tapped(
        spec,
        RunTaps {
            probe: None,
            replay: Some(ReplayTap {
                sink: sink.clone(),
                ring: None,
            }),
            phases: None,
        },
    );
    assert!(
        result.outcome.is_gathered(),
        "{spec:?}: {:?}",
        result.outcome
    );
    sink.take()
}

#[test]
fn committed_replays_reproduce_byte_for_byte() {
    let bless = std::env::var_os("REPLAY_GOLDEN_BLESS").is_some();
    for (name, spec) in goldens() {
        let blob = record(&spec);
        assert!(!blob.is_empty(), "{name}: empty recording");

        // The recording must itself verify before it can be a golden.
        let mut reader = ReplayReader::new(&blob).unwrap();
        let mut rounds = 0u64;
        while reader.next_round().unwrap().is_some() {
            rounds += 1;
        }
        assert!(rounds > 0, "{name}: no rounds replayed");
        assert!(reader.outcome().is_some(), "{name}: missing trailer");

        let path = golden_path(name);
        if bless {
            std::fs::create_dir_all(path.parent().unwrap()).unwrap();
            std::fs::write(&path, &blob).unwrap();
            continue;
        }
        let committed = std::fs::read(&path).unwrap_or_else(|e| {
            panic!(
                "{name}: missing committed golden at {} ({e}); run with \
                 REPLAY_GOLDEN_BLESS=1 after an intentional change",
                path.display()
            )
        });
        assert!(
            blob == committed,
            "{name}: recorded replay drifted from the committed golden \
             ({} vs {} bytes) — movement semantics, scheduling, merge \
             order, or the replay encoding changed",
            blob.len(),
            committed.len()
        );
    }
}
