//! Replay determinism, pinned at the pipeline level.
//!
//! For seeded family × strategy × scheduler draws, a run recorded by
//! [`ReplayWriter`] and reconstructed by [`ReplayReader`] must visit the
//! same chain, round for round, as the engine's own [`Recorder`]
//! snapshots — byte-identical positions, matching counters, matching
//! trailer outcome. Telemetry taps must also be *passive*: a run with a
//! replay sink, frame ring, and progress slot attached produces exactly
//! the result an untapped run produces. And a mutilated replay — any
//! truncation, any bit flip — must fail with a positioned error, never a
//! panic.

use bench::scenario::{
    run_scenario, run_scenario_tapped, LimitPolicy, ReplayTap, RunTaps, ScenarioSpec, StrategyKind,
};
use chain_sim::{
    FrameRing, LiveFrame, ProgressSlot, Recorder, ReplayOutcome, ReplayReader, ReplaySink,
    ReplayWriter, RunLimits, SchedulerKind, Sim,
};
use workloads::Family;

/// The draw grid: every closed-chain strategy kind crossed with the
/// scheduler sweep over a few families/seeds. Includes combinations that
/// break the chain (`paper` under SSYNC) and ones that stall (`stand`) —
/// every trailer variant is exercised.
fn draws() -> Vec<ScenarioSpec> {
    let mut specs = Vec::new();
    let strategies = [
        StrategyKind::paper(),
        StrategyKind::paper_ssync(),
        StrategyKind::GlobalVision,
        StrategyKind::CompassSe,
        StrategyKind::NaiveLocal,
        StrategyKind::Stand,
    ];
    let families = [Family::Rectangle, Family::Skyline, Family::Comb];
    for (i, strategy) in strategies.iter().enumerate() {
        for (j, scheduler) in SchedulerKind::SWEEP.iter().enumerate() {
            let family = families[(i + j) % families.len()];
            let n = 16 + 8 * ((i + 2 * j) % 4);
            specs.push(
                ScenarioSpec::strategy(family, n, (i + 3 * j) as u64, *strategy)
                    .with_scheduler(*scheduler),
            );
        }
    }
    // A round-limited draw pins the RoundLimit trailer.
    let mut capped = ScenarioSpec::strategy(Family::Rectangle, 32, 0, StrategyKind::paper());
    capped.limits = LimitPolicy::Fixed(RunLimits {
        max_rounds: 5,
        stall_window: 100,
    });
    specs.push(capped);
    specs
}

/// Round-stamped position snapshots from a `Recorder`.
type Snapshots = Vec<(u64, Vec<grid_geom::Point>)>;

/// Record a spec on the boxed engine with both a `Recorder` (snapshot
/// every round) and a `ReplayWriter` attached, returning the replay blob,
/// the per-round position snapshots, and the outcome.
fn record(spec: &ScenarioSpec) -> (Vec<u8>, Snapshots, chain_sim::Outcome) {
    let chain = spec.generate();
    let limits = spec.resolve_limits(&chain);
    let strategy = spec.strategy.build().expect("closed-chain kinds build");
    let sink = ReplaySink::new();
    let mut sim = Sim::new(chain, strategy)
        .with_scheduler(spec.scheduler.build(spec.seed))
        .observe(Recorder::snapshots(1, usize::MAX))
        .observe(ReplayWriter::new(sink.clone()));
    let outcome = sim.run(limits);
    let snapshots = sim
        .observer_mut::<Recorder>()
        .unwrap()
        .take_trace()
        .snapshots;
    (sink.take(), snapshots, outcome)
}

#[test]
fn reader_chains_match_recorder_snapshots_across_draws() {
    for spec in draws() {
        let initial = spec.generate();
        let (blob, snapshots, outcome) = record(&spec);
        assert!(!blob.is_empty(), "{spec:?}: no replay flushed");

        let mut reader =
            ReplayReader::new(&blob).unwrap_or_else(|e| panic!("{spec:?}: header rejected: {e}"));
        assert_eq!(
            reader.chain().positions(),
            initial.positions(),
            "{spec:?}: initial chain differs"
        );
        let mut replayed = 0usize;
        loop {
            match reader.next_round() {
                Ok(Some(round)) => {
                    let (r, expected) = &snapshots[replayed];
                    assert_eq!(round.summary.round, *r, "{spec:?}");
                    assert_eq!(
                        reader.chain().positions(),
                        expected.as_slice(),
                        "{spec:?}: round {r} chain differs"
                    );
                    replayed += 1;
                }
                Ok(None) => break,
                Err(e) => panic!("{spec:?}: replay failed mid-stream: {e}"),
            }
        }
        assert_eq!(replayed as u64, outcome.rounds(), "{spec:?}");
        assert_eq!(replayed, snapshots.len(), "{spec:?}");
        assert_eq!(
            reader.outcome().unwrap(),
            &ReplayOutcome::from_outcome(&outcome),
            "{spec:?}: trailer outcome differs"
        );
    }
}

/// Taps are passive: the tapped run's result equals the untapped run's,
/// field for field, and the replay's round count equals the reported
/// rounds. (The service-level pin — byte-identical `CampaignRow`s across
/// watched/unwatched processes — lives in `gatherd`'s tests; this is the
/// engine-level root of that guarantee.)
#[test]
fn tapped_runs_are_byte_identical_to_untapped() {
    for spec in [
        ScenarioSpec::strategy(Family::Rectangle, 48, 1, StrategyKind::paper()),
        ScenarioSpec::strategy(Family::Skyline, 32, 2, StrategyKind::GlobalVision),
        ScenarioSpec::strategy(Family::Comb, 24, 3, StrategyKind::paper_ssync())
            .with_scheduler(SchedulerKind::KFair(4)),
    ] {
        let plain = run_scenario(&spec);
        let sink = ReplaySink::new();
        let ring = FrameRing::new(64);
        let slot = ProgressSlot::new();
        let tapped = run_scenario_tapped(
            &spec,
            RunTaps {
                probe: Some(slot.clone()),
                replay: Some(ReplayTap {
                    sink: sink.clone(),
                    ring: Some(ring.clone()),
                }),
                phases: None,
            },
        );
        assert_eq!(plain.fingerprint(), tapped.fingerprint(), "{spec:?}");
        assert_eq!(plain.outcome, tapped.outcome, "{spec:?}");

        let blob = sink.take();
        let mut reader = ReplayReader::new(&blob).unwrap();
        let mut rounds = 0u64;
        while reader.next_round().unwrap().is_some() {
            rounds += 1;
        }
        assert_eq!(rounds, tapped.outcome.rounds(), "{spec:?}");

        // The ring closed with a finished final frame agreeing with the
        // progress slot.
        assert!(ring.is_closed(), "{spec:?}");
        let mut cursor = 0u64;
        let mut last = None;
        while let Some(bytes) = ring.next(&mut cursor) {
            last = Some(LiveFrame::decode(&bytes).unwrap());
        }
        let last = last.expect("ring carries frames");
        assert!(last.finished, "{spec:?}");
        assert_eq!(last.round, tapped.outcome.rounds(), "{spec:?}");
        let snap = slot.snapshot();
        assert!(snap.finished, "{spec:?}");
        assert_eq!(last.removed_total, snap.removed as u64, "{spec:?}");
        assert_eq!(last.guard_cancels, snap.guard_cancels, "{spec:?}");
    }
}

/// The guard counter flows end to end: a paper-ssync run under an
/// adversarial schedule reports its guard cancels through both the
/// progress slot and the replay (summed per-round detail).
#[test]
fn guard_cancels_surface_in_slot_and_replay() {
    let spec = ScenarioSpec::strategy(Family::Rectangle, 32, 0, StrategyKind::paper_ssync())
        .with_scheduler(SchedulerKind::Random(50));
    let sink = ReplaySink::new();
    let slot = ProgressSlot::new();
    let result = run_scenario_tapped(
        &spec,
        RunTaps {
            probe: Some(slot.clone()),
            replay: Some(ReplayTap {
                sink: sink.clone(),
                ring: None,
            }),
            phases: None,
        },
    );
    assert!(result.outcome.is_gathered(), "{:?}", result.outcome);
    let blob = sink.take();
    let mut reader = ReplayReader::new(&blob).unwrap();
    let mut guard_total = 0u64;
    while let Some(round) = reader.next_round().unwrap() {
        guard_total += round.guard_cancels;
    }
    assert_eq!(slot.snapshot().guard_cancels, guard_total);
}

#[test]
fn truncations_and_bit_flips_fail_positioned_never_panic() {
    // One representative draw with SSYNC masks and guard activity — the
    // densest record layout.
    let spec = ScenarioSpec::strategy(Family::Skyline, 24, 5, StrategyKind::paper_ssync())
        .with_scheduler(SchedulerKind::KFair(4));
    let (blob, _, _) = record(&spec);

    let drive = |bytes: &[u8]| -> Result<u64, chain_sim::ReplayError> {
        let mut reader = ReplayReader::new(bytes)?;
        let mut rounds = 0u64;
        while reader.next_round()?.is_some() {
            rounds += 1;
        }
        Ok(rounds)
    };

    let full = drive(&blob).expect("pristine blob replays");

    for cut in 0..blob.len() {
        let err = drive(&blob[..cut]).expect_err("every strict prefix must fail");
        assert!(
            err.offset <= cut,
            "cut {cut}: offset {} past end",
            err.offset
        );
    }
    // Sampled single-bit flips: either a positioned error or (rarely) a
    // benign flip that still verifies — but never a panic, and never a
    // replay that silently gains or loses rounds.
    for byte in 0..blob.len() {
        let mut corrupt = blob.clone();
        corrupt[byte] ^= 1 << (byte % 8);
        match drive(&corrupt) {
            Err(e) => assert!(e.offset <= blob.len(), "byte {byte}: bad offset"),
            Ok(rounds) => assert_eq!(rounds, full, "byte {byte}: round count drifted"),
        }
    }
}
