//! Property tests for the campaign JSON dialect: every [`CampaignRow`]
//! field round-trips, and no input — garbage, truncations, byte
//! mutations, NaN spellings — ever panics the parser or the row decoder.
//! Errors must be positioned (byte offset for the parser, field name for
//! the decoder) so a corrupted store is diagnosable.
//!
//! The workspace has no proptest/quickcheck (offline build), so the fuzz
//! is a seeded loop over SplitMix64 byte mutations — deterministic,
//! reproducible by seed.

use bench::campaign::json::Json;
use bench::campaign::CampaignRow;
use chain_sim::rng::SplitMix64;

/// A row exercising every field with assorted values (pure in `seed`).
fn sample_row(seed: u64) -> CampaignRow {
    let mut r = SplitMix64::new(seed);
    let families = ["rectangle", "skyline", "random-loop", "comb"];
    let strategies = ["paper", "global-vision", "compass-se", "naive-local"];
    let schedulers = ["fsync", "rr2", "rand50", "kfair4"];
    let geometries = ["grid", "euclid"];
    let outcomes = ["gathered", "round-limit", "stalled", "chain-broken"];
    CampaignRow {
        family: families[r.range_usize(0, families.len())].to_string(),
        n: r.range_usize(4, 70_000),
        n_actual: r.range_usize(4, 70_000),
        seed: r.next_u64() >> 12,
        strategy: strategies[r.range_usize(0, strategies.len())].to_string(),
        scheduler: schedulers[r.range_usize(0, schedulers.len())].to_string(),
        geometry: geometries[r.range_usize(0, geometries.len())].to_string(),
        rounds: r.next_u64() >> 12,
        makespan: r.next_u64() >> 12,
        max_travel_milli: if r.range_usize(0, 2) == 0 {
            Some(r.next_u64() >> 12)
        } else {
            None
        },
        wall_us: r.next_u64() >> 12,
        outcome: outcomes[r.range_usize(0, outcomes.len())].to_string(),
        merges: r.range_usize(0, 70_000),
        longest_gap: r.next_u64() >> 12,
    }
}

/// Every field of every sampled row survives store-JSON → text → parse →
/// row, byte-stably (emitting the parsed row reproduces the text).
#[test]
fn every_row_field_round_trips() {
    for seed in 0..200 {
        let row = sample_row(seed);
        let text = row.to_store_json().to_compact();
        let parsed = CampaignRow::from_json(&Json::parse(&text).unwrap())
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        assert_eq!(parsed, row, "seed {seed}");
        assert_eq!(parsed.to_store_json().to_compact(), text, "seed {seed}");
    }
}

/// Every truncation of a valid line fails with a position inside the
/// input — never a panic, never a bogus success past the cut.
#[test]
fn truncations_error_with_positions() {
    let text = sample_row(7).to_store_json().to_compact();
    for cut in 0..text.len() {
        let Some(prefix) = text.get(..cut) else {
            continue; // mid-UTF-8 cut (ASCII store text never hits this)
        };
        let err = Json::parse(prefix).expect_err("every strict prefix is incomplete");
        assert!(
            err.pos <= prefix.len(),
            "cut {cut}: position {} outside input of {} bytes",
            err.pos,
            prefix.len()
        );
    }
}

/// Seeded byte-mutation fuzz: flip/overwrite a handful of bytes of a
/// valid line and feed the result to the parser and the row decoder.
/// Any outcome is acceptable except a panic or an unpositioned error.
#[test]
fn mutated_lines_never_panic() {
    let mut rng = SplitMix64::new(0x6a74_6865_7264);
    for round in 0..2_000 {
        let row = sample_row(round % 50);
        let mut bytes = row.to_store_json().to_compact().into_bytes();
        for _ in 0..rng.range_usize(1, 6) {
            let at = rng.range_usize(0, bytes.len());
            bytes[at] = (rng.next_u64() & 0x7f) as u8; // keep it ASCII-ish
        }
        let Ok(text) = String::from_utf8(bytes) else {
            continue;
        };
        match Json::parse(&text) {
            Err(e) => assert!(e.pos <= text.len(), "round {round}: {e}"),
            Ok(v) => {
                // Structurally valid JSON after mutation: the decoder must
                // accept or reject, never panic.
                if let Err(e) = CampaignRow::from_json(&v) {
                    assert!(e.contains("field"), "round {round}: undiagnostic error {e}");
                }
            }
        }
    }
}

/// NaN/Infinity spellings, non-integer counters, and other JSON-adjacent
/// garbage are rejected with diagnosable errors.
#[test]
fn nan_and_garbage_are_rejected() {
    for bad in [
        "NaN",
        "{\"n\": NaN}",
        "{\"n\": Infinity}",
        "{\"n\": -Infinity}",
        "nul",
        "{\"a\" 1}",
        "{\"a\": 1,,}",
        "[1, 2",
        "\"\\u12\"",
        "{\"a\": 1e}",
        "",
        "   ",
    ] {
        let err = Json::parse(bad).expect_err(bad);
        assert!(err.pos <= bad.len(), "{bad:?}: {err}");
        assert!(!err.msg.is_empty(), "{bad:?}");
    }

    // A float where an integer field belongs is a decoder error naming
    // the field, not a truncation or a panic.
    let v = Json::parse(
        r#"{"family":"rectangle","n":64.5,"seed":0,"strategy":"paper",
            "scheduler":"fsync","rounds":1,"wall_us":1,"outcome":"gathered"}"#,
    )
    .unwrap();
    let err = CampaignRow::from_json(&v).unwrap_err();
    assert!(err.contains("'n'"), "{err}");

    // Oversized numbers (beyond 2^53) don't round-trip as integers and
    // are rejected rather than silently truncated.
    let v = Json::parse(&format!(
        r#"{{"family":"rectangle","n":{},"seed":0,"strategy":"paper",
            "scheduler":"fsync","rounds":1,"wall_us":1,"outcome":"gathered"}}"#,
        (1u64 << 60)
    ))
    .unwrap();
    assert!(CampaignRow::from_json(&v).is_err());
}
