//! Wall-clock performance benches for the simulator and the algorithm.
//!
//! These measure engine throughput (robot·rounds per second), the cost of
//! one FSYNC round at various chain sizes, merge-scan cost, full
//! gatherings, and — the pipeline's headline number — how `run_batch`
//! scales with the available cores.
//!
//! The offline build has no criterion, so this is a plain `harness = false`
//! binary: each section repeats its workload long enough for stable timing
//! and prints a throughput line.
//!
//! ```text
//! cargo bench -p bench --bench engine_perf
//! ```

use bench::{run_batch_with, BatchOptions, ScenarioSpec};
use chain_sim::{Recorder, RunLimits, Sim};
use gathering_core::{ClosedChainGathering, GatherConfig, MergeScan};
use std::hint::black_box;
use std::time::{Duration, Instant};
use workloads::Family;

/// Repeat `f` until at least ~200 ms elapse. `f` returns its per-iteration
/// work unit count; the warm-up call's work and time are both discarded, so
/// the returned `(iterations, work_sum, elapsed)` are consistent.
fn time_until_stable<F: FnMut() -> u64>(mut f: F) -> (u64, u128, Duration) {
    // Warm-up (excluded from every returned figure).
    f();
    let mut iters = 0u64;
    let mut work = 0u128;
    let t0 = Instant::now();
    loop {
        work += u128::from(f());
        iters += 1;
        if t0.elapsed() >= Duration::from_millis(200) && iters >= 5 {
            return (iters, work, t0.elapsed());
        }
    }
}

fn per_sec(count: u128, elapsed: Duration) -> f64 {
    count as f64 / elapsed.as_secs_f64()
}

fn bench_single_round() {
    println!("## single_round (one FSYNC step, fresh sim each iteration)");
    for n in [256usize, 1024, 4096] {
        let chain = Family::Rectangle.generate(n, 0);
        let len = chain.len();
        let (iters, _, elapsed) = time_until_stable(|| {
            let mut sim = Sim::new(chain.clone(), ClosedChainGathering::paper());
            sim.step().unwrap();
            black_box(sim.round());
            1
        });
        println!(
            "  n={len:>5}  {:>12.0} robot·rounds/s  ({iters} iters)",
            per_sec(iters as u128 * len as u128, elapsed)
        );
    }
}

fn bench_merge_scan() {
    println!("## merge_scan (pattern scan over a crenellated band)");
    for n in [256usize, 4096] {
        let chain = Family::Crenellated.generate(n, 0);
        let len = chain.len();
        let cfg = GatherConfig::paper();
        let mut scan = MergeScan::default();
        let (iters, _, elapsed) = time_until_stable(|| {
            scan.scan(&chain, &cfg);
            black_box(scan.patterns.len());
            1
        });
        println!(
            "  n={len:>5}  {:>12.0} robots/s  ({iters} iters)",
            per_sec(iters as u128 * len as u128, elapsed)
        );
    }
}

fn bench_full_gathering() {
    println!("## full_gathering (complete run to the 2x2 square)");
    for (fam, n) in [
        (Family::Rectangle, 256usize),
        (Family::Skyline, 256),
        (Family::RandomLoop, 256),
    ] {
        let chain = fam.generate(n, 1);
        let len = chain.len();
        let (iters, rounds_total, elapsed) = time_until_stable(|| {
            let mut sim = Sim::new(chain.clone(), ClosedChainGathering::paper());
            let out = sim.run(RunLimits::for_chain_len(len));
            assert!(out.is_gathered());
            out.rounds()
        });
        println!(
            "  {:<14} n={len:>4}  {:>12.0} robot·rounds/s  ({iters} runs)",
            fam.name(),
            per_sec(rounds_total * len as u128, elapsed)
        );
    }
}

/// What instrumentation costs: the same full gathering with no observers
/// (the hot path) vs with the trace-recording observer attached. The
/// observer-free figure is the one the acceptance gate tracks; the
/// recorded figure documents the price of full report retention.
fn bench_observer_overhead() {
    println!("## observer_overhead (full gathering at n=256, observer-free vs Recorder)");
    let chain = Family::Rectangle.generate(256, 1);
    let len = chain.len();
    let (_, rounds_free, elapsed_free) = time_until_stable(|| {
        let mut sim = Sim::new(chain.clone(), ClosedChainGathering::paper());
        let out = sim.run(RunLimits::for_chain_len(len));
        assert!(out.is_gathered());
        out.rounds()
    });
    let (_, rounds_rec, elapsed_rec) = time_until_stable(|| {
        let mut sim =
            Sim::new(chain.clone(), ClosedChainGathering::paper()).observe(Recorder::new());
        let out = sim.run(RunLimits::for_chain_len(len));
        assert!(out.is_gathered());
        out.rounds()
    });
    let free = per_sec(rounds_free * len as u128, elapsed_free);
    let rec = per_sec(rounds_rec * len as u128, elapsed_rec);
    println!("  observer-free   {free:>12.0} robot·rounds/s");
    println!(
        "  with Recorder   {rec:>12.0} robot·rounds/s  ({:.1}% of free)",
        100.0 * rec / free
    );
}

fn bench_workload_generation() {
    println!("## workload_generation (chains/s at n=1024)");
    for fam in [Family::RandomLoop, Family::Skyline] {
        let mut seed = 0u64;
        let (iters, _, elapsed) = time_until_stable(|| {
            seed += 1;
            black_box(fam.generate(1024, seed).len());
            1
        });
        println!(
            "  {:<14} {:>10.1} chains/s  ({iters} iters)",
            fam.name(),
            per_sec(iters as u128, elapsed)
        );
    }
}

/// The acceptance check for the scenario pipeline: batch execution scales
/// with available cores. Runs the same spec grid serially and with one
/// worker per core, and prints the speedup.
fn bench_batch_scaling() {
    let cores = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    println!("## batch_scaling (run_batch over {cores} cores)");
    let specs: Vec<ScenarioSpec> = Family::ALL
        .iter()
        .flat_map(|&fam| (0..4u64).map(move |seed| ScenarioSpec::paper(fam, 192, seed)))
        .collect();

    let t0 = Instant::now();
    let serial = run_batch_with(&specs, BatchOptions::threads(1));
    let serial_t = t0.elapsed();

    let t1 = Instant::now();
    let parallel = run_batch_with(&specs, BatchOptions::default());
    let parallel_t = t1.elapsed();

    assert_eq!(serial.len(), parallel.len());
    for (a, b) in serial.iter().zip(&parallel) {
        assert_eq!(
            a.fingerprint(),
            b.fingerprint(),
            "parallelism changed a result"
        );
    }
    let speedup = serial_t.as_secs_f64() / parallel_t.as_secs_f64().max(1e-9);
    println!(
        "  {} scenarios: serial {:>7.0} ms, parallel {:>7.0} ms, speedup {speedup:.2}x",
        specs.len(),
        serial_t.as_secs_f64() * 1e3,
        parallel_t.as_secs_f64() * 1e3,
    );
    if cores >= 2 && speedup < 1.2 {
        println!("  WARNING: expected >1.2x speedup on {cores} cores");
    }
}

fn main() {
    // `cargo bench` forwards its own flags (e.g. `--bench`); the first
    // non-flag argument, if any, filters the sections by substring.
    let filter = std::env::args()
        .skip(1)
        .find(|a| !a.starts_with('-'))
        .unwrap_or_default();
    let want = |name: &str| filter.is_empty() || name.contains(&filter);
    if want("single_round") {
        bench_single_round();
    }
    if want("merge_scan") {
        bench_merge_scan();
    }
    if want("full_gathering") {
        bench_full_gathering();
    }
    if want("observer_overhead") {
        bench_observer_overhead();
    }
    if want("workload_generation") {
        bench_workload_generation();
    }
    if want("batch_scaling") {
        bench_batch_scaling();
    }
}
