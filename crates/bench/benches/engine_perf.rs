//! Wall-clock performance benches for the simulator and the algorithm.
//!
//! These measure engine throughput (robot·rounds per second), the cost of
//! one FSYNC round at various chain sizes, merge-scan cost, full
//! gatherings, and — the pipeline's headline number — how `run_batch`
//! scales with the available cores.
//!
//! The offline build has no criterion, so this is a plain `harness = false`
//! binary: each section repeats its workload long enough for stable timing
//! and prints a throughput line.
//!
//! ```text
//! cargo bench -p bench --bench engine_perf
//! ```

use baselines::{CompassSeKernel, GlobalVisionKernel, NaiveLocalKernel};
use bench::{run_batch_with, BatchOptions, ScenarioSpec, StrategyKind};
use chain_sim::kernel::{FsyncRule, KernelChain, KernelSim, RoundKernel};
use chain_sim::{ClosedChain, PackedChain, Recorder, RunLimits, Sim};
use gathering_core::{ClosedChainGathering, GatherConfig, MergeScan};
use std::hint::black_box;
use std::time::{Duration, Instant};
use workloads::Family;

/// Repeat `f` until at least ~200 ms elapse. `f` returns its per-iteration
/// work unit count; the warm-up call's work and time are both discarded, so
/// the returned `(iterations, work_sum, elapsed)` are consistent.
fn time_until_stable<F: FnMut() -> u64>(mut f: F) -> (u64, u128, Duration) {
    // Warm-up (excluded from every returned figure).
    f();
    let mut iters = 0u64;
    let mut work = 0u128;
    let t0 = Instant::now();
    loop {
        work += u128::from(f());
        iters += 1;
        if t0.elapsed() >= Duration::from_millis(200) && iters >= 5 {
            return (iters, work, t0.elapsed());
        }
    }
}

fn per_sec(count: u128, elapsed: Duration) -> f64 {
    count as f64 / elapsed.as_secs_f64()
}

fn bench_single_round() {
    println!("## single_round (one FSYNC step, fresh sim each iteration)");
    for n in [256usize, 1024, 4096] {
        let chain = Family::Rectangle.generate(n, 0);
        let len = chain.len();
        let (iters, _, elapsed) = time_until_stable(|| {
            let mut sim = Sim::new(chain.clone(), ClosedChainGathering::paper());
            sim.step().unwrap();
            black_box(sim.round());
            1
        });
        println!(
            "  n={len:>5}  {:>12.0} robot·rounds/s  ({iters} iters)",
            per_sec(iters as u128 * len as u128, elapsed)
        );
    }
}

fn bench_merge_scan() {
    println!("## merge_scan (pattern scan over a crenellated band)");
    for n in [256usize, 4096] {
        let chain = Family::Crenellated.generate(n, 0);
        let len = chain.len();
        let cfg = GatherConfig::paper();
        let mut scan = MergeScan::default();
        let (iters, _, elapsed) = time_until_stable(|| {
            scan.scan(&chain, &cfg);
            black_box(scan.patterns.len());
            1
        });
        println!(
            "  n={len:>5}  {:>12.0} robots/s  ({iters} iters)",
            per_sec(iters as u128 * len as u128, elapsed)
        );
    }
}

fn bench_full_gathering() {
    println!("## full_gathering (complete run to the 2x2 square)");
    for (fam, n) in [
        (Family::Rectangle, 256usize),
        (Family::Skyline, 256),
        (Family::RandomLoop, 256),
    ] {
        let chain = fam.generate(n, 1);
        let len = chain.len();
        let (iters, rounds_total, elapsed) = time_until_stable(|| {
            let mut sim = Sim::new(chain.clone(), ClosedChainGathering::paper());
            let out = sim.run(RunLimits::for_chain_len(len));
            assert!(out.is_gathered());
            out.rounds()
        });
        println!(
            "  {:<14} n={len:>4}  {:>12.0} robot·rounds/s  ({iters} runs)",
            fam.name(),
            per_sec(rounds_total * len as u128, elapsed)
        );
    }
}

/// What instrumentation costs: the same full gathering with no observers
/// (the hot path) vs with the trace-recording observer attached. The
/// observer-free figure is the one the acceptance gate tracks; the
/// recorded figure documents the price of full report retention.
fn bench_observer_overhead() {
    println!("## observer_overhead (full gathering at n=256, observer-free vs Recorder)");
    let chain = Family::Rectangle.generate(256, 1);
    let len = chain.len();
    let (_, rounds_free, elapsed_free) = time_until_stable(|| {
        let mut sim = Sim::new(chain.clone(), ClosedChainGathering::paper());
        let out = sim.run(RunLimits::for_chain_len(len));
        assert!(out.is_gathered());
        out.rounds()
    });
    let (_, rounds_rec, elapsed_rec) = time_until_stable(|| {
        let mut sim =
            Sim::new(chain.clone(), ClosedChainGathering::paper()).observe(Recorder::new());
        let out = sim.run(RunLimits::for_chain_len(len));
        assert!(out.is_gathered());
        out.rounds()
    });
    let free = per_sec(rounds_free * len as u128, elapsed_free);
    let rec = per_sec(rounds_rec * len as u128, elapsed_rec);
    println!("  observer-free   {free:>12.0} robot·rounds/s");
    println!(
        "  with Recorder   {rec:>12.0} robot·rounds/s  ({:.1}% of free)",
        100.0 * rec / free
    );
}

/// What phase timing costs: the same full gathering with no timer vs a
/// [`PhaseTimer`] at the default sampling rate (one round in 16). The
/// acceptance contract is < 2% overhead — sampled rounds pay four clock
/// reads and two histogram records; the other fifteen pay one branch.
fn bench_phase_overhead() {
    println!("## phase_overhead (full gathering at n=256, no timer vs default-rate PhaseTimer)");
    let chain = Family::Rectangle.generate(256, 1);
    let len = chain.len();
    let (_, rounds_free, elapsed_free) = time_until_stable(|| {
        let mut sim = Sim::new(chain.clone(), ClosedChainGathering::paper());
        let out = sim.run(RunLimits::for_chain_len(len));
        assert!(out.is_gathered());
        out.rounds()
    });
    let timer = std::sync::Arc::new(obs::PhaseTimer::default_rate());
    let (_, rounds_timed, elapsed_timed) = time_until_stable(|| {
        let mut sim =
            Sim::new(chain.clone(), ClosedChainGathering::paper()).with_phase_timer(timer.clone());
        let out = sim.run(RunLimits::for_chain_len(len));
        assert!(out.is_gathered());
        out.rounds()
    });
    let free = per_sec(rounds_free * len as u128, elapsed_free);
    let timed = per_sec(rounds_timed * len as u128, elapsed_timed);
    let overhead = 100.0 * (1.0 - timed / free);
    println!("  timer-free      {free:>12.0} robot·rounds/s");
    println!(
        "  with PhaseTimer {timed:>12.0} robot·rounds/s  ({overhead:+.1}% overhead, \
         {} rounds sampled)",
        timer.rounds_sampled()
    );
    if overhead > 2.0 {
        println!("  WARNING: above the 2% phase-timing overhead contract");
    }
}

fn bench_workload_generation() {
    println!("## workload_generation (chains/s at n=1024)");
    for fam in [Family::RandomLoop, Family::Skyline] {
        let mut seed = 0u64;
        let (iters, _, elapsed) = time_until_stable(|| {
            seed += 1;
            black_box(fam.generate(1024, seed).len());
            1
        });
        println!(
            "  {:<14} {:>10.1} chains/s  ({iters} iters)",
            fam.name(),
            per_sec(iters as u128, elapsed)
        );
    }
}

/// The acceptance check for the scenario pipeline: batch execution scales
/// with available cores. Runs the same spec grid serially and with one
/// worker per core, and prints the speedup.
fn bench_batch_scaling() {
    let cores = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    println!("## batch_scaling (run_batch over {cores} cores)");
    let specs: Vec<ScenarioSpec> = Family::ALL
        .iter()
        .flat_map(|&fam| (0..4u64).map(move |seed| ScenarioSpec::paper(fam, 192, seed)))
        .collect();

    let t0 = Instant::now();
    let serial = run_batch_with(&specs, BatchOptions::threads(1));
    let serial_t = t0.elapsed();

    let t1 = Instant::now();
    let parallel = run_batch_with(&specs, BatchOptions::default());
    let parallel_t = t1.elapsed();

    assert_eq!(serial.len(), parallel.len());
    for (a, b) in serial.iter().zip(&parallel) {
        assert_eq!(
            a.fingerprint(),
            b.fingerprint(),
            "parallelism changed a result"
        );
    }
    let speedup = serial_t.as_secs_f64() / parallel_t.as_secs_f64().max(1e-9);
    println!(
        "  {} scenarios: serial {:>7.0} ms, parallel {:>7.0} ms, speedup {speedup:.2}x",
        specs.len(),
        serial_t.as_secs_f64() * 1e3,
        parallel_t.as_secs_f64() * 1e3,
    );
    if cores >= 2 && speedup < 1.2 {
        println!("  WARNING: expected >1.2x speedup on {cores} cores");
    }
}

/// Step the boxed (observer-free) engine for up to `cap` rounds and
/// return the robot·rounds executed — Σ of the live-robot count over the
/// rounds actually stepped, so merges are accounted honestly.
fn boxed_capped(kind: StrategyKind, chain: &ClosedChain, cap: u64) -> u64 {
    let mut sim = Sim::new(chain.clone(), kind.build().expect("closed-chain kind"));
    let mut work = 0u64;
    for _ in 0..cap {
        if sim.is_gathered() {
            break;
        }
        work += sim.chain().len() as u64;
        sim.step().expect("eligible strategies never break");
    }
    black_box(sim.chain().len());
    work
}

/// The same capped stepping on the packed kernel path.
fn kernel_capped<K: RoundKernel>(kernel: K, chain: &ClosedChain, cap: u64) -> u64 {
    let packed = PackedChain::from_chain(chain).expect("generated chains pack");
    let mut sim = KernelSim::new(KernelChain::new(packed), kernel, FsyncRule);
    let mut work = 0u64;
    for _ in 0..cap {
        if sim.chain().is_gathered() {
            break;
        }
        work += sim.chain().len() as u64;
        sim.step().expect("eligible strategies never break");
    }
    black_box(sim.chain().len());
    work
}

fn kernel_capped_kind(kind: StrategyKind, chain: &ClosedChain, cap: u64) -> u64 {
    match kind {
        StrategyKind::CompassSe => kernel_capped(CompassSeKernel::new(), chain, cap),
        StrategyKind::NaiveLocal => kernel_capped(NaiveLocalKernel::new(), chain, cap),
        StrategyKind::GlobalVision => kernel_capped(GlobalVisionKernel::new(), chain, cap),
        other => panic!("not a kernel kind: {other:?}"),
    }
}

/// The tentpole acceptance bench: observer-free throughput of the packed
/// kernel path vs the boxed engine, per strategy, at three sizes. Writes
/// the `BENCH_engine.json` artifact (full mode) and, with `--gate`,
/// asserts kernel ≥ 5× boxed at n ≥ 16384 and exits non-zero otherwise
/// (the CI smoke; the full bench targets ≥ 10×).
fn bench_kernel_vs_boxed(gate: bool) {
    println!("## kernel_vs_boxed (observer-free capped stepping, FSYNC)");
    let sizes: &[usize] = if gate {
        &[16384]
    } else {
        &[1024, 16384, 262144]
    };
    let kinds = [
        StrategyKind::GlobalVision,
        StrategyKind::CompassSe,
        StrategyKind::NaiveLocal,
    ];
    let mut rows = String::new();
    let mut gate_ok = true;
    for &n in sizes {
        let chain = Family::Rectangle.generate(n, 0);
        let len = chain.len();
        // Cap the stepped rounds so one iteration does ~2M robot·rounds
        // regardless of n (big chains step few rounds, small chains many).
        let cap = (2_000_000 / len as u64).clamp(4, 4096);
        for kind in kinds {
            let (_, bw, bt) = time_until_stable(|| boxed_capped(kind, &chain, cap));
            let (_, kw, kt) = time_until_stable(|| kernel_capped_kind(kind, &chain, cap));
            let boxed_rps = per_sec(bw, bt);
            let kernel_rps = per_sec(kw, kt);
            let speedup = kernel_rps / boxed_rps;
            println!(
                "  {:<14} n={len:>6}  boxed {boxed_rps:>12.0}  kernel {kernel_rps:>12.0}  robot·rounds/s  {speedup:>6.1}x",
                kind.name()
            );
            if len >= 16384 && speedup < 10.0 {
                println!("  WARNING: below the 10x full-bench target");
            }
            if gate && len >= 16384 && speedup < 5.0 {
                gate_ok = false;
            }
            if !rows.is_empty() {
                rows.push_str(",\n");
            }
            rows.push_str(&format!(
                "    {{\"strategy\": \"{}\", \"n\": {len}, \"rounds_per_iter\": {cap}, \
                 \"boxed_robot_rounds_per_s\": {boxed_rps:.0}, \
                 \"kernel_robot_rounds_per_s\": {kernel_rps:.0}, \"speedup\": {speedup:.2}}}",
                kind.name()
            ));
        }
    }
    if !gate {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_engine.json");
        let body = format!(
            "{{\n  \"bench\": \"engine_perf/kernel_vs_boxed\",\n  \
             \"unit\": \"robot_rounds_per_sec\",\n  \"schedule\": \"fsync\",\n  \
             \"rows\": [\n{rows}\n  ]\n}}\n"
        );
        std::fs::write(path, body).expect("write BENCH_engine.json");
        println!("  wrote {path}");
    } else if gate_ok {
        println!("  GATE OK: kernel >= 5x boxed at n >= 16384");
    } else {
        println!("  GATE FAILED: kernel < 5x boxed at n >= 16384");
        std::process::exit(1);
    }
}

fn main() {
    // `cargo bench` forwards its own flags (e.g. `--bench`); the first
    // non-flag argument, if any, filters the sections by substring.
    let filter = std::env::args()
        .skip(1)
        .find(|a| !a.starts_with('-'))
        .unwrap_or_default();
    let gate = std::env::args().any(|a| a == "--gate");
    let want = |name: &str| filter.is_empty() || name.contains(&filter);
    if want("kernel_vs_boxed") {
        bench_kernel_vs_boxed(gate);
    }
    if want("single_round") {
        bench_single_round();
    }
    if want("merge_scan") {
        bench_merge_scan();
    }
    if want("full_gathering") {
        bench_full_gathering();
    }
    if want("observer_overhead") {
        bench_observer_overhead();
    }
    if want("phase_overhead") {
        bench_phase_overhead();
    }
    if want("workload_generation") {
        bench_workload_generation();
    }
    if want("batch_scaling") {
        bench_batch_scaling();
    }
}
