//! Criterion performance benches for the simulator and the algorithm.
//!
//! These measure engine throughput (robot·rounds per second), the cost of
//! one FSYNC round at various chain sizes, merge-scan cost, and full
//! gatherings — the numbers that tell a user what scale the simulator
//! sustains on one core.

use chain_sim::{RunLimits, Sim};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gathering_core::{ClosedChainGathering, GatherConfig, MergeScan};
use std::hint::black_box;
use workloads::Family;

fn bench_single_round(c: &mut Criterion) {
    let mut group = c.benchmark_group("single_round");
    for n in [256usize, 1024, 4096] {
        let chain = Family::Rectangle.generate(n, 0);
        group.throughput(Throughput::Elements(chain.len() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter_batched(
                || Sim::new(chain.clone(), ClosedChainGathering::paper()),
                |mut sim| {
                    sim.step().unwrap();
                    black_box(sim.round())
                },
                criterion::BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

fn bench_merge_scan(c: &mut Criterion) {
    let mut group = c.benchmark_group("merge_scan");
    for n in [256usize, 4096] {
        let chain = Family::Crenellated.generate(n, 0);
        let cfg = GatherConfig::paper();
        group.throughput(Throughput::Elements(chain.len() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            let mut scan = MergeScan::default();
            b.iter(|| {
                scan.scan(&chain, &cfg);
                black_box(scan.patterns.len())
            });
        });
    }
    group.finish();
}

fn bench_full_gathering(c: &mut Criterion) {
    let mut group = c.benchmark_group("full_gathering");
    group.sample_size(10);
    for (fam, n) in [
        (Family::Rectangle, 256usize),
        (Family::Skyline, 256),
        (Family::RandomLoop, 256),
    ] {
        let chain = fam.generate(n, 1);
        let len = chain.len();
        group.throughput(Throughput::Elements(len as u64));
        group.bench_with_input(
            BenchmarkId::new(fam.name(), len),
            &len,
            |b, _| {
                b.iter_batched(
                    || Sim::new(chain.clone(), ClosedChainGathering::paper()),
                    |mut sim| {
                        let out = sim.run(RunLimits::for_chain_len(len));
                        assert!(out.is_gathered());
                        black_box(out.rounds())
                    },
                    criterion::BatchSize::SmallInput,
                );
            },
        );
    }
    group.finish();
}

fn bench_workload_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("workload_generation");
    for fam in [Family::RandomLoop, Family::Skyline] {
        group.bench_function(fam.name(), |b| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                black_box(fam.generate(1024, seed).len())
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_single_round,
    bench_merge_scan,
    bench_full_gathering,
    bench_workload_generation
);
criterion_main!(benches);
