//! `cargo bench` entry point that regenerates the paper's evaluation
//! tables (same code as the `experiments` binary), so that
//! `cargo bench --workspace` produces the full reproduction artifacts.
//!
//! Quick mode keeps `cargo bench --workspace` affordable; run the
//! `experiments` binary without `--quick` for the full-size tables.

use bench::{all_tables, Effort};

fn main() {
    // `cargo bench` may pass filter arguments through; respect an explicit
    // `--full` and ignore the rest.
    let full = std::env::args().any(|a| a == "--full");
    let effort = if full { Effort::Full } else { Effort::Quick };
    println!("# Paper experiment tables ({:?} effort)", effort);
    println!("# (cargo run --release -p bench --bin experiments for full sizes)\n");
    for table in all_tables(effort) {
        println!("{table}");
    }
}
