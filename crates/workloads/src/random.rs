//! Random workload families.
//!
//! Determinism matters for the experiment tables: both generators are pure
//! functions of `(n, seed)` via a seeded [`SplitMix64`].

use crate::families::skyline;
use crate::rng::SplitMix64;
use chain_sim::ClosedChain;
use grid_geom::{Offset, Point};

/// A uniformly shuffled *closed lattice walk* with `n` unit steps (`n`
/// rounded up to the next even value, at least 4): a balanced multiset of
/// +x/−x/+y/−y steps in random order.
///
/// Consecutive robots always differ (every step is a unit step), so this is
/// a valid closed chain; it self-crosses and folds back on itself freely —
/// the fully adversarial input class for the gathering algorithm (the paper
/// only requires that chain *neighbors* start on distinct points).
pub fn random_loop(n: usize, seed: u64) -> ClosedChain {
    let n = n.max(4);
    let n = if n % 2 == 1 { n + 1 } else { n };
    let mut rng = SplitMix64::new(seed ^ 0x9e37_79b9_7f4a_7c15);
    // a pairs of ±x and b pairs of ±y with 2(a + b) = n, a, b ≥ 1.
    let half = n / 2;
    let a = if half <= 2 {
        1
    } else {
        rng.range_usize(1, half)
    };
    let b = half - a;
    let (a, b) = if b == 0 { (a - 1, 1) } else { (a, b) };
    let mut steps: Vec<Offset> = Vec::with_capacity(n);
    steps.extend(std::iter::repeat_n(Offset::RIGHT, a));
    steps.extend(std::iter::repeat_n(Offset::LEFT, a));
    steps.extend(std::iter::repeat_n(Offset::UP, b));
    steps.extend(std::iter::repeat_n(Offset::DOWN, b));
    rng.shuffle(&mut steps);
    let mut pts = Vec::with_capacity(n);
    let mut p = Point::new(0, 0);
    for s in &steps[..n - 1] {
        pts.push(p);
        p += *s;
    }
    pts.push(p);
    debug_assert_eq!(p + steps[n - 1], Point::new(0, 0));
    ClosedChain::new(pts).expect("balanced shuffled steps always close a valid chain")
}

/// A random skyline polygon with roughly `n` robots: random column heights
/// over a width chosen so the perimeter comes out near `n`.
pub fn random_skyline(n: usize, seed: u64) -> ClosedChain {
    let n = n.max(8);
    let mut rng = SplitMix64::new(seed ^ 0x2545_f491_4f6c_dd1d);
    // Perimeter ≈ 2w + 2·E[h] + Σ|Δh| ≈ w·(2 + E|Δh|); with heights in
    // 1..=6, E|Δh| ≈ 1.9, so w ≈ n/4 lands near n.
    let w = (n / 4).max(2);
    let max_h = 6.min(1 + n as i64 / 8).max(2);
    let heights: Vec<i64> = (0..w).map(|_| rng.range_i64_inclusive(1, max_h)).collect();
    skyline(&heights)
}

#[cfg(test)]
mod tests {
    use super::*;
    use chain_sim::invariant;

    #[test]
    fn random_loop_is_valid_and_deterministic() {
        for n in [4usize, 8, 16, 100, 1001] {
            for seed in [0u64, 1, 99] {
                let a = random_loop(n, seed);
                let b = random_loop(n, seed);
                assert_eq!(a.positions(), b.positions(), "determinism n={n}");
                assert!(invariant::is_taut(&a), "n={n} seed={seed}");
                assert_eq!(a.len() % 2, 0);
            }
        }
    }

    #[test]
    fn random_loop_differs_across_seeds() {
        let a = random_loop(64, 1);
        let b = random_loop(64, 2);
        assert_ne!(a.positions(), b.positions());
    }

    #[test]
    fn random_skyline_is_valid() {
        for n in [8usize, 30, 100, 500] {
            for seed in [3u64, 17] {
                let c = random_skyline(n, seed);
                assert!(invariant::is_taut(&c), "n={n} seed={seed}");
                // Simple polygon: turning number ±4.
                assert_eq!(invariant::signed_turning_quarters(&c).abs(), 4);
            }
        }
    }

    #[test]
    fn random_loop_odd_n_rounds_up() {
        let c = random_loop(9, 5);
        assert_eq!(c.len(), 10);
    }
}
