//! Additional structured families: spirals, serpentines and crosses.
//!
//! All three are built as *cell regions* whose boundary is traced into the
//! closed chain ([`crate::polyomino`]) — construction slips fail loudly
//! instead of producing subtly broken workloads.
//!
//! * [`spiral`] — the boundary of a square spiral corridor: a rectangular
//!   double spiral whose chain length vastly exceeds its bounding box,
//!   with long nested quasi lines — heavy pipelining and run-passing
//!   stress (and the classic adversarial case for diameter intuitions).
//! * [`serpentine`] — a boustrophedon band: long horizontal corridors
//!   connected alternately left/right; adjacent corridor walls carry runs
//!   with opposite fold sides (run-passing exercise).
//! * [`cross`] — a plus-shaped polygon: four arms, eight convex and four
//!   concave corners of mixed orientation.

use crate::polyomino::CellRegion;
use chain_sim::ClosedChain;

/// Rectangular double spiral: boundary of a width-1 spiral corridor with
/// `turns` inward laps (coils separated by one empty cell).
pub fn spiral(turns: usize) -> ClosedChain {
    assert!(turns >= 1);
    let mut region = CellRegion::new();
    // Walk the corridor cells of a square spiral: start at the outside,
    // turn left (CCW), shrinking the box every second turn.
    let t = turns as i64;
    let mut x = 0i64;
    let mut y = 0i64;
    region.insert(x, y);
    // Side lengths: L, L, L-2, L-2, …, where L = 4t+1 keeps coils one cell
    // apart.
    let l0 = 4 * t + 1;
    let dirs = [(1i64, 0i64), (0, 1), (-1, 0), (0, -1)];
    let mut side = l0;
    let mut d = 0usize;
    let mut steps_at_side = 0; // two sides per shrink
    while side > 0 {
        for _ in 0..side - 1 {
            x += dirs[d].0;
            y += dirs[d].1;
            region.insert(x, y);
        }
        d = (d + 1) % 4;
        steps_at_side += 1;
        if steps_at_side == 2 {
            steps_at_side = 0;
            side -= 2;
        }
    }
    region.boundary_chain()
}

/// Boustrophedon band: `rows` horizontal corridors of `len` cells,
/// connected alternately at the right and left ends (corridors separated
/// by one empty row).
pub fn serpentine(rows: usize, len: i64) -> ClosedChain {
    assert!(rows >= 1 && len >= 2);
    let mut region = CellRegion::new();
    for r in 0..rows as i64 {
        region.insert_rect(0, 2 * r, len, 1);
        if r + 1 < rows as i64 {
            // Connector column at alternating ends.
            let x = if r % 2 == 0 { len - 1 } else { 0 };
            region.insert(x, 2 * r + 1);
        }
    }
    region.boundary_chain()
}

/// Plus/cross-shaped polygon with arm length `arm` and arm width `w`.
pub fn cross(arm: i64, w: i64) -> ClosedChain {
    assert!(arm >= 1 && w >= 1);
    let mut region = CellRegion::new();
    // Horizontal bar: width 2·arm + w, height w, centered on the core.
    region.insert_rect(-arm, 0, 2 * arm + w, w);
    // Vertical bar.
    region.insert_rect(0, -arm, w, 2 * arm + w);
    region.boundary_chain()
}

#[cfg(test)]
mod tests {
    use super::*;
    use chain_sim::invariant;

    #[test]
    fn spiral_is_valid_and_long() {
        for turns in [1usize, 2, 3, 5] {
            let c = spiral(turns);
            assert!(invariant::is_taut(&c), "turns={turns}");
            // Chain length grows quadratically with turns while the box
            // stays ~8·turns: length ≫ box for larger turns.
            assert!(
                c.len() as i64 > 12 * turns as i64,
                "turns={turns}: {}",
                c.len()
            );
        }
    }

    #[test]
    fn spiral_is_simple_polygon() {
        let c = spiral(3);
        assert_eq!(invariant::signed_turning_quarters(&c).abs(), 4);
        let mut pos: Vec<_> = c.positions().to_vec();
        pos.sort_unstable();
        pos.dedup();
        assert_eq!(pos.len(), c.len(), "simple polygon: no repeated vertices");
    }

    #[test]
    fn spiral_length_exceeds_diameter() {
        let c = spiral(5);
        let diam = c.bounding().diameter();
        assert!(c.len() as i64 > 3 * diam, "len {} vs diam {diam}", c.len());
    }

    #[test]
    fn serpentine_is_valid() {
        for (rows, len) in [(1usize, 6i64), (2, 8), (3, 10), (6, 20)] {
            let c = serpentine(rows, len);
            assert!(invariant::is_taut(&c), "rows={rows} len={len}");
            assert_eq!(invariant::signed_turning_quarters(&c).abs(), 4);
        }
    }

    #[test]
    fn cross_is_valid() {
        for (arm, w) in [(1i64, 1i64), (2, 2), (5, 2), (6, 4), (10, 3)] {
            let c = cross(arm, w);
            assert!(invariant::is_taut(&c), "arm={arm} w={w}");
            assert_eq!(invariant::signed_turning_quarters(&c).abs(), 4);
        }
    }

    #[test]
    fn cross_perimeter_formula() {
        // Cross with arm a, width w: perimeter = 4w + 8a vertices.
        for (a, w) in [(2i64, 2i64), (3, 1), (4, 3)] {
            let c = cross(a, w);
            assert_eq!(c.len() as i64, 4 * w + 8 * a, "arm={a} w={w}");
        }
    }
}
