//! Chain perturbation operators: inject local structure into any valid
//! closed chain while preserving validity. Used to fuzz the gathering
//! algorithm with adversarial local features on top of every family
//! (bumps trigger merge patterns, hairpins trigger k = 1 merges, detours
//! stretch quasi lines into jogs).

use crate::rng::SplitMix64;
use chain_sim::ClosedChain;
use grid_geom::Offset;
#[cfg(test)]
use grid_geom::Point;

/// Insert a unit detour across chain edge `i`: the edge `p → q` becomes
/// `p → p+d → q+d → q`, where `d` is a unit step perpendicular to the
/// edge. Adds 2 robots; the result is always a valid closed chain.
pub fn insert_detour(chain: &ClosedChain, edge: usize, side: bool) -> ClosedChain {
    let n = chain.len();
    let i = edge % n;
    let p = chain.pos(i);
    let q = chain.pos(chain.nb(i, 1));
    let step = q - p;
    debug_assert!(step.is_unit_step());
    let d = if step.dx == 0 {
        if side {
            Offset::RIGHT
        } else {
            Offset::LEFT
        }
    } else if side {
        Offset::UP
    } else {
        Offset::DOWN
    };
    let mut pts = Vec::with_capacity(n + 2);
    for j in 0..=i {
        pts.push(chain.pos(j));
    }
    pts.push(p + d);
    pts.push(q + d);
    for j in i + 1..n {
        pts.push(chain.pos(j));
    }
    ClosedChain::new(pts).expect("detour preserves validity")
}

/// Insert a zero-area hairpin at robot `i`: `… p …` becomes
/// `… p, p+d, p …`. Adds 2 robots (chain neighbors stay distinct; the two
/// copies of `p` are not neighbors). `d` must keep `p+d` a unit step away,
/// which every axis direction does.
pub fn insert_hairpin(chain: &ClosedChain, at: usize, dir: Offset) -> ClosedChain {
    debug_assert!(dir.is_unit_step());
    let n = chain.len();
    let i = at % n;
    let p = chain.pos(i);
    let mut pts = Vec::with_capacity(n + 2);
    for j in 0..=i {
        pts.push(chain.pos(j));
    }
    pts.push(p + dir);
    pts.push(p);
    for j in i + 1..n {
        pts.push(chain.pos(j));
    }
    ClosedChain::new(pts).expect("hairpin preserves validity")
}

/// Apply `count` random perturbations (detours and hairpins) to a chain.
pub fn perturb(chain: &ClosedChain, count: usize, seed: u64) -> ClosedChain {
    let mut rng = SplitMix64::new(seed ^ 0x517c_c1b7_2722_0a95);
    let mut c = chain.clone();
    for _ in 0..count {
        let n = c.len();
        match rng.below(3) {
            0 => {
                let edge = rng.range_usize(0, n);
                let side = rng.chance(1, 2);
                c = insert_detour(&c, edge, side);
            }
            _ => {
                let at = rng.range_usize(0, n);
                let dir = *rng.choose(&[Offset::RIGHT, Offset::UP, Offset::LEFT, Offset::DOWN]);
                c = insert_hairpin(&c, at, dir);
            }
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Family;
    use chain_sim::invariant;

    fn square() -> ClosedChain {
        ClosedChain::new(vec![
            Point::new(0, 0),
            Point::new(1, 0),
            Point::new(1, 1),
            Point::new(0, 1),
        ])
        .unwrap()
    }

    #[test]
    fn detour_adds_two_robots() {
        let c = square();
        for edge in 0..4 {
            for side in [true, false] {
                let d = insert_detour(&c, edge, side);
                assert_eq!(d.len(), 6, "edge {edge} side {side}");
                assert!(invariant::is_taut(&d));
            }
        }
    }

    #[test]
    fn hairpin_adds_two_robots() {
        let c = square();
        for at in 0..4 {
            for dir in [Offset::RIGHT, Offset::UP, Offset::LEFT, Offset::DOWN] {
                let h = insert_hairpin(&c, at, dir);
                assert_eq!(h.len(), 6, "at {at} dir {dir}");
                assert!(invariant::is_taut(&h));
            }
        }
    }

    #[test]
    fn perturb_is_deterministic_and_valid() {
        for fam in [Family::Rectangle, Family::Skyline, Family::StaircaseDiamond] {
            let base = fam.generate(60, 3);
            let a = perturb(&base, 10, 7);
            let b = perturb(&base, 10, 7);
            assert_eq!(a.positions(), b.positions());
            a.validate().unwrap();
            assert_eq!(a.len(), base.len() + 20);
        }
    }

    #[test]
    fn heavy_perturbation_stays_valid() {
        let base = Family::RandomLoop.generate(40, 1);
        let p = perturb(&base, 100, 9);
        p.validate().unwrap();
        assert_eq!(p.len(), base.len() + 200);
    }
}
