//! Deterministic structured families.
//!
//! Each generator builds the position list of a closed chain directly and
//! validates it through [`ClosedChain::new`]; a construction bug is a panic
//! here, never a silently-broken experiment.

use chain_sim::ClosedChain;
use grid_geom::Point;

fn close(pts: Vec<Point>, what: &str) -> ClosedChain {
    ClosedChain::new(pts).unwrap_or_else(|e| panic!("invalid {what}: {e}"))
}

/// Axis-aligned rectangle ring of `w × h` grid points (`w, h ≥ 2`);
/// `n = 2(w + h) - 4`. Four quasi lines joined at Fig. 5(ii) corners.
pub fn rectangle(w: i64, h: i64) -> ClosedChain {
    assert!(w >= 2 && h >= 2, "rectangle needs w, h ≥ 2");
    let mut pts = vec![Point::new(0, 0)];
    pts.extend((1..w).map(|x| Point::new(x, 0)));
    pts.extend((1..h).map(|y| Point::new(w - 1, y)));
    pts.extend((1..w).map(|x| Point::new(w - 1 - x, h - 1)));
    pts.extend((1..h - 1).map(|y| Point::new(0, h - 1 - y)));
    close(pts, "rectangle")
}

/// Castle-wall band: `teeth` battlements on top and bottom of a band of
/// height `h`. Maximal merge-pattern overlap (the Fig. 3 cases fire
/// constantly).
///
/// Top profile per tooth: right, up, right, down. The band's vertical sides
/// are plain columns.
pub fn crenellated_band(teeth: usize, h: i64) -> ClosedChain {
    assert!(teeth >= 1 && h >= 2);
    let mut pts = vec![Point::new(0, 0)];
    // Top: teeth pointing up.
    for i in 0..teeth as i64 {
        pts.push(Point::new(2 * i + 1, 0));
        pts.push(Point::new(2 * i + 1, 1));
        pts.push(Point::new(2 * i + 2, 1));
        pts.push(Point::new(2 * i + 2, 0));
    }
    let right = 2 * teeth as i64;
    // Right column down.
    for y in 1..=h {
        pts.push(Point::new(right, -y));
    }
    // Bottom: teeth pointing down, walking left.
    for i in 0..teeth as i64 {
        let x = right - 2 * i;
        pts.push(Point::new(x - 1, -h));
        pts.push(Point::new(x - 1, -h - 1));
        pts.push(Point::new(x - 2, -h - 1));
        pts.push(Point::new(x - 2, -h));
    }
    // Left column up (excluding the closing corner).
    for y in (1..h).rev() {
        pts.push(Point::new(0, -y));
    }
    close(pts, "crenellated band")
}

/// Staircase diamond of radius `r`: four stairways joined at four tips.
/// Almost everywhere merge-free (stairways, Fig. 16); all progress must be
/// seeded at the tips.
pub fn staircase_diamond(r: i64) -> ClosedChain {
    assert!(r >= 1);
    let mut pts = Vec::with_capacity((8 * r) as usize);
    let mut p = Point::new(0, 0);
    let push_step = |pts: &mut Vec<Point>, p: &mut Point, dx: i64, dy: i64| {
        *p = Point::new(p.x + dx, p.y + dy);
        pts.push(*p);
    };
    pts.push(p);
    // NE: R U ×r ; NW: L U ×r ; SW: L D ×r ; SE: R D ×r.
    for _ in 0..r {
        push_step(&mut pts, &mut p, 1, 0);
        push_step(&mut pts, &mut p, 0, 1);
    }
    for _ in 0..r {
        push_step(&mut pts, &mut p, -1, 0);
        push_step(&mut pts, &mut p, 0, 1);
    }
    for _ in 0..r {
        push_step(&mut pts, &mut p, -1, 0);
        push_step(&mut pts, &mut p, 0, -1);
    }
    for _ in 0..r {
        push_step(&mut pts, &mut p, 1, 0);
        push_step(&mut pts, &mut p, 0, -1);
    }
    // The final step returns to the origin, which is already pts[0].
    let last = pts.pop().expect("non-empty");
    assert_eq!(last, pts[0], "diamond must close");
    close(pts, "staircase diamond")
}

/// Comb polygon: `teeth` upward teeth of height `tooth_len` on a flat
/// spine. Long parallel corridors — nested quasi lines stress pipelining
/// and run passing.
pub fn comb(teeth: usize, tooth_len: i64) -> ClosedChain {
    assert!(teeth >= 1 && tooth_len >= 2);
    let l = tooth_len;
    let mut pts = vec![Point::new(0, 0)];
    for i in 0..teeth as i64 {
        let x = 2 * i;
        // Up the left flank of the tooth. The first tooth starts at the
        // spine (y=0); later teeth start at the corridor floor (y=1),
        // where the previous gap landed.
        let y_start = if i == 0 { 1 } else { 2 };
        for y in y_start..=l {
            pts.push(Point::new(x, y));
        }
        // Across the top.
        pts.push(Point::new(x + 1, l));
        // Down the right flank (to y = 1, the corridor floor).
        for y in (1..l).rev() {
            pts.push(Point::new(x + 1, y));
        }
        // Across the gap (or to the final descent).
        pts.push(Point::new(x + 2, 1));
    }
    let right = 2 * teeth as i64;
    pts.push(Point::new(right, 0));
    // Bottom spine back to the start.
    for x in (1..right).rev() {
        pts.push(Point::new(x, 0));
    }
    close(pts, "comb")
}

/// Skyline polygon over `heights` (all ≥ 1): bottom edge, right wall, then
/// the stepped profile back to the left wall. Deterministic core of the
/// random skyline family.
pub fn skyline(heights: &[i64]) -> ClosedChain {
    assert!(!heights.is_empty());
    assert!(heights.iter().all(|&h| h >= 1), "heights must be ≥ 1");
    let w = heights.len() as i64;
    let mut pts = vec![Point::new(0, 0)];
    // Bottom: (1,0) .. (w, 0).
    for x in 1..=w {
        pts.push(Point::new(x, 0));
    }
    // Right wall up to the last column's height.
    let h_last = heights[heights.len() - 1];
    for y in 1..=h_last {
        pts.push(Point::new(w, y));
    }
    // Profile: walk columns right to left. At column i (cells [i, i+1]),
    // the roof is at heights[i]; move horizontally across the roof, then
    // vertically to the next column's roof.
    for i in (0..heights.len()).rev() {
        let x = i as i64;
        let h = heights[i];
        pts.push(Point::new(x, h)); // across the roof of column i
        let next_h = if i == 0 { 0 } else { heights[i - 1] };
        if next_h != h {
            let step = if next_h > h { 1 } else { -1 };
            let mut y = h;
            loop {
                y += step;
                if y == next_h {
                    break;
                }
                pts.push(Point::new(x, y));
            }
            if i != 0 {
                pts.push(Point::new(x, next_h));
            }
        }
    }
    // Left wall: from (0, heights[0] or its path) down to (0,1).
    // The profile loop above ends at (0, h0); descend to (0,1).
    let top_left = pts.last().copied().expect("non-empty");
    assert_eq!(top_left.x, 0);
    for y in (1..top_left.y).rev() {
        pts.push(Point::new(0, y));
    }
    close(pts, "skyline")
}

/// Hairpin flower: four zero-area arms of length `arm` radiating from one
/// point. Every arm tip is a k = 1 merge pattern (Fig. 2 bottom); the chain
/// overlaps itself everywhere — the adversarial degenerate case.
pub fn hairpin_flower(arm: i64) -> ClosedChain {
    assert!(arm >= 1);
    let dirs = [(1i64, 0i64), (0, 1), (-1, 0), (0, -1)];
    let mut pts = Vec::with_capacity((8 * arm) as usize);
    for (dx, dy) in dirs {
        pts.push(Point::new(0, 0));
        for k in 1..=arm {
            pts.push(Point::new(k * dx, k * dy));
        }
        for k in (1..arm).rev() {
            pts.push(Point::new(k * dx, k * dy));
        }
    }
    close(pts, "hairpin flower")
}

#[cfg(test)]
mod tests {
    use super::*;
    use chain_sim::invariant;

    #[test]
    fn rectangle_counts() {
        for (w, h) in [(2i64, 2i64), (3, 2), (5, 4), (10, 7)] {
            let c = rectangle(w, h);
            assert_eq!(c.len() as i64, 2 * (w + h) - 4, "{w}x{h}");
            assert!(invariant::is_taut(&c));
            assert_eq!(invariant::signed_turning_quarters(&c).abs(), 4);
        }
    }

    #[test]
    fn crenellated_band_is_valid_and_wavy() {
        for teeth in [1usize, 2, 5, 9] {
            let c = crenellated_band(teeth, 3);
            assert!(invariant::is_taut(&c));
            // Teeth contribute 4 robots each on two sides.
            assert!(c.len() >= 8 * teeth);
        }
    }

    #[test]
    fn staircase_diamond_is_valid() {
        for r in [1i64, 2, 5, 11] {
            let c = staircase_diamond(r);
            assert_eq!(c.len() as i64, 8 * r);
            assert!(invariant::is_taut(&c));
        }
    }

    #[test]
    fn comb_is_valid() {
        for teeth in [1usize, 2, 4, 8] {
            for l in [2i64, 5, 9] {
                let c = comb(teeth, l);
                assert!(invariant::is_taut(&c), "teeth={teeth} l={l}");
            }
        }
    }

    #[test]
    fn skyline_flat_is_rectangle() {
        let c = skyline(&[3, 3, 3, 3]);
        let r = rectangle(5, 4);
        assert_eq!(c.len(), r.len());
    }

    #[test]
    fn skyline_steps() {
        let c = skyline(&[1, 3, 2]);
        assert!(invariant::is_taut(&c));
        // Contains the tallest roof point.
        assert!(c.positions().iter().any(|p| p.y == 3));
    }

    #[test]
    fn hairpin_flower_overlaps_itself() {
        let c = hairpin_flower(3);
        assert_eq!(c.len(), 24);
        assert!(invariant::is_taut(&c));
        // The center appears four times.
        let center_count = c
            .positions()
            .iter()
            .filter(|p| **p == Point::new(0, 0))
            .count();
        assert_eq!(center_count, 4);
    }
}
