//! Euclidean variants of the workload families.
//!
//! The Euclidean geometry backend consumes `f64` point chains whose
//! consecutive robots are within unit distance. Two generators feed it:
//!
//! * [`euclid_points`] lifts any grid family instance off the lattice —
//!   the integer chain is rotated by a seed-derived angle (so Euclidean
//!   runs never enjoy accidental axis alignment) and uniformly rescaled
//!   so the longest edge is exactly 1 (grid chains may contain diagonal
//!   steps of length √2, which the Euclidean unit-distance constraint
//!   would reject).
//! * [`ring`] is the purely continuous family — a regular n-gon with
//!   unit chords, the canonical closed chain with no grid counterpart
//!   (maximal symmetry, no foldable vertex anywhere).
//!
//! Both return plain `(x, y)` tuples so this crate stays free of a
//! `euclid-geom` dependency; the bench layer constructs the typed chain.

use crate::rng::SplitMix64;
use chain_sim::ClosedChain;

/// Lift a grid chain into Euclidean general position: rotate every robot
/// around the chain's centroid by an angle derived from `seed`, then
/// rescale uniformly so the longest edge has length exactly 1.
///
/// Rotation and uniform scaling preserve edge-length ratios, so the
/// result is a valid Euclidean closed chain (every consecutive pair
/// within unit distance) with the same shape as the grid instance.
pub fn euclid_points(chain: &ClosedChain, seed: u64) -> Vec<(f64, f64)> {
    let n = chain.len();
    let pts: Vec<(f64, f64)> = (0..n)
        .map(|i| {
            let p = chain.pos(i);
            (p.x as f64, p.y as f64)
        })
        .collect();

    // Seed-derived rotation angle in [0, 2π): 53 uniform mantissa bits.
    let mut rng = SplitMix64::new(seed ^ 0x9e37_79b9_7f4a_7c15);
    let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
    let angle = unit * std::f64::consts::TAU;
    let (s, c) = angle.sin_cos();

    // Rotate about the centroid to keep coordinates small.
    let (cx, cy) = pts
        .iter()
        .fold((0.0, 0.0), |(ax, ay), (x, y)| (ax + x, ay + y));
    let (cx, cy) = (cx / n as f64, cy / n as f64);

    let rotated: Vec<(f64, f64)> = pts
        .iter()
        .map(|(x, y)| {
            let (dx, dy) = (x - cx, y - cy);
            (dx * c - dy * s, dx * s + dy * c)
        })
        .collect();

    // Longest edge of the cyclic sequence (rotation is an isometry, so
    // measuring after rotation is the same as before).
    let mut max_edge: f64 = 0.0;
    for i in 0..n {
        let j = (i + 1) % n;
        let (dx, dy) = (rotated[j].0 - rotated[i].0, rotated[j].1 - rotated[i].1);
        max_edge = max_edge.max((dx * dx + dy * dy).sqrt());
    }
    let scale = if max_edge > 1.0 { 1.0 / max_edge } else { 1.0 };
    rotated
        .into_iter()
        .map(|(x, y)| (x * scale, y * scale))
        .collect()
}

/// A regular `n`-gon with unit chords — the purely continuous family.
/// Radius `1 / (2 sin(π/n))`, so every edge has length exactly 1.
pub fn ring(n: usize) -> Vec<(f64, f64)> {
    let n = n.max(3);
    let r = 0.5 / (std::f64::consts::PI / n as f64).sin();
    (0..n)
        .map(|k| {
            let a = std::f64::consts::TAU * k as f64 / n as f64;
            (r * a.cos(), r * a.sin())
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Family;

    fn edges_viable(pts: &[(f64, f64)]) {
        let n = pts.len();
        for i in 0..n {
            let j = (i + 1) % n;
            let (dx, dy) = (pts[j].0 - pts[i].0, pts[j].1 - pts[i].1);
            let d = (dx * dx + dy * dy).sqrt();
            assert!(d <= 1.0 + 1e-9, "edge ({i},{j}) has length {d}");
        }
    }

    #[test]
    fn lifted_families_have_unit_viable_edges() {
        for fam in Family::ALL {
            for (n, seed) in [(24usize, 1u64), (120, 7)] {
                let chain = fam.generate(n, seed);
                let pts = euclid_points(&chain, seed);
                assert_eq!(pts.len(), chain.len());
                edges_viable(&pts);
            }
        }
    }

    #[test]
    fn lift_is_deterministic_and_seed_sensitive() {
        let chain = Family::Rectangle.generate(40, 3);
        let a = euclid_points(&chain, 11);
        let b = euclid_points(&chain, 11);
        let c = euclid_points(&chain, 12);
        assert_eq!(a, b, "same seed must reproduce bit-for-bit");
        assert_ne!(a, c, "different seeds must rotate differently");
    }

    #[test]
    fn ring_has_unit_chords() {
        for n in [3, 6, 17, 100] {
            let pts = ring(n);
            assert_eq!(pts.len(), n);
            let (dx, dy) = (pts[1].0 - pts[0].0, pts[1].1 - pts[0].1);
            let d = (dx * dx + dy * dy).sqrt();
            assert!((d - 1.0).abs() < 1e-12, "n={n}: chord {d}");
            edges_viable(&pts);
        }
    }
}
