//! # workloads
//!
//! Closed-chain workload generators for the gathering experiments.
//!
//! The paper evaluates an *arbitrary* closed chain; these families cover the
//! structural extremes its machinery must handle:
//!
//! * [`families::rectangle`] — four quasi lines joined at Fig. 5(ii)
//!   corners; the canonical "reshapement everywhere" input.
//! * [`families::crenellated_band`] — castle-wall rings: dense merge
//!   patterns with maximal overlap (Fig. 3 cases).
//! * [`families::staircase_diamond`] — almost everywhere stairway
//!   (merge-free, Fig. 16); progress must come from the diamond tips.
//! * [`families::comb`] — long parallel corridors (nested quasi lines,
//!   pipelining and run passing stress).
//! * [`families::skyline`] — random simple rectilinear polygons (mixed
//!   structure).
//! * [`families::hairpin_flower`] — zero-area arms: k = 1 merge patterns
//!   and self-overlapping chains.
//! * [`random_loop`] — arbitrary self-crossing closed lattice walks, the
//!   fully adversarial case.
//!
//! Every generator returns a validated [`ClosedChain`].

pub mod euclid;
pub mod extra;
pub mod families;
pub mod perturb;
pub mod polyomino;
pub mod random;
pub mod rng;

pub use euclid::{euclid_points, ring};
pub use extra::{cross, serpentine, spiral};
pub use families::{comb, crenellated_band, hairpin_flower, rectangle, skyline, staircase_diamond};
pub use perturb::{insert_detour, insert_hairpin, perturb};
pub use polyomino::CellRegion;
pub use random::{random_loop, random_skyline};
pub use rng::SplitMix64;

use chain_sim::ClosedChain;

/// Rough robot count of `spiral(turns)` (used to size instances).
fn spiral_len_estimate(turns: usize) -> usize {
    // Each lap contributes about 4 sides of average length ~4t.
    16 * turns * turns + 24 * turns + 8
}

/// Enumeration of workload families used by the benchmark harness (one row
/// per family in the EXPERIMENTS.md tables).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Family {
    Rectangle,
    Crenellated,
    StaircaseDiamond,
    Comb,
    Skyline,
    HairpinFlower,
    RandomLoop,
    Spiral,
    Serpentine,
    Cross,
}

impl Family {
    pub const ALL: [Family; 10] = [
        Family::Rectangle,
        Family::Crenellated,
        Family::StaircaseDiamond,
        Family::Comb,
        Family::Skyline,
        Family::HairpinFlower,
        Family::RandomLoop,
        Family::Spiral,
        Family::Serpentine,
        Family::Cross,
    ];

    pub fn name(&self) -> &'static str {
        match self {
            Family::Rectangle => "rectangle",
            Family::Crenellated => "crenellated",
            Family::StaircaseDiamond => "staircase-diamond",
            Family::Comb => "comb",
            Family::Skyline => "skyline",
            Family::HairpinFlower => "hairpin-flower",
            Family::RandomLoop => "random-loop",
            Family::Spiral => "spiral",
            Family::Serpentine => "serpentine",
            Family::Cross => "cross",
        }
    }

    /// Parse a family from its [`Family::name`] string (the inverse
    /// round-trip, used by the campaign store to deserialize specs).
    pub fn from_name(name: &str) -> Option<Family> {
        Family::ALL.iter().copied().find(|f| f.name() == name)
    }

    /// Generate an instance with roughly `n` robots (exact size depends on
    /// the family's parameterization; the returned chain's `len()` is
    /// authoritative). `seed` feeds the random families and is ignored by
    /// deterministic ones.
    ///
    /// Size contract (property-tested in `tests/workload_properties.rs`):
    /// every family returns a *valid* chain with
    /// `4 ≤ len ≤ 4·n + 64`, and `len ≥ n/8` once `n ≥ 32` (families
    /// quantize to their structural period, so tiny requests round up to
    /// the family minimum). Generation is a pure function of
    /// `(family, n, seed)`.
    pub fn generate(&self, n: usize, seed: u64) -> ClosedChain {
        let n = n.max(8);
        match self {
            Family::Rectangle => {
                // Perimeter 2(w+h) - 4 ≈ n with w ≈ 2h.
                let h = ((n + 4) as f64 / 6.0).ceil() as i64 + 1;
                let w = ((n as i64 + 4) - 2 * h) / 2;
                rectangle(w.max(2), h.max(2))
            }
            Family::Crenellated => {
                // Each tooth contributes 4 robots on top and bottom plus
                // side columns.
                let teeth = (n / 10).max(1);
                crenellated_band(teeth, 3)
            }
            Family::StaircaseDiamond => {
                let r = (n / 8).max(1) as i64;
                staircase_diamond(r)
            }
            Family::Comb => {
                // Long teeth: corridor walls become vertical quasi lines
                // longer than the viewing range, forcing run reshapement
                // and run passing (the Fig. 9 pipelining stress).
                let tooth_len = ((n / 12).max(4) as i64).min(24);
                let per_tooth = 2 * tooth_len as usize + 3;
                let teeth = (n / per_tooth).max(1);
                comb(teeth, tooth_len)
            }
            Family::Skyline => random_skyline(n, seed),
            Family::HairpinFlower => {
                let arm = (n / 8).max(1) as i64;
                hairpin_flower(arm)
            }
            Family::RandomLoop => random_loop(n, seed),
            Family::Spiral => {
                // Perimeter grows ~quadratically in turns; invert.
                let mut turns = 1;
                while spiral_len_estimate(turns + 1) <= n {
                    turns += 1;
                }
                spiral(turns)
            }
            Family::Serpentine => {
                let rows = ((n as f64 / 2.0).sqrt() / 1.6).ceil().max(1.0) as usize;
                let len = ((n / (2 * rows)).max(3)) as i64;
                serpentine(rows, len)
            }
            Family::Cross => {
                let arm = ((n as i64 - 8) / 8).max(2);
                cross(arm, 3)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_families_generate_valid_chains() {
        for fam in Family::ALL {
            for n in [8, 16, 40, 120, 400] {
                for seed in [1u64, 7, 42] {
                    let c = fam.generate(n, seed);
                    c.validate()
                        .unwrap_or_else(|e| panic!("{} n={n} seed={seed}: {e}", fam.name()));
                    assert!(c.len() >= 4, "{} too small", fam.name());
                    // Sizes track the request within a loose factor.
                    assert!(
                        c.len() <= 4 * n + 64,
                        "{} n={n}: got {}",
                        fam.name(),
                        c.len()
                    );
                }
            }
        }
    }

    #[test]
    fn family_names_unique() {
        let mut names: Vec<&str> = Family::ALL.iter().map(|f| f.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Family::ALL.len());
    }

    #[test]
    fn family_name_round_trips() {
        for fam in Family::ALL {
            assert_eq!(Family::from_name(fam.name()), Some(fam));
        }
        assert_eq!(Family::from_name("no-such-family"), None);
        assert_eq!(Family::from_name("Rectangle"), None); // names are exact
    }
}
