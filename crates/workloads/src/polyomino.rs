//! Polyomino boundary tracing: build workload shapes as *cell regions* and
//! derive the closed chain as the region's boundary curve.
//!
//! Cell `(x, y)` occupies the unit square `[x, x+1] × [y, y+1]`. For a
//! 4-connected region without holes or diagonal pinch points, the directed
//! boundary edges (region kept on the left) form a single cycle over
//! lattice vertices — exactly a valid closed chain. Constructing families
//! this way is robust: any geometric slip fails loudly in
//! [`ClosedChain::new`] instead of producing a subtly broken workload.

use chain_sim::ClosedChain;
use grid_geom::Point;
use std::collections::{HashMap, HashSet};

/// A growable cell region.
#[derive(Clone, Debug, Default)]
pub struct CellRegion {
    cells: HashSet<(i64, i64)>,
}

impl CellRegion {
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    pub fn insert(&mut self, x: i64, y: i64) {
        self.cells.insert((x, y));
    }

    pub fn insert_rect(&mut self, x0: i64, y0: i64, w: i64, h: i64) {
        for x in x0..x0 + w {
            for y in y0..y0 + h {
                self.insert(x, y);
            }
        }
    }

    #[inline]
    pub fn contains(&self, x: i64, y: i64) -> bool {
        self.cells.contains(&(x, y))
    }

    pub fn len(&self) -> usize {
        self.cells.len()
    }

    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Trace the boundary into a closed chain (counterclockwise; region on
    /// the left of each directed edge).
    ///
    /// Panics if the region is empty or its boundary is not a single
    /// simple cycle (holes or diagonal pinches).
    pub fn boundary_chain(&self) -> ClosedChain {
        assert!(!self.cells.is_empty(), "empty region");
        // Directed boundary edges keyed by start vertex.
        let mut edges: HashMap<(i64, i64), Vec<(i64, i64)>> = HashMap::new();
        let mut edge_count = 0usize;
        for &(x, y) in &self.cells {
            if !self.contains(x, y - 1) {
                edges.entry((x, y)).or_default().push((x + 1, y));
                edge_count += 1;
            }
            if !self.contains(x + 1, y) {
                edges.entry((x + 1, y)).or_default().push((x + 1, y + 1));
                edge_count += 1;
            }
            if !self.contains(x, y + 1) {
                edges.entry((x + 1, y + 1)).or_default().push((x, y + 1));
                edge_count += 1;
            }
            if !self.contains(x - 1, y) {
                edges.entry((x, y + 1)).or_default().push((x, y));
                edge_count += 1;
            }
        }
        // Walk from the lexicographically smallest start vertex.
        let start = *edges
            .keys()
            .min()
            .expect("non-empty region has boundary edges");
        let mut pts: Vec<Point> = Vec::with_capacity(edge_count);
        let mut at = start;
        loop {
            pts.push(Point::new(at.0, at.1));
            let outs = edges
                .get_mut(&at)
                .unwrap_or_else(|| panic!("boundary dead-ends at {at:?}"));
            assert!(
                outs.len() == 1,
                "diagonal pinch at {at:?}: region boundary is not a simple cycle"
            );
            at = outs.pop().expect("checked non-empty");
            if at == start {
                break;
            }
        }
        assert_eq!(
            pts.len(),
            edge_count,
            "region has holes or multiple boundary components"
        );
        ClosedChain::new(pts).expect("boundary trace is a valid closed chain")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chain_sim::invariant;

    #[test]
    fn single_cell_is_unit_square() {
        let mut r = CellRegion::new();
        r.insert(0, 0);
        let c = r.boundary_chain();
        assert_eq!(c.len(), 4);
        assert!(c.is_gathered());
    }

    #[test]
    fn domino_is_2x1_rect() {
        let mut r = CellRegion::new();
        r.insert(0, 0);
        r.insert(1, 0);
        let c = r.boundary_chain();
        assert_eq!(c.len(), 6);
        assert_eq!(invariant::signed_turning_quarters(&c).abs(), 4);
    }

    #[test]
    fn rect_region_matches_formula() {
        let mut r = CellRegion::new();
        r.insert_rect(0, 0, 5, 3);
        let c = r.boundary_chain();
        // Perimeter of a 5×3 cell block = 2(5+3) = 16 vertices.
        assert_eq!(c.len(), 16);
    }

    #[test]
    fn l_shape_boundary() {
        let mut r = CellRegion::new();
        r.insert_rect(0, 0, 3, 1);
        r.insert_rect(0, 1, 1, 2);
        let c = r.boundary_chain();
        assert!(invariant::is_taut(&c));
        assert_eq!(invariant::signed_turning_quarters(&c).abs(), 4);
        // L-shape with arms 3/3: perimeter 12 edges.
        assert_eq!(c.len(), 12);
    }

    #[test]
    #[should_panic(expected = "diagonal pinch")]
    fn pinch_is_rejected() {
        let mut r = CellRegion::new();
        r.insert(0, 0);
        r.insert(1, 1);
        let _ = r.boundary_chain();
    }

    #[test]
    #[should_panic(expected = "holes")]
    fn hole_is_rejected() {
        let mut r = CellRegion::new();
        r.insert_rect(0, 0, 3, 3);
        r.cells.remove(&(1, 1));
        let _ = r.boundary_chain();
    }
}
