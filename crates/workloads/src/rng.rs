//! A tiny deterministic PRNG for workload generation.
//!
//! The generator itself lives in `chain_sim::rng` so the engine's SSYNC
//! schedulers and the workload generators share one implementation (and
//! one stream definition); this module re-exports it under the historical
//! `workloads::rng` path. Determinism is load-bearing: the experiment
//! tables and the `run_batch` determinism tests rely on `(n, seed)` fully
//! determining every generated chain.

pub use chain_sim::rng::SplitMix64;

#[cfg(test)]
mod tests {
    use super::*;

    /// The re-export is the engine's generator: one stream definition
    /// across workloads and schedulers.
    #[test]
    fn reexport_matches_engine_stream() {
        let mut ours = SplitMix64::new(42);
        let mut engines = chain_sim::rng::SplitMix64::new(42);
        for _ in 0..16 {
            assert_eq!(ours.next_u64(), engines.next_u64());
        }
    }
}
