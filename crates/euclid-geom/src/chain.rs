//! The Euclidean closed chain: unit-distance edges, exact-coincidence
//! merges, extent-≤-1 gathering.

use core::fmt;

use geom_core::ChainGeometry;

use crate::vec2::{EuclidSpace, Vec2};

/// Float slack for the unit-edge and gathering predicates. Edge lengths
/// are preserved *exactly* by reflections in real arithmetic; in f64 they
/// accumulate rounding on the order of 1e-15 per operation, so a 1e-9
/// tolerance is many orders of magnitude of headroom while still
/// rejecting genuinely broken chains.
pub const EDGE_EPS: f64 = 1e-9;

/// Validation failure of a Euclidean chain (the continuous analogue of
/// `chain_sim::ChainError`).
#[derive(Clone, Debug, PartialEq)]
pub enum EuclidChainError {
    /// Fewer than 2 robots cannot form a (meaningful) closed chain.
    TooShort {
        /// Offending chain length.
        len: usize,
    },
    /// Chain neighbors further than unit distance apart — the chain broke.
    Disconnected {
        /// Index of the first robot of the broken edge.
        index: usize,
        /// Position of the robot at `index`.
        a: Vec2,
        /// Position of its chain successor.
        b: Vec2,
    },
    /// Chain neighbors on the same point outside a merge pass (the chain
    /// must be taut between rounds).
    CoincidentNeighbors {
        /// Index of the first robot of the coinciding pair.
        index: usize,
        /// The shared position.
        at: Vec2,
    },
}

impl fmt::Display for EuclidChainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EuclidChainError::TooShort { len } => write!(f, "chain too short: {len} robots"),
            EuclidChainError::Disconnected { index, a, b } => write!(
                f,
                "chain disconnected between index {index} at {a} and its successor at {b} \
                 (distance {:.6})",
                a.dist(*b)
            ),
            EuclidChainError::CoincidentNeighbors { index, at } => write!(
                f,
                "chain neighbors {index} and successor coincide at {at} outside a merge pass"
            ),
        }
    }
}

impl std::error::Error for EuclidChainError {}

/// A closed chain of robots in the plane: a cyclic sequence of positions
/// whose neighbors stay within unit distance. The container mirrors
/// `chain_sim::ClosedChain`'s contract — validated on construction, taut
/// between rounds, merge pass as the progress measure — over [`Vec2`]
/// positions and the [`EuclidSpace`] predicates.
#[derive(Clone, Debug, PartialEq)]
pub struct EuclidChain {
    pos: Vec<Vec2>,
}

impl EuclidChain {
    /// Build a chain from cyclic positions, validating the closed-chain
    /// invariants (≥ 2 robots, unit edges, no coincident neighbors).
    pub fn new(pos: Vec<Vec2>) -> Result<Self, EuclidChainError> {
        let chain = EuclidChain { pos };
        chain.validate()?;
        Ok(chain)
    }

    /// Number of robots.
    pub fn len(&self) -> usize {
        self.pos.len()
    }

    /// `true` when no robots remain (never the case for a validated chain).
    pub fn is_empty(&self) -> bool {
        self.pos.is_empty()
    }

    /// The cyclic positions.
    pub fn positions(&self) -> &[Vec2] {
        &self.pos
    }

    /// Position of robot `i`.
    pub fn pos(&self, i: usize) -> Vec2 {
        self.pos[i]
    }

    /// Cyclic successor index.
    #[inline]
    pub fn next(&self, i: usize) -> usize {
        if i + 1 == self.pos.len() {
            0
        } else {
            i + 1
        }
    }

    /// Cyclic predecessor index.
    #[inline]
    pub fn prev(&self, i: usize) -> usize {
        if i == 0 {
            self.pos.len() - 1
        } else {
            i - 1
        }
    }

    /// Check the closed-chain invariants: every edge viable, no
    /// coincident neighbors (tautness between rounds).
    pub fn validate(&self) -> Result<(), EuclidChainError> {
        let n = self.pos.len();
        if n < 2 {
            return Err(EuclidChainError::TooShort { len: n });
        }
        for i in 0..n {
            let (a, b) = (self.pos[i], self.pos[self.next(i)]);
            if EuclidSpace::coincident(a, b) {
                return Err(EuclidChainError::CoincidentNeighbors { index: i, at: a });
            }
            if !EuclidSpace::edge_viable(a, b) {
                return Err(EuclidChainError::Disconnected { index: i, a, b });
            }
        }
        Ok(())
    }

    /// Apply simultaneous moves, given as *target positions* (one per
    /// robot; the robot's current position = stay), checking the movement
    /// budget and that every edge survives.
    ///
    /// Moves are expressed as targets rather than displacement hops so a
    /// fold can *copy* a neighbor's coordinates bit-for-bit — adding a
    /// computed displacement back to the position would round, and exact
    /// coincidence (the merge relation) would be lost.
    pub fn apply_moves(&mut self, targets: &[Vec2]) -> Result<(), EuclidChainError> {
        assert_eq!(targets.len(), self.pos.len(), "one target per robot");
        for (p, t) in self.pos.iter_mut().zip(targets) {
            debug_assert!(
                EuclidSpace::is_hop(*t - *p),
                "hop budget exceeded: {p} -> {t}"
            );
            *p = *t;
        }
        let n = self.pos.len();
        for i in 0..n {
            let (a, b) = (self.pos[i], self.pos[self.next(i)]);
            if !EuclidSpace::edge_viable(a, b) {
                return Err(EuclidChainError::Disconnected { index: i, a, b });
            }
        }
        Ok(())
    }

    /// Merge pass: splice out robots that coincide (exactly) with a chain
    /// neighbor, keeping one robot per maximal coincidence group. Appends
    /// the removed (pre-splice) indices to `removed`, in ascending order,
    /// and returns how many were removed. When the whole chain sits on one
    /// point it collapses to a single robot.
    pub fn merge_pass(&mut self, removed: &mut Vec<usize>) -> usize {
        removed.clear();
        let n = self.pos.len();
        if n < 2 {
            return 0;
        }
        // Find a group boundary: a robot whose predecessor sits elsewhere.
        let Some(start) = (0..n).find(|&i| self.pos[self.prev(i)] != self.pos[i]) else {
            // All robots coincide: collapse to one.
            removed.extend(1..n);
            self.pos.truncate(1);
            return n - 1;
        };
        // Walk the cycle from the boundary, keeping the first robot of
        // every maximal group of coincident consecutive positions.
        let mut i = start;
        loop {
            let group_pos = self.pos[i];
            let mut j = self.next(i);
            while j != start && self.pos[j] == group_pos {
                removed.push(j);
                j = self.next(j);
            }
            if j == start {
                break;
            }
            i = j;
        }
        if removed.is_empty() {
            return 0;
        }
        removed.sort_unstable();
        let mut keep_iter = removed.iter().peekable();
        let mut w = 0;
        for r in 0..n {
            if keep_iter.peek() == Some(&&r) {
                keep_iter.next();
            } else {
                self.pos[w] = self.pos[r];
                w += 1;
            }
        }
        self.pos.truncate(w);
        removed.len()
    }

    /// Width and height of the chain's bounding box.
    pub fn extent(&self) -> (f64, f64) {
        EuclidSpace::extent(&self.pos)
    }

    /// `true` if the gathering criterion holds: bounding box extent ≤ 1
    /// per axis (the continuous analogue of the grid's 2×2 box).
    pub fn is_gathered(&self) -> bool {
        EuclidSpace::gathered(&self.pos)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_square() -> EuclidChain {
        EuclidChain::new(vec![
            Vec2::new(0.0, 0.0),
            Vec2::new(1.0, 0.0),
            Vec2::new(1.0, 1.0),
            Vec2::new(0.0, 1.0),
        ])
        .unwrap()
    }

    #[test]
    fn validation_accepts_unit_edges_and_rejects_stretch() {
        unit_square();
        let err = EuclidChain::new(vec![
            Vec2::new(0.0, 0.0),
            Vec2::new(1.5, 0.0),
            Vec2::new(0.5, 0.5),
        ])
        .unwrap_err();
        assert!(matches!(
            err,
            EuclidChainError::Disconnected { index: 0, .. }
        ));
        let err = EuclidChain::new(vec![Vec2::new(0.0, 0.0), Vec2::new(0.0, 0.0)]).unwrap_err();
        assert!(matches!(
            err,
            EuclidChainError::CoincidentNeighbors { index: 0, .. }
        ));
        assert!(matches!(
            EuclidChain::new(vec![Vec2::ZERO]).unwrap_err(),
            EuclidChainError::TooShort { len: 1 }
        ));
    }

    #[test]
    fn merge_splices_coincident_groups() {
        // Robot 1 folded onto robot 2's position.
        let mut chain = EuclidChain {
            pos: vec![
                Vec2::new(0.0, 0.0),
                Vec2::new(1.0, 0.0),
                Vec2::new(1.0, 0.0),
                Vec2::new(0.5, 0.5),
            ],
        };
        let mut removed = Vec::new();
        assert_eq!(chain.merge_pass(&mut removed), 1);
        assert_eq!(removed, [2]);
        assert_eq!(chain.len(), 3);
        chain.validate().unwrap();
    }

    #[test]
    fn merge_handles_wraparound_groups() {
        // The group spans the index seam: robots 3, 0 coincide.
        let at = Vec2::new(0.25, 0.75);
        let mut chain = EuclidChain {
            pos: vec![at, Vec2::new(1.0, 0.75), Vec2::new(0.5, 0.2), at],
        };
        let mut removed = Vec::new();
        assert_eq!(chain.merge_pass(&mut removed), 1);
        assert_eq!(chain.len(), 3);
        // Exactly one copy of the merged position survives.
        let copies = chain.positions().iter().filter(|p| **p == at).count();
        assert_eq!(copies, 1);
    }

    #[test]
    fn full_collapse_keeps_one_robot() {
        let at = Vec2::new(2.0, 3.0);
        let mut chain = EuclidChain {
            pos: vec![at, at, at, at],
        };
        let mut removed = Vec::new();
        assert_eq!(chain.merge_pass(&mut removed), 3);
        assert_eq!(removed, [1, 2, 3]);
        assert_eq!(chain.len(), 1);
        assert!(chain.is_gathered());
    }

    #[test]
    fn gathering_is_the_unit_box() {
        // The unit square spans exactly one unit per axis — gathered, the
        // same boundary case as the grid's 2×2 box.
        assert!(unit_square().is_gathered());
        assert_eq!(unit_square().extent(), (1.0, 1.0));
        let wide = EuclidChain::new(vec![
            Vec2::new(0.0, 0.0),
            Vec2::new(1.0, 0.0),
            Vec2::new(2.0, 0.0),
            Vec2::new(2.0, 1.0),
            Vec2::new(1.0, 1.0),
            Vec2::new(0.0, 1.0),
        ])
        .unwrap();
        assert!(!wide.is_gathered());
        assert_eq!(wide.extent(), (2.0, 1.0));
    }

    #[test]
    fn apply_moves_rejects_breaks() {
        let mut chain = unit_square();
        let mut targets = chain.positions().to_vec();
        targets[0] = Vec2::new(-0.6, 0.0);
        assert!(matches!(
            chain.apply_moves(&targets),
            Err(EuclidChainError::Disconnected { .. })
        ));
    }
}
