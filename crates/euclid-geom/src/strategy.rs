//! Euclidean chain strategies: the fold/reflect rule behind the
//! `euclid-chain` strategy kind.

use crate::chain::{EuclidChain, EDGE_EPS};
use crate::vec2::Vec2;

/// A strategy for Euclidean closed chains, driven by
/// [`EuclidSim`](crate::EuclidSim). `compute` receives the round's
/// configuration and a
/// `targets` slice pre-filled with every robot's current position; a
/// robot moves by overwriting its entry (targets, not displacements — see
/// [`EuclidChain::apply_moves`]).
pub trait EuclidStrategy {
    /// Stable strategy name (the scenario registry key).
    fn name(&self) -> &'static str;

    /// Compute the round's moves from the common snapshot.
    fn compute(&mut self, chain: &EuclidChain, round: u64, targets: &mut [Vec2]);
}

/// The `euclid-chain` gathering strategy, modeled on the linear-time
/// Euclidean closed-chain algorithm (arXiv 2010.04424): full-speed
/// global contraction interleaved with the paper's local chain moves.
/// Rounds alternate between two phases:
///
/// * **Contract rounds** (even): every robot steps distance
///   `min(1, ·)` straight toward the chain's current bounding-box
///   center, robots within unit distance landing *exactly* on it (a
///   bit-for-bit coordinate copy, so arrivals coincide and merge).
///   Radial retraction toward a common point is nonexpansive — no
///   pairwise distance ever grows — so every chain edge survives with
///   all robots moving simultaneously at full speed. This is what makes
///   the strategy linear-time: movement per round is Θ(1) regardless of
///   local curvature, and the whole chain reaches the center within a
///   diameter's worth of contract rounds. (Local-only rules — midpoint
///   averaging, chord reflections — move smooth regions only
///   O(curvature) per round and measure quadratic.)
/// * **Local rounds** (odd): one parity class of the chain acts
///   (alternating classes, so every mover's neighbors are static). An
///   active robot **folds** onto its key-smaller neighbor when its two
///   neighbors are within unit distance of each other — an exact
///   coordinate copy, merging next round — the continuous form of the
///   paper's merge patterns; otherwise it **reflects** across the chord
///   through its neighbors (the continuous hop, preserving both
///   incident edge lengths exactly), falling back to the chord
///   **midpoint** whenever reflection would not bring it closer to the
///   bounding-box center, and unconditionally on every fourth
///   activation of its class (the deterministic symmetry breaker: pure
///   reflections can 2-cycle on symmetric configurations such as
///   rhombi).
///
/// Every local-round target stays within unit distance of both static
/// neighbors and every contract round is nonexpansive, so the chain
/// never breaks under FSYNC; movement per round is bounded by the chord
/// diameter 2 (the same budget as the grid hop's mirrored corner step).
#[derive(Clone, Copy, Debug, Default)]
pub struct FoldReflect;

impl FoldReflect {
    /// How often an active class is forced onto chord midpoints: every
    /// `MIDPOINT_BEAT`-th activation of the class.
    const MIDPOINT_BEAT: u64 = 4;

    /// The current bounding-box center — the common contraction target.
    fn center(chain: &EuclidChain) -> Vec2 {
        let (w, h) = chain.extent();
        let first = chain.pos(0);
        let (mut min_x, mut min_y) = (first.x, first.y);
        for p in chain.positions() {
            min_x = min_x.min(p.x);
            min_y = min_y.min(p.y);
        }
        Vec2::new(min_x + w * 0.5, min_y + h * 0.5)
    }

    /// Contract round: everyone retracts radially toward `center` at
    /// unit speed, clamping exactly onto it.
    fn contract(chain: &EuclidChain, targets: &mut [Vec2]) {
        let center = Self::center(chain);
        for (i, t) in targets.iter_mut().enumerate() {
            let p = chain.pos(i);
            let d = p.dist(center);
            *t = if d <= 1.0 {
                center
            } else {
                p + (center - p) * (1.0 / d)
            };
        }
    }

    /// Local round: parity-class folds, reflections, midpoints.
    fn local_moves(chain: &EuclidChain, beat: u64, targets: &mut [Vec2]) {
        let n = chain.len();
        let parity = (beat % 2) as usize;
        // Every MIDPOINT_BEAT-th activation of a class is a forced
        // midpoint round.
        let force_midpoint = (beat / 2) % Self::MIDPOINT_BEAT == Self::MIDPOINT_BEAT - 1;
        let center = Self::center(chain);
        let mut i = parity;
        while i < n {
            // On odd n the last even index wraps adjacent to index 0 —
            // both would be active; leave the wrap robot static.
            if !(parity == 0 && n % 2 == 1 && i == n - 1) {
                let p = chain.pos(i);
                let l = chain.pos(chain.prev(i));
                let r = chain.pos(chain.next(i));
                targets[i] = if l.dist(r) <= 1.0 + EDGE_EPS {
                    // Fold: land exactly on the key-smaller neighbor; the
                    // other edge becomes the ≤-1 chord between them.
                    if l.key() <= r.key() {
                        l
                    } else {
                        r
                    }
                } else {
                    let mid = (l + r) * 0.5;
                    if force_midpoint {
                        mid
                    } else {
                        let refl = p.reflect_across(l, r);
                        if refl.dist(center) <= mid.dist(center) {
                            refl
                        } else {
                            mid
                        }
                    }
                };
            }
            i += 2;
        }
    }
}

impl EuclidStrategy for FoldReflect {
    fn name(&self) -> &'static str {
        "euclid-chain"
    }

    fn compute(&mut self, chain: &EuclidChain, round: u64, targets: &mut [Vec2]) {
        let n = chain.len();
        if n < 3 {
            // n = 2 is already gathered (edge ≤ 1 bounds the box); the
            // engine terminates before asking for moves.
            return;
        }
        if round.is_multiple_of(2) {
            Self::contract(chain, targets);
        } else {
            Self::local_moves(chain, round / 2, targets);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn targets_for(chain: &EuclidChain, round: u64) -> Vec<Vec2> {
        let mut targets = chain.positions().to_vec();
        FoldReflect.compute(chain, round, &mut targets);
        targets
    }

    /// Safety invariant of every computed move: each mover's neighbors are
    /// static this round, and the mover stays within unit distance of both
    /// while respecting the hop budget.
    fn assert_moves_safe(chain: &EuclidChain, targets: &[Vec2]) {
        let n = chain.len();
        for i in 0..n {
            let t = targets[i];
            if t == chain.pos(i) {
                continue; // static this round
            }
            let (lp, rn) = (chain.prev(i), chain.next(i));
            assert_eq!(targets[lp], chain.pos(lp), "mover {i}'s neighbor moved");
            assert_eq!(targets[rn], chain.pos(rn), "mover {i}'s neighbor moved");
            assert!(
                t.dist(chain.pos(lp)) <= 1.0 + 2.0 * EDGE_EPS,
                "mover {i} strays from predecessor"
            );
            assert!(
                t.dist(chain.pos(rn)) <= 1.0 + 2.0 * EDGE_EPS,
                "mover {i} strays from successor"
            );
            assert!(
                (t - chain.pos(i)).length() <= 2.0 + EDGE_EPS,
                "mover {i} exceeds the hop budget"
            );
        }
    }

    /// Contract rounds (even) are nonexpansive: every robot steps toward
    /// the bounding-box center, edges never grow, and robots within unit
    /// distance land exactly on the common target.
    #[test]
    fn contract_round_is_nonexpansive() {
        let pts: Vec<Vec2> = (0..12)
            .map(|k| {
                let a = std::f64::consts::TAU / 12.0 * k as f64;
                Vec2::new(4.0 * a.cos(), 4.0 * a.sin())
            })
            .collect();
        let chain = EuclidChain::new(
            // Scale back so edges are ≤ 1: a 12-gon of radius ~1.93.
            pts.iter()
                .map(|p| *p * (0.5 / (std::f64::consts::PI / 12.0).sin() / 4.0))
                .collect(),
        )
        .unwrap();
        let targets = targets_for(&chain, 0);
        let n = chain.len();
        for i in 0..n {
            let j = chain.next(i);
            assert!(
                targets[i].dist(targets[j]) <= chain.pos(i).dist(chain.pos(j)) + EDGE_EPS,
                "edge ({i},{j}) expanded under contraction"
            );
            assert!(
                (targets[i] - chain.pos(i)).length() <= 1.0 + EDGE_EPS,
                "contract step exceeds unit speed"
            );
        }
        // The 12-gon has radius < 2, so after one contract round every
        // robot is within unit distance of the center; a second contract
        // round clamps them all onto it exactly.
        let mut sim_chain = chain;
        sim_chain.apply_moves(&targets).unwrap();
        let targets2 = targets_for(&sim_chain, 2);
        assert!(
            targets2.windows(2).all(|w| w[0] == w[1]),
            "clamped robots must coincide bit-for-bit"
        );
    }

    /// A hexagon ring with unit edges: nobody is foldable at first, so on
    /// a local round the active class reflects inward (toward the center).
    #[test]
    fn hexagon_reflects_inward() {
        let pts: Vec<Vec2> = (0..6)
            .map(|k| {
                let a = std::f64::consts::FRAC_PI_3 * k as f64;
                Vec2::new(a.cos(), a.sin())
            })
            .collect();
        let chain = EuclidChain::new(pts).unwrap();
        let targets = targets_for(&chain, 1);
        assert_moves_safe(&chain, &targets);
        let center = Vec2::ZERO;
        for i in (0..6).step_by(2) {
            assert!(
                targets[i].dist(center) < chain.pos(i).dist(center) - 1e-9,
                "active robot {i} did not contract"
            );
        }
        // Inactive parity stays put.
        for i in (1..6).step_by(2) {
            assert_eq!(targets[i], chain.pos(i));
        }
    }

    /// A folded-flat chain: the tip robot's neighbors coincide, so it
    /// folds exactly onto them.
    #[test]
    fn flat_tip_folds_exactly() {
        let chain = EuclidChain::new(vec![
            Vec2::new(0.0, 0.0),
            Vec2::new(1.0, 0.0),
            Vec2::new(2.0, 0.0), // tip: neighbors both at (1, 0)... after wrap
            Vec2::new(1.0, 0.0),
        ])
        .unwrap();
        // Robot 2's neighbors are 1 and 3, both exactly at (1, 0).
        let targets = targets_for(&chain, 1);
        assert_eq!(targets[2], Vec2::new(1.0, 0.0));
        // Exactness: bitwise equality, not closeness.
        assert!(targets[2] == chain.pos(1));
    }

    /// The wrap guard: with odd n, the last even index stays static on
    /// even-parity rounds (it is cyclically adjacent to active robot 0).
    #[test]
    fn odd_length_wrap_robot_is_static() {
        // Unit-edge pentagon: radius 1 / (2 sin(π/5)).
        let r = 0.5 / (std::f64::consts::PI / 5.0).sin();
        let pts: Vec<Vec2> = (0..5)
            .map(|k| {
                let a = std::f64::consts::TAU / 5.0 * k as f64;
                Vec2::new(r * a.cos(), r * a.sin())
            })
            .collect();
        let chain = EuclidChain::new(pts).unwrap();
        let targets = targets_for(&chain, 1);
        assert_eq!(targets[4], chain.pos(4), "wrap robot must not move");
        assert_moves_safe(&chain, &targets);
    }
}
