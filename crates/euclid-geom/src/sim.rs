//! The FSYNC engine for Euclidean closed chains.
//!
//! [`EuclidSim`] mirrors the grid engine's contract — simultaneous moves,
//! merge pass, tautness validation, the always-on
//! [`Progress`] aggregates, stall/quiescence windows,
//! and [`Outcome`]s — over [`EuclidChain`] state. It
//! is deliberately FSYNC-only (the strategy's safety argument assumes the
//! active parity class's neighbors are static each round); the scenario
//! layer rejects `euclid` × SSYNC combinations before an `EuclidSim` is
//! ever built.

use chain_sim::{Outcome, Progress, RoundSummary, RunLimits, QUIESCENCE_WINDOW};

use crate::chain::EuclidChain;
use crate::strategy::EuclidStrategy;
use crate::vec2::Vec2;

/// Robots move every other round (alternating parity classes), so the
/// engine widens the shared quiescence window by this inverse duty cycle
/// — the same scaling SSYNC schedulers apply on the grid.
const PARITY_SLOWDOWN: u64 = 2;

/// The simulator: one [`EuclidStrategy`] driving one [`EuclidChain`]
/// through synchronous rounds.
pub struct EuclidSim<S: EuclidStrategy> {
    chain: EuclidChain,
    strategy: S,
    round: u64,
    targets: Vec<Vec2>,
    removed_buf: Vec<usize>,
    progress: Progress,
    travel: Vec<f64>,
    retired_travel: f64,
    rounds_since_merge: u64,
    rounds_since_move: u64,
}

impl<S: EuclidStrategy> EuclidSim<S> {
    /// A simulator over `chain`. Like the grid engines, nothing is
    /// retained per round — only the [`Progress`] aggregates and the
    /// per-robot travel totals.
    pub fn new(chain: EuclidChain, strategy: S) -> Self {
        let n = chain.len();
        EuclidSim {
            chain,
            strategy,
            round: 0,
            targets: Vec::with_capacity(n),
            removed_buf: Vec::new(),
            progress: Progress::default(),
            travel: vec![0.0; n],
            retired_travel: 0.0,
            rounds_since_merge: 0,
            rounds_since_move: 0,
        }
    }

    /// The chain in its current state.
    pub fn chain(&self) -> &EuclidChain {
        &self.chain
    }

    /// Rounds executed so far.
    pub fn round(&self) -> u64 {
        self.round
    }

    /// The always-on aggregate statistics.
    pub fn progress(&self) -> Progress {
        self.progress
    }

    /// Maximum per-robot cumulative travel so far (robots merged away
    /// keep contributing their totals) — the min-max distance objective.
    pub fn max_travel(&self) -> f64 {
        self.travel
            .iter()
            .fold(self.retired_travel, |acc, &t| acc.max(t))
    }

    /// `true` if the gathering criterion (bounding extent ≤ 1 per axis)
    /// holds.
    pub fn is_gathered(&self) -> bool {
        self.chain.is_gathered()
    }

    /// Execute one round: look/compute (strategy), simultaneous moves,
    /// merge pass, tautness validation, bookkeeping.
    ///
    /// # Panics
    ///
    /// Panics if the strategy breaks the chain. [`crate::FoldReflect`]'s
    /// moves keep every mover within unit distance of its (static)
    /// neighbors, so for the shipped strategy this is unreachable — a
    /// panic here is a strategy bug, the Euclidean analogue of the grid
    /// engine's `ChainError` abort.
    pub fn step(&mut self) -> RoundSummary {
        let n = self.chain.len();
        self.targets.clear();
        self.targets.extend_from_slice(self.chain.positions());

        self.strategy
            .compute(&self.chain, self.round, &mut self.targets);

        let mut moved = 0;
        for (i, (&t, &p)) in self.targets.iter().zip(self.chain.positions()).enumerate() {
            if t != p {
                moved += 1;
                self.travel[i] += t.dist(p);
            }
        }
        if let Err(e) = self.chain.apply_moves(&self.targets) {
            panic!(
                "euclid chain broke in round {}: {e} (strategy {} violated its safety contract)",
                self.round,
                self.strategy.name()
            );
        }

        let removed = self.chain.merge_pass(&mut self.removed_buf);
        if removed > 0 {
            let mut rm = self.removed_buf.iter().peekable();
            let mut write = 0;
            for read in 0..self.travel.len() {
                if rm.peek() == Some(&&read) {
                    rm.next();
                    self.retired_travel = self.retired_travel.max(self.travel[read]);
                } else {
                    self.travel[write] = self.travel[read];
                    write += 1;
                }
            }
            self.travel.truncate(write);
        }

        if self.chain.len() > 1 {
            if let Err(e) = self.chain.validate() {
                panic!(
                    "euclid chain untaut after round {}: {e} (strategy {})",
                    self.round,
                    self.strategy.name()
                );
            }
        }

        if removed > 0 {
            self.rounds_since_merge = 0;
        } else {
            self.rounds_since_merge += 1;
        }
        if moved > 0 || removed > 0 {
            self.rounds_since_move = 0;
        } else {
            self.rounds_since_move += 1;
        }

        let summary = RoundSummary {
            round: self.round,
            moved,
            removed,
            len_after: self.chain.len(),
            gathered: self.chain.is_gathered(),
        };
        self.progress.record_round(moved, removed);
        self.round += 1;
        debug_assert_eq!(n - removed, self.chain.len());
        summary
    }

    /// Run until gathered or a limit trips, invoking `on_round` with every
    /// round summary (the hook the scenario layer publishes live progress
    /// through — mirrors `KernelSim::run_with`).
    pub fn run_with<F: FnMut(&RoundSummary)>(
        &mut self,
        limits: RunLimits,
        mut on_round: F,
    ) -> Outcome {
        loop {
            if self.chain.is_gathered() {
                return Outcome::Gathered { rounds: self.round };
            }
            if self.round >= limits.max_rounds {
                return Outcome::RoundLimit { rounds: self.round };
            }
            let quiescence = QUIESCENCE_WINDOW.saturating_mul(PARITY_SLOWDOWN);
            if self.rounds_since_merge >= limits.stall_window
                || self.rounds_since_move >= quiescence
            {
                return Outcome::Stalled {
                    rounds: self.round,
                    since_last_merge: self.rounds_since_merge,
                };
            }
            let summary = self.step();
            on_round(&summary);
        }
    }

    /// Run until gathered or a limit trips.
    pub fn run(&mut self, limits: RunLimits) -> Outcome {
        self.run_with(limits, |_| {})
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::FoldReflect;

    fn ring(n: usize) -> EuclidChain {
        // A regular n-gon with unit edges: radius 1 / (2 sin(π/n)).
        let r = 0.5 / (std::f64::consts::PI / n as f64).sin();
        EuclidChain::new(
            (0..n)
                .map(|k| {
                    let a = std::f64::consts::TAU * k as f64 / n as f64;
                    Vec2::new(r * a.cos(), r * a.sin())
                })
                .collect(),
        )
        .unwrap()
    }

    fn rotated_rectangle(w: usize, h: usize, angle: f64) -> EuclidChain {
        let mut pts = Vec::new();
        for x in 0..w {
            pts.push((x as f64, 0.0));
        }
        for y in 0..h {
            pts.push((w as f64, y as f64));
        }
        for x in 0..w {
            pts.push(((w - x) as f64, h as f64));
        }
        for y in 0..h {
            pts.push((0.0, (h - y) as f64));
        }
        let (s, c) = angle.sin_cos();
        EuclidChain::new(
            pts.into_iter()
                .map(|(x, y)| Vec2::new(x * c - y * s, x * s + y * c))
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn rings_gather() {
        for n in [6, 9, 16, 33, 64] {
            let chain = ring(n);
            let mut sim = EuclidSim::new(chain, FoldReflect);
            let outcome = sim.run(RunLimits::for_euclid_chain(n));
            assert!(outcome.is_gathered(), "ring n={n}: {outcome:?}");
        }
    }

    #[test]
    fn rotated_rectangles_gather() {
        for (w, h, angle) in [(8, 4, 0.3), (12, 6, 1.1), (5, 5, 0.0)] {
            let chain = rotated_rectangle(w, h, angle);
            let n = chain.len();
            let mut sim = EuclidSim::new(chain, FoldReflect);
            let outcome = sim.run(RunLimits::for_euclid_chain(n));
            assert!(outcome.is_gathered(), "rect {w}x{h}@{angle}: {outcome:?}");
        }
    }

    #[test]
    fn rhombus_symmetry_is_broken() {
        // Unit rhombus with 75° opening: no folds available, and pure
        // chord reflections 2-cycle (each diagonal is a symmetry axis).
        // The forced-midpoint beat must still gather it.
        let a = 75f64.to_radians();
        let chain = EuclidChain::new(vec![
            Vec2::new(0.0, 0.0),
            Vec2::new(1.0, 0.0),
            Vec2::new(1.0 + a.cos(), a.sin()),
            Vec2::new(a.cos(), a.sin()),
        ])
        .unwrap();
        let mut sim = EuclidSim::new(chain, FoldReflect);
        let outcome = sim.run(RunLimits::for_euclid_chain(4));
        assert!(outcome.is_gathered(), "{outcome:?}");
    }

    #[test]
    fn progress_and_travel_are_maintained() {
        let n = 24;
        let mut sim = EuclidSim::new(ring(n), FoldReflect);
        let outcome = sim.run(RunLimits::for_euclid_chain(n));
        assert!(outcome.is_gathered());
        let p = sim.progress();
        assert_eq!(p.rounds(), outcome.rounds());
        assert!(p.makespan() <= p.rounds());
        assert!(p.makespan() > 0);
        // Gathering a ring of diameter ~n/π requires real travel, and no
        // robot can have traveled more than 2 per round it was active.
        assert!(sim.max_travel() > 1.0);
        assert!(sim.max_travel() <= 2.0 * outcome.rounds() as f64);
        // The chain shortened to within the gathering box.
        assert!(sim.chain().len() < n);
        assert!(p.total_removed() >= n - sim.chain().len());
    }

    #[test]
    fn run_with_reports_every_round() {
        let n = 12;
        let mut sim = EuclidSim::new(ring(n), FoldReflect);
        let mut rounds_seen = 0u64;
        let outcome = sim.run_with(RunLimits::for_euclid_chain(n), |s| {
            assert_eq!(s.round, rounds_seen);
            rounds_seen += 1;
        });
        assert_eq!(rounds_seen, outcome.rounds());
    }
}
