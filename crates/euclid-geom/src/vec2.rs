//! f64 points in the plane and the Euclidean `ChainGeometry` backend.

use core::fmt;
use core::ops::{Add, AddAssign, Mul, Neg, Sub, SubAssign};

use geom_core::ChainGeometry;

use crate::chain::EDGE_EPS;

/// A point (or displacement) in the continuous plane. Equality is exact
/// bitwise f64 equality — the merge pass relies on folds *copying* a
/// neighbor's coordinates rather than recomputing them, so coincidence is
/// never a tolerance question.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Vec2 {
    /// Horizontal coordinate.
    pub x: f64,
    /// Vertical coordinate.
    pub y: f64,
}

impl Vec2 {
    /// The origin / zero displacement.
    pub const ZERO: Vec2 = Vec2 { x: 0.0, y: 0.0 };

    /// A point from its coordinates.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Vec2 { x, y }
    }

    /// Euclidean norm.
    #[inline]
    pub fn length(self) -> f64 {
        self.x.hypot(self.y)
    }

    /// Euclidean distance to `other`.
    #[inline]
    pub fn dist(self, other: Vec2) -> f64 {
        (self - other).length()
    }

    /// Dot product.
    #[inline]
    pub fn dot(self, other: Vec2) -> f64 {
        self.x * other.x + self.y * other.y
    }

    /// The total order the fold rule breaks ties with: lexicographic on
    /// `(x + y, x, y)`. Distinct points always compare unequal (distinct
    /// `(x, y)` differ in one of the later components).
    #[inline]
    pub fn key(self) -> (f64, f64, f64) {
        (self.x + self.y, self.x, self.y)
    }

    /// The reflection of `self` across the line through `a` and `b`
    /// (callers guarantee `a != b`). Distances from the reflected point to
    /// `a` and to `b` are preserved — the safety of the chord hop.
    #[inline]
    pub fn reflect_across(self, a: Vec2, b: Vec2) -> Vec2 {
        let d = b - a;
        let v = self - a;
        let t = v.dot(d) / d.dot(d);
        let foot = a + d * t;
        foot * 2.0 - self
    }
}

impl Add for Vec2 {
    type Output = Vec2;
    #[inline]
    fn add(self, o: Vec2) -> Vec2 {
        Vec2::new(self.x + o.x, self.y + o.y)
    }
}

impl AddAssign for Vec2 {
    #[inline]
    fn add_assign(&mut self, o: Vec2) {
        self.x += o.x;
        self.y += o.y;
    }
}

impl Sub for Vec2 {
    type Output = Vec2;
    #[inline]
    fn sub(self, o: Vec2) -> Vec2 {
        Vec2::new(self.x - o.x, self.y - o.y)
    }
}

impl SubAssign for Vec2 {
    #[inline]
    fn sub_assign(&mut self, o: Vec2) {
        self.x -= o.x;
        self.y -= o.y;
    }
}

impl Neg for Vec2 {
    type Output = Vec2;
    #[inline]
    fn neg(self) -> Vec2 {
        Vec2::new(-self.x, -self.y)
    }
}

impl Mul<f64> for Vec2 {
    type Output = Vec2;
    #[inline]
    fn mul(self, k: f64) -> Vec2 {
        Vec2::new(self.x * k, self.y * k)
    }
}

impl fmt::Display for Vec2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.6}, {:.6})", self.x, self.y)
    }
}

/// The continuous plane as a geometry backend: unit-distance chain edges,
/// chord hops (length ≤ 2, like the grid hop's two-step mirror), exact
/// coincidence, and the extent-≤-1 gathering box.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EuclidSpace;

impl ChainGeometry for EuclidSpace {
    type Point = Vec2;
    type Hop = Vec2;

    const NAME: &'static str = "euclid";

    #[inline]
    fn zero_hop() -> Vec2 {
        Vec2::ZERO
    }

    #[inline]
    fn is_hop(hop: Vec2) -> bool {
        // A chord reflection moves at most twice the unit chain-edge
        // length; folds and midpoints move strictly less.
        hop.length() <= 2.0 + EDGE_EPS
    }

    #[inline]
    fn apply(p: Vec2, hop: Vec2) -> Vec2 {
        p + hop
    }

    #[inline]
    fn edge_viable(a: Vec2, b: Vec2) -> bool {
        a.dist(b) <= 1.0 + EDGE_EPS
    }

    #[inline]
    fn coincident(a: Vec2, b: Vec2) -> bool {
        a == b
    }

    #[inline]
    fn distance(a: Vec2, b: Vec2) -> f64 {
        a.dist(b)
    }

    #[inline]
    fn extent(points: &[Vec2]) -> (f64, f64) {
        let Some(&first) = points.first() else {
            return (0.0, 0.0);
        };
        let (mut min, mut max) = (first, first);
        for &p in &points[1..] {
            min.x = min.x.min(p.x);
            min.y = min.y.min(p.y);
            max.x = max.x.max(p.x);
            max.y = max.y.max(p.y);
        }
        (max.x - min.x, max.y - min.y)
    }

    #[inline]
    fn gathered(points: &[Vec2]) -> bool {
        let (w, h) = Self::extent(points);
        w <= 1.0 + EDGE_EPS && h <= 1.0 + EDGE_EPS
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reflection_preserves_chord_distances() {
        let a = Vec2::new(0.0, 0.0);
        let b = Vec2::new(1.3, 0.4);
        let p = Vec2::new(0.7, 0.9);
        let r = p.reflect_across(a, b);
        assert!((r.dist(a) - p.dist(a)).abs() < 1e-12);
        assert!((r.dist(b) - p.dist(b)).abs() < 1e-12);
        // Reflecting twice returns (within float error).
        let rr = r.reflect_across(a, b);
        assert!(rr.dist(p) < 1e-12);
    }

    #[test]
    fn collinear_points_reflect_to_themselves() {
        let a = Vec2::new(0.0, 0.0);
        let b = Vec2::new(2.0, 0.0);
        let p = Vec2::new(0.5, 0.0);
        assert!(p.reflect_across(a, b).dist(p) < 1e-12);
    }

    #[test]
    fn keys_order_distinct_points_totally() {
        let a = Vec2::new(0.0, 1.0);
        let b = Vec2::new(1.0, 0.0); // same x + y, larger x
        assert!(a.key() < b.key());
        assert_eq!(a.key(), a.key());
        assert!(Vec2::new(0.0, 0.0).key() < a.key());
    }

    #[test]
    fn space_predicates() {
        let a = Vec2::new(0.0, 0.0);
        assert!(EuclidSpace::edge_viable(a, Vec2::new(1.0, 0.0)));
        assert!(!EuclidSpace::edge_viable(a, Vec2::new(1.1, 0.0)));
        assert!(EuclidSpace::coincident(a, Vec2::new(0.0, 0.0)));
        assert!(!EuclidSpace::coincident(a, Vec2::new(1e-15, 0.0)));
        assert!(EuclidSpace::is_hop(Vec2::new(1.4, 1.4)));
        assert!(!EuclidSpace::is_hop(Vec2::new(2.1, 0.0)));
        assert_eq!(EuclidSpace::distance(a, Vec2::new(3.0, 4.0)), 5.0);
        assert!(EuclidSpace::gathered(&[a, Vec2::new(0.9, 0.9)]));
        assert!(!EuclidSpace::gathered(&[a, Vec2::new(0.9, 1.2)]));
        assert_eq!(EuclidSpace::extent(&[]), (0.0, 0.0));
    }
}
