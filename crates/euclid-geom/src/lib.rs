//! # euclid-geom
//!
//! The continuous-plane geometry backend of the gathering system, modeled
//! on "Gathering a Euclidean Closed Chain of Robots in Linear Time"
//! (arXiv 2010.04424): robots are points in R², chain neighbors must stay
//! within **unit distance** (instead of the grid's 4-adjacency), and
//! coinciding neighbors merge exactly as on the grid.
//!
//! * [`Vec2`] / [`EuclidSpace`] — f64 points and the
//!   `geom_core::ChainGeometry` implementation for the plane.
//! * [`EuclidChain`] — the closed chain container: validation (unit
//!   edges, taut between rounds), the exact-coincidence merge pass, and
//!   the extent-≤-1 gathering criterion (the continuous analogue of the
//!   grid's 2×2 box).
//! * [`FoldReflect`] — the `euclid-chain` strategy: robots on the active
//!   parity class **fold** onto a neighbor when their two neighbors are
//!   within unit distance of each other (producing an exact coincidence,
//!   hence a merge), and otherwise **reflect** across the chord through
//!   their neighbors — the continuous analogue of the paper's hop, which
//!   transports slack along the chain at wave speed — falling back to the
//!   chord **midpoint** whenever reflection would not make progress
//!   toward the chain's bounding-box center (the symmetry breaker: pure
//!   reflections can cycle on symmetric configurations such as rhombi).
//! * [`EuclidSim`] — the FSYNC engine for Euclidean chains: alternating
//!   parity activation, simultaneous moves, merge pass, and the same
//!   always-on [`Progress`](chain_sim::Progress) aggregates, stall
//!   windows, and [`Outcome`](chain_sim::Outcome)s as the grid engines,
//!   plus per-robot travel accounting for the min-max objectives.
//!
//! Every move of the strategy keeps the mover within unit distance of
//! both (static) neighbors, so chains never break under FSYNC — the
//! engine enforces this with an always-on validation pass. The model is
//! deliberately FSYNC-only: the scenario layer rejects `euclid` × SSYNC
//! combinations at the wire and campaign boundaries.

#![deny(missing_docs)]

pub mod chain;
pub mod sim;
pub mod strategy;
pub mod vec2;

pub use chain::{EuclidChain, EuclidChainError, EDGE_EPS};
pub use sim::EuclidSim;
pub use strategy::{EuclidStrategy, FoldReflect};
pub use vec2::{EuclidSpace, Vec2};
