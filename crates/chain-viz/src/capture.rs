//! Frame capture as an engine observer.
//!
//! [`FrameCapture`] plugs into the simulator's one run loop
//! ([`chain_sim::Sim::observe`]) and renders ASCII frames — with the
//! strategy's per-robot markers — as the run progresses, replacing the old
//! pattern of hand-rolled `step()` loops interleaved with rendering calls.

use chain_sim::observe::{Observer, RoundCtx};
use chain_sim::{ClosedChain, Strategy};

use crate::ascii::{render_with_markers, AsciiOptions};

/// One captured frame.
#[derive(Clone, Debug)]
pub struct Frame {
    /// Rounds completed when the frame was captured (0 = initial
    /// configuration).
    pub rounds: u64,
    /// Robots on the chain at capture time.
    pub robots: usize,
    /// The rendered ASCII frame.
    pub art: String,
}

/// Observer that renders ASCII frames of the configuration every `every`
/// rounds (plus the initial and, via `on_finish`, the final
/// configuration), using the strategy's [`Strategy::marker`] overlays.
#[derive(Debug)]
pub struct FrameCapture {
    every: u64,
    max: usize,
    opts: AsciiOptions,
    frames: Vec<Frame>,
}

impl FrameCapture {
    /// Capture a frame every `every` rounds, at most `max` frames
    /// (initial and final frames included in the budget).
    pub fn every(every: u64, max: usize) -> Self {
        FrameCapture {
            every: every.max(1),
            max,
            opts: AsciiOptions::default(),
            frames: Vec::new(),
        }
    }

    /// Use custom rendering options.
    pub fn with_options(mut self, opts: AsciiOptions) -> Self {
        self.opts = opts;
        self
    }

    /// The frames captured so far.
    pub fn frames(&self) -> &[Frame] {
        &self.frames
    }

    /// Take the captured frames, leaving the buffer empty.
    pub fn take_frames(&mut self) -> Vec<Frame> {
        std::mem::take(&mut self.frames)
    }

    fn capture<S: Strategy>(&mut self, rounds: u64, chain: &ClosedChain, strategy: &S) {
        if self.frames.len() >= self.max {
            return;
        }
        self.frames.push(Frame {
            rounds,
            robots: chain.len(),
            art: render_with_markers(chain, |i| strategy.marker(i), self.opts),
        });
    }
}

impl<S: Strategy> Observer<S> for FrameCapture {
    fn on_init(&mut self, chain: &ClosedChain, strategy: &S) {
        self.capture(0, chain, strategy);
    }

    fn on_round(&mut self, ctx: &RoundCtx<'_>, strategy: &mut S) {
        let completed = ctx.summary.round + 1;
        if completed.is_multiple_of(self.every) {
            self.capture(completed, ctx.chain, strategy);
        }
    }

    fn on_finish(&mut self, chain: &ClosedChain, strategy: &S, outcome: &chain_sim::Outcome) {
        // Always capture the final configuration unless the last periodic
        // frame already is it.
        if self.frames.last().map(|f| f.rounds) != Some(outcome.rounds()) {
            self.capture(outcome.rounds(), chain, strategy);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chain_sim::{RunLimits, Sim};
    use grid_geom::{Offset, Point};

    /// A do-nothing strategy that never claims idleness, so `run` reaches
    /// its round cap instead of stalling immediately (the engine stalls an
    /// idle strategy at round 0 — these tests want mid-run frames).
    struct Linger;

    impl Strategy for Linger {
        fn name(&self) -> &'static str {
            "linger"
        }
        fn init(&mut self, _chain: &ClosedChain) {}
        fn compute(&mut self, _chain: &ClosedChain, _round: u64, _hops: &mut [Offset]) {}
    }

    fn ring6() -> ClosedChain {
        ClosedChain::new(vec![
            Point::new(0, 0),
            Point::new(1, 0),
            Point::new(2, 0),
            Point::new(2, 1),
            Point::new(1, 1),
            Point::new(0, 1),
        ])
        .unwrap()
    }

    #[test]
    fn captures_initial_periodic_and_final_frames() {
        let mut sim = Sim::new(ring6(), Linger).observe(FrameCapture::every(2, 100));
        let outcome = sim.run(RunLimits {
            max_rounds: 5,
            stall_window: 100,
        });
        assert_eq!(outcome.rounds(), 5);
        let frames = sim.observer::<FrameCapture>().unwrap().frames();
        // Initial (0), rounds 2, 4, and the final configuration at 5.
        let rounds: Vec<u64> = frames.iter().map(|f| f.rounds).collect();
        assert_eq!(rounds, vec![0, 2, 4, 5]);
        assert!(frames.iter().all(|f| f.robots == 6));
        assert!(frames[0].art.contains('o'));
    }

    #[test]
    fn frame_budget_is_respected() {
        let mut sim = Sim::new(ring6(), Linger).observe(FrameCapture::every(1, 2));
        let _ = sim.run(RunLimits {
            max_rounds: 10,
            stall_window: 100,
        });
        assert_eq!(sim.observer::<FrameCapture>().unwrap().frames().len(), 2);
    }
}
