//! Dependency-free SVG rendering of chain configurations.
//!
//! Produces a small standalone SVG document: grid dots, the chain's edges
//! as a polyline (following chain order, so self-crossings are visible),
//! and robots as circles with multiplicity labels. Useful for inspecting
//! traces outside the terminal.

use chain_sim::ClosedChain;
use std::collections::HashMap;
use std::fmt::Write as _;

/// Rendering options.
#[derive(Clone, Copy, Debug)]
pub struct SvgOptions {
    /// Pixels per grid cell.
    pub scale: i64,
    /// Margin in grid cells.
    pub margin: i64,
    /// Draw the chain edges.
    pub edges: bool,
}

impl Default for SvgOptions {
    fn default() -> Self {
        SvgOptions {
            scale: 24,
            margin: 1,
            edges: true,
        }
    }
}

/// Render the configuration into an SVG document string.
pub fn render_svg(chain: &ClosedChain, opt: SvgOptions) -> String {
    let bbox = chain.bounding();
    let s = opt.scale;
    let min_x = bbox.min.x - opt.margin;
    let min_y = bbox.min.y - opt.margin;
    let w = (bbox.width() + 2 * opt.margin) * s;
    let h = (bbox.height() + 2 * opt.margin) * s;
    // SVG y grows downward; flip so the figure orientation matches the
    // paper (y up).
    let tx = |x: i64| (x - min_x) * s + s / 2;
    let ty = |y: i64| h - ((y - min_y) * s + s / 2);

    let mut out = String::with_capacity(4096);
    let _ = writeln!(
        out,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{w}" height="{h}" viewBox="0 0 {w} {h}">"#
    );
    let _ = writeln!(out, r#"<rect width="{w}" height="{h}" fill="white"/>"#);

    if opt.edges && chain.len() >= 2 {
        let mut d = String::new();
        for i in 0..chain.len() {
            let p = chain.pos(i);
            let cmd = if i == 0 { 'M' } else { 'L' };
            let _ = write!(d, "{cmd}{},{} ", tx(p.x), ty(p.y));
        }
        let first = chain.pos(0);
        let _ = write!(d, "L{},{}", tx(first.x), ty(first.y));
        let _ = writeln!(
            out,
            r##"<path d="{d}" fill="none" stroke="#7799cc" stroke-width="2"/>"##
        );
    }

    let mut count: HashMap<(i64, i64), u32> = HashMap::new();
    for p in chain.positions() {
        *count.entry((p.x, p.y)).or_insert(0) += 1;
    }
    let r = s / 4;
    for (&(x, y), &k) in &count {
        let _ = writeln!(
            out,
            r##"<circle cx="{}" cy="{}" r="{r}" fill="#203080"/>"##,
            tx(x),
            ty(y)
        );
        if k > 1 {
            let _ = writeln!(
                out,
                r##"<text x="{}" y="{}" font-size="{}" fill="#c03020" text-anchor="middle">{k}</text>"##,
                tx(x) + r,
                ty(y) - r,
                s / 2
            );
        }
    }
    out.push_str("</svg>\n");
    out
}

/// Render a closed chain of continuous (Euclidean-backend) positions into
/// an SVG document string. The float twin of [`render_svg`]: same visual
/// language (polyline in chain order, robot dots), but coordinates map
/// through a real-valued viewport instead of grid cells, and exact
/// coincidences get multiplicity labels keyed on bit-equal coordinates —
/// the Euclidean merge rule copies coordinates bit-for-bit, so bit
/// equality is the right notion of "same point" there too.
pub fn render_svg_points(points: &[(f64, f64)], opt: SvgOptions) -> String {
    let s = opt.scale as f64;
    let margin = opt.margin as f64;
    let (mut min_x, mut min_y, mut max_x, mut max_y) = (f64::MAX, f64::MAX, f64::MIN, f64::MIN);
    for &(x, y) in points {
        min_x = min_x.min(x);
        min_y = min_y.min(y);
        max_x = max_x.max(x);
        max_y = max_y.max(y);
    }
    if points.is_empty() {
        (min_x, min_y, max_x, max_y) = (0.0, 0.0, 0.0, 0.0);
    }
    let w = (max_x - min_x + 2.0 * margin) * s;
    let h = (max_y - min_y + 2.0 * margin) * s;
    let tx = |x: f64| (x - min_x + margin) * s;
    let ty = |y: f64| h - (y - min_y + margin) * s;

    let mut out = String::with_capacity(4096);
    let _ = writeln!(
        out,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{w:.1}" height="{h:.1}" viewBox="0 0 {w:.1} {h:.1}">"#
    );
    let _ = writeln!(
        out,
        r#"<rect width="{w:.1}" height="{h:.1}" fill="white"/>"#
    );

    if opt.edges && points.len() >= 2 {
        let mut d = String::new();
        for (i, &(x, y)) in points.iter().enumerate() {
            let cmd = if i == 0 { 'M' } else { 'L' };
            let _ = write!(d, "{cmd}{:.2},{:.2} ", tx(x), ty(y));
        }
        let _ = write!(d, "L{:.2},{:.2}", tx(points[0].0), ty(points[0].1));
        let _ = writeln!(
            out,
            r##"<path d="{d}" fill="none" stroke="#7799cc" stroke-width="2"/>"##
        );
    }

    let mut count: HashMap<(u64, u64), (f64, f64, u32)> = HashMap::new();
    for &(x, y) in points {
        count
            .entry((x.to_bits(), y.to_bits()))
            .or_insert((x, y, 0))
            .2 += 1;
    }
    let r = s / 4.0;
    for &(x, y, k) in count.values() {
        let _ = writeln!(
            out,
            r##"<circle cx="{:.2}" cy="{:.2}" r="{r:.1}" fill="#203080"/>"##,
            tx(x),
            ty(y)
        );
        if k > 1 {
            let _ = writeln!(
                out,
                r##"<text x="{:.2}" y="{:.2}" font-size="{:.0}" fill="#c03020" text-anchor="middle">{k}</text>"##,
                tx(x) + r,
                ty(y) - r,
                s / 2.0
            );
        }
    }
    out.push_str("</svg>\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use grid_geom::Point;

    fn square() -> ClosedChain {
        ClosedChain::new(vec![
            Point::new(0, 0),
            Point::new(1, 0),
            Point::new(1, 1),
            Point::new(0, 1),
        ])
        .unwrap()
    }

    #[test]
    fn produces_well_formed_svg() {
        let svg = render_svg(&square(), SvgOptions::default());
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        assert_eq!(svg.matches("<circle").count(), 4);
        assert!(svg.contains("<path"));
    }

    #[test]
    fn multiplicity_labels() {
        let c = ClosedChain::new(vec![
            Point::new(0, 0),
            Point::new(1, 0),
            Point::new(2, 0),
            Point::new(1, 0),
        ])
        .unwrap();
        let svg = render_svg(&c, SvgOptions::default());
        assert!(svg.contains(">2</text>"));
        // Three distinct points → three circles.
        assert_eq!(svg.matches("<circle").count(), 3);
    }

    #[test]
    fn float_chains_render_with_bit_exact_multiplicity() {
        // A rotated unit square with one exact coincidence (merge twin).
        let c = 0.5f64.sqrt();
        let pts = vec![(0.0, 0.0), (c, c), (0.0, 2.0 * c), (c, c), (-c, c)];
        let svg = render_svg_points(&pts, SvgOptions::default());
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        assert!(svg.contains("<path"));
        // 4 distinct positions; the bit-equal pair collapses to one dot
        // with a multiplicity label.
        assert_eq!(svg.matches("<circle").count(), 4);
        assert!(svg.contains(">2</text>"));
        // Near-equal but not bit-equal points stay distinct dots.
        let near = vec![(0.0, 0.0), (1.0, 0.0), (1.0, 1.0), (1e-12, 1e-12)];
        let svg = render_svg_points(&near, SvgOptions::default());
        assert_eq!(svg.matches("<circle").count(), 4);
    }

    #[test]
    fn edges_can_be_disabled() {
        let svg = render_svg(
            &square(),
            SvgOptions {
                edges: false,
                ..SvgOptions::default()
            },
        );
        assert!(!svg.contains("<path"));
    }
}
