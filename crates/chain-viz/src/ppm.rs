//! Minimal binary PPM (P6) image writer — no dependencies, good enough to
//! eyeball configurations and produce figures from traces.

use chain_sim::ClosedChain;
use grid_geom::Rect;
use std::io::{self, Write};

/// An RGB raster image.
#[derive(Clone, Debug)]
pub struct PpmImage {
    width: usize,
    height: usize,
    pixels: Vec<[u8; 3]>,
}

impl PpmImage {
    pub fn new(width: usize, height: usize, background: [u8; 3]) -> Self {
        PpmImage {
            width,
            height,
            pixels: vec![background; width * height],
        }
    }

    pub fn width(&self) -> usize {
        self.width
    }

    pub fn height(&self) -> usize {
        self.height
    }

    /// Set a pixel; out-of-range coordinates are ignored.
    pub fn set(&mut self, x: usize, y: usize, rgb: [u8; 3]) {
        if x < self.width && y < self.height {
            self.pixels[y * self.width + x] = rgb;
        }
    }

    pub fn get(&self, x: usize, y: usize) -> Option<[u8; 3]> {
        (x < self.width && y < self.height).then(|| self.pixels[y * self.width + x])
    }

    /// Rasterize a chain (scale pixels per grid cell, y flipped so the
    /// image matches the ASCII orientation).
    pub fn from_chain(chain: &ClosedChain, scale: usize) -> Self {
        let scale = scale.max(1);
        let bbox: Rect = chain.bounding();
        let w = (bbox.width() as usize + 2) * scale;
        let h = (bbox.height() as usize + 2) * scale;
        let mut img = PpmImage::new(w, h, [255, 255, 255]);
        for i in 0..chain.len() {
            let p = chain.pos(i);
            let gx = (p.x - bbox.min.x + 1) as usize;
            let gy = (bbox.max.y - p.y + 1) as usize;
            for dy in 0..scale {
                for dx in 0..scale {
                    img.set(gx * scale + dx, gy * scale + dy, [30, 30, 200]);
                }
            }
        }
        img
    }

    /// Write the P6 stream.
    pub fn write_to<W: Write>(&self, mut w: W) -> io::Result<()> {
        write!(w, "P6\n{} {}\n255\n", self.width, self.height)?;
        for px in &self.pixels {
            w.write_all(px)?;
        }
        Ok(())
    }

    /// Serialize into a byte vector.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut v = Vec::with_capacity(self.width * self.height * 3 + 32);
        self.write_to(&mut v).expect("writing to Vec cannot fail");
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grid_geom::Point;

    #[test]
    fn header_and_size() {
        let img = PpmImage::new(3, 2, [0, 0, 0]);
        let bytes = img.to_bytes();
        assert!(bytes.starts_with(b"P6\n3 2\n255\n"));
        assert_eq!(bytes.len(), 11 + 3 * 2 * 3);
    }

    #[test]
    fn set_get_round_trip() {
        let mut img = PpmImage::new(4, 4, [1, 2, 3]);
        img.set(2, 1, [9, 8, 7]);
        assert_eq!(img.get(2, 1), Some([9, 8, 7]));
        assert_eq!(img.get(0, 0), Some([1, 2, 3]));
        assert_eq!(img.get(4, 0), None);
        // Out-of-range set is a no-op.
        img.set(99, 99, [0, 0, 0]);
    }

    #[test]
    fn rasterizes_chain() {
        let chain = ClosedChain::new(vec![
            Point::new(0, 0),
            Point::new(1, 0),
            Point::new(1, 1),
            Point::new(0, 1),
        ])
        .unwrap();
        let img = PpmImage::from_chain(&chain, 2);
        assert_eq!(img.width(), (2 + 2) * 2);
        // A robot pixel is colored.
        assert_eq!(img.get(2, 2), Some([30, 30, 200]));
    }
}
