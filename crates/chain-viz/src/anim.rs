//! Trace animation: render recorded snapshots as a sequence of ASCII
//! frames (used by `examples/pipeline_show.rs`).

use chain_sim::Trace;
use grid_geom::{Point, Rect};
use std::collections::HashMap;

/// Render every snapshot of a trace into labeled ASCII frames, all drawn on
/// the union bounding box so frames align visually.
pub fn render_trace(trace: &Trace) -> String {
    if trace.snapshots.is_empty() {
        return String::from("(no snapshots recorded)\n");
    }
    let bbox = Rect::bounding(
        trace
            .snapshots
            .iter()
            .flat_map(|(_, pts)| pts.iter().copied()),
    )
    .expect("non-empty snapshots");

    let mut out = String::new();
    for (round, pts) in &trace.snapshots {
        out.push_str(&format!("-- round {round} ({} robots) --\n", pts.len()));
        out.push_str(&frame(&bbox, pts));
        out.push('\n');
    }
    out
}

fn frame(bbox: &Rect, pts: &[Point]) -> String {
    let mut count: HashMap<(i64, i64), u32> = HashMap::new();
    for p in pts {
        *count.entry((p.x, p.y)).or_insert(0) += 1;
    }
    let mut s = String::new();
    for y in (bbox.min.y..=bbox.max.y).rev() {
        for x in bbox.min.x..=bbox.max.x {
            s.push(match count.get(&(x, y)) {
                None => '.',
                Some(1) => 'o',
                Some(&k) if k <= 9 => char::from_digit(k, 10).unwrap(),
                Some(_) => '#',
            });
        }
        s.push('\n');
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_trace() {
        let t = Trace::default();
        assert!(render_trace(&t).contains("no snapshots"));
    }

    #[test]
    fn frames_align_on_union_bbox() {
        let mut t = Trace::default();
        t.snapshots = vec![
            (0, vec![Point::new(0, 0), Point::new(3, 0)]),
            (1, vec![Point::new(1, 0)]),
        ];
        let s = render_trace(&t);
        // Both frames are 4 wide.
        let mut frames = s.lines().filter(|l| !l.starts_with("--") && !l.is_empty());
        assert_eq!(frames.next().unwrap().len(), 4);
        assert_eq!(frames.next().unwrap().len(), 4);
        assert!(s.contains("-- round 0 (2 robots) --"));
    }
}
