//! # chain-viz
//!
//! Rendering for chain configurations and traces:
//!
//! * [`ascii`] — terminal rendering with run-state overlays (used by the
//!   examples to replay the paper's figures),
//! * [`capture`] — live frame capture as a [`chain_sim::Observer`]: attach
//!   [`FrameCapture`] to a simulation and collect rendered frames from the
//!   engine's one run loop,
//! * [`ppm`] — dependency-free binary PPM (P6) image writer,
//! * [`anim`] — multi-frame ASCII animation of recorded traces.

pub mod anim;
pub mod ascii;
pub mod capture;
pub mod ppm;
pub mod svg;

pub use anim::render_trace;
pub use ascii::{render, render_with_markers, AsciiOptions};
pub use capture::{Frame, FrameCapture};
pub use ppm::PpmImage;
pub use svg::{render_svg, render_svg_points, SvgOptions};
