//! ASCII rendering of chain configurations.
//!
//! Each grid point maps to one character; robots are `o` (or a digit count
//! when several non-neighbor robots share a point), strategy markers (e.g.
//! run states) override the glyph. The y axis points up, as in the paper's
//! figures.

use chain_sim::ClosedChain;
use grid_geom::Rect;
use std::collections::HashMap;

/// Rendering options.
#[derive(Clone, Copy, Debug)]
pub struct AsciiOptions {
    /// Character for an empty grid point.
    pub empty: char,
    /// Character for a single robot.
    pub robot: char,
    /// Show multiplicities 2..=9 as digits.
    pub show_multiplicity: bool,
    /// Pad the bounding box by this margin.
    pub margin: i64,
}

impl Default for AsciiOptions {
    fn default() -> Self {
        AsciiOptions {
            empty: '.',
            robot: 'o',
            show_multiplicity: true,
            margin: 0,
        }
    }
}

/// Render the chain with default options.
pub fn render(chain: &ClosedChain) -> String {
    render_with_markers(chain, |_| None, AsciiOptions::default())
}

/// Render with a per-robot marker function (chain index → glyph). Markers
/// win over multiplicity digits; the first non-`None` marker on a point is
/// used.
pub fn render_with_markers<F>(chain: &ClosedChain, marker: F, opt: AsciiOptions) -> String
where
    F: Fn(usize) -> Option<char>,
{
    let mut bbox: Rect = chain.bounding();
    bbox.min.x -= opt.margin;
    bbox.min.y -= opt.margin;
    bbox.max.x += opt.margin;
    bbox.max.y += opt.margin;

    let mut count: HashMap<(i64, i64), u32> = HashMap::new();
    let mut glyph: HashMap<(i64, i64), char> = HashMap::new();
    for i in 0..chain.len() {
        let p = chain.pos(i);
        *count.entry((p.x, p.y)).or_insert(0) += 1;
        if let Some(m) = marker(i) {
            glyph.entry((p.x, p.y)).or_insert(m);
        }
    }

    let w = (bbox.max.x - bbox.min.x + 1) as usize;
    let h = (bbox.max.y - bbox.min.y + 1) as usize;
    let mut s = String::with_capacity((w + 1) * h);
    for y in (bbox.min.y..=bbox.max.y).rev() {
        for x in bbox.min.x..=bbox.max.x {
            let key = (x, y);
            let c = if let Some(&m) = glyph.get(&key) {
                m
            } else {
                match count.get(&key) {
                    None => opt.empty,
                    Some(1) => opt.robot,
                    Some(&k) if opt.show_multiplicity && k <= 9 => char::from_digit(k, 10).unwrap(),
                    Some(_) => '#',
                }
            };
            s.push(c);
        }
        s.push('\n');
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use grid_geom::Point;

    fn chain(coords: &[(i64, i64)]) -> ClosedChain {
        ClosedChain::new(coords.iter().map(|&(x, y)| Point::new(x, y)).collect()).unwrap()
    }

    #[test]
    fn renders_square() {
        let c = chain(&[(0, 0), (1, 0), (1, 1), (0, 1)]);
        let s = render(&c);
        assert_eq!(s, "oo\noo\n");
    }

    #[test]
    fn renders_multiplicity() {
        // Flattened loop: (1,0) holds two non-neighbor robots.
        let c = chain(&[(0, 0), (1, 0), (2, 0), (1, 0)]);
        let s = render(&c);
        assert_eq!(s, "o2o\n");
    }

    #[test]
    fn markers_override() {
        let c = chain(&[(0, 0), (1, 0), (1, 1), (0, 1)]);
        let s = render_with_markers(
            &c,
            |i| if i == 0 { Some('>') } else { None },
            AsciiOptions::default(),
        );
        assert_eq!(s, "oo\n>o\n");
    }

    #[test]
    fn margin_pads() {
        let c = chain(&[(0, 0), (1, 0), (1, 1), (0, 1)]);
        let s = render_with_markers(
            &c,
            |_| None,
            AsciiOptions {
                margin: 1,
                ..AsciiOptions::default()
            },
        );
        assert_eq!(s, "....\n.oo.\n.oo.\n....\n");
    }

    #[test]
    fn y_axis_points_up() {
        let c = chain(&[(0, 0), (1, 0), (2, 0), (2, 1), (1, 1), (0, 1)]);
        let s = render(&c);
        // Two rows of three; top row rendered first.
        assert_eq!(s.lines().count(), 2);
        assert_eq!(s, "ooo\nooo\n");
    }
}
