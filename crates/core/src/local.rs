//! Strictly local merge-role detection (the per-robot view of §3.1).
//!
//! The engine computes merge patterns with a global O(n) scan
//! ([`crate::merge::MergeScan`]) because that is efficient; the *model*
//! demands that each robot can derive its own role from its bounded view
//! alone. This module implements exactly that: [`merge_role_at`] computes
//! a robot's black/white roles and hop from a [`Ring`] view, reading at
//! most `max_k + 2 ≤ V + 1` robots in each direction.
//!
//! `tests::oracle_equivalence` (and the workspace integration tests) check
//! that the local rule and the global scan agree on every robot of random
//! chains — the global scan is an optimization, not extra power.

use crate::config::GatherConfig;
use chain_sim::Ring;
use grid_geom::Offset;

/// A robot's merge roles as derived from its own view.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LocalMergeRole {
    /// Accumulated black hop (sum of at most two orthogonal directions).
    pub hop: Offset,
    /// Black in some pattern.
    pub black: bool,
    /// White of some pattern.
    pub white: bool,
}

impl Default for LocalMergeRole {
    fn default() -> Self {
        LocalMergeRole {
            hop: Offset::ZERO,
            black: false,
            white: false,
        }
    }
}

/// Extent of the maximal monotone run through the edge `(origin+d·dir)`
/// direction, as (robots before center, robots after center) — helper for
/// the role derivation below.
fn run_reach(v: &Ring<'_>, dir: isize, step: Offset, max: isize) -> isize {
    // How many consecutive steps equal to `step` extend from the center in
    // chain direction `dir` (looking at edges center..center+dir, ...).
    let mut r = 0;
    while r < max {
        let s = if dir > 0 {
            v.abs(r + 1) - v.abs(r)
        } else {
            v.abs(-r) - v.abs(-r - 1)
        };
        if s != step {
            break;
        }
        r += 1;
    }
    r
}

/// Compute the center robot's merge roles from its local view only.
///
/// Reads at most `cfg.effective_max_k() + 2` robots per direction — within
/// the viewing path length for all legal configurations.
pub fn merge_role_at(v: &Ring<'_>, cfg: &GatherConfig) -> LocalMergeRole {
    let mut role = LocalMergeRole::default();
    let n = v.chain_len();
    if n < 4 {
        return role;
    }
    let max_k = cfg.effective_max_k() as isize;

    let s_in = v.abs(0) - v.abs(-1); // step arriving at center
    let s_out = v.abs(1) - v.abs(0); // step leaving center

    // --- k = 1 black: exact fold (Fig. 2 bottom). ---
    if s_in == -s_out {
        role.black = true;
        role.hop += s_out;
    }

    // --- k ≥ 2 black: the center lies on a maximal monotone segment whose
    // two flanks are opposite perpendicular steps. The segment runs along
    // `s_in` (if s_in == s_out the center is interior; ends otherwise).
    for axis_step in [s_in, s_out] {
        if s_in == -s_out {
            break; // the fold case was handled; no k ≥ 2 segment here
        }
        // Consider the segment of steps equal to `axis_step` through the
        // center (from the matching side).
        let back = run_reach(v, -1, axis_step, max_k + 1);
        let fwd = run_reach(v, 1, axis_step, max_k + 1);
        // The center belongs to this segment only if the adjacent edge on
        // that side actually matches.
        if back == 0 && fwd == 0 {
            continue;
        }
        let k = back + fwd + 1;
        if k < 2 || k > max_k {
            continue;
        }
        // Flanks: the step before the first black and after the last.
        let flank_in = v.abs(-back) - v.abs(-back - 1);
        let flank_out = v.abs(fwd + 1) - v.abs(fwd);
        if flank_in == -flank_out && flank_out.perpendicular_to(axis_step) {
            role.black = true;
            role.hop += flank_out;
        }
        if s_in == s_out {
            break; // interior: both axis_steps identical, avoid recount
        }
    }

    // --- White: the center is the outer neighbor of a pattern's end black
    // in either chain direction. ---
    for dir in [1isize, -1] {
        // Candidate pattern: blacks start at center+dir; the step from the
        // first black back to the center must be the hop direction v
        // (center = black + v ⟺ step(center→first black) = −v).
        let v_dir = v.abs(0) - v.abs(dir); // candidate hop direction
        if !v_dir.is_unit_step() {
            continue;
        }
        // k = 1 white: the black at center+dir folds onto us.
        let other_step = v.abs(2 * dir) - v.abs(dir);
        let to_black = -v_dir; // step from center to the black
        if other_step == -to_black && to_black == -v_dir {
            // black's two incident steps are (center→black) and
            // (black→next) = -(center→black): a fold whose hop is towards
            // us exactly when next == center position.
            if v.abs(2 * dir) == v.abs(0) {
                role.white = true;
            }
        }
        // k ≥ 2 white: blacks extend from center+dir along an axis ⊥ v.
        let seg_step = v.abs(2 * dir) - v.abs(dir);
        if !seg_step.is_unit_step() || !seg_step.perpendicular_to(v_dir) {
            continue;
        }
        // Walk the segment.
        let mut k = 1isize;
        while k <= max_k {
            let s = v.abs((k + 1) * dir) - v.abs(k * dir);
            if s != seg_step {
                break;
            }
            k += 1;
        }
        if k < 2 || k > max_k {
            continue;
        }
        // Far flank must mirror: step(last black → far white) == v_dir
        // ... in chain direction `dir` the far flank step is
        // abs((k+1)·dir) − abs(k·dir) viewed from the segment's own
        // orientation; the condition flank_in == −flank_out of the global
        // scan translates to the far step equaling v_dir when walking
        // outward (or −v_dir in index terms for dir = −1 — the Ring's
        // differences already absorb the orientation).
        let far = v.abs((k + 1) * dir) - v.abs(k * dir);
        if far == v_dir {
            role.white = true;
        }
    }

    role
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::merge::MergeScan;
    use chain_sim::ClosedChain;
    use grid_geom::Point;

    fn assert_equivalent(chain: &ClosedChain, cfg: &GatherConfig) {
        let mut scan = MergeScan::default();
        scan.scan(chain, cfg);
        for i in 0..chain.len() {
            let view = Ring::with_horizon(chain, i, cfg.view.max(3) + 2);
            let local = merge_role_at(&view, cfg);
            assert_eq!(
                local.black,
                scan.black[i],
                "black mismatch at {i} ({:?})",
                chain.pos(i)
            );
            assert_eq!(
                local.white,
                scan.white[i],
                "white mismatch at {i} ({:?})",
                chain.pos(i)
            );
            if scan.black[i] {
                assert_eq!(local.hop, scan.hop[i], "hop mismatch at {i}");
            }
        }
    }

    fn chain(coords: &[(i64, i64)]) -> ClosedChain {
        ClosedChain::new(coords.iter().map(|&(x, y)| Point::new(x, y)).collect()).unwrap()
    }

    #[test]
    fn oracle_equivalence_structured() {
        let cfg = GatherConfig::paper();
        // Fig. 1 ring.
        assert_equivalent(
            &chain(&[(0, 0), (0, 1), (0, 2), (1, 2), (1, 1), (1, 0)]),
            &cfg,
        );
        // Hairpin.
        assert_equivalent(&chain(&[(0, 0), (1, 0), (2, 0), (1, 0)]), &cfg);
        // 4×2 ring with corner double roles.
        assert_equivalent(
            &chain(&[
                (0, 0),
                (0, 1),
                (1, 1),
                (2, 1),
                (3, 1),
                (3, 0),
                (2, 0),
                (1, 0),
            ]),
            &cfg,
        );
    }

    #[test]
    fn oracle_equivalence_random_loops() {
        let cfg = GatherConfig::paper();
        for seed in 0..40u64 {
            let c = workloads::random_loop(60, seed);
            assert_equivalent(&c, &cfg);
        }
    }

    #[test]
    fn oracle_equivalence_families() {
        let cfg = GatherConfig::paper();
        for fam in workloads::Family::ALL {
            for seed in [0u64, 3] {
                let c = fam.generate(80, seed);
                assert_equivalent(&c, &cfg);
            }
        }
    }

    #[test]
    fn oracle_equivalence_proof_mode() {
        let cfg = GatherConfig::proof_mode();
        for seed in 0..20u64 {
            let c = workloads::random_loop(40, seed);
            assert_equivalent(&c, &cfg);
        }
    }
}
