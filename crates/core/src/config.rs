//! Algorithm parameters.
//!
//! The paper fixes the viewing path length to 11 and the pipelining period
//! to L = 13 (Lemma 3 derives `L ≥ 13` from the run-passing worst case and
//! `V = 11` from the sequent-run distance detection). We expose them as
//! parameters so the ablation experiments (DESIGN.md E13) can probe the
//! sensitivity of both constants, and keep the paper's values as defaults.

/// Parameters of the closed-chain gathering strategy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GatherConfig {
    /// Viewing path length `V`: a robot sees its next `V` chain neighbors
    /// in both directions (paper: 11).
    pub view: usize,
    /// Pipelining period `L`: run-start checks happen every `L`-th round
    /// (paper: 13).
    pub l_period: u64,
    /// Maximum black-segment length `k` of a merge pattern that is allowed
    /// to fire. The model bound is `k ≤ V - 1` (all participants must see
    /// the whole pattern); the Lemma 1 proof conservatively uses `k ≤ 2`.
    pub max_merge_k: usize,
    /// Emulate operation (c) of Fig. 11: a run started at a Figure-5(ii)
    /// corner performs one diagonal hop and then walks for 3 rounds before
    /// resuming reshapement.
    pub op_c_walk: bool,
    /// Guard for termination condition 2 (see DESIGN.md §2.6): seeing a
    /// quasi-line endpoint ahead only terminates a run when no opposing run
    /// is visible before the endpoint.
    pub cond2_guard: bool,
}

impl Default for GatherConfig {
    fn default() -> Self {
        GatherConfig {
            view: 11,
            l_period: 13,
            max_merge_k: 10,
            op_c_walk: true,
            cond2_guard: true,
        }
    }
}

impl GatherConfig {
    /// The paper's constants.
    pub fn paper() -> Self {
        Self::default()
    }

    /// The conservative variant used in the proof of Lemma 1: merges fire
    /// only up to black length 2, so nearly all shortening must be enabled
    /// by runner reshapement. Exercises the run machinery maximally.
    pub fn proof_mode() -> Self {
        GatherConfig {
            max_merge_k: 2,
            ..Self::default()
        }
    }

    /// Effective merge length bound: the configured bound clamped by the
    /// visibility requirement `k + 1 ≤ V`.
    pub fn effective_max_k(&self) -> usize {
        self.max_merge_k.min(self.view.saturating_sub(1)).max(1)
    }

    /// Validate parameter sanity (used by the ablation harness).
    pub fn validate(&self) -> Result<(), String> {
        if self.view < 5 {
            return Err(format!(
                "viewing path length {} too small: run-start shapes need 5 robots of context",
                self.view
            ));
        }
        if self.l_period < 2 {
            return Err(format!("pipelining period {} too small", self.l_period));
        }
        if self.max_merge_k == 0 {
            return Err("max_merge_k must be at least 1".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults() {
        let c = GatherConfig::paper();
        assert_eq!(c.view, 11);
        assert_eq!(c.l_period, 13);
        assert_eq!(c.effective_max_k(), 10);
        c.validate().unwrap();
    }

    #[test]
    fn proof_mode_restricts_merges() {
        let c = GatherConfig::proof_mode();
        assert_eq!(c.effective_max_k(), 2);
        c.validate().unwrap();
    }

    #[test]
    fn effective_k_clamped_by_view() {
        let c = GatherConfig {
            view: 5,
            max_merge_k: 100,
            ..GatherConfig::default()
        };
        assert_eq!(c.effective_max_k(), 4);
    }

    #[test]
    fn validation_rejects_nonsense() {
        assert!(GatherConfig {
            view: 2,
            ..GatherConfig::default()
        }
        .validate()
        .is_err());
        assert!(GatherConfig {
            l_period: 0,
            ..GatherConfig::default()
        }
        .validate()
        .is_err());
        assert!(GatherConfig {
            max_merge_k: 0,
            ..GatherConfig::default()
        }
        .validate()
        .is_err());
    }
}
