//! # gathering-core
//!
//! The primary contribution of *"Gathering a Closed Chain of Robots on a
//! Grid"* (Abshoff, Cord-Landwehr, Fischer, Jung, Meyer auf der Heide;
//! IPDPS 2016): a strictly local, fully synchronous strategy that gathers a
//! closed chain of `n` indistinguishable robots on the grid into a 2×2
//! square in `O(n)` rounds.
//!
//! ## Module map
//!
//! | module | paper section | content |
//! |---|---|---|
//! | [`config`] | §3.3, §5.2 | the constants `V = 11`, `L = 13` and ablation knobs |
//! | [`merge`] | §3.1, Fig. 1–3 | merge patterns, overlap handling, the diagonal hop |
//! | [`quasi`] | §4, Def. 1, Fig. 5/10/16 | quasi lines, run-start shapes, endpoint scans |
//! | [`runs`] | §3.2/3.4/4.1–4.3 | run states, reshapement, passing, termination |
//! | [`strategy`] | Fig. 15 | the complete per-round algorithm |
//! | [`ssync`] | — (PAPERS.md) | `paper-ssync`: the rule wrapped in the chain-safety guard |
//! | [`audit`] | §5 | empirical checkers for Theorem 1 and Lemmas 1–3 |
//!
//! ## Quick start
//!
//! ```
//! use chain_sim::{ClosedChain, Sim};
//! use gathering_core::ClosedChainGathering;
//! use grid_geom::Point;
//!
//! // A 2×3 rectangle ring (Figure 1 of the paper).
//! let chain = ClosedChain::new(vec![
//!     Point::new(0, 0), Point::new(0, 1), Point::new(0, 2),
//!     Point::new(1, 2), Point::new(1, 1), Point::new(1, 0),
//! ]).unwrap();
//! let mut sim = Sim::new(chain, ClosedChainGathering::paper());
//! let outcome = sim.run_default();
//! assert!(outcome.is_gathered());
//! ```
//!
//! See `DESIGN.md` for the reconstruction decisions (the paper's figures
//! are re-derived from prose) and `EXPERIMENTS.md` for the measured
//! reproduction of every claim.

pub mod audit;
pub mod config;
pub mod local;
pub mod merge;
pub mod quasi;
pub mod runs;
pub mod ssync;
pub mod strategy;
pub mod theory;

pub use config::GatherConfig;
pub use local::{merge_role_at, LocalMergeRole};
pub use merge::{MergePattern, MergeScan};
pub use quasi::StartShape;
pub use runs::{Run, RunCell, RunMode, RunStats, StopReason};
pub use ssync::SsyncGathering;
pub use strategy::{ClosedChainGathering, RunEvent};
