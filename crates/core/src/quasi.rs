//! Quasi lines (Definition 1) and local structure scans.
//!
//! A *horizontal quasi line* is a subchain whose maximal horizontal runs
//! have ≥ 3 robots, whose maximal vertical runs have ≤ 2 robots, and whose
//! first/last three robots are horizontally aligned (the vertical case is
//! symmetric). Runs (the moving states of Section 3.2/4.1) live on quasi
//! lines; new runs start at quasi-line *endpoints* (Fig. 5), and a run
//! terminates when it sees the endpoint of its quasi line ahead (Table 1.2).
//!
//! This module implements the two local predicates, both strictly bounded
//! by the observer's viewing range:
//!
//! * [`run_start`] — the Figure 5 shapes (i)/(ii): is this robot a
//!   quasi-line endpoint that must start a run in a given chain direction?
//! * [`quasi_break_ahead`] — does the quasi line structurally end within
//!   view ahead of a runner?
//!
//! All predicates use the *monotone* run notion (equal consecutive unit
//! steps); see DESIGN.md §3.2 for why fold-backs count as breaks.

use chain_sim::Ring;
use grid_geom::Offset;

/// Which Figure 5 shape triggered a run start.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StartShape {
    /// Fig. 5(i): quasi-line endpoint bordered by a stairway (or fold) —
    /// one run starts, moving into the line.
    StairwayEnd,
    /// Fig. 5(ii): simultaneous endpoint of a horizontal and a vertical
    /// line — evaluated per direction; the robot starts two runs overall.
    CornerEnd,
}

/// Decide whether the robot at the view's center starts a run in chain
/// direction `dir` (±1), per the Figure 5 shapes. Returns the shape and the
/// run's *fold side*: the perpendicular unit offset towards the robot's
/// outer neighbor, which is the side the run will reshape towards and the
/// side whose agreement defines good pairs (Fig. 12).
///
/// The decision reads 3 robots ahead and 3 behind — comfortably within the
/// viewing path length.
pub fn run_start(v: &Ring<'_>, dir: isize) -> Option<(StartShape, Offset)> {
    if v.chain_len() < 8 {
        // Tiny chains are handled entirely by merge patterns; the shape
        // windows below would wrap onto themselves.
        return None;
    }
    // Ahead: the robot and its next two neighbors must be monotone aligned
    // ("at least its first ... three robots are horizontally aligned").
    let f1 = v.abs(dir) - v.abs(0);
    let f2 = v.abs(2 * dir) - v.abs(dir);
    if f1 != f2 {
        return None;
    }
    // Behind: the outer neighbor must sit perpendicular to the line.
    let e1 = v.abs(-dir) - v.abs(0);
    if !e1.perpendicular_to(f1) {
        return None;
    }
    let e2 = v.abs(-2 * dir) - v.abs(-dir);
    if e2 == e1 {
        // Straight perpendicular continuation: r is also the endpoint of a
        // perpendicular 3-aligned subchain — Fig. 5(ii).
        return Some((StartShape::CornerEnd, e1));
    }
    if e2 == -e1 {
        // Perpendicular fold-back: the line cannot continue behind.
        return Some((StartShape::StairwayEnd, e1));
    }
    // e2 is parallel to the line axis. The quasi line continues behind
    // exactly if the parallel run behind has ≥ 2 steps (an interior jog);
    // otherwise a stairway begins (Fig. 5(i) / Fig. 16).
    let e3 = v.abs(-3 * dir) - v.abs(-2 * dir);
    if e3 == e2 {
        None
    } else {
        Some((StartShape::StairwayEnd, e1))
    }
}

/// Result of [`quasi_break_ahead`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct QuasiBreak {
    /// Chain distance (in robots ahead, ≥ 1) of the first robot at which
    /// the quasi-line structure is confirmed broken.
    pub distance: isize,
}

/// Scan forward from a runner for a structural end of its quasi line.
///
/// `fold_side` identifies the line's perpendicular axis (the run folds
/// toward `fold_side`; the line axis is the other one). The scan walks up
/// to `max_steps` chain steps ahead, grouping maximal equal steps, and
/// reports a break when it sees
///
/// * a perpendicular group of ≥ 2 steps (a vertical line begins — the
///   quasi-line definition allows at most 2 perpendicular robots), or
/// * two consecutive groups on the same axis (a fold-back), or
/// * an *interior* parallel group of exactly 1 step (runs of 2 robots —
///   a stairway, Fig. 16).
///
/// Groups truncated by the horizon are treated as continuing (no break):
/// robots must not act on structure they cannot see.
pub fn quasi_break_ahead(
    v: &Ring<'_>,
    dir: isize,
    fold_side: Offset,
    max_steps: isize,
) -> Option<QuasiBreak> {
    debug_assert!(fold_side.is_unit_step());
    let is_perp = |s: Offset| (s.dx == 0) == (fold_side.dx == 0);
    let mut j: isize = 0;
    let mut prev_axis_perp: Option<bool> = None;
    let mut group_index = 0usize;
    while j < max_steps {
        let step = v.abs((j + 1) * dir) - v.abs(j * dir);
        debug_assert!(step.is_unit_step());
        let perp = is_perp(step);
        // Group of equal steps starting at j.
        let mut g: isize = 1;
        while j + g < max_steps && (v.abs((j + g + 1) * dir) - v.abs((j + g) * dir)) == step {
            g += 1;
        }
        let truncated = j + g >= max_steps;
        if let Some(prev_perp) = prev_axis_perp {
            if prev_perp == perp {
                // Same axis, different step (fold-back): break at junction.
                return Some(QuasiBreak { distance: j });
            }
        }
        if perp {
            if g >= 2 {
                // Perpendicular run of ≥ 3 robots: the line ends here
                // (a perpendicular quasi line or worse begins).
                return Some(QuasiBreak { distance: j + 1 });
            }
        } else {
            // Parallel group: interior groups need ≥ 2 steps (3 robots).
            let interior = group_index > 0 && !truncated;
            if interior && g == 1 {
                return Some(QuasiBreak { distance: j + 1 });
            }
        }
        prev_axis_perp = Some(perp);
        group_index += 1;
        j += g;
    }
    None
}

/// Definition 1, verbatim, over an explicit subchain of positions: is
/// `pts` a quasi line along `axis`?
///
/// 1. the first and last three robots are aligned on `axis`,
/// 2. every maximal `axis` run has ≥ 3 robots,
/// 3. every maximal perpendicular run has ≤ 2 robots.
///
/// Used by the Lemma 3.2 audit ("after the first three rounds after its
/// start, a run is always located on a quasi line") and by tests.
pub fn is_quasi_line(pts: &[grid_geom::Point], axis: grid_geom::Axis) -> bool {
    if pts.len() < 3 {
        return false;
    }
    let steps: Vec<Offset> = pts.windows(2).map(|w| w[1] - w[0]).collect();
    if steps.iter().any(|s| !s.is_unit_step()) {
        return false;
    }
    let on_axis = |s: Offset| grid_geom::Axis::of_step(s) == axis;
    // Condition 1: first and last three robots aligned on `axis`
    // (monotone).
    let first_ok = steps[0] == steps[1] && on_axis(steps[0]);
    let last_ok =
        steps[steps.len() - 1] == steps[steps.len() - 2] && on_axis(steps[steps.len() - 1]);
    if !first_ok || !last_ok {
        return false;
    }
    // Conditions 2/3 over maximal monotone runs.
    let mut i = 0;
    while i < steps.len() {
        let s = steps[i];
        let mut j = i + 1;
        while j < steps.len() && steps[j] == s {
            j += 1;
        }
        let robots = j - i + 1;
        if on_axis(s) {
            if robots < 3 {
                return false;
            }
        } else if robots > 2 {
            return false;
        }
        // Fold-backs (adjacent runs on the same axis) break the line.
        if j < steps.len() && grid_geom::Axis::of_step(steps[j]) == grid_geom::Axis::of_step(s) {
            return false;
        }
        i = j;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use chain_sim::ClosedChain;
    use grid_geom::{Axis, Point};

    fn chain(coords: &[(i64, i64)]) -> ClosedChain {
        ClosedChain::new(coords.iter().map(|&(x, y)| Point::new(x, y)).collect()).unwrap()
    }

    /// A long rectangle: every corner is a Fig. 5(ii) shape.
    fn rectangle(w: i64, h: i64) -> ClosedChain {
        let mut pts = Vec::new();
        for x in 0..w {
            pts.push(Point::new(x, 0));
        }
        for y in 0..h {
            pts.push(Point::new(w - 1, y));
        }
        let mut pts2 = vec![Point::new(0, 0)];
        pts2.extend((1..w).map(|x| Point::new(x, 0)));
        pts2.extend((1..h).map(|y| Point::new(w - 1, y)));
        pts2.extend((1..w).map(|x| Point::new(w - 1 - x, h - 1)));
        pts2.extend((1..h - 1).map(|y| Point::new(0, h - 1 - y)));
        ClosedChain::new(pts2).unwrap()
    }

    #[test]
    fn rectangle_corners_are_corner_ends() {
        let c = rectangle(8, 6);
        // Robot 0 = (0,0): ahead (+1) is the bottom row, behind (-1) is the
        // left column going up: Fig. 5(ii).
        let v = Ring::with_horizon(&c, 0, 11);
        let got = run_start(&v, 1);
        assert_eq!(got, Some((StartShape::CornerEnd, Offset::UP)));
        // Same robot, other direction: endpoint of the vertical line with
        // the horizontal line behind.
        let got = run_start(&v, -1);
        assert_eq!(got, Some((StartShape::CornerEnd, Offset::RIGHT)));
    }

    #[test]
    fn rectangle_interior_is_not_a_start() {
        let c = rectangle(8, 6);
        for i in 1..6 {
            let v = Ring::with_horizon(&c, i, 11);
            assert_eq!(run_start(&v, 1), None, "interior robot {i}");
            assert_eq!(run_start(&v, -1), None, "interior robot {i}");
        }
    }

    #[test]
    fn stairway_end_shape() {
        // Horizontal line ending in a stairway going down-left:
        //   ... (3,0)(2,0)(1,0) | (1,-1)(0,-1)(0,-2)(-1,-2) ...
        // The endpoint robot is (1,0) looking in +x direction; behind it the
        // stairway alternates.
        // Build a closed loop containing the shape; use a generous outline.
        // Stairway down-left from (1,0):
        let pts = vec![
            Point::new(1, 0),
            Point::new(2, 0),
            Point::new(3, 0),
            Point::new(4, 0),
            Point::new(5, 0),
            Point::new(5, 1),
            Point::new(4, 1),
            Point::new(3, 1),
            Point::new(2, 1),
            Point::new(1, 1),
            Point::new(0, 1),
            Point::new(0, 0),
        ];
        // Closing edge from (0,0) to (1,0): chain closed.
        let c = ClosedChain::new(pts).unwrap();
        // Robot 0 = (1,0): ahead +1: (2,0),(3,0) aligned ✓; behind: (0,0)
        // — horizontal! Not a perpendicular outer neighbor → no start.
        let v = Ring::with_horizon(&c, 0, 11);
        assert_eq!(run_start(&v, 1), None);
        // Robot 9 = (1,1): direction -1 looks toward (2,1),(3,1): aligned;
        // behind (-(-1)) = robot 10 = (0,1): horizontal too → None.
        let v = Ring::with_horizon(&c, 9, 11);
        assert_eq!(run_start(&v, -1), None);
    }

    #[test]
    fn stairway_shape_i_detected() {
        // Construct an explicit Fig. 5(i): endpoint with stairway behind.
        // Chain (closed, 16 robots): a quasi line at y=0 whose left end
        // turns into a stairway going up-left.
        let pts = [
            (2, 0),
            (3, 0),
            (4, 0),
            (5, 0),
            (6, 0),
            (6, 1),
            (6, 2),
            (5, 2),
            (4, 2),
            (3, 2),
            (2, 2),
            (1, 2),
            (1, 1),
            (2, 1), // stairway: from (1,1) step right to (2,1) then down to (2,0)=r0
        ];
        let c = chain(&pts);
        // Robot 0 = (2,0): ahead +1: (3,0),(4,0) aligned. Behind: r13=(2,1)
        // perpendicular (UP); r12=(1,1) parallel (LEFT); r11=(1,2)
        // perpendicular → e3 ≠ e2 → StairwayEnd with fold side UP.
        let v = Ring::with_horizon(&c, 0, 11);
        assert_eq!(
            run_start(&v, 1),
            Some((StartShape::StairwayEnd, Offset::UP))
        );
    }

    #[test]
    fn interior_jog_is_not_an_endpoint() {
        // Quasi line with a jog: ... (0,0)(1,0)(2,0)(2,1)(3,1)(4,1)(5,1) ...
        // The robot at (2,1) must NOT start a run in +x direction: behind it
        // the line continues (jog of height 1, then ≥ 3 horizontal robots).
        let pts = [
            (0, 0),
            (1, 0),
            (2, 0),
            (2, 1),
            (3, 1),
            (4, 1),
            (5, 1),
            (5, 2),
            (4, 2),
            (3, 2),
            (2, 2),
            (1, 2),
            (0, 2),
            (0, 1),
        ];
        let c = chain(&pts);
        // Robot 3 = (2,1): ahead (+1) (3,1),(4,1) aligned; behind r2=(2,0)
        // perpendicular; r1=(1,0) parallel; r0=(0,0) parallel → continues →
        // None.
        let v = Ring::with_horizon(&c, 3, 11);
        assert_eq!(run_start(&v, 1), None);
    }

    #[test]
    fn break_ahead_vertical_line() {
        let c = rectangle(10, 6);
        // Robot 1 = (1,0) looking +1 along the bottom row (fold side UP):
        // the row runs to (9,0) then turns up the right column (≥ 2 perp
        // steps) — a break within view.
        let v = Ring::with_horizon(&c, 1, 11);
        let b = quasi_break_ahead(&v, 1, Offset::UP, 11);
        assert!(b.is_some());
        let d = b.unwrap().distance;
        // The corner (9,0) is 8 ahead; the break is confirmed at the first
        // robot of the vertical run.
        assert!((8..=10).contains(&d), "distance {d}");
    }

    #[test]
    fn no_break_on_long_straight_line() {
        let c = rectangle(30, 8);
        let v = Ring::with_horizon(&c, 2, 11);
        // 11 steps ahead stay on the bottom row: no break.
        assert_eq!(quasi_break_ahead(&v, 1, Offset::UP, 11), None);
    }

    #[test]
    fn jog_is_not_a_break_but_stairway_is() {
        // Quasi line with a single jog — no break; stairway — break.
        let pts = [
            (0, 0),
            (1, 0),
            (2, 0),
            (2, 1),
            (3, 1),
            (4, 1),
            (5, 1),
            (5, 2),
            (4, 2),
            (3, 2),
            (2, 2),
            (1, 2),
            (0, 2),
            (0, 1),
        ];
        let c = chain(&pts);
        // From robot 0 looking +1: steps: R R U R R R U ... The jog at
        // (2,0)→(2,1) is a single perpendicular step between parallel runs
        // of ≥ 2 steps — fine. The next perpendicular step at (5,1)→(5,2)
        // is again single; then the top row runs left ≥ 2 — fine. No break
        // within 10 steps.
        let v = Ring::with_horizon(&c, 0, 11);
        assert_eq!(quasi_break_ahead(&v, 1, Offset::UP, 10), None);

        // A stairway ahead: R U R U R U...
        let stair = [
            (0, 0),
            (1, 0),
            (2, 0),
            (3, 0),
            (3, 1),
            (4, 1),
            (4, 2),
            (5, 2),
            (5, 3),
            (4, 3),
            (3, 3),
            (2, 3),
            (1, 3),
            (0, 3),
            (0, 2),
            (0, 1),
        ];
        let c = chain(&stair);
        let v = Ring::with_horizon(&c, 0, 11);
        let b = quasi_break_ahead(&v, 1, Offset::UP, 11);
        assert!(b.is_some(), "stairway must be a break");
        // Break confirmed at the single-step parallel group (3,1)→(4,1).
        assert!(b.unwrap().distance <= 6);
    }

    #[test]
    fn truncated_groups_do_not_break() {
        // A parallel group cut off by the horizon must not be classified.
        let c = rectangle(30, 8);
        let v = Ring::with_horizon(&c, 0, 11);
        // Look only 3 steps ahead from the corner: R R R — truncated, fine.
        assert_eq!(quasi_break_ahead(&v, 1, Offset::UP, 3), None);
    }

    #[test]
    fn tiny_chain_starts_nothing() {
        let c = chain(&[(0, 0), (1, 0), (1, 1), (0, 1)]);
        let v = Ring::with_horizon(&c, 0, 11);
        assert_eq!(run_start(&v, 1), None);
        assert_eq!(run_start(&v, -1), None);
    }

    fn pts(coords: &[(i64, i64)]) -> Vec<Point> {
        coords.iter().map(|&(x, y)| Point::new(x, y)).collect()
    }

    #[test]
    fn definition1_accepts_straight_lines_and_jogs() {
        // Straight line of 5.
        assert!(is_quasi_line(
            &pts(&[(0, 0), (1, 0), (2, 0), (3, 0), (4, 0)]),
            Axis::X
        ));
        // Jogged quasi line: HHH U HHH.
        assert!(is_quasi_line(
            &pts(&[(0, 0), (1, 0), (2, 0), (2, 1), (3, 1), (4, 1), (5, 1)]),
            Axis::X
        ));
        // U-bend: HHH U HHH backwards — still a quasi line by Def. 1.
        assert!(is_quasi_line(
            &pts(&[
                (0, 0),
                (1, 0),
                (2, 0),
                (3, 0),
                (3, 1),
                (2, 1),
                (1, 1),
                (0, 1)
            ]),
            Axis::X
        ));
    }

    #[test]
    fn definition1_rejects_violations() {
        // Too short.
        assert!(!is_quasi_line(&pts(&[(0, 0), (1, 0)]), Axis::X));
        // Wrong axis at the ends.
        assert!(!is_quasi_line(
            &pts(&[(0, 0), (0, 1), (0, 2), (1, 2), (2, 2), (3, 2)]),
            Axis::X
        ));
        // Interior horizontal run of 2 (stairway-like).
        assert!(!is_quasi_line(
            &pts(&[
                (0, 0),
                (1, 0),
                (2, 0),
                (2, 1),
                (3, 1),
                (3, 2),
                (4, 2),
                (5, 2),
                (6, 2)
            ]),
            Axis::X
        ));
        // Vertical run of 3 in a horizontal quasi line.
        assert!(!is_quasi_line(
            &pts(&[
                (0, 0),
                (1, 0),
                (2, 0),
                (2, 1),
                (2, 2),
                (3, 2),
                (4, 2),
                (5, 2)
            ]),
            Axis::X
        ));
        // Fold-back within a row.
        assert!(!is_quasi_line(
            &pts(&[(0, 0), (1, 0), (2, 0), (1, 0), (0, 0), (-1, 0)]),
            Axis::X
        ));
    }

    #[test]
    fn definition1_vertical() {
        assert!(is_quasi_line(
            &pts(&[(0, 0), (0, 1), (0, 2), (1, 2), (1, 3), (1, 4), (1, 5)]),
            Axis::Y
        ));
        assert!(!is_quasi_line(
            &pts(&[
                (0, 0),
                (0, 1),
                (0, 2),
                (1, 2),
                (2, 2),
                (2, 3),
                (2, 4),
                (2, 5)
            ]),
            Axis::Y
        ));
    }
}
