//! Run states and runner bookkeeping (Sections 3.2, 3.4, 4.1–4.3).
//!
//! A *run* is a constant-size state held by a robot (the *runner*) with a
//! fixed moving direction along the chain. Every round a live run moves one
//! robot further in its direction (Lemma 3.1). Its runner may perform a
//! diagonal *reshapement hop* ("fold", Fig. 6 / Fig. 11a) when the local
//! shape allows; otherwise the run just walks (Fig. 11b/c). Runs moving
//! toward each other that cannot enable a merge *pass* each other without
//! reshaping (Fig. 8/14).
//!
//! The gathering strategy stores one optional run per chain direction per
//! robot ([`RunCell`]). Two same-direction runs can never share a robot:
//! termination condition 1 of Table 1 removes the rear run before contact
//! (pipelining distance L = 13 > V = 11 keeps fresh runs apart).

use crate::quasi::StartShape;
use chain_sim::RobotId;
use grid_geom::Offset;

/// Why a run terminated — Table 1 of the paper, plus bookkeeping cases.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum StopReason {
    /// Table 1.1: a sequent (same-direction) run is visible ahead.
    SequentAhead,
    /// Table 1.2: the endpoint of the quasi line is visible ahead.
    EndpointAhead,
    /// Table 1.3: the runner was part of a merge operation.
    Merged,
    /// Table 1.4/5: the passing/walking target corner was removed.
    TargetRemoved,
    /// The robot carrying the run was spliced away by the merge pass.
    RobotRemoved,
    /// Engine hygiene: a same-direction run already occupies the arrival
    /// slot (can only happen against a freshly started run).
    SlotCollision,
}

/// Mode of a live run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RunMode {
    /// Normal operation: fold when the local shape allows, else walk.
    Normal,
    /// Run passing (Fig. 8/14): walk without reshaping until the robot
    /// carrying the run *is* the target corner.
    Passing { target: RobotId },
}

/// A run state (constant-size robot memory).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Run {
    /// Unique run id (instrumentation only; robots never read it).
    pub id: u64,
    /// Moving direction along the chain: +1 or −1.
    pub dir: i8,
    /// The side of the quasi line the run reshapes toward (unit offset,
    /// perpendicular to the line). Fixed at start; good pairs are pairs
    /// with equal fold sides (Fig. 12).
    pub fold_side: Offset,
    /// Round the run was started (runs act from the following round).
    pub born: u64,
    /// The Figure 5 shape that started the run.
    pub shape: StartShape,
    /// Current mode.
    pub mode: RunMode,
    /// Remaining forced walk rounds (op c of Fig. 11: after the initial
    /// fold of a corner-started run, walk 3 rounds).
    pub walk_budget: u8,
    /// Op c pending: the next fold arms `walk_budget`.
    pub op_c_pending: bool,
}

impl Run {
    #[inline]
    pub fn dir(&self) -> isize {
        self.dir as isize
    }
}

/// The runs held by one robot: at most one per chain direction.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RunCell {
    pub fwd: Option<Run>,
    pub bwd: Option<Run>,
}

impl RunCell {
    pub const EMPTY: RunCell = RunCell {
        fwd: None,
        bwd: None,
    };

    #[inline]
    pub fn get(&self, dir: isize) -> Option<&Run> {
        if dir > 0 {
            self.fwd.as_ref()
        } else {
            self.bwd.as_ref()
        }
    }

    #[inline]
    pub fn slot_mut(&mut self, dir: isize) -> &mut Option<Run> {
        if dir > 0 {
            &mut self.fwd
        } else {
            &mut self.bwd
        }
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.fwd.is_none() && self.bwd.is_none()
    }

    /// Number of runs on this robot (0..=2).
    #[inline]
    pub fn count(&self) -> usize {
        usize::from(self.fwd.is_some()) + usize::from(self.bwd.is_some())
    }

    pub fn iter(&self) -> impl Iterator<Item = &Run> {
        self.fwd.iter().chain(self.bwd.iter())
    }
}

/// What a run decides to do this round (pure decision output; the strategy
/// applies it).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RunAction {
    /// Terminate with the given reason (run does not move).
    Die(StopReason),
    /// Move forward; `fold` carries the runner's diagonal hop if the run
    /// reshapes this round.
    Advance { fold: Option<Offset>, next: Run },
}

/// Counters for the audit tables (E2–E4) and reports.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RunStats {
    pub started_stairway: u64,
    pub started_corner: u64,
    pub folds: u64,
    pub walks: u64,
    pub passings_started: u64,
    pub stopped_sequent: u64,
    pub stopped_endpoint: u64,
    pub stopped_merged: u64,
    pub stopped_target_removed: u64,
    pub stopped_robot_removed: u64,
    pub stopped_slot_collision: u64,
    pub max_live_runs: u64,
    /// Oscillation-suppression triggers (robots entering suppression).
    pub suppressions: u64,
}

impl RunStats {
    pub fn started_total(&self) -> u64 {
        self.started_stairway + self.started_corner
    }

    pub fn stopped_total(&self) -> u64 {
        self.stopped_sequent
            + self.stopped_endpoint
            + self.stopped_merged
            + self.stopped_target_removed
            + self.stopped_robot_removed
            + self.stopped_slot_collision
    }

    pub fn record_stop(&mut self, reason: StopReason) {
        match reason {
            StopReason::SequentAhead => self.stopped_sequent += 1,
            StopReason::EndpointAhead => self.stopped_endpoint += 1,
            StopReason::Merged => self.stopped_merged += 1,
            StopReason::TargetRemoved => self.stopped_target_removed += 1,
            StopReason::RobotRemoved => self.stopped_robot_removed += 1,
            StopReason::SlotCollision => self.stopped_slot_collision += 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(dir: i8) -> Run {
        Run {
            id: 1,
            dir,
            fold_side: Offset::DOWN,
            born: 0,
            shape: StartShape::StairwayEnd,
            mode: RunMode::Normal,
            walk_budget: 0,
            op_c_pending: false,
        }
    }

    #[test]
    fn cell_slots_by_direction() {
        let mut cell = RunCell::EMPTY;
        assert!(cell.is_empty());
        *cell.slot_mut(1) = Some(run(1));
        *cell.slot_mut(-1) = Some(run(-1));
        assert_eq!(cell.count(), 2);
        assert_eq!(cell.get(1).unwrap().dir, 1);
        assert_eq!(cell.get(-1).unwrap().dir, -1);
        assert_eq!(cell.iter().count(), 2);
    }

    #[test]
    fn stats_bookkeeping() {
        let mut s = RunStats::default();
        s.record_stop(StopReason::SequentAhead);
        s.record_stop(StopReason::Merged);
        s.record_stop(StopReason::Merged);
        s.started_corner = 2;
        s.started_stairway = 1;
        assert_eq!(s.stopped_total(), 3);
        assert_eq!(s.started_total(), 3);
    }
}
