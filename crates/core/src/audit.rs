//! Empirical auditors for the paper's Section 5 claims.
//!
//! The paper's evaluation is its correctness/runtime analysis: Theorem 1
//! (gathering in O(n) rounds) resting on Lemma 1 (every L = 13 rounds a
//! merge happens or a new *progress pair* starts), Lemma 2 (progress pairs
//! enable pairwise-distinct merges within ≤ n rounds) and Lemma 3 (run
//! invariants). These auditors observe a running simulation with global
//! knowledge — they are measurement instruments, not part of the robot
//! model — and produce the violation counts and distributions reported in
//! EXPERIMENTS.md (tables T2–T4).

use crate::runs::{RunMode, StopReason};
use crate::strategy::{ClosedChainGathering, RunEvent};
use chain_sim::observe::{Observer, RoundCtx};
use chain_sim::{ClosedChain, MergeEvent, RobotId};
use grid_geom::Offset;
use std::collections::HashMap;

/// A pair of runs started in the same round at the two endpoints of one
/// subchain, classified per Fig. 12.
#[derive(Clone, Debug)]
pub struct PairRecord {
    pub round: u64,
    pub run_a: u64,
    pub run_b: u64,
    /// Equal fold sides (Fig. 12): the pair can enable a merge.
    pub good: bool,
    /// Good pair started while the chain was mergeless for the whole
    /// preceding L-window — the paper's *progress pair*.
    pub progress: bool,
    /// Round at which one of the pair's runs terminated with
    /// [`StopReason::Merged`], if any.
    pub merged_at: Option<u64>,
}

/// Outcome summary of an audited simulation.
#[derive(Clone, Debug, Default)]
pub struct AuditSummary {
    pub rounds: u64,
    pub initial_n: usize,
    pub final_n: usize,
    pub total_merged_robots: usize,
    pub longest_mergeless_gap: u64,
    pub pairs_started: usize,
    pub good_pairs: usize,
    pub progress_pairs: usize,
    pub progress_pairs_merged: usize,
    /// Max rounds from a progress pair's start to its merge credit.
    pub max_pair_latency: u64,
    /// Lemma 1: L-windows with neither a merge nor a new progress pair.
    pub lemma1_violations: Vec<u64>,
    /// Lemma 3.1: run-speed violations (run failed to move one robot).
    pub speed_violations: u64,
    /// Lemma 3.3: a sequent run visible in front of a live run.
    pub sequent_visibility_violations: u64,
    /// Runs alive at the end (not a violation; reported for context).
    pub live_runs_at_end: usize,
}

impl AuditSummary {
    /// `true` if the audited invariants all held.
    pub fn clean(&self) -> bool {
        self.lemma1_violations.is_empty()
            && self.speed_violations == 0
            && self.sequent_visibility_violations == 0
    }
}

/// Tracks one run's location by robot id between rounds (for Lemma 3.1).
#[derive(Clone, Copy, Debug)]
struct RunTrack {
    robot: RobotId,
    /// Robot id the run must sit on next round (its successor at decision
    /// time), unless the run terminates or the successor merges.
    expected_next: RobotId,
}

/// The auditor — an [`Observer`] over the engine's one run loop.
///
/// Attach it with `Sim::new(chain, strategy).observe(auditor)` (the
/// strategy must have `with_event_recording()` on; the auditor drains the
/// recorded events each round). After the run, extract the finalized
/// summary through `sim.observer_mut::<LemmaAuditor>()` +
/// [`LemmaAuditor::summary`], or drive the hooks manually via
/// [`LemmaAuditor::after_round`] / [`LemmaAuditor::finish`].
pub struct LemmaAuditor {
    l_period: u64,
    /// Scheduler inverse duty cycle: the Lemma 1 window is `L` rounds of
    /// *activity*, which under an SSYNC schedule stretches to `L ×
    /// slowdown` wall-clock rounds. 1 (FSYNC) unless
    /// [`LemmaAuditor::with_slowdown`] / [`LemmaAuditor::for_scheduler`]
    /// say otherwise.
    slowdown: u64,
    view: usize,
    pairs: Vec<PairRecord>,
    pair_of_run: HashMap<u64, usize>,
    tracks: HashMap<u64, RunTrack>,
    /// Rounds in which at least one merge happened (ascending).
    merge_rounds: Vec<u64>,
    /// Runs that saw a sequent run ahead last round (Lemma 3.3 is about
    /// *persistent* visibility: condition 1 must fire on the next
    /// decision, so only two consecutive sightings are a violation).
    saw_sequent: std::collections::HashSet<u64>,
    last_merge_round: Option<u64>,
    summary: AuditSummary,
    rounds_since_merge: u64,
    longest_gap: u64,
}

impl LemmaAuditor {
    pub fn new(strategy: &ClosedChainGathering) -> Self {
        LemmaAuditor {
            l_period: strategy.config().l_period,
            slowdown: 1,
            view: strategy.config().view,
            pairs: Vec::new(),
            pair_of_run: HashMap::new(),
            tracks: HashMap::new(),
            merge_rounds: Vec::new(),
            saw_sequent: std::collections::HashSet::new(),
            last_merge_round: None,
            summary: AuditSummary::default(),
            rounds_since_merge: 0,
            longest_gap: 0,
        }
    }

    /// Scheduler-aware audit windows: stretch the Lemma 1 window by the
    /// scheduler's inverse duty cycle (builder style). Under FSYNC
    /// (`slowdown = 1`) this is the paper's literal `L`-window; under an
    /// SSYNC schedule the lemma's "every `L` rounds" can only be expected
    /// per `L × slowdown` wall-clock rounds.
    pub fn with_slowdown(mut self, slowdown: u64) -> Self {
        self.slowdown = slowdown.max(1);
        self
    }

    /// [`LemmaAuditor::new`] pre-scaled for `scheduler` — the composition
    /// scheduler-aware drivers use.
    pub fn for_scheduler(
        strategy: &ClosedChainGathering,
        scheduler: chain_sim::SchedulerKind,
    ) -> Self {
        Self::new(strategy).with_slowdown(scheduler.slowdown())
    }

    /// The effective Lemma 1 window in wall-clock rounds.
    fn window(&self) -> u64 {
        self.l_period.saturating_mul(self.slowdown)
    }

    pub fn set_initial(&mut self, chain: &ClosedChain) {
        self.summary.initial_n = chain.len();
        // A run can finish without a single round (input already
        // gathered); final_n must not default to 0 in that case.
        self.summary.final_n = chain.len();
    }

    /// Feed one completed round. `chain` is post-round, `merges` are the
    /// round's merge events; the strategy's events are drained here
    /// (requires `with_event_recording()`). The [`Observer`] impl calls
    /// this with the pieces of its [`RoundCtx`].
    pub fn after_round(
        &mut self,
        chain: &ClosedChain,
        strategy: &mut ClosedChainGathering,
        round: u64,
        removed: usize,
        merges: &[MergeEvent],
    ) {
        let events = strategy.take_events();

        // --- Gap accounting (Theorem 1 context). ---
        let mergeless_window =
            self.rounds_since_merge >= self.window().saturating_sub(1) && removed == 0;
        if removed > 0 {
            self.last_merge_round = Some(round);
            self.merge_rounds.push(round);
            self.rounds_since_merge = 0;
        } else {
            self.rounds_since_merge += 1;
            self.longest_gap = self.longest_gap.max(self.rounds_since_merge);
        }

        // --- Pair formation from this round's starts. ---
        let starts: Vec<(u64, RobotId, i8, Offset)> = events
            .iter()
            .filter_map(|e| match e {
                RunEvent::Started {
                    run_id,
                    robot,
                    dir,
                    fold_side,
                    ..
                } => Some((*run_id, *robot, *dir, *fold_side)),
                _ => None,
            })
            .collect();
        if !starts.is_empty() {
            self.pair_starts(chain, round, &starts, mergeless_window);
        }

        // --- Merge credit for pairs (Lemma 2). ---
        // A run was "part of a merge operation" (Table 1.3) when it stopped
        // as a merge participant (`Merged`) or because its robot was
        // spliced away by the merge pass (`RobotRemoved` — the usual case:
        // the runner's black lands on the white and is removed).
        for e in &events {
            if let RunEvent::Stopped {
                run_id,
                reason: StopReason::Merged | StopReason::RobotRemoved,
                round: r,
                ..
            } = e
            {
                if let Some(&pi) = self.pair_of_run.get(run_id) {
                    let pair = &mut self.pairs[pi];
                    if pair.merged_at.is_none() {
                        pair.merged_at = Some(*r);
                    }
                }
            }
        }

        // --- Lemma 3.1 (speed) and 3.3 (no sequent run visible ahead). ---
        self.check_run_tracks(chain, strategy, merges);

        // --- Lemma 1 window check at every start round (the window is
        // scheduler-scaled; see `with_slowdown`). ---
        if round > 0 && round.is_multiple_of(self.window()) {
            let merged_in_window = match self.last_merge_round {
                Some(m) => round - m < self.window(),
                None => false,
            };
            let progress_started = self.pairs.iter().any(|p| p.round == round && p.progress);
            if !merged_in_window && !progress_started && chain.len() > 4 {
                self.summary.lemma1_violations.push(round);
            }
        }

        self.summary.rounds = round + 1;
        self.summary.final_n = chain.len();
    }

    fn pair_starts(
        &mut self,
        chain: &ClosedChain,
        round: u64,
        starts: &[(u64, RobotId, i8, Offset)],
        mergeless_window: bool,
    ) {
        // Pair each +1 run with the first fresh −1 run reachable by walking
        // forward along the chain without crossing another fresh +1 start:
        // the two runs then border one subchain (the candidate quasi line).
        let n = chain.len();
        let mut by_index: HashMap<usize, Vec<(u64, i8, Offset)>> = HashMap::new();
        for (run_id, robot, dir, side) in starts {
            if let Some(idx) = chain.index_of(*robot) {
                by_index
                    .entry(idx)
                    .or_default()
                    .push((*run_id, *dir, *side));
            }
        }
        for (run_id, robot, dir, side) in starts {
            if *dir != 1 {
                continue;
            }
            let Some(start_idx) = chain.index_of(*robot) else {
                continue;
            };
            let mut j = 1isize;
            while (j as usize) < n {
                let idx = chain.nb(start_idx, j);
                if let Some(list) = by_index.get(&idx) {
                    if let Some((bid, _, bside)) = list.iter().find(|(_, d, _)| *d == -1).copied() {
                        let good = bside == *side;
                        let progress = good && mergeless_window;
                        let pi = self.pairs.len();
                        self.pairs.push(PairRecord {
                            round,
                            run_a: *run_id,
                            run_b: bid,
                            good,
                            progress,
                            merged_at: None,
                        });
                        self.pair_of_run.insert(*run_id, pi);
                        self.pair_of_run.insert(bid, pi);
                        break;
                    }
                    if list.iter().any(|(_, d, _)| *d == 1) && idx != start_idx {
                        // Another +1 start before any −1: not a pair edge.
                        break;
                    }
                }
                j += 1;
            }
        }
    }

    fn check_run_tracks(
        &mut self,
        chain: &ClosedChain,
        strategy: &ClosedChainGathering,
        merges: &[MergeEvent],
    ) {
        // Map: removed robot -> keeper (for excusing merged successors).
        let mut keeper_of: HashMap<RobotId, RobotId> = HashMap::new();
        for ev in merges {
            for r in &ev.removed {
                keeper_of.insert(*r, ev.keeper);
            }
        }
        let mut now: HashMap<u64, RunTrack> = HashMap::new();
        let mut sees_now: Vec<u64> = Vec::new();
        let cells = strategy.cells();
        for (i, cell) in cells.iter().enumerate() {
            for run in cell.iter() {
                let robot = chain.id(i);
                let succ = chain.id(chain.nb(i, run.dir()));
                now.insert(
                    run.id,
                    RunTrack {
                        robot,
                        expected_next: succ,
                    },
                );
                // Lemma 3.3: no sequent run visible in front *on the same
                // quasi line* (same direction, same line orientation,
                // within the line's visible extent) — mirrors the
                // strategy's own scoping of Table 1.1.
                if run.mode == RunMode::Normal {
                    let horizon = self.view.min(chain.len().saturating_sub(1));
                    let ring = chain_sim::Ring::with_horizon(chain, i, self.view.max(3) + 1);
                    let line_extent = crate::quasi::quasi_break_ahead(
                        &ring,
                        run.dir(),
                        run.fold_side,
                        horizon as isize,
                    )
                    .map_or(horizon as isize, |b| b.distance);
                    for j in 1..=horizon as isize {
                        let other = &cells[chain.nb(i, j * run.dir())];
                        if let Some(s) = other.get(run.dir()) {
                            let same_axis = (s.fold_side.dx == 0) == (run.fold_side.dx == 0);
                            if same_axis && j <= line_extent {
                                if self.saw_sequent.contains(&run.id) {
                                    self.summary.sequent_visibility_violations += 1;
                                } else {
                                    sees_now.push(run.id);
                                }
                            }
                            break;
                        }
                    }
                }
            }
        }
        self.saw_sequent = sees_now.into_iter().collect();
        // Speed: every surviving run must have advanced to its expected
        // robot (or that robot's keeper).
        for (run_id, track) in &now {
            if let Some(prev) = self.tracks.get(run_id) {
                let expected = prev.expected_next;
                let excused = keeper_of.get(&expected).copied();
                if track.robot != expected && Some(track.robot) != excused {
                    self.summary.speed_violations += 1;
                }
            }
        }
        self.tracks = now;
    }

    /// Finalize the summary.
    pub fn finish(mut self, strategy: &ClosedChainGathering) -> AuditSummary {
        self.finalize(strategy);
        self.summary
    }

    /// The finalized summary (for the observer flow:
    /// [`chain_sim::Sim::run`] fires `on_finish`, which finalizes; then
    /// the caller reads the summary via `sim.observer::<LemmaAuditor>()`).
    /// The auditor keeps its state, so a run resumed with larger limits
    /// re-finalizes correctly. Calling this before the run finished
    /// returns the in-progress summary.
    pub fn summary(&self) -> AuditSummary {
        self.summary.clone()
    }

    fn finalize(&mut self, strategy: &ClosedChainGathering) {
        self.summary.longest_mergeless_gap = self.longest_gap;
        self.summary.pairs_started = self.pairs.len();
        self.summary.good_pairs = self.pairs.iter().filter(|p| p.good).count();
        self.summary.progress_pairs = self.pairs.iter().filter(|p| p.progress).count();
        // Lemma 2 credit: a run of the pair participated in a merge, or —
        // the accounting Theorem 1 actually uses — a merge followed the
        // progress pair's start within n rounds (the pair's reshaping
        // enables it even when its runs terminate at the line ends first).
        for p in &mut self.pairs {
            if p.merged_at.is_none() {
                p.merged_at = self
                    .merge_rounds
                    .iter()
                    .copied()
                    .find(|&m| m > p.round && m - p.round <= self.summary.initial_n as u64);
            }
        }
        self.summary.progress_pairs_merged = self
            .pairs
            .iter()
            .filter(|p| p.progress && p.merged_at.is_some())
            .count();
        self.summary.max_pair_latency = self
            .pairs
            .iter()
            .filter(|p| p.progress)
            .filter_map(|p| p.merged_at.map(|m| m - p.round))
            .max()
            .unwrap_or(0);
        self.summary.total_merged_robots = self.summary.initial_n - self.summary.final_n;
        self.summary.live_runs_at_end = strategy.cells().iter().map(|c| c.count()).sum();
    }

    /// The pair records collected so far.
    pub fn pairs(&self) -> &[PairRecord] {
        &self.pairs
    }
}

impl Observer<ClosedChainGathering> for LemmaAuditor {
    fn on_init(&mut self, chain: &ClosedChain, _strategy: &ClosedChainGathering) {
        self.set_initial(chain);
    }

    fn on_round(&mut self, ctx: &RoundCtx<'_>, strategy: &mut ClosedChainGathering) {
        self.after_round(
            ctx.chain,
            strategy,
            ctx.summary.round,
            ctx.summary.removed,
            &ctx.splice.events,
        );
    }

    fn on_finish(
        &mut self,
        _chain: &ClosedChain,
        strategy: &ClosedChainGathering,
        _outcome: &chain_sim::Outcome,
    ) {
        self.finalize(strategy);
    }
}

/// Convenience: run a full audited simulation — the engine's one run loop
/// plus the [`LemmaAuditor`] observer. This is pure composition; the audit
/// owns no loop of its own.
pub fn audited_run(
    chain: ClosedChain,
    cfg: crate::GatherConfig,
    max_rounds: u64,
) -> (chain_sim::Outcome, AuditSummary) {
    let strategy = ClosedChainGathering::new(cfg).with_event_recording();
    let auditor = LemmaAuditor::new(&strategy);
    let mut sim = chain_sim::Sim::new(chain, strategy).observe(auditor);
    let outcome = sim.run(chain_sim::RunLimits {
        max_rounds,
        stall_window: max_rounds,
    });
    let summary = sim
        .observer_mut::<LemmaAuditor>()
        .expect("the auditor was attached above")
        .summary();
    (outcome, summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GatherConfig;
    use grid_geom::Point;

    fn rectangle(w: i64, h: i64) -> ClosedChain {
        let mut pts = vec![Point::new(0, 0)];
        pts.extend((1..w).map(|x| Point::new(x, 0)));
        pts.extend((1..h).map(|y| Point::new(w - 1, y)));
        pts.extend((1..w).map(|x| Point::new(w - 1 - x, h - 1)));
        pts.extend((1..h - 1).map(|y| Point::new(0, h - 1 - y)));
        ClosedChain::new(pts).unwrap()
    }

    #[test]
    fn audited_rectangle_is_clean() {
        let chain = rectangle(20, 12);
        let n = chain.len() as u64;
        let (outcome, summary) = audited_run(chain, GatherConfig::paper(), 64 * n + 4096);
        assert!(outcome.is_gathered(), "{outcome:?}");
        assert!(
            summary.clean(),
            "lemma violations: {:?} speed={} sequent={}",
            summary.lemma1_violations,
            summary.speed_violations,
            summary.sequent_visibility_violations
        );
        assert!(summary.pairs_started > 0);
        assert!(summary.good_pairs > 0);
    }

    /// The audit must produce byte-identical summaries to the pre-observer
    /// implementation (values pinned from the dedicated-loop `audited_run`
    /// before it became `Sim` + observer composition).
    #[test]
    fn audit_summary_pinned_on_seeded_workloads() {
        use workloads::Family;
        // (family, n, seed) -> (rounds, initial, final, merged, gap,
        //                       pairs, good, progress, progress_merged, latency)
        type Workload = (Family, usize, u64);
        type Pin = (u64, usize, usize, usize, u64, [usize; 4], u64);
        let pinned: [(Workload, Pin); 3] = [
            (
                (Family::Rectangle, 48, 0),
                (7, 48, 4, 44, 0, [0, 0, 0, 0], 0),
            ),
            (
                (Family::Skyline, 96, 3),
                (17, 94, 2, 92, 0, [1, 0, 0, 0], 0),
            ),
            (
                (Family::StaircaseDiamond, 96, 2),
                (66, 96, 1, 95, 25, [16, 16, 4, 4], 2),
            ),
        ];
        for ((fam, n, seed), (rounds, initial, final_n, merged, gap, pairs, latency)) in pinned {
            let chain = fam.generate(n, seed);
            let len = chain.len() as u64;
            let (outcome, s) = audited_run(chain, GatherConfig::paper(), 64 * len + 4096);
            let tag = format!("{} n={n} seed={seed}", fam.name());
            assert_eq!(outcome, chain_sim::Outcome::Gathered { rounds }, "{tag}");
            assert_eq!(
                (s.rounds, s.initial_n, s.final_n, s.total_merged_robots),
                (rounds, initial, final_n, merged),
                "{tag}"
            );
            assert_eq!(s.longest_mergeless_gap, gap, "{tag}");
            assert_eq!(
                [
                    s.pairs_started,
                    s.good_pairs,
                    s.progress_pairs,
                    s.progress_pairs_merged
                ],
                pairs,
                "{tag}"
            );
            assert_eq!(s.max_pair_latency, latency, "{tag}");
            assert!(s.clean(), "{tag}");
            assert_eq!(s.live_runs_at_end, 0, "{tag}");
        }
    }

    /// A zero-round audited run (input already gathered) reports no
    /// merges, not `initial_n` of them.
    #[test]
    fn zero_round_audited_run_reports_no_merges() {
        let chain = ClosedChain::new(vec![
            grid_geom::Point::new(0, 0),
            grid_geom::Point::new(1, 0),
            grid_geom::Point::new(1, 1),
            grid_geom::Point::new(0, 1),
        ])
        .unwrap();
        let (outcome, summary) = audited_run(chain, GatherConfig::paper(), 100);
        assert_eq!(outcome, chain_sim::Outcome::Gathered { rounds: 0 });
        assert_eq!(summary.initial_n, 4);
        assert_eq!(summary.final_n, 4);
        assert_eq!(summary.total_merged_robots, 0);
        assert!(summary.clean());
    }

    /// The Lemma 1 window is scheduler-aware: a merge cadence that
    /// violates the FSYNC `L`-window sits comfortably inside the
    /// `L × slowdown` window of an SSYNC auditor fed the identical
    /// round stream.
    #[test]
    fn slowdown_scales_the_lemma1_window() {
        let chain = rectangle(6, 4);
        let mut strategy = crate::ClosedChainGathering::paper().with_event_recording();
        let l = GatherConfig::paper().l_period;
        let mut fsync = LemmaAuditor::new(&strategy);
        fsync.set_initial(&chain);
        let mut rr2 =
            LemmaAuditor::for_scheduler(&strategy, chain_sim::SchedulerKind::RoundRobin(2));
        rr2.set_initial(&chain);
        // Merges land every 20 rounds: slower than L = 13 (an FSYNC
        // violation), faster than the rr2 window 2L = 26.
        for round in 0..=(2 * l) {
            let removed = usize::from(round.is_multiple_of(20));
            fsync.after_round(&chain, &mut strategy, round, removed, &[]);
            rr2.after_round(&chain, &mut strategy, round, removed, &[]);
        }
        assert!(
            !fsync.summary().lemma1_violations.is_empty(),
            "a 20-round merge cadence must violate the unscaled L-window"
        );
        assert!(
            rr2.summary().lemma1_violations.is_empty(),
            "the same cadence must satisfy the slowdown-scaled window"
        );
    }

    #[test]
    fn gap_is_bounded_on_rectangles() {
        let chain = rectangle(16, 10);
        let (outcome, summary) = audited_run(chain, GatherConfig::paper(), 1 << 16);
        assert!(outcome.is_gathered());
        // Theorem 1's accounting allows gaps up to ~L·n; empirically the
        // gap stays far below — assert the generous bound.
        let bound = 13 * summary.initial_n as u64 + 13;
        assert!(
            summary.longest_mergeless_gap <= bound,
            "gap {} > {}",
            summary.longest_mergeless_gap,
            bound
        );
    }
}
