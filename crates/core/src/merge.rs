//! Merge patterns (Section 3.1, Figures 1–3 of the paper).
//!
//! A merge pattern is a subchain `w₁, b₁ … b_k, w₂`: a maximal monotone
//! segment of `k` "black" robots flanked by two "white" chain neighbors on
//! the *same* side (`w₁ = b₁ + v`, `w₂ = b_k + v` for an axis unit `v`).
//! When a pattern fires, the blacks hop by `v`; the outermost blacks land on
//! the whites, the merge pass splices the coincidences, and the chain
//! shortens — the paper's progress measure.
//!
//! For `k = 1` the two whites coincide (Fig. 2 bottom); this also covers
//! hairpin tips of self-overlapping chains.
//!
//! ## Overlapping patterns (Fig. 3)
//!
//! Patterns may overlap. Per DESIGN.md §2.3, roles combine as:
//!
//! * a robot black in two patterns (always one horizontal + one vertical,
//!   Fig. 3b's robot `r`) hops by the *sum* of the two directions — the
//!   diagonal hop of the paper;
//! * a black role beats a white role (Fig. 3a: "the chain cannot be
//!   shortened there", but the outermost merges still succeed);
//! * a pure white stands still.
//!
//! The scan below is a global O(n) pass; every pattern it reports fits
//! entirely inside each participant's viewing range (`k + 1 ≤ V`), so it is
//! observationally equivalent to the per-robot local detection the paper
//! describes — a property checked by `tests::local_equivalence`.

use crate::config::GatherConfig;
use chain_sim::ClosedChain;
use grid_geom::Offset;

/// A detected merge pattern (indices are current chain indices).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MergePattern {
    /// Chain index of the first black robot.
    pub first_black: usize,
    /// Number of black robots (`k ≥ 1`).
    pub k: usize,
    /// Hop direction `v` (towards the whites).
    pub dir: Offset,
}

impl MergePattern {
    /// Chain index of the white before the first black.
    pub fn w1(&self, chain: &ClosedChain) -> usize {
        chain.nb(self.first_black, -1)
    }

    /// Chain index of the white after the last black.
    pub fn w2(&self, chain: &ClosedChain) -> usize {
        chain.nb(self.first_black, self.k as isize)
    }

    /// Iterate the black indices.
    pub fn blacks<'a>(&'a self, chain: &'a ClosedChain) -> impl Iterator<Item = usize> + 'a {
        (0..self.k).map(move |j| chain.nb(self.first_black, j as isize))
    }
}

/// Per-round merge scan result (reusable buffers).
#[derive(Clone, Debug, Default)]
pub struct MergeScan {
    /// Detected patterns.
    pub patterns: Vec<MergePattern>,
    /// Accumulated merge hop per robot (`ZERO` = not a black).
    pub hop: Vec<Offset>,
    /// Robot is a black of some pattern.
    pub black: Vec<bool>,
    /// Robot is a white of some pattern.
    pub white: Vec<bool>,
    /// Largest `k` over all *detected* patterns (including suppressed
    /// ones) in which the robot is a black; 0 if none. Drives the
    /// staggered expiry of oscillation suppression (strategy.rs).
    pub inherent_k: Vec<u8>,
}

impl MergeScan {
    fn reset(&mut self, n: usize) {
        self.patterns.clear();
        self.hop.clear();
        self.hop.resize(n, Offset::ZERO);
        self.black.clear();
        self.black.resize(n, false);
        self.white.clear();
        self.white.resize(n, false);
        self.inherent_k.clear();
        self.inherent_k.resize(n, 0);
    }

    /// `true` if robot `i` participates in any fired pattern.
    #[inline]
    pub fn participates(&self, i: usize) -> bool {
        self.black[i] || self.white[i]
    }

    /// Run the scan on the current (taut) chain.
    ///
    /// Detects all maximal monotone segments whose two flanking steps are
    /// opposite perpendicular steps, with `k` bounded by the config's
    /// effective maximum, and accumulates hop roles.
    pub fn scan(&mut self, chain: &ClosedChain, cfg: &GatherConfig) {
        self.scan_suppressed(chain, cfg, &[]);
    }

    /// [`MergeScan::scan`] with per-robot oscillation suppression: a
    /// pattern fires only if none of its robots is currently suppressed
    /// (see `strategy.rs` — robots that detect a period-2 oscillation of
    /// their local view hold their merge hops for 2L rounds so the runner
    /// machinery can break the symmetry). `suppressed` may be empty (no
    /// suppression) or one flag per robot.
    pub fn scan_suppressed(
        &mut self,
        chain: &ClosedChain,
        cfg: &GatherConfig,
        suppressed: &[bool],
    ) {
        let n = chain.len();
        self.reset(n);
        if n < 4 {
            // n = 2 is always gathered; n = 3 cannot be a closed grid chain
            // (odd step parity); nothing to do.
            return;
        }
        debug_assert!(suppressed.is_empty() || suppressed.len() == n);
        let max_k = cfg.effective_max_k();

        // Decompose the cyclic step sequence into maximal monotone runs.
        // Anchor at a run boundary so no run wraps.
        let mut anchor = 0;
        while chain.step(chain.nb(anchor, -1)) == chain.step(anchor) {
            anchor += 1;
            if anchor == n {
                // All steps equal — impossible for a closed chain (the step
                // sum must vanish); defensive: nothing to merge.
                debug_assert!(false, "closed chain with uniform steps");
                return;
            }
        }

        // Walk runs: `s` indexes steps cyclically starting at `anchor`.
        let mut s = 0;
        while s < n {
            let step_idx = (anchor + s) % n;
            let u = chain.step(step_idx);
            let mut len = 1;
            while len < n - s && chain.step((anchor + s + len) % n) == u {
                len += 1;
            }
            // Run of `len` equal steps covers robots
            // first .. first + len (len + 1 robots) where
            // first = (anchor + s) % n is the robot the first step leaves.
            let first = (anchor + s) % n;
            let k = len + 1; // black candidate length
            let flank_in = chain.step(chain.nb(first, -1)); // step into first
            let flank_out = chain.step(chain.nb(first, len as isize)); // step out of last
            if k <= max_k && flank_in == -flank_out && flank_out.perpendicular_to(u) {
                self.try_push(
                    chain,
                    MergePattern {
                        first_black: first,
                        k,
                        dir: flank_out,
                    },
                    suppressed,
                );
            }
            s += len;
        }

        // k = 1 patterns: a robot whose two incident steps are exact
        // opposites (fold/hairpin tip, Fig. 2 bottom). These robots sit
        // *between* two monotone runs and are not covered above.
        for i in 0..n {
            let s_in = chain.step(chain.nb(i, -1));
            let s_out = chain.step(i);
            if s_in == -s_out {
                self.try_push(
                    chain,
                    MergePattern {
                        first_black: i,
                        k: 1,
                        dir: s_out,
                    },
                    suppressed,
                );
            }
        }
    }

    fn try_push(&mut self, chain: &ClosedChain, p: MergePattern, suppressed: &[bool]) {
        // Inherent blackness is recorded for every *detected* pattern,
        // fired or not — it drives the staggered expiry of oscillation
        // suppression.
        for b in p.blacks(chain) {
            self.inherent_k[b] = self.inherent_k[b].max(p.k.min(255) as u8);
        }
        if !suppressed.is_empty() {
            // Oscillation suppression is pattern-wide over the *blacks*: a
            // pattern with any suppressed black does not fire (partial
            // firing would break the rigid-translation safety of the black
            // segment). Suppressed whites are fine — they stand still,
            // which is exactly what a merge target must do.
            if p.blacks(chain).any(|r| suppressed[r]) {
                return;
            }
        }
        self.push_pattern(chain, p);
    }

    fn push_pattern(&mut self, chain: &ClosedChain, p: MergePattern) {
        // Accumulate roles. Two black roles on one robot are always
        // orthogonal (a horizontal and a vertical pattern meeting at a
        // corner, Fig. 3b) — the sum is the paper's diagonal hop.
        for b in p.blacks(chain) {
            debug_assert!(
                (self.hop[b] + p.dir).is_hop(),
                "conflicting black roles at {b}: {:?} + {:?}",
                self.hop[b],
                p.dir
            );
            self.hop[b] += p.dir;
            self.black[b] = true;
        }
        self.white[p.w1(chain)] = true;
        self.white[p.w2(chain)] = true;
        self.patterns.push(p);
    }

    /// The hop robot `i` performs due to merge roles: blacks hop their
    /// accumulated direction, whites stand still, black beats white.
    #[inline]
    pub fn merge_hop(&self, i: usize) -> Offset {
        if self.black[i] {
            self.hop[i]
        } else {
            Offset::ZERO
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chain_sim::ClosedChain;
    use grid_geom::Point;

    fn chain(coords: &[(i64, i64)]) -> ClosedChain {
        ClosedChain::new(coords.iter().map(|&(x, y)| Point::new(x, y)).collect()).unwrap()
    }

    fn scan(chain: &ClosedChain) -> MergeScan {
        let mut s = MergeScan::default();
        s.scan(chain, &GatherConfig::paper());
        s
    }

    #[test]
    fn fig1_rectangle_patterns() {
        // Figure 1: 2×3 rectangle ring. The paper's picture highlights the
        // top segment {r2,r3} hopping down (whites r1, r4); symmetrically
        // the bottom {r5,r0}, left column {r0,r1,r2} and right column
        // {r3,r4,r5} are patterns too (all four fire; the corner robots
        // combine two black roles into diagonal hops, and the ring gathers
        // in a single round).
        let c = chain(&[(0, 0), (0, 1), (0, 2), (1, 2), (1, 1), (1, 0)]);
        let s = scan(&c);
        assert_eq!(s.patterns.len(), 4);
        // Corner robots: two orthogonal black roles → diagonal hops.
        assert_eq!(s.merge_hop(2), Offset::DOWN + Offset::RIGHT);
        assert_eq!(s.merge_hop(3), Offset::DOWN + Offset::LEFT);
        assert_eq!(s.merge_hop(0), Offset::UP + Offset::RIGHT);
        assert_eq!(s.merge_hop(5), Offset::UP + Offset::LEFT);
        // Middle robots of the columns: single horizontal role.
        assert_eq!(s.merge_hop(1), Offset::RIGHT);
        assert_eq!(s.merge_hop(4), Offset::LEFT);
        // Everyone is black in some pattern and white in another.
        for i in 0..6 {
            assert!(s.black[i] && s.white[i]);
        }
    }

    #[test]
    fn fig2_k1_hairpin_tip() {
        // A bump of height 1 and width 0: w(0,0) b(0,1) w(0,0) — embedded
        // in a small ring so the chain is valid.
        // Ring: (0,0) (1,0) (1,1) (1,2) (0,2) (0,1) — and a spike:
        // simpler: square with a hairpin is hard to keep taut; test the
        // k=1 rule on a flattened 4-loop instead.
        let c = chain(&[(0, 0), (1, 0), (2, 0), (1, 0)]);
        let s = scan(&c);
        // Robot 2 folds (steps +x then -x): k=1 pattern hopping LEFT onto
        // its two coinciding neighbors; robot 0 symmetric hopping RIGHT.
        assert_eq!(s.merge_hop(2), Offset::LEFT);
        assert_eq!(s.merge_hop(0), Offset::RIGHT);
        assert!(s.black[0] && s.black[2]);
        assert!(s.white[1] && s.white[3]);
    }

    #[test]
    fn fig3b_corner_black_in_two_patterns() {
        // J-hook: horizontal segment at y=1 ending in a corner that turns
        // down and back left; the corner robot r is black in the horizontal
        // pattern (hop down) and in the vertical pattern (hop left),
        // hopping diagonally down-left.
        //
        //   w1 b b r        y=1
        //   w0 .  z a       y=0   (chain: w0 w1 b b r a z ... closed)
        //
        // Build a closed ring realizing this locally:
        //   (0,0) (0,1) (1,1) (2,1) (3,1) (3,0) (2,0) (1,0)
        // chain steps: up, right×3, down, left×2, left(!)... all unit. This
        // is a plain 4×2 rectangle; the J-hook appears in its corner roles.
        let c = chain(&[
            (0, 0),
            (0, 1),
            (1, 1),
            (2, 1),
            (3, 1),
            (3, 0),
            (2, 0),
            (1, 0),
        ]);
        let s = scan(&c);
        // Top run robots 1..=4 (k=4) hop down; bottom run robots 5..=0
        // (k=4) hop up; corner robots are black in vertical k=... here the
        // vertical runs have length 1 step (2 robots) flanked by opposite
        // horizontal steps → vertical patterns {4,5} hop left and {0,1}
        // hop right.
        assert_eq!(s.merge_hop(4), Offset::DOWN + Offset::LEFT);
        assert_eq!(s.merge_hop(5), Offset::UP + Offset::LEFT);
        assert_eq!(s.merge_hop(0), Offset::UP + Offset::RIGHT);
        assert_eq!(s.merge_hop(1), Offset::DOWN + Offset::RIGHT);
        assert_eq!(s.merge_hop(2), Offset::DOWN);
        assert_eq!(s.merge_hop(6), Offset::UP);
    }

    #[test]
    fn staircase_diamond_patterns_only_at_tips() {
        // Stairways are merge-free (Section 5.1): alternating single turns
        // put the flanking whites on opposite sides. A *closed* staircase
        // diamond must turn at its tips, and exactly those tip corners form
        // k=2 patterns — the Lemma 1 proof's structural point.
        let c = chain(&[
            (0, 0),
            (1, 0),
            (1, 1),
            (2, 1),
            (2, 2),
            (1, 2),
            (1, 1),
            (0, 1),
        ]);
        let s = scan(&c);
        assert!(
            !s.patterns.is_empty(),
            "closed chains always develop patterns at turns"
        );
        for p in &s.patterns {
            assert!(p.k <= 2, "unexpected long pattern {p:?}");
        }
    }

    #[test]
    fn open_stairway_interior_is_merge_free() {
        // A long stairway closed far away by a wide loop: no pattern may
        // have blacks strictly inside the stairway section.
        // Stairway: (0,0) R U R U R U ... (alternating +x/+y).
        let mut pts = vec![Point::new(0, 0)];
        for i in 0..6 {
            let last = *pts.last().unwrap();
            pts.push(Point::new(last.x + 1, last.y));
            pts.push(Point::new(last.x + 1, last.y + 1));
            let _ = i;
        }
        // Return path: up, then straight left above the staircase, then
        // down to close.
        let top = pts.last().unwrap().y;
        let right = pts.last().unwrap().x;
        for y in top + 1..=top + 2 {
            pts.push(Point::new(right, y));
        }
        for x in (0..right).rev() {
            pts.push(Point::new(x, top + 2));
        }
        for y in (1..top + 2).rev() {
            pts.push(Point::new(0, y));
        }
        let c = ClosedChain::new(pts).unwrap();
        let s = scan(&c);
        // Stairway interior robots: indices 1..11 (the R/U alternation).
        for p in &s.patterns {
            for b in p.blacks(&c) {
                assert!(
                    !(2..11).contains(&b),
                    "pattern {p:?} claims stairway interior robot {b}"
                );
            }
        }
    }

    #[test]
    fn long_segments_respect_view_bound() {
        // A 14-wide rectangle: top/bottom runs are longer than the viewing
        // bound (k = 15 > 10) — no horizontal pattern may fire.
        let w = 14;
        let mut pts = Vec::new();
        for x in 0..=w {
            pts.push(Point::new(x, 0));
        }
        for x in (0..=w).rev() {
            pts.push(Point::new(x, 1));
        }
        let c = ClosedChain::new(pts).unwrap();
        let s = scan(&c);
        for p in &s.patterns {
            // Only the two vertical end patterns (k = 2) fire.
            assert_eq!(p.k, 2, "pattern {p:?}");
            assert_eq!(p.dir.dy, 0);
        }
        assert_eq!(s.patterns.len(), 2);
    }

    #[test]
    fn proof_mode_restricts_k() {
        // 2×4 rectangle: horizontal runs of k=4 fire in paper mode but not
        // in proof mode (k ≤ 2).
        let c = chain(&[
            (0, 0),
            (0, 1),
            (1, 1),
            (2, 1),
            (3, 1),
            (3, 0),
            (2, 0),
            (1, 0),
        ]);
        let mut s = MergeScan::default();
        s.scan(&c, &GatherConfig::proof_mode());
        for p in &s.patterns {
            assert!(p.k <= 2);
        }
    }

    #[test]
    fn pattern_indices_helpers() {
        let c = chain(&[(0, 0), (0, 1), (0, 2), (1, 2), (1, 1), (1, 0)]);
        let s = scan(&c);
        let top = s
            .patterns
            .iter()
            .find(|p| p.dir == Offset::DOWN)
            .expect("top pattern");
        assert_eq!(top.k, 2);
        assert_eq!(top.w1(&c), c.nb(top.first_black, -1));
        assert_eq!(top.w2(&c), c.nb(top.first_black, 2));
        let blacks: Vec<usize> = top.blacks(&c).collect();
        assert_eq!(blacks.len(), 2);
    }

    /// Local-equivalence: every reported pattern fits inside the viewing
    /// range of each of its participants (chain distance from any
    /// participant to any other ≤ V), so the global scan equals per-robot
    /// local detection.
    #[test]
    fn local_equivalence() {
        let cfg = GatherConfig::paper();
        let c = chain(&[
            (0, 0),
            (0, 1),
            (1, 1),
            (2, 1),
            (3, 1),
            (3, 0),
            (2, 0),
            (1, 0),
        ]);
        let s = scan(&c);
        for p in &s.patterns {
            // Pattern spans k + 2 robots; max pairwise chain distance k+1.
            assert!(p.k < cfg.view);
        }
    }
}
