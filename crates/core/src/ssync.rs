//! `paper-ssync`: the paper's decision rule wrapped in the chain-safety
//! guard, with an adaptive local fallback — the SSYNC repair of the
//! ROADMAP's "repair the paper algorithm" item.
//!
//! The paper's algorithm is FSYNC-correct but FSYNC-*dependent*: its
//! merge patterns move adjacent blacks in lockstep, so an SSYNC scheduler
//! that wakes only one of them leaves a diagonal (broken) edge —
//! `BENCH_robustness.json` shows `ChainBroken` under every SSYNC schedule.
//! [`SsyncGathering`] repairs this in three layers:
//!
//! 1. **The chain-safety guard** (engine-side, opted into via
//!    [`Strategy::wants_chain_guard`]): every round, after the activation
//!    mask, hops that would leave a chain edge non-adjacent under the
//!    round's activation subset are cancelled to a fixpoint
//!    ([`chain_sim::safety`]). This alone makes the wrapped rule *safe*
//!    under any scheduler — no hop set that survives the guard can break
//!    the chain.
//! 2. **The paper's decision rule**, delegated verbatim to
//!    [`ClosedChainGathering`]: merge patterns, runs, folds, oscillation
//!    suppression. Under FSYNC the guard never fires (the rule is
//!    FSYNC-safe by construction), so `paper-ssync` under `Fsync` is
//!    round-for-round identical to `paper` — the FSYNC-passivity contract
//!    pinned in `tests/ssync_safety.rs`.
//! 3. **An adaptive compass fallback** for *liveness* under adversarial
//!    schedules. Merge hops whose partner sleeps are cancelled by the
//!    guard, and under e.g. round-robin parity two chain-adjacent robots
//!    are *never* co-activated, so paired merges alone cannot finish the
//!    job. Once the wrapper observes SSYNC (some computed hop did not
//!    apply — the one observation a robot can make without seeing the
//!    mask), robots the paper rule leaves idle and the merge scan leaves
//!    unrole'd apply the south-east drain rule of the `compass-se`
//!    baseline (strict local minimum of the `x − y` key hops toward its
//!    neighbors' midpoint). Each such hop is individually chain-safe, so
//!    the guard admits it under any mask, and the SE drain alone is
//!    known to gather — the paper machinery on top only accelerates it.
//!    Under FSYNC the trigger can never fire, preserving passivity.
//!
//! The wrapper stays within the paper's robot model: the fallback uses
//! the same 1-neighborhood view and the common compass the paper assumes
//! (Section 1 discusses exactly this SE-drain capability), and SSYNC
//! detection needs only a robot comparing its own intended hop with where
//! it actually ended up.

use crate::config::GatherConfig;
use crate::strategy::ClosedChainGathering;
use chain_sim::chain::{ClosedChain, SpliceLog};
use chain_sim::Strategy;
use grid_geom::{Offset, Point};

/// The paper's run-based decision rule wrapped for SSYNC safety: guard
/// opt-in + adaptive SE-drain fallback. Registry name `paper-ssync`.
pub struct SsyncGathering {
    inner: ClosedChainGathering,
    /// Where every robot ends this round if all computed hops apply —
    /// compared against reality in `post_move` to detect SSYNC.
    predicted: Vec<Point>,
    /// `predicted` refers to the current round's compute.
    prediction_live: bool,
    /// Latched the first time a computed hop failed to apply. Never
    /// unlatched: one masked round proves the scheduler is not FSYNC.
    ssync_observed: bool,
    /// Fallback SE-drain hops issued (diagnostic).
    fallback_hops: u64,
}

impl SsyncGathering {
    /// Wrap the paper rule with configuration `cfg`.
    pub fn new(cfg: GatherConfig) -> Self {
        SsyncGathering {
            inner: ClosedChainGathering::new(cfg),
            predicted: Vec::new(),
            prediction_live: false,
            ssync_observed: false,
            fallback_hops: 0,
        }
    }

    /// Wrap the paper rule with the paper's canonical configuration.
    pub fn paper() -> Self {
        Self::new(GatherConfig::paper())
    }

    /// The wrapped paper strategy (run stats, cells, last scan).
    pub fn inner(&self) -> &ClosedChainGathering {
        &self.inner
    }

    /// `true` once the wrapper has observed a non-FSYNC round (a computed
    /// hop that did not apply) and the fallback layer is armed.
    pub fn ssync_observed(&self) -> bool {
        self.ssync_observed
    }

    /// SE-drain fallback hops issued so far. Always 0 under FSYNC.
    pub fn fallback_hops(&self) -> u64 {
        self.fallback_hops
    }
}

impl Strategy for SsyncGathering {
    fn name(&self) -> &'static str {
        "paper-ssync"
    }

    fn init(&mut self, chain: &ClosedChain) {
        self.inner.init(chain);
        self.predicted.clear();
        self.prediction_live = false;
        self.ssync_observed = false;
        self.fallback_hops = 0;
    }

    fn compute(&mut self, chain: &ClosedChain, round: u64, hops: &mut [Offset]) {
        self.inner.compute(chain, round, hops);

        if self.ssync_observed {
            // Liveness layer: every strict local minimum of the SE key
            // `x − y` hops toward the midpoint of its two neighbors,
            // *overriding* its paper hop. The paper's paired merge hops
            // need a co-activated partner an adversarial schedule may
            // never grant (round-robin parity never wakes chain
            // neighbors together), so the minima — which the paper rule
            // often casts as exactly those paired blacks/whites — would
            // otherwise be cancelled by the guard forever. The drain hop
            // is individually chain-safe (it lands adjacent to both
            // standing neighbors, or merges onto them when they
            // coincide), minima are never chain-adjacent, and the SE key
            // sum strictly increases with every drain hop, which is the
            // `compass-se` termination argument — so the mix still
            // gathers; where a drain hop and a neighbor's surviving merge
            // hop conflict, the guard arbitrates.
            for (i, hop) in hops.iter_mut().enumerate() {
                let p = chain.pos(i);
                let a = chain.pos(chain.nb(i, -1));
                let b = chain.pos(chain.nb(i, 1));
                let key = |q: Point| q.x - q.y;
                if key(a) > key(p) && key(b) > key(p) {
                    *hop = Offset::new(
                        (a.x + b.x - 2 * p.x).signum(),
                        (a.y + b.y - 2 * p.y).signum(),
                    );
                    self.fallback_hops += 1;
                }
            }
        }

        self.predicted.clear();
        self.predicted
            .extend((0..chain.len()).map(|i| chain.pos(i) + hops[i]));
        self.prediction_live = true;
    }

    fn post_move(&mut self, chain: &ClosedChain, round: u64) {
        if self.prediction_live {
            self.prediction_live = false;
            if !self.ssync_observed && chain.positions() != self.predicted.as_slice() {
                self.ssync_observed = true;
            }
        }
        self.inner.post_move(chain, round);
    }

    fn post_merge(&mut self, chain: &ClosedChain, round: u64, log: &SpliceLog) {
        self.inner.post_merge(chain, round, log);
    }

    fn marker(&self, index: usize) -> Option<char> {
        self.inner.marker(index)
    }

    fn is_idle(&self) -> bool {
        // The paper rule may go idle waiting for a lockstep partner that
        // an SSYNC schedule never grants; the fallback layer can still
        // make progress, so never self-declare idle once SSYNC is
        // observed. (The engine's scheduler-scaled quiescence window
        // still catches genuine stalls.)
        if self.ssync_observed {
            false
        } else {
            self.inner.is_idle()
        }
    }

    fn wants_chain_guard(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chain_sim::{Outcome, RunLimits, SchedulerKind, Sim};
    use workloads::Family;

    fn drive(family: Family, n: usize, seed: u64, sched: SchedulerKind) -> (Outcome, u64, u64) {
        let chain = family.generate(n, seed);
        let len = chain.len() as u64;
        let d = chain.bounding().diameter() as u64;
        let s = sched.slowdown();
        let mut sim = Sim::new(chain, SsyncGathering::paper()).with_scheduler(sched.build(seed));
        let outcome = sim.run(RunLimits {
            max_rounds: (8 * len * d + 4096).saturating_mul(s),
            stall_window: (4 * len * d + 1024).saturating_mul(s),
        });
        let fallbacks = {
            let strat = sim.strategy();
            strat.fallback_hops()
        };
        (outcome, sim.guard_cancels(), fallbacks)
    }

    #[test]
    fn gathers_under_every_builtin_scheduler() {
        for &sched in &SchedulerKind::SWEEP {
            let (outcome, _, _) = drive(Family::Rectangle, 48, 0, sched);
            assert!(
                outcome.is_gathered(),
                "paper-ssync under {}: {outcome:?}",
                sched.name()
            );
        }
    }

    #[test]
    fn fsync_run_is_guard_silent_and_fallback_free() {
        let (outcome, cancels, fallbacks) = drive(Family::Rectangle, 64, 1, SchedulerKind::Fsync);
        assert!(outcome.is_gathered(), "{outcome:?}");
        assert_eq!(cancels, 0, "guard must never fire under FSYNC");
        assert_eq!(fallbacks, 0, "fallback must never arm under FSYNC");
    }

    #[test]
    fn ssync_runs_lean_on_the_guard() {
        // Round-robin parity never co-activates chain neighbors, so the
        // paper's paired merge hops *must* get cancelled along the way.
        let (outcome, cancels, _) = drive(Family::Rectangle, 48, 0, SchedulerKind::RoundRobin(2));
        assert!(outcome.is_gathered(), "{outcome:?}");
        assert!(cancels > 0, "rr2 without guard activity is implausible");
    }
}
