//! Executable derivation of the paper's constants (proof of Lemma 3.4).
//!
//! The paper fixes `L = 13` and viewing path length `V = 11` through the
//! following chain of inequalities (Section 5.2, proof of Lemma 3):
//!
//! 1. Two *sequent* runs (same start endpoint, consecutive generations)
//!    are started `L` rounds apart; the earlier one has moved `L` robots
//!    by then, but the Fig. 11(c) start operation can cost the leading run
//!    one robot of progress, so their distance is at least `D = L − 1`.
//! 2. A run passing operation takes at most 6 rounds (Fig. 14's worst
//!    case: passing starting at distance 3 while an op-b walk is in
//!    progress). During a passing, the distance to the *next* sequent run
//!    shrinks by up to 9 (6 rounds of own movement plus 3 of the
//!    definition's slack), so requiring distance ≥ 3 after a passing gives
//!    `D ≥ 12`, hence `L ≥ 13`.
//! 3. To *detect* that the sequent distance dropped below `12` (Table 1.1
//!    fires before two runs interfere), a robot must see `11` chain
//!    neighbors: `V = D − 1 = 11`.
//!
//! These functions make the arithmetic executable so the ablation
//! experiments (T9) and the config validator can reference one canonical
//! derivation, and the unit tests pin the paper's exact numbers.

/// Worst-case duration (rounds) of one run passing operation (Fig. 8/14):
/// passing triggers at distance ≤ `trigger` and both runs keep moving one
/// robot per round toward targets at most `trigger + op_b_cost` away.
pub fn passing_worst_rounds(trigger: u64, op_b_cost: u64) -> u64 {
    trigger + op_b_cost
}

/// Minimum safe distance between sequent runs so that a run never has to
/// start a new passing before finishing the previous one (the paper's
/// `D ≥ 12`): after a passing of `passing_rounds`, the distance to the
/// next sequent run shrank by at most `passing_rounds + trigger`; it must
/// still exceed `trigger`.
pub fn min_sequent_distance(trigger: u64, op_b_cost: u64) -> u64 {
    let p = passing_worst_rounds(trigger, op_b_cost);
    // D − (p + trigger) ≥ trigger  ⟺  D ≥ p + 2·trigger
    p + 2 * trigger
}

/// The pipelining period implied by a required sequent distance
/// (`L = D + 1`: one generation per period, one robot of slack for the
/// Fig. 11c start).
pub fn min_pipelining_period(trigger: u64, op_b_cost: u64) -> u64 {
    min_sequent_distance(trigger, op_b_cost) + 1
}

/// The viewing path length needed to detect a sequent-distance violation
/// (`V = D − 1`).
pub fn required_view(trigger: u64, op_b_cost: u64) -> usize {
    (min_sequent_distance(trigger, op_b_cost) - 1) as usize
}

/// The paper's parameters: trigger distance 3, op-b walk cost 3.
pub const PAPER_TRIGGER: u64 = 3;
/// Fig. 11b: "for 3 times the runners just move the run".
pub const PAPER_OP_B_COST: u64 = 3;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GatherConfig;

    #[test]
    fn paper_constants_derive() {
        // Fig. 14's longest passing: 6 rounds.
        assert_eq!(passing_worst_rounds(PAPER_TRIGGER, PAPER_OP_B_COST), 6);
        // D ≥ 12 (Section 5.2: "So we choose D ≥ 12").
        assert_eq!(min_sequent_distance(PAPER_TRIGGER, PAPER_OP_B_COST), 12);
        // "together with the above argumentation ... follows L ≥ 13".
        assert_eq!(min_pipelining_period(PAPER_TRIGGER, PAPER_OP_B_COST), 13);
        // "the viewing path length must be 11".
        assert_eq!(required_view(PAPER_TRIGGER, PAPER_OP_B_COST), 11);
    }

    #[test]
    fn paper_config_matches_derivation() {
        let cfg = GatherConfig::paper();
        assert_eq!(
            cfg.l_period,
            min_pipelining_period(PAPER_TRIGGER, PAPER_OP_B_COST)
        );
        assert_eq!(cfg.view, required_view(PAPER_TRIGGER, PAPER_OP_B_COST));
    }

    #[test]
    fn derivation_is_monotone() {
        // Larger trigger distances or slower op-b both demand larger L/V.
        assert!(min_pipelining_period(4, 3) > min_pipelining_period(3, 3));
        assert!(min_pipelining_period(3, 5) > min_pipelining_period(3, 3));
        assert!(required_view(4, 4) > required_view(3, 3));
    }
}
