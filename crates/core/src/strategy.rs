//! The complete gathering strategy (Fig. 15 of the paper).
//!
//! Every robot, every round (all from the common FSYNC snapshot):
//!
//! 1. **Merge**: if the robot is a black of a merge pattern it performs the
//!    pattern's hop (diagonal when black in two patterns, Fig. 3b); whites
//!    stand still.
//! 2. **Run operations**: every live run first checks the termination
//!    conditions of Table 1, then either continues run passing, starts run
//!    passing (opposing run within distance 3 on the other fold side),
//!    folds (Fig. 6/11a: behind-neighbor on the fold side and the next
//!    three robots ahead aligned), or walks (Fig. 11b/c). The run state
//!    then moves one robot further in its moving direction (Lemma 3.1).
//! 3. **Start new runs**: every `L`-th round, robots matching the Figure 5
//!    shapes start new runs, which act from the next round.
//!
//! After the simultaneous move the engine's merge pass splices coinciding
//! chain neighbors; runs on spliced robots terminate (Table 1.3).

use crate::config::GatherConfig;
use crate::merge::MergeScan;
use crate::quasi::{self, StartShape};
use crate::runs::{Run, RunAction, RunCell, RunMode, RunStats, StopReason};
use chain_sim::{ClosedChain, Ring, RobotId, SpliceLog, Strategy};
use grid_geom::Offset;

/// Instrumentation events (consumed by the audit module and tests).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RunEvent {
    Started {
        round: u64,
        run_id: u64,
        robot: RobotId,
        dir: i8,
        fold_side: Offset,
        shape: StartShape,
    },
    Stopped {
        round: u64,
        run_id: u64,
        robot: RobotId,
        reason: StopReason,
    },
    Folded {
        round: u64,
        run_id: u64,
        robot: RobotId,
    },
    PassingStarted {
        round: u64,
        run_id: u64,
        robot: RobotId,
        target: RobotId,
    },
}

/// The paper's algorithm as a [`Strategy`].
pub struct ClosedChainGathering {
    cfg: GatherConfig,
    scan: MergeScan,
    cells: Vec<RunCell>,
    staged: Vec<RunCell>,
    /// Fold hop each robot's runs agreed on this round (`None` = no fold).
    fold_hop: Vec<Option<Offset>>,
    /// Per-robot local-view signatures of the previous two rounds and the
    /// oscillation-suppression countdown (see `detect_oscillation`).
    sig_prev: Vec<u64>,
    sig_prev2: Vec<u64>,
    suppress: Vec<u16>,
    suppress_flags: Vec<bool>,
    /// Previous round's inherent pattern sizes, compacted through splices
    /// (drives staggered suppression expiry).
    prev_inherent_k: Vec<u8>,
    next_run_id: u64,
    stats: RunStats,
    events: Vec<RunEvent>,
    record_events: bool,
}

impl ClosedChainGathering {
    pub fn new(cfg: GatherConfig) -> Self {
        cfg.validate().expect("invalid gathering configuration");
        ClosedChainGathering {
            cfg,
            scan: MergeScan::default(),
            cells: Vec::new(),
            staged: Vec::new(),
            fold_hop: Vec::new(),
            sig_prev: Vec::new(),
            sig_prev2: Vec::new(),
            suppress: Vec::new(),
            suppress_flags: Vec::new(),
            prev_inherent_k: Vec::new(),
            next_run_id: 0,
            stats: RunStats::default(),
            events: Vec::new(),
            record_events: false,
        }
    }

    /// Paper constants.
    pub fn paper() -> Self {
        Self::new(GatherConfig::paper())
    }

    /// Record instrumentation events (drained by auditors).
    pub fn with_event_recording(mut self) -> Self {
        self.record_events = true;
        self
    }

    pub fn config(&self) -> &GatherConfig {
        &self.cfg
    }

    pub fn stats(&self) -> &RunStats {
        &self.stats
    }

    /// Current run cells (parallel to chain indices) — for auditors/tests.
    pub fn cells(&self) -> &[RunCell] {
        &self.cells
    }

    /// Drain recorded events.
    pub fn take_events(&mut self) -> Vec<RunEvent> {
        std::mem::take(&mut self.events)
    }

    /// The merge scan of the last computed round (auditors).
    pub fn last_scan(&self) -> &MergeScan {
        &self.scan
    }

    fn emit(&mut self, ev: RunEvent) {
        if self.record_events {
            self.events.push(ev);
        }
    }

    /// Local-view signature: a hash of the relative positions of the ±3
    /// chain neighbors. Constant-size robot memory, used to witness the
    /// period-2 "swap" livelock (DESIGN.md §2.3): a closed cycle of
    /// mutually interfering merge patterns makes every participant hop
    /// back and forth between exactly two local views without any merge.
    fn local_signature(chain: &ClosedChain, i: usize) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let p = chain.pos(i);
        for d in [-3isize, -2, -1, 1, 2, 3] {
            let q = chain.pos(chain.nb(i, d));
            for v in [q.x - p.x, q.y - p.y] {
                h ^= v as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        }
        h
    }

    /// Update signature histories and the suppression countdowns; fill
    /// `suppress_flags` for this round's merge scan.
    ///
    /// A robot that sees its local view alternate with period 2
    /// (`s_t == s_{t-2} ≠ s_{t-1}`) suppresses its merge participation:
    /// the oscillating region becomes mergeless, so Lemma 1's machinery
    /// (runs start on mergeless chains every L rounds) can act. Healthy
    /// dynamics never alternate — merges remove robots and runs move every
    /// round — so suppression stays dormant outside pathological closed
    /// interference cycles (DESIGN.md §2.3).
    ///
    /// Expiry is **staggered by inherent pattern size**: a robot black in a
    /// detected pattern of length `k` suppresses for `2L + 2 − min(k, L)`
    /// rounds. Larger patterns resume first and fire onto still-suppressed
    /// (standing) whites, which breaks the symmetric ties that uniform
    /// suppression cannot (e.g. a k=3 segment whose whites are k=1 blacks).
    fn detect_oscillation(&mut self, chain: &ClosedChain) {
        let n = chain.len();
        debug_assert_eq!(self.sig_prev.len(), n);
        self.suppress_flags.clear();
        self.suppress_flags.resize(n, false);
        let base = 2 * self.cfg.l_period + 2;
        // Inherent pattern sizes from the previous round's scan, compacted
        // through splices in post_merge so indices stay aligned.
        let prev_k = &self.prev_inherent_k;
        for i in 0..n {
            let sig = Self::local_signature(chain, i);
            if self.suppress[i] > 0 {
                self.suppress[i] -= 1;
            }
            if sig == self.sig_prev2[i] && sig != self.sig_prev[i] {
                let k = prev_k.get(i).copied().unwrap_or(0) as u64;
                self.suppress[i] = (base - k.min(self.cfg.l_period)) as u16;
                self.stats.suppressions += 1;
            }
            self.suppress_flags[i] = self.suppress[i] > 0;
            self.sig_prev2[i] = self.sig_prev[i];
            self.sig_prev[i] = sig;
        }
    }

    fn stop_run(&mut self, round: u64, run: &Run, robot: RobotId, reason: StopReason) {
        self.stats.record_stop(reason);
        self.emit(RunEvent::Stopped {
            round,
            run_id: run.id,
            robot,
            reason,
        });
    }

    /// Decide what one run does this round (pure w.r.t. `self` except for
    /// statistics/events, which are recorded by the caller).
    fn decide(&self, chain: &ClosedChain, round: u64, i: usize, run: &Run) -> RunAction {
        let n = chain.len();
        let d = run.dir();
        let horizon = self.cfg.view.min(n.saturating_sub(1));
        let v = Ring::with_horizon(chain, i, self.cfg.view.max(3) + 1);

        // --- Extent of the quasi line ahead (used by conditions 1 and 2):
        // a run only reasons about runs and endpoints *on its own line*.
        let brk = quasi::quasi_break_ahead(&v, d, run.fold_side, horizon as isize);
        let line_extent: isize = brk.map_or(horizon as isize, |b| b.distance);

        // --- Scan ahead: sequent runs (Table 1.1) and opposing runs. ---
        // "The next sequent run in front of it" is a same-direction run on
        // the same quasi line: same fold-side axis, not beyond the line's
        // visible end. (A run beyond a corner belongs to another line;
        // killing for it would mass-extinguish runs on square rings.)
        let same_axis = |a: Offset, b: Offset| (a.dx == 0) == (b.dx == 0);
        let mut opposing: Option<(isize, Offset)> = None;
        for j in 1..=horizon as isize {
            let idx = chain.nb(i, j * d);
            let cell = &self.cells[idx];
            if let Some(s) = cell.get(d) {
                if same_axis(s.fold_side, run.fold_side) && j <= line_extent {
                    return RunAction::Die(StopReason::SequentAhead);
                }
            }
            if opposing.is_none() {
                if let Some(o) = cell.get(-d) {
                    opposing = Some((j, o.fold_side));
                }
            }
        }

        // --- Endpoint of the quasi line ahead (Table 1.2). ---
        if let Some(b) = brk {
            let suppressed =
                self.cfg.cond2_guard && matches!(opposing, Some((j, _)) if j <= b.distance);
            if !suppressed {
                return RunAction::Die(StopReason::EndpointAhead);
            }
        }

        let mut next = *run;

        // --- Run passing (Fig. 8 / Fig. 14). ---
        if let RunMode::Passing { target } = next.mode {
            if chain.id(i) == target {
                // Arrived at the target corner: return to normal operation.
                next.mode = RunMode::Normal;
            } else if chain.index_of(target).is_none() {
                // Target corner removed by a merge (Table 1.4/5).
                return RunAction::Die(StopReason::TargetRemoved);
            } else {
                return RunAction::Advance { fold: None, next };
            }
        }

        if let Some((j, other_side)) = opposing {
            if j <= 3 && other_side != next.fold_side {
                // Non-good pair approaching: pass each other without
                // reshaping, targeting the robot the opposing run sits on.
                let target = chain.id(chain.nb(i, j * d));
                next.mode = RunMode::Passing { target };
                return RunAction::Advance { fold: None, next };
            }
        }

        // --- Reshapement (Fig. 6 / Fig. 11a). ---
        let may_fold = !self.scan.participates(i) && next.walk_budget == 0;
        if may_fold {
            let behind = v.abs(-d) - v.abs(0);
            if behind == next.fold_side {
                let f1 = v.abs(d) - v.abs(0);
                if f1.perpendicular_to(behind)
                    && v.abs(2 * d) - v.abs(d) == f1
                    && v.abs(3 * d) - v.abs(2 * d) == f1
                {
                    if next.op_c_pending {
                        // Op c (Fig. 11c): one diagonal hop, then walk.
                        next.op_c_pending = false;
                        next.walk_budget = 3;
                    }
                    return RunAction::Advance {
                        fold: Some(f1 + behind),
                        next,
                    };
                }
            }
        }
        if next.walk_budget > 0 {
            next.walk_budget -= 1;
        }
        let _ = round;
        RunAction::Advance { fold: None, next }
    }

    /// Evaluate run starts (Fig. 5) at robot `i`; returns fresh runs.
    fn try_starts(&mut self, chain: &ClosedChain, round: u64, i: usize) {
        let v = Ring::with_horizon(chain, i, self.cfg.view.max(4));
        for d in [1isize, -1] {
            if let Some((shape, fold_side)) = quasi::run_start(&v, d) {
                let slot = self.staged[i].slot_mut(d);
                if slot.is_some() {
                    // Occupied (arriving run): skip the start.
                    continue;
                }
                let run = Run {
                    id: self.next_run_id,
                    dir: d as i8,
                    fold_side,
                    born: round,
                    shape,
                    mode: RunMode::Normal,
                    walk_budget: 0,
                    op_c_pending: self.cfg.op_c_walk && shape == StartShape::CornerEnd,
                };
                self.next_run_id += 1;
                *slot = Some(run);
                match shape {
                    StartShape::StairwayEnd => self.stats.started_stairway += 1,
                    StartShape::CornerEnd => self.stats.started_corner += 1,
                }
                self.emit(RunEvent::Started {
                    round,
                    run_id: run.id,
                    robot: chain.id(i),
                    dir: run.dir,
                    fold_side,
                    shape,
                });
            }
        }
    }
}

impl Strategy for ClosedChainGathering {
    fn name(&self) -> &'static str {
        "closed-chain-gathering"
    }

    fn init(&mut self, chain: &ClosedChain) {
        let n = chain.len();
        self.cells.clear();
        self.cells.resize(n, RunCell::EMPTY);
        self.staged.clear();
        self.staged.resize(n, RunCell::EMPTY);
        self.fold_hop.clear();
        self.fold_hop.resize(n, None);
        self.sig_prev.clear();
        self.sig_prev.resize(n, u64::MAX);
        self.sig_prev2.clear();
        self.sig_prev2.resize(n, u64::MAX - 1);
        self.suppress.clear();
        self.suppress.resize(n, 0);
        self.suppress_flags.clear();
        self.suppress_flags.resize(n, false);
        self.prev_inherent_k.clear();
        self.prev_inherent_k.resize(n, 0);
    }

    fn compute(&mut self, chain: &ClosedChain, round: u64, hops: &mut [Offset]) {
        let n = chain.len();
        debug_assert_eq!(self.cells.len(), n, "cell array out of sync");

        // Step 0: oscillation detection (constant-memory symmetry breaker
        // for closed interference cycles of merge patterns).
        self.detect_oscillation(chain);

        // Step 1: merge patterns (suppressed robots' patterns do not fire).
        let flags = std::mem::take(&mut self.suppress_flags);
        self.scan.scan_suppressed(chain, &self.cfg, &flags);
        self.suppress_flags = flags;

        // Step 2: run operations.
        self.staged.clear();
        self.staged.resize(n, RunCell::EMPTY);
        self.fold_hop.clear();
        self.fold_hop.resize(n, None);
        let mut fold_conflict = false;

        // Decide all runs from the same snapshot; stage arrivals.
        for i in 0..n {
            let cell = self.cells[i];
            for run in [cell.fwd, cell.bwd].into_iter().flatten() {
                if run.born >= round {
                    // Born this round boundary: acts from the next round.
                    *self.staged[i].slot_mut(run.dir()) = Some(run);
                    continue;
                }
                match self.decide(chain, round, i, &run) {
                    RunAction::Die(reason) => {
                        self.stop_run(round, &run, chain.id(i), reason);
                    }
                    RunAction::Advance { fold, next } => {
                        if next.mode != run.mode {
                            if let RunMode::Passing { target } = next.mode {
                                self.stats.passings_started += 1;
                                self.emit(RunEvent::PassingStarted {
                                    round,
                                    run_id: run.id,
                                    robot: chain.id(i),
                                    target,
                                });
                            }
                        }
                        if let Some(h) = fold {
                            match self.fold_hop[i] {
                                None => {
                                    self.fold_hop[i] = Some(h);
                                    self.stats.folds += 1;
                                    self.emit(RunEvent::Folded {
                                        round,
                                        run_id: run.id,
                                        robot: chain.id(i),
                                    });
                                }
                                Some(existing) if existing == h => {}
                                Some(_) => {
                                    // Two runs demanding different folds on
                                    // one robot: both walk (safety).
                                    self.fold_hop[i] = None;
                                    fold_conflict = true;
                                }
                            }
                        } else {
                            self.stats.walks += 1;
                        }
                        // Move the run state one robot further (Lemma 3.1).
                        let dest = chain.nb(i, next.dir());
                        let slot = self.staged[dest].slot_mut(next.dir());
                        if slot.is_some() {
                            // Arrival collision (only possible against a
                            // just-started run; see runs.rs).
                            self.stop_run(round, &next, chain.id(dest), StopReason::SlotCollision);
                        } else {
                            *slot = Some(next);
                        }
                    }
                }
            }
        }
        let _ = fold_conflict;

        // Resolve hops: merge hop (blacks) > run fold > stand. Whites of
        // fired patterns stand still (their runs walked).
        for (i, hop) in hops.iter_mut().enumerate().take(n) {
            *hop = if self.scan.black[i] {
                self.scan.hop[i]
            } else if self.scan.white[i] {
                Offset::ZERO
            } else {
                self.fold_hop[i].unwrap_or(Offset::ZERO)
            };
        }

        // Step 3: start new runs every L-th round, from the same snapshot.
        // The started runs are placed in `staged` and act from round + 1.
        if round.is_multiple_of(self.cfg.l_period) {
            for (i, hop) in hops.iter().enumerate().take(n) {
                if *hop == Offset::ZERO && !self.scan.participates(i) {
                    self.try_starts(chain, round, i);
                }
            }
        }

        std::mem::swap(&mut self.cells, &mut self.staged);
        self.prev_inherent_k.clear();
        self.prev_inherent_k
            .extend_from_slice(&self.scan.inherent_k);
        let live: u64 = self.cells.iter().map(|c| c.count() as u64).sum();
        self.stats.max_live_runs = self.stats.max_live_runs.max(live);
    }

    fn post_merge(&mut self, chain: &ClosedChain, round: u64, log: &SpliceLog) {
        if log.is_empty() {
            debug_assert_eq!(self.cells.len(), chain.len());
            return;
        }
        // Terminate runs on removed robots and on keepers (Table 1.3), then
        // compact all per-robot state to the post-splice indexing.
        let old_n = self.cells.len();
        let mut keeper_flags = vec![false; old_n];
        for &k in &log.keeper_indices {
            keeper_flags[k] = true;
        }
        let mut new_cells = vec![RunCell::EMPTY; chain.len()];
        let mut new_sig_prev = vec![u64::MAX; chain.len()];
        let mut new_sig_prev2 = vec![u64::MAX - 1; chain.len()];
        let mut new_suppress = vec![0u16; chain.len()];
        let mut new_prev_k = vec![0u8; chain.len()];
        let mut rm = log.removed_indices.iter().peekable();
        let mut write = 0usize;
        for (read, &keeper) in keeper_flags.iter().enumerate() {
            let removed = rm.peek() == Some(&&read);
            if removed {
                rm.next();
            }
            let cell = self.cells[read];
            for run in cell.iter() {
                if removed {
                    self.stats.record_stop(StopReason::RobotRemoved);
                    self.emit(RunEvent::Stopped {
                        round,
                        run_id: run.id,
                        robot: RobotId(u64::MAX),
                        reason: StopReason::RobotRemoved,
                    });
                } else if keeper {
                    self.stop_run(round, run, chain.id(write), StopReason::Merged);
                }
            }
            if !removed {
                if !keeper {
                    new_cells[write] = cell;
                }
                // Keepers' signature histories and suppression reset (their
                // neighborhood was rewritten by the merge, and which group
                // member survives is an arbitrary labeling that must not
                // influence the dynamics); others carry their state over.
                if !keeper {
                    new_sig_prev[write] = self.sig_prev[read];
                    new_sig_prev2[write] = self.sig_prev2[read];
                    new_suppress[write] = self.suppress[read];
                    new_prev_k[write] = self.prev_inherent_k[read];
                }
                write += 1;
            }
        }
        debug_assert_eq!(write, chain.len());
        self.cells = new_cells;
        self.sig_prev = new_sig_prev;
        self.sig_prev2 = new_sig_prev2;
        self.suppress = new_suppress;
        self.prev_inherent_k = new_prev_k;
        self.staged.clear();
        self.staged.resize(chain.len(), RunCell::EMPTY);

        // Table 1.4/5: a passing run terminates when its target corner was
        // "removed because of a merge operation". Both members of a spliced
        // coincidence group count as removed — which one keeps its id is an
        // arbitrary labeling the robots cannot observe.
        let mut merged_ids: Vec<RobotId> = Vec::new();
        for ev in &log.events {
            merged_ids.push(ev.keeper);
            merged_ids.extend_from_slice(&ev.removed);
        }
        merged_ids.sort_unstable();
        for i in 0..self.cells.len() {
            let cell = self.cells[i];
            for run in cell.iter() {
                if let crate::runs::RunMode::Passing { target } = run.mode {
                    if merged_ids.binary_search(&target).is_ok() {
                        self.stop_run(round, run, chain.id(i), StopReason::TargetRemoved);
                        *self.cells[i].slot_mut(run.dir()) = None;
                    }
                }
            }
        }
    }

    fn marker(&self, index: usize) -> Option<char> {
        let cell = self.cells.get(index)?;
        match (cell.fwd.is_some(), cell.bwd.is_some()) {
            (true, true) => Some('X'),
            (true, false) => Some('>'),
            (false, true) => Some('<'),
            (false, false) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chain_sim::{Outcome, Sim};
    use grid_geom::Point;

    fn chain(coords: &[(i64, i64)]) -> ClosedChain {
        ClosedChain::new(coords.iter().map(|&(x, y)| Point::new(x, y)).collect()).unwrap()
    }

    fn rectangle(w: i64, h: i64) -> ClosedChain {
        let mut pts = vec![Point::new(0, 0)];
        pts.extend((1..w).map(|x| Point::new(x, 0)));
        pts.extend((1..h).map(|y| Point::new(w - 1, y)));
        pts.extend((1..w).map(|x| Point::new(w - 1 - x, h - 1)));
        pts.extend((1..h - 1).map(|y| Point::new(0, h - 1 - y)));
        ClosedChain::new(pts).unwrap()
    }

    #[test]
    fn fig1_gathers_in_one_round() {
        let c = chain(&[(0, 0), (0, 1), (0, 2), (1, 2), (1, 1), (1, 0)]);
        let mut sim = Sim::new(c, ClosedChainGathering::paper());
        let outcome = sim.run_default();
        assert_eq!(outcome, Outcome::Gathered { rounds: 1 });
    }

    #[test]
    fn small_rectangles_gather() {
        for (w, h) in [(3, 2), (4, 2), (5, 3), (6, 4), (8, 2), (9, 5)] {
            let c = rectangle(w, h);
            let n = c.len();
            let mut sim = Sim::new(c, ClosedChainGathering::paper());
            let outcome = sim.run_default();
            assert!(
                outcome.is_gathered(),
                "rectangle {w}x{h} (n={n}): {outcome:?}"
            );
        }
    }

    #[test]
    fn large_rectangle_gathers_linearly() {
        let c = rectangle(24, 16);
        let n = c.len() as u64;
        let mut sim = Sim::new(c, ClosedChainGathering::paper());
        let outcome = sim.run_default();
        match outcome {
            Outcome::Gathered { rounds } => {
                assert!(
                    rounds <= 27 * n + 100,
                    "rounds {rounds} exceed the 2Ln+n bound for n={n}"
                );
            }
            other => panic!("did not gather: {other:?}"),
        }
    }

    #[test]
    fn flattened_loop_zips_up() {
        // Degenerate zero-area loop: out and back along a line.
        let c = chain(&[
            (0, 0),
            (1, 0),
            (2, 0),
            (3, 0),
            (4, 0),
            (3, 0),
            (2, 0),
            (1, 0),
        ]);
        let mut sim = Sim::new(c, ClosedChainGathering::paper());
        let outcome = sim.run_default();
        assert!(outcome.is_gathered(), "{outcome:?}");
    }

    #[test]
    fn runs_started_on_big_rectangle() {
        // On a 20×12 rectangle no merge is initially possible (runs of
        // k = 19/11 > 10): progress must come from runs.
        let c = rectangle(20, 12);
        let mut sim = Sim::new(c, ClosedChainGathering::paper().with_event_recording());
        for _ in 0..3 {
            sim.step().unwrap();
        }
        let strat = sim.strategy_mut();
        let events = strat.take_events();
        let starts = events
            .iter()
            .filter(|e| matches!(e, RunEvent::Started { .. }))
            .count();
        // Four Fig. 5(ii) corners, two runs each.
        assert_eq!(starts, 8, "events: {events:?}");
        assert_eq!(strat.stats().started_corner, 8);
        let outcome = sim.run_default();
        assert!(outcome.is_gathered(), "{outcome:?}");
    }

    #[test]
    fn gathering_is_translation_invariant() {
        let a = rectangle(9, 7);
        let mut b = rectangle(9, 7);
        b.translate(Offset::new(1000, -500));
        let mut sa = Sim::new(a, ClosedChainGathering::paper());
        let mut sb = Sim::new(b, ClosedChainGathering::paper());
        let ra = sa.run_default();
        let rb = sb.run_default();
        assert!(ra.is_gathered() && rb.is_gathered());
        assert_eq!(ra.rounds(), rb.rounds());
    }
}
