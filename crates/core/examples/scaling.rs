//! Scaling probe: rounds vs n for each family.
use chain_sim::{Outcome, RunLimits, Sim};
use gathering_core::{ClosedChainGathering, GatherConfig};
use workloads::Family;

fn main() {
    let proof = std::env::args().any(|a| a == "--proof");
    let cfg = if proof {
        GatherConfig::proof_mode()
    } else {
        GatherConfig::paper()
    };
    println!("{:<18} {:>6} {:>8} {:>8}", "family", "n", "rounds", "r/n");
    for fam in Family::ALL {
        for n in [128usize, 256, 512, 1024, 2048] {
            let chain = fam.generate(n, 42);
            let len = chain.len();
            let mut sim = Sim::new(chain, ClosedChainGathering::new(cfg));
            match sim.run(RunLimits::for_chain_len(len)) {
                Outcome::Gathered { rounds } => println!(
                    "{:<18} {:>6} {:>8} {:>8.2}",
                    fam.name(),
                    len,
                    rounds,
                    rounds as f64 / len as f64
                ),
                other => println!("{:<18} {:>6} FAIL {:?}", fam.name(), len, other),
            }
        }
    }
}
