//! Watch any workload family evolve under the paper strategy.
use chain_sim::{Sim, Strategy};
use gathering_core::ClosedChainGathering;
use std::collections::BTreeMap;
use workloads::Family;

fn render(sim: &Sim<ClosedChainGathering>) -> String {
    let chain = sim.chain();
    let bbox = chain.bounding();
    let mut grid: BTreeMap<(i64, i64), char> = BTreeMap::new();
    for i in 0..chain.len() {
        let p = chain.pos(i);
        let m = sim.strategy().marker(i);
        let e = grid.entry((p.x, p.y)).or_insert('o');
        if let Some(mk) = m {
            *e = mk;
        }
    }
    let mut s = String::new();
    for y in (bbox.min.y..=bbox.max.y).rev() {
        for x in bbox.min.x..=bbox.max.x {
            s.push(*grid.get(&(x, y)).unwrap_or(&'.'));
        }
        s.push('\n');
    }
    s
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let fam = match args.get(1).map(|s| s.as_str()) {
        Some("comb") => Family::Comb,
        Some("skyline") => Family::Skyline,
        Some("random") => Family::RandomLoop,
        Some("cren") => Family::Crenellated,
        Some("diamond") => Family::StaircaseDiamond,
        Some("hairpin") => Family::HairpinFlower,
        _ => Family::Rectangle,
    };
    let n: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(112);
    let seed: u64 = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(3);
    let max: u64 = args.get(4).and_then(|s| s.parse().ok()).unwrap_or(100);
    let every: u64 = args.get(5).and_then(|s| s.parse().ok()).unwrap_or(10);
    let chain = fam.generate(n, seed);
    println!("family {} n={} seed={}", fam.name(), chain.len(), seed);
    let mut sim = Sim::new(chain, ClosedChainGathering::paper());
    for r in 0..max {
        if sim.is_gathered() {
            println!("GATHERED at round {r}");
            return;
        }
        let rep = sim.step().unwrap();
        if r % every == 0 || rep.removed > 0 {
            println!(
                "--- round {} len {} removed {} runs {} ---",
                r,
                rep.len_after,
                rep.removed,
                sim.strategy()
                    .cells()
                    .iter()
                    .map(|c| c.count())
                    .sum::<usize>()
            );
            println!("{}", render(&sim));
        }
    }
    println!("NOT gathered; len {}", sim.chain().len());
    let c = sim.chain();
    for i in 0..c.len() {
        print!("{:?} ", c.pos(i));
    }
    println!();
}
