//! Ablation probe: which merge-length bound k suffices for gathering?
//! (The Lemma-1 proof's k<=2 stalls on odd remnants; k>=3 works.)
use chain_sim::{Outcome, RunLimits, Sim};
use gathering_core::{ClosedChainGathering, GatherConfig};
use workloads::Family;
fn main() {
    for k in [2usize, 3, 4] {
        let cfg = GatherConfig {
            max_merge_k: k,
            ..GatherConfig::paper()
        };
        let mut fails = 0;
        let mut worst: f64 = 0.0;
        for fam in Family::ALL {
            for n in [128usize, 512] {
                for seed in 0..3 {
                    let chain = fam.generate(n, seed);
                    let len = chain.len();
                    let mut sim = Sim::new(chain, ClosedChainGathering::new(cfg));
                    match sim.run(RunLimits::for_chain_len(len)) {
                        Outcome::Gathered { rounds } => {
                            worst = worst.max(rounds as f64 / len as f64);
                        }
                        _ => fails += 1,
                    }
                }
            }
        }
        println!("max_merge_k={k}: failures={fails} worst r/n={worst:.2}");
    }
}
