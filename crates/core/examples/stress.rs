//! Stress harness: run the gathering strategy over every workload family
//! and random seeds, reporting rounds/n and any failures.
use chain_sim::{Outcome, RunLimits, Sim};
use gathering_core::{ClosedChainGathering, GatherConfig};
use workloads::Family;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let seeds: u64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(10);
    let proof = args.iter().any(|a| a == "--proof");
    let cfg = if proof {
        GatherConfig::proof_mode()
    } else {
        GatherConfig::paper()
    };
    let mut failures = 0usize;
    let mut worst_ratio: f64 = 0.0;
    for fam in Family::ALL {
        for n in [12usize, 24, 60, 150, 400] {
            for seed in 0..seeds {
                let chain = fam.generate(n, seed);
                let len = chain.len();
                let mut sim = Sim::new(chain, ClosedChainGathering::new(cfg));
                let outcome = sim.run(RunLimits::for_chain_len(len));
                match outcome {
                    Outcome::Gathered { rounds } => {
                        let ratio = rounds as f64 / len as f64;
                        if ratio > worst_ratio {
                            worst_ratio = ratio;
                            println!("new worst: {} n={len} seed={seed}: {rounds} rounds (ratio {ratio:.2})", fam.name());
                        }
                    }
                    other => {
                        failures += 1;
                        println!("FAIL {} n={len} seed={seed}: {other:?}", fam.name());
                    }
                }
            }
        }
    }
    println!("done; failures={failures} worst rounds/n ratio={worst_ratio:.2}");
    std::process::exit(if failures > 0 { 1 } else { 0 });
}
