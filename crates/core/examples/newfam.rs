//! Smoke probe for the spiral/serpentine/cross families.
use chain_sim::{Outcome, RunLimits, Sim};
use gathering_core::ClosedChainGathering;
use workloads::Family;
fn main() {
    for fam in [Family::Spiral, Family::Serpentine, Family::Cross] {
        for n in [40usize, 150, 400, 1000] {
            let chain = fam.generate(n, 1);
            let len = chain.len();
            let mut sim = Sim::new(chain, ClosedChainGathering::paper());
            match sim.run(RunLimits::for_chain_len(len)) {
                Outcome::Gathered { rounds } => println!(
                    "{:<12} n={:<5} rounds={:<6} r/n={:.2}",
                    fam.name(),
                    len,
                    rounds,
                    rounds as f64 / len as f64
                ),
                other => println!("{:<12} n={:<5} FAIL {:?}", fam.name(), len, other),
            }
        }
    }
}
