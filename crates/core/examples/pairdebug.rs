//! Event-stream tracer: run starts and stop reasons on a rectangle.
use chain_sim::{ClosedChain, Sim};
use gathering_core::{ClosedChainGathering, RunEvent, StopReason};
use grid_geom::Point;

fn rectangle(w: i64, h: i64) -> ClosedChain {
    let mut pts = vec![Point::new(0, 0)];
    pts.extend((1..w).map(|x| Point::new(x, 0)));
    pts.extend((1..h).map(|y| Point::new(w - 1, y)));
    pts.extend((1..w).map(|x| Point::new(w - 1 - x, h - 1)));
    pts.extend((1..h - 1).map(|y| Point::new(0, h - 1 - y)));
    ClosedChain::new(pts).unwrap()
}

fn main() {
    let c = rectangle(30, 14);
    let mut sim = Sim::new(c, ClosedChainGathering::paper().with_event_recording());
    let mut by_reason = std::collections::HashMap::new();
    for _ in 0..200 {
        if sim.is_gathered() {
            break;
        }
        sim.step().unwrap();
        for e in sim.strategy_mut().take_events() {
            match e {
                RunEvent::Stopped {
                    reason,
                    round,
                    run_id,
                    ..
                } => {
                    *by_reason.entry(format!("{reason:?}")).or_insert(0) += 1;
                    if matches!(reason, StopReason::Merged | StopReason::RobotRemoved) && round < 60
                    {
                        println!("round {round}: run {run_id} stopped {reason:?}");
                    }
                }
                RunEvent::Started {
                    round, run_id, dir, ..
                } if round < 30 => {
                    println!("round {round}: run {run_id} started dir {dir}");
                }
                _ => {}
            }
        }
    }
    println!("stop reasons: {by_reason:?}");
    println!("stats: {:?}", sim.strategy().stats());
}
