//! Ad-hoc debug harness: watch a big rectangle evolve.
use chain_sim::{ClosedChain, Sim};
use gathering_core::ClosedChainGathering;
use grid_geom::Point;
use std::collections::BTreeMap;

fn rectangle(w: i64, h: i64) -> ClosedChain {
    let mut pts = vec![Point::new(0, 0)];
    pts.extend((1..w).map(|x| Point::new(x, 0)));
    pts.extend((1..h).map(|y| Point::new(w - 1, y)));
    pts.extend((1..w).map(|x| Point::new(w - 1 - x, h - 1)));
    pts.extend((1..h - 1).map(|y| Point::new(0, h - 1 - y)));
    ClosedChain::new(pts).unwrap()
}

fn render(sim: &Sim<ClosedChainGathering>) -> String {
    let chain = sim.chain();
    let bbox = chain.bounding();
    let mut grid: BTreeMap<(i64, i64), char> = BTreeMap::new();
    use chain_sim::Strategy;
    for i in 0..chain.len() {
        let p = chain.pos(i);
        let m = sim.strategy().marker(i).unwrap_or('o');
        let e = grid.entry((p.x, p.y)).or_insert(m);
        if m != 'o' {
            *e = m;
        } else if *e == 'o' {
            *e = 'o';
        }
    }
    let mut s = String::new();
    for y in (bbox.min.y..=bbox.max.y).rev() {
        for x in bbox.min.x..=bbox.max.x {
            s.push(*grid.get(&(x, y)).unwrap_or(&'.'));
        }
        s.push('\n');
    }
    s
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let w: i64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(20);
    let h: i64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(12);
    let max: u64 = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(200);
    let c = rectangle(w, h);
    let mut sim = Sim::new(c, ClosedChainGathering::paper());
    let mut last_len = sim.chain().len();
    for r in 0..max {
        if sim.is_gathered() {
            println!("GATHERED at round {r}");
            return;
        }
        let rep = sim.step().unwrap();
        let print_it = r < 5 || rep.removed > 0 || r % 25 == 0;
        if print_it {
            println!(
                "--- round {} len {} removed {} (runs alive: {}) ---",
                r,
                rep.len_after,
                rep.removed,
                sim.strategy()
                    .cells()
                    .iter()
                    .map(|c| c.count())
                    .sum::<usize>()
            );
            println!("{}", render(&sim));
        }
        last_len = rep.len_after;
    }
    println!("NOT gathered after {max} rounds; len {last_len}");
}
