//! Find the first round where a relabeled/reversed chain diverges.
use chain_sim::invariant::same_up_to_translation_and_rotation;
use chain_sim::Sim;
use gathering_core::ClosedChainGathering;
use workloads::Family;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mode = args.get(1).cloned().unwrap_or("rotate".into());
    let seed: u64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(0);
    let a = Family::Skyline.generate(120, seed);
    let mut b = Family::Skyline.generate(120, seed);
    match mode.as_str() {
        "rotate" => b.rotate_origin(1),
        "reverse" => b.reverse_orientation(),
        _ => {}
    }
    let mut sa = Sim::new(a, ClosedChainGathering::paper());
    let mut sb = Sim::new(b, ClosedChainGathering::paper());
    for r in 0..5000 {
        if sa.is_gathered() != sb.is_gathered() {
            println!(
                "gathered-divergence at round {r}: a={} b={}",
                sa.is_gathered(),
                sb.is_gathered()
            );
            return;
        }
        if sa.is_gathered() {
            println!("both gathered at {r}");
            return;
        }
        if !same_up_to_translation_and_rotation(sa.chain(), sb.chain()) {
            println!(
                "DIVERGED at round {r}: len a={} b={}",
                sa.chain().len(),
                sb.chain().len()
            );
            for i in 0..sa.chain().len().min(200) {
                print!("{:?} ", sa.chain().pos(i));
            }
            println!();
            for i in 0..sb.chain().len().min(200) {
                print!("{:?} ", sb.chain().pos(i));
            }
            println!();
            return;
        }
        sa.step().unwrap();
        sb.step().unwrap();
    }
    println!("no divergence found");
}
