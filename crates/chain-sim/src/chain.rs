//! The closed chain data structure.
//!
//! A [`ClosedChain`] is the cyclic sequence `r_0, …, r_{n-1}` of the paper.
//! Between rounds it is *taut*: every chain edge is a unit step (coinciding
//! chain neighbors have been merged away). During a round, simultaneous
//! hops may make chain neighbors coincide; the [`ClosedChain::merge_pass`]
//! then splices the chain exactly as the paper's merge operation does
//! (Fig. 1): "their neighborhoods are merged and one of both is removed".
//!
//! Robots that coincide but are *not* chain neighbors are left alone
//! (explicitly so in the paper — the chain may cross itself).

use crate::robot::RobotId;
use grid_geom::{chain_adjacent, Offset, Point, Rect};

/// Errors detected by [`ClosedChain::validate`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ChainError {
    /// Fewer than 2 robots cannot form a (meaningful) closed chain.
    TooShort {
        /// Offending chain length.
        len: usize,
    },
    /// Chain neighbors further than one grid step apart — the chain broke.
    Disconnected {
        /// Index of the first robot of the broken edge.
        index: usize,
        /// Position of the robot at `index`.
        a: Point,
        /// Position of its chain successor.
        b: Point,
    },
    /// Chain neighbors on the same point outside a merge pass (the chain
    /// must be taut between rounds).
    CoincidentNeighbors {
        /// Index of the first robot of the coinciding pair.
        index: usize,
        /// The shared position.
        at: Point,
    },
    /// A robot hop with a component outside `{-1, 0, 1}`.
    IllegalHop {
        /// Index of the robot with the illegal hop.
        index: usize,
        /// The rejected hop.
        hop: Offset,
    },
}

impl std::fmt::Display for ChainError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ChainError::TooShort { len } => write!(f, "chain too short: {len} robots"),
            ChainError::Disconnected { index, a, b } => {
                write!(
                    f,
                    "chain disconnected between index {index} at {a} and its successor at {b}"
                )
            }
            ChainError::CoincidentNeighbors { index, at } => {
                write!(
                    f,
                    "chain neighbors {index} and successor coincide at {at} outside a merge pass"
                )
            }
            ChainError::IllegalHop { index, hop } => {
                write!(f, "illegal hop {hop} for robot at index {index}")
            }
        }
    }
}

impl std::error::Error for ChainError {}

/// One merge of the merge pass: `removed` robots were spliced out because
/// they coincided with chain neighbor `keeper`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MergeEvent {
    /// Id of the surviving robot of the coincidence group.
    pub keeper: RobotId,
    /// Ids of the removed robots (≥ 1).
    pub removed: Vec<RobotId>,
    /// Grid point where the merge happened.
    pub at: Point,
}

/// Result of a merge pass: which (pre-splice) indices were removed plus the
/// merge events. Strategies use this to keep their per-robot state arrays in
/// sync with the chain.
#[derive(Clone, Debug, Default)]
pub struct SpliceLog {
    /// Pre-splice indices removed, strictly ascending.
    pub removed_indices: Vec<usize>,
    /// Pre-splice index of the keeper for each removed index (parallel to
    /// `removed_indices`).
    pub keeper_indices: Vec<usize>,
    /// Merge events (one per coincidence group).
    pub events: Vec<MergeEvent>,
}

impl SpliceLog {
    /// Reset the log for the next merge pass (buffers keep their capacity).
    pub fn clear(&mut self) {
        self.removed_indices.clear();
        self.keeper_indices.clear();
        self.events.clear();
    }

    /// Number of robots removed.
    pub fn removed_count(&self) -> usize {
        self.removed_indices.len()
    }

    /// `true` if nothing merged.
    pub fn is_empty(&self) -> bool {
        self.removed_indices.is_empty()
    }

    /// Map a pre-splice index to its post-splice index, or `None` if the
    /// robot at that index was removed.
    pub fn remap(&self, old: usize) -> Option<usize> {
        match self.removed_indices.binary_search(&old) {
            Ok(_) => None,
            Err(shift) => Some(old - shift),
        }
    }
}

/// The closed chain of robots (struct-of-arrays layout: positions and ids).
#[derive(Clone, Debug)]
pub struct ClosedChain {
    pos: Vec<Point>,
    id: Vec<RobotId>,
}

impl ClosedChain {
    /// Build a chain from positions; assigns fresh ids `r0, r1, …`.
    ///
    /// Returns an error unless the sequence is a valid taut closed chain:
    /// every cyclically-consecutive pair differs by exactly one axis step.
    pub fn new(positions: Vec<Point>) -> Result<Self, ChainError> {
        let n = positions.len();
        let chain = ClosedChain {
            id: (0..n as u64).map(RobotId).collect(),
            pos: positions,
        };
        chain.validate()?;
        Ok(chain)
    }

    /// Number of robots currently on the chain.
    #[inline]
    pub fn len(&self) -> usize {
        self.pos.len()
    }

    /// `true` if the chain holds no robots (never the case for a validated
    /// chain; provided for the `len`/`is_empty` API convention).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.pos.is_empty()
    }

    /// Cyclic index normalization: maps any signed offset from an index into
    /// `0..n`.
    #[inline]
    pub fn cyc(&self, i: isize) -> usize {
        let n = self.pos.len() as isize;
        (((i % n) + n) % n) as usize
    }

    /// Neighbor `delta` steps away from `i` along the chain (cyclic).
    #[inline]
    pub fn nb(&self, i: usize, delta: isize) -> usize {
        self.cyc(i as isize + delta)
    }

    /// Position of robot `i`.
    #[inline]
    pub fn pos(&self, i: usize) -> Point {
        self.pos[i]
    }

    /// Id of robot `i`.
    #[inline]
    pub fn id(&self, i: usize) -> RobotId {
        self.id[i]
    }

    /// All positions (chain order).
    #[inline]
    pub fn positions(&self) -> &[Point] {
        &self.pos
    }

    /// All ids (chain order).
    #[inline]
    pub fn ids(&self) -> &[RobotId] {
        &self.id
    }

    /// Chain-order index of the robot with id `id` (linear scan — intended
    /// for tests and auditors, not hot paths).
    pub fn index_of(&self, id: RobotId) -> Option<usize> {
        self.id.iter().position(|&x| x == id)
    }

    /// The step from robot `i` to its successor (`pos[i+1] - pos[i]`).
    #[inline]
    pub fn step(&self, i: usize) -> Offset {
        let j = self.nb(i, 1);
        self.pos[j] - self.pos[i]
    }

    /// Bounding box of all robots.
    pub fn bounding(&self) -> Rect {
        Rect::bounding(self.pos.iter().copied()).expect("chain is non-empty")
    }

    /// The paper's gathering criterion: all robots within a 2×2 subgrid.
    pub fn is_gathered(&self) -> bool {
        self.bounding().is_gathered_2x2()
    }

    /// Validate the taut closed-chain invariant.
    pub fn validate(&self) -> Result<(), ChainError> {
        let n = self.pos.len();
        if n < 2 {
            // A chain of 1 robot is the fully merged terminal state; treat
            // length 0/1 as valid terminals except for construction.
            return if n == 1 {
                Ok(())
            } else {
                Err(ChainError::TooShort { len: n })
            };
        }
        for i in 0..n {
            let a = self.pos[i];
            let b = self.pos[self.nb(i, 1)];
            if a == b {
                return Err(ChainError::CoincidentNeighbors { index: i, at: a });
            }
            if !chain_adjacent(a, b) {
                return Err(ChainError::Disconnected { index: i, a, b });
            }
        }
        Ok(())
    }

    /// Check connectivity only (used mid-round, where coincidences are
    /// expected and legal until the merge pass runs).
    pub fn check_connected(&self) -> Result<(), ChainError> {
        let n = self.pos.len();
        for i in 0..n {
            let a = self.pos[i];
            let b = self.pos[self.nb(i, 1)];
            if !chain_adjacent(a, b) {
                return Err(ChainError::Disconnected { index: i, a, b });
            }
        }
        Ok(())
    }

    /// Apply one hop per robot simultaneously (the move step of FSYNC).
    ///
    /// Hops must have components in `{-1, 0, 1}`. Connectivity is checked
    /// after application; on failure the chain state is the (broken)
    /// post-move state, so callers can render diagnostics.
    pub fn apply_hops(&mut self, hops: &[Offset]) -> Result<(), ChainError> {
        assert_eq!(hops.len(), self.pos.len(), "one hop per robot");
        for (i, h) in hops.iter().enumerate() {
            if !h.is_hop() {
                return Err(ChainError::IllegalHop { index: i, hop: *h });
            }
        }
        for (p, h) in self.pos.iter_mut().zip(hops) {
            *p += *h;
        }
        self.check_connected()
    }

    /// The merge pass: splice out robots coinciding with chain neighbors.
    ///
    /// Maximal groups of cyclically-consecutive robots on one grid point are
    /// collapsed to their first member (first in chain order, with wrapping
    /// groups anchored at their true start). The neighborhoods merge exactly
    /// as in the paper: the keeper inherits the group's outside neighbors.
    ///
    /// Returns the number of robots removed; details land in `log`.
    pub fn merge_pass(&mut self, log: &mut SpliceLog) -> usize {
        log.clear();
        let n = self.pos.len();
        if n < 2 {
            return 0;
        }

        // Everyone on one point and n ≥ 2: collapse to a single robot.
        if self.pos.iter().all(|&p| p == self.pos[0]) {
            let keeper = self.id[0];
            let at = self.pos[0];
            let removed: Vec<RobotId> = self.id[1..].to_vec();
            log.removed_indices.extend(1..n);
            log.keeper_indices.extend(std::iter::repeat_n(0, n - 1));
            log.events.push(MergeEvent {
                keeper,
                removed,
                at,
            });
            self.pos.truncate(1);
            self.id.truncate(1);
            return n - 1;
        }

        // Find the start of a group boundary so groups never wrap: an index
        // whose predecessor sits on a different point.
        let mut anchor = 0;
        while self.pos[self.nb(anchor, -1)] == self.pos[anchor] {
            anchor += 1; // terminates: not all positions equal
        }

        // Walk the cycle from the anchor, grouping equal consecutive
        // positions.
        let mut k = 0;
        while k < n {
            let gi = (anchor + k) % n;
            let p = self.pos[gi];
            let mut glen = 1;
            while glen < n && self.pos[(anchor + k + glen) % n] == p {
                glen += 1;
            }
            if glen > 1 {
                let keeper_idx = gi;
                let mut removed = Vec::with_capacity(glen - 1);
                for j in 1..glen {
                    let ri = (anchor + k + j) % n;
                    removed.push(self.id[ri]);
                    log.removed_indices.push(ri);
                    log.keeper_indices.push(keeper_idx);
                }
                log.events.push(MergeEvent {
                    keeper: self.id[keeper_idx],
                    removed,
                    at: p,
                });
            }
            k += glen;
        }

        if log.removed_indices.is_empty() {
            return 0;
        }

        // Sort parallel arrays by removed index (ascending) for remap().
        let mut order: Vec<usize> = (0..log.removed_indices.len()).collect();
        order.sort_unstable_by_key(|&i| log.removed_indices[i]);
        let removed_sorted: Vec<usize> = order.iter().map(|&i| log.removed_indices[i]).collect();
        let keepers_sorted: Vec<usize> = order.iter().map(|&i| log.keeper_indices[i]).collect();
        log.removed_indices = removed_sorted;
        log.keeper_indices = keepers_sorted;

        // Splice out removed indices (single compaction sweep).
        let mut write = 0;
        let mut rm_iter = log.removed_indices.iter().peekable();
        for read in 0..n {
            if rm_iter.peek() == Some(&&read) {
                rm_iter.next();
                continue;
            }
            self.pos[write] = self.pos[read];
            self.id[write] = self.id[read];
            write += 1;
        }
        self.pos.truncate(write);
        self.id.truncate(write);
        log.removed_indices.len()
    }

    /// Sum of chain edge lengths (all 1 when taut) — the chain length in
    /// the paper's sense is simply `len()`, provided here for reports.
    pub fn edge_count(&self) -> usize {
        self.pos.len()
    }

    /// Test/workload helper: rotate the chain origin (`r_0`) by `k`
    /// positions. The configuration is unchanged; indistinguishability means
    /// strategies must behave identically (checked by symmetry tests).
    pub fn rotate_origin(&mut self, k: usize) {
        let n = self.pos.len();
        if n == 0 {
            return;
        }
        let k = k % n;
        self.pos.rotate_left(k);
        self.id.rotate_left(k);
    }

    /// Test/workload helper: reverse chain orientation. The paper's chains
    /// have a local orientation; the algorithm must be equivariant under
    /// reversing it (checked by symmetry tests).
    pub fn reverse_orientation(&mut self) {
        self.pos.reverse();
        self.id.reverse();
    }

    /// Translate all robots by `o` (symmetry tests: no global coordinates).
    pub fn translate(&mut self, o: Offset) {
        for p in &mut self.pos {
            *p += o;
        }
    }

    /// Apply a grid isometry to all positions: rotate by 90° `quarter`
    /// times counter-clockwise around the origin, then mirror x if asked.
    /// (Symmetry tests: no compass.)
    pub fn transform(&mut self, quarters: u8, mirror_x: bool) {
        for p in &mut self.pos {
            let mut q = *p;
            for _ in 0..(quarters % 4) {
                q = Point::new(-q.y, q.x);
            }
            if mirror_x {
                q = Point::new(-q.x, q.y);
            }
            *p = q;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain(coords: &[(i64, i64)]) -> ClosedChain {
        ClosedChain::new(coords.iter().map(|&(x, y)| Point::new(x, y)).collect()).unwrap()
    }

    fn square4() -> ClosedChain {
        chain(&[(0, 0), (0, 1), (1, 1), (1, 0)])
    }

    #[test]
    fn construction_validates() {
        assert!(ClosedChain::new(vec![]).is_err());
        // Gap breaks the chain.
        assert!(ClosedChain::new(vec![Point::new(0, 0), Point::new(2, 0)]).is_err());
        // Diagonal neighbors are not chain-adjacent.
        assert!(ClosedChain::new(vec![Point::new(0, 0), Point::new(1, 1)]).is_err());
        // Coincident neighbors rejected at construction.
        assert!(ClosedChain::new(vec![Point::new(0, 0), Point::new(0, 0)]).is_err());
        // Minimal legal chain: two robots on adjacent points.
        let c = ClosedChain::new(vec![Point::new(0, 0), Point::new(1, 0)]).unwrap();
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn cyclic_indexing() {
        let c = square4();
        assert_eq!(c.nb(0, 1), 1);
        assert_eq!(c.nb(0, -1), 3);
        assert_eq!(c.nb(3, 1), 0);
        assert_eq!(c.nb(1, 6), 3);
        assert_eq!(c.nb(1, -6), 3);
        assert_eq!(c.cyc(-1), 3);
        assert_eq!(c.cyc(4), 0);
    }

    #[test]
    fn steps_are_unit_on_taut_chain() {
        let c = square4();
        for i in 0..c.len() {
            assert!(c.step(i).is_unit_step(), "step {i}");
        }
    }

    #[test]
    fn bounding_and_gathered() {
        let c = square4();
        assert!(c.is_gathered());
        let big = chain(&[(0, 0), (1, 0), (2, 0), (2, 1), (1, 1), (0, 1)]);
        assert!(!big.is_gathered());
        assert_eq!(big.bounding().width(), 3);
        assert_eq!(big.bounding().height(), 2);
    }

    #[test]
    fn apply_hops_moves_simultaneously() {
        let mut c = chain(&[(0, 0), (1, 0), (2, 0), (2, 1), (1, 1), (0, 1)]);
        let hops = vec![Offset::ZERO; 6];
        c.apply_hops(&hops).unwrap();
        assert_eq!(c.pos(0), Point::new(0, 0));
        // Illegal hop rejected.
        let mut bad = vec![Offset::ZERO; 6];
        bad[2] = Offset::new(2, 0);
        assert!(matches!(
            c.apply_hops(&bad),
            Err(ChainError::IllegalHop { index: 2, .. })
        ));
    }

    #[test]
    fn merge_pass_collapses_neighbor_coincidence() {
        // Figure 1 of the paper: r2 and r3 hop down onto r1 and r4.
        // Chain: r0(0,0) r1(0,1) r2(0,2) r3(1,2) r4(1,1) r5(1,0), closed.
        let mut c = chain(&[(0, 0), (0, 1), (0, 2), (1, 2), (1, 1), (1, 0)]);
        let hops = vec![
            Offset::ZERO,
            Offset::ZERO,
            Offset::DOWN,
            Offset::DOWN,
            Offset::ZERO,
            Offset::ZERO,
        ];
        c.apply_hops(&hops).unwrap();
        let mut log = SpliceLog::default();
        let removed = c.merge_pass(&mut log);
        assert_eq!(removed, 2);
        assert_eq!(c.len(), 4);
        c.validate().unwrap();
        assert!(c.is_gathered());
        // Keeper of each pair is the first of the coincidence group in
        // chain order: r1 keeps (r2 removed), r3 keeps (r4 removed).
        assert_eq!(log.events.len(), 2);
    }

    #[test]
    fn merge_pass_handles_groups_of_three() {
        // Three consecutive robots on one point (Fig. 3b aftermath).
        let mut c = chain(&[(0, 0), (1, 0), (1, 1), (0, 1)]);
        let hops = vec![
            Offset::ZERO,
            Offset::new(-1, 0),
            Offset::new(-1, -1),
            Offset::new(0, -1),
        ];
        c.apply_hops(&hops).unwrap();
        // Now all four robots are at (0,0).
        let mut log = SpliceLog::default();
        let removed = c.merge_pass(&mut log);
        assert_eq!(removed, 3);
        assert_eq!(c.len(), 1);
        assert_eq!(log.events.len(), 1);
        assert_eq!(log.events[0].removed.len(), 3);
    }

    #[test]
    fn merge_pass_wrapping_group() {
        // Fig. 1 configuration with the chain origin rotated so one
        // coincidence group wraps the index origin {r5, r0}.
        let mut c = chain(&[(0, 2), (1, 2), (1, 1), (1, 0), (0, 0), (0, 1)]);
        let hops = vec![
            Offset::DOWN,
            Offset::DOWN,
            Offset::ZERO,
            Offset::ZERO,
            Offset::ZERO,
            Offset::ZERO,
        ];
        c.apply_hops(&hops).unwrap();
        assert_eq!(c.pos(0), c.pos(5)); // wrapping coincidence
        assert_eq!(c.pos(1), c.pos(2));
        let mut log = SpliceLog::default();
        let removed = c.merge_pass(&mut log);
        assert_eq!(removed, 2);
        assert_eq!(c.len(), 4);
        c.validate().unwrap();
        assert_eq!(log.events.len(), 2);
        // Exactly one of {0, 5} was removed, and remap agrees.
        let wrap_gone = log.removed_indices.iter().any(|&i| i == 0 || i == 5);
        assert!(wrap_gone);
        for &gone in &log.removed_indices {
            assert_eq!(log.remap(gone), None);
        }
    }

    #[test]
    fn merge_pass_ignores_non_neighbor_coincidence() {
        // A chain crossing itself: two robots share a point but are not
        // chain neighbors — must NOT merge (explicit in the paper).
        // Figure-eight-ish: walk right, up, left, down through the middle.
        let mut c = chain(&[
            (0, 0),
            (1, 0),
            (1, 1),
            (0, 1),
            (0, 0),
            (-1, 0),
            (-1, -1),
            (0, -1),
        ]);
        assert_eq!(c.pos(0), c.pos(4));
        let mut log = SpliceLog::default();
        let removed = c.merge_pass(&mut log);
        assert_eq!(removed, 0);
        assert_eq!(c.len(), 8);
        c.validate().unwrap();
    }

    #[test]
    fn splice_log_remap() {
        let log = SpliceLog {
            removed_indices: vec![2, 5],
            keeper_indices: vec![1, 4],
            events: vec![],
        };
        assert_eq!(log.remap(0), Some(0));
        assert_eq!(log.remap(1), Some(1));
        assert_eq!(log.remap(2), None);
        assert_eq!(log.remap(3), Some(2));
        assert_eq!(log.remap(4), Some(3));
        assert_eq!(log.remap(5), None);
        assert_eq!(log.remap(6), Some(4));
    }

    #[test]
    fn symmetry_helpers() {
        let mut c = square4();
        let before = c.positions().to_vec();
        c.rotate_origin(2);
        assert_eq!(c.pos(0), before[2]);
        c.reverse_orientation();
        c.validate().unwrap();
        c.translate(Offset::new(10, -3));
        c.validate().unwrap();
        c.transform(1, false);
        c.validate().unwrap();
        c.transform(3, true);
        c.validate().unwrap();
    }

    #[test]
    fn total_collapse() {
        let mut c = chain(&[(0, 0), (1, 0)]);
        let hops = vec![Offset::ZERO, Offset::new(-1, 0)];
        c.apply_hops(&hops).unwrap();
        let mut log = SpliceLog::default();
        assert_eq!(c.merge_pass(&mut log), 1);
        assert_eq!(c.len(), 1);
        assert!(c.is_gathered());
    }
}
