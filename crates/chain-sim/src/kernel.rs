//! Specialized round kernels over [`PackedChain`] state: the
//! data-oriented fast path of the engine.
//!
//! The boxed engine ([`Sim`](crate::Sim)) pays for its composability —
//! `Box<dyn Strategy>` virtual dispatch, a `Vec<Point>` it rewrites
//! every round, a full connectivity validation pass, a full merge scan,
//! and a full bounding-box scan for the gathering check. None of that
//! is needed on the *observer-free* path, where nothing inspects
//! intermediate state: a round is then a pure function of the packed
//! edge codes, and every per-robot geometric predicate collapses to a
//! table lookup over 2-bit edge codes and 4-bit hop codes.
//!
//! This module provides the machinery shared by all kernels:
//!
//! * hop codes and the edge-update tables ([`HOP_ZERO`],
//!   [`APPLY_EDGE`]): a post-hop edge is `old + hop(right) − hop(left)`,
//!   precomputed for all `4 × 9 × 9` combinations;
//! * [`KernelChain`] — packed state plus the round apply/merge engine
//!   (sparse apply for never-adjacent mover sets, dense apply for
//!   whole-chain hop vectors, zero-edge splice-out, and an amortized
//!   O(1) gathering check via bounding-box staleness bounds);
//! * [`ActivationRule`] — `Copy` monomorphic mirrors of the boxed
//!   [`Scheduler`](crate::Scheduler) kinds, activation formulas shared
//!   with the boxed implementations so the schedules cannot drift;
//! * [`RoundKernel`] / [`KernelSim`] — the specialized round loop,
//!   replicating [`Sim::step`](crate::Sim::step) /
//!   [`Sim::run`](crate::Sim::run) byte-for-byte: identical
//!   [`RoundSummary`] streams, identical [`Outcome`]s, identical
//!   [`Progress`] accounting, identical [`ChainError`]s on breaks.
//!
//! Strategy-specific kernels (compass-se, naive-local, global-vision)
//! live with their decision rules in the `baselines` crate; the trivial
//! [`StandKernel`] lives here. The boxed engine remains the reference
//! implementation and the only path that supports observers; the
//! differential suite (`tests/kernel_diff.rs`) and the PR 4 golden
//! fingerprints pin the byte-identity.

use grid_geom::{Offset, Point, Rect};

use crate::chain::ChainError;
use crate::engine::{Outcome, RoundSummary, RunLimits, QUIESCENCE_WINDOW};
use crate::packed::{edge_offset, PackedChain, LANES_PER_WORD};
use crate::scheduler::draw;
use crate::trace::Progress;

/// Hop code of the zero hop (stay). Hop codes encode a legal hop
/// `(dx, dy) ∈ {-1, 0, 1}²` as `(dx + 1) · 3 + (dy + 1)`, i.e. `0..9`.
pub const HOP_ZERO: u8 = 4;

/// The offset a hop code denotes.
#[inline]
pub const fn hop_offset(hop: u8) -> Offset {
    Offset::new((hop / 3) as i64 - 1, (hop % 3) as i64 - 1)
}

/// The hop code of a legal hop offset.
///
/// # Panics
/// In debug builds, if `o` is not a legal hop.
#[inline]
pub fn hop_code(o: Offset) -> u8 {
    debug_assert!(o.is_hop());
    ((o.dx + 1) * 3 + (o.dy + 1)) as u8
}

/// [`APPLY_EDGE`] marker: the edge collapsed to zero (the two robots
/// now coincide — a merge candidate).
pub const EDGE_COLLAPSED: u8 = 4;
/// [`APPLY_EDGE`] marker: the edge left chain adjacency (the hops break
/// the chain).
pub const EDGE_BROKEN: u8 = u8::MAX;

/// Edge-update table: `APPLY_EDGE[e][hl][hr]` is the state of an edge
/// with code `e` after its left robot hops `hl` and its right robot
/// hops `hr` (new offset = `edge + hop(hr) − hop(hl)`): a direction
/// code `0..4`, [`EDGE_COLLAPSED`], or [`EDGE_BROKEN`].
pub static APPLY_EDGE: [[[u8; 9]; 9]; 4] = build_apply_edge();

const fn build_apply_edge() -> [[[u8; 9]; 9]; 4] {
    let mut t = [[[0u8; 9]; 9]; 4];
    let mut e = 0;
    while e < 4 {
        let eo = edge_offset(e as u8);
        let mut hl = 0;
        while hl < 9 {
            let lo = hop_offset(hl as u8);
            let mut hr = 0;
            while hr < 9 {
                let ro = hop_offset(hr as u8);
                let dx = eo.dx + ro.dx - lo.dx;
                let dy = eo.dy + ro.dy - lo.dy;
                t[e][hl][hr] = match (dx, dy) {
                    (0, 0) => EDGE_COLLAPSED,
                    (1, 0) => crate::packed::EDGE_E,
                    (0, -1) => crate::packed::EDGE_S,
                    (-1, 0) => crate::packed::EDGE_W,
                    (0, 1) => crate::packed::EDGE_N,
                    _ => EDGE_BROKEN,
                };
                hr += 1;
            }
            hl += 1;
        }
        e += 1;
    }
    t
}

/// Count the robots with a nonzero hop, 8 hop bytes per machine word
/// (the engine's `moved` statistic, and the idle-scan predicate).
pub fn count_moved(hops: &[u8]) -> usize {
    const LOW7: u64 = 0x7f7f_7f7f_7f7f_7f7f;
    const ZEROS: u64 = u64::from_ne_bytes([HOP_ZERO; 8]);
    let mut stay = 0u32;
    let mut chunks = hops.chunks_exact(8);
    for c in chunks.by_ref() {
        let x = u64::from_ne_bytes(c.try_into().expect("8-byte chunk")) ^ ZEROS;
        // Exact zero-byte detector: high bit set per zero byte, all
        // other bits clear.
        stay += (!((((x & LOW7) + LOW7) | x) | LOW7)).count_ones();
    }
    let tail = chunks
        .remainder()
        .iter()
        .filter(|&&h| h == HOP_ZERO)
        .count();
    hops.len() - stay as usize - tail
}

/// Monomorphic activation schedule: the kernel-side mirror of
/// [`Scheduler`](crate::Scheduler). Activation is a pure function of
/// `(rule, round, index)`, exactly as the boxed kinds compute it — the
/// randomized rules share the boxed schedulers' draw function, so the
/// two paths cannot drift.
pub trait ActivationRule: Copy + Send {
    /// `true` when the rule activates every robot every round; lets
    /// kernels skip per-robot activation tests entirely (FSYNC).
    const ALWAYS_ON: bool = false;

    /// Is robot `index` active in `round`?
    fn active(&self, round: u64, index: usize) -> bool;

    /// Inverse duty cycle, mirroring
    /// [`Scheduler::slowdown`](crate::Scheduler::slowdown).
    fn slowdown(&self) -> u64 {
        1
    }
}

/// FSYNC: everyone, every round.
#[derive(Clone, Copy, Debug, Default)]
pub struct FsyncRule;

impl ActivationRule for FsyncRule {
    const ALWAYS_ON: bool = true;
    #[inline]
    fn active(&self, _round: u64, _index: usize) -> bool {
        true
    }
}

/// Round-robin residue classes, mirroring
/// [`RoundRobinSsync`](crate::scheduler::RoundRobinSsync).
#[derive(Clone, Copy, Debug)]
pub struct RoundRobinRule {
    groups: u64,
}

impl RoundRobinRule {
    /// A round-robin rule over `groups` classes (clamped to ≥ 1).
    pub fn new(groups: u32) -> Self {
        RoundRobinRule {
            groups: u64::from(groups.max(1)),
        }
    }
}

impl ActivationRule for RoundRobinRule {
    #[inline]
    fn active(&self, round: u64, index: usize) -> bool {
        self.groups <= 1 || (index as u64) % self.groups == round % self.groups
    }
    fn slowdown(&self) -> u64 {
        self.groups
    }
}

/// Independent seeded coin, mirroring
/// [`SeededRandomSsync`](crate::scheduler::SeededRandomSsync).
#[derive(Clone, Copy, Debug)]
pub struct RandomRule {
    seed: u64,
    percent: u64,
}

impl RandomRule {
    /// Activation probability `percent`% (clamped to 1..=100) from
    /// `seed`.
    pub fn new(seed: u64, percent: u8) -> Self {
        RandomRule {
            seed,
            percent: u64::from(percent.clamp(1, 100)),
        }
    }
}

impl ActivationRule for RandomRule {
    #[inline]
    fn active(&self, round: u64, index: usize) -> bool {
        if self.percent >= 100 {
            return true;
        }
        let coin = ((u128::from(draw(self.seed, round, index)) * 100) >> 64) as u64;
        coin < self.percent
    }
    fn slowdown(&self) -> u64 {
        100u64.div_ceil(self.percent.max(1))
    }
}

/// Adversarial k-fair activation, mirroring
/// [`KFair`](crate::scheduler::KFair).
#[derive(Clone, Copy, Debug)]
pub struct KFairRule {
    seed: u64,
    k: u64,
}

impl KFairRule {
    /// A k-fair adversary with period `k` (clamped to ≥ 1) and a seeded
    /// phase assignment.
    pub fn new(seed: u64, k: u32) -> Self {
        KFairRule {
            seed,
            k: u64::from(k.max(1)),
        }
    }
}

impl ActivationRule for KFairRule {
    #[inline]
    fn active(&self, round: u64, index: usize) -> bool {
        if self.k <= 1 {
            return true;
        }
        let phase = draw(self.seed, 0, index) % self.k;
        round % self.k == phase
    }
    fn slowdown(&self) -> u64 {
        self.k
    }
}

/// Scratch word buffer for the dense apply and the merge repack; both
/// accumulate 2-bit lanes in a register and store whole words, then swap
/// the buffer with the chain's codes on commit (so the old buffer is
/// reused next round).
#[derive(Default)]
struct LaneWriter {
    words: Vec<u64>,
    filled: usize,
}

impl LaneWriter {
    fn reset(&mut self, lanes: usize) {
        self.words.clear();
        self.words.resize(lanes.div_ceil(LANES_PER_WORD), 0);
        self.filled = 0;
    }
}

/// Packed chain state plus the kernel round machinery: hop application,
/// zero-edge merging, and an amortized-O(1) gathering check.
///
/// Between rounds the chain is taut (the engine invariant). During a
/// round, applying hops turns some edges to zero; those lanes are
/// recorded in a zero-edge list and spliced out by [`KernelChain::merge`]
/// in the same round, restoring tautness. The gathering flag is kept
/// exact at all times: the bounding box can shrink by at most 2 per
/// moving round per axis, so a full recompute is only needed once the
/// stale box's lower bound reaches the 2×2 criterion.
pub struct KernelChain {
    packed: PackedChain,
    zero_edges: Vec<usize>,
    removed: Vec<u64>,
    writer: LaneWriter,
    bbox: Rect,
    bbox_age: u64,
    gathered: bool,
}

impl KernelChain {
    /// Wrap packed state; computes the initial bounding box and
    /// gathering flag.
    pub fn new(packed: PackedChain) -> Self {
        let bbox = packed.bounding();
        let gathered = packed.len() == 1 || bbox.is_gathered_2x2();
        KernelChain {
            packed,
            zero_edges: Vec::new(),
            removed: Vec::new(),
            writer: LaneWriter::default(),
            bbox,
            bbox_age: 0,
            gathered,
        }
    }

    /// Robots in the chain.
    #[inline]
    pub fn len(&self) -> usize {
        self.packed.len()
    }

    /// `true` when the chain has no robots (never happens through the
    /// public constructors).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.packed.is_empty()
    }

    /// The packed representation.
    #[inline]
    pub fn packed(&self) -> &PackedChain {
        &self.packed
    }

    /// Derived robot positions (robot 0 first).
    pub fn positions(&self) -> Vec<Point> {
        self.packed.positions()
    }

    /// The exact 2×2 gathering predicate, maintained incrementally.
    #[inline]
    pub fn is_gathered(&self) -> bool {
        self.gathered
    }

    /// Apply hops of a sparse mover set whose members are pairwise
    /// non-adjacent along the chain (each edge is then touched by at
    /// most one mover) and whose hops keep both incident edges chain
    /// adjacent — the compass-se guarantee. Collapsed edges are queued
    /// for [`KernelChain::merge`].
    ///
    /// Movers must be listed in ascending index order with legal,
    /// nonzero hop codes.
    pub fn apply_sparse(&mut self, movers: &[(usize, u8)]) {
        let n = self.packed.len();
        for &(i, hop) in movers {
            let prev_edge = (i + n - 1) % n;
            let e_in = self.packed.get(prev_edge);
            let e_out = self.packed.get(i);
            let new_in = APPLY_EDGE[e_in as usize][HOP_ZERO as usize][hop as usize];
            let new_out = APPLY_EDGE[e_out as usize][hop as usize][HOP_ZERO as usize];
            debug_assert!(new_in != EDGE_BROKEN && new_out != EDGE_BROKEN);
            if new_in == EDGE_COLLAPSED {
                // Lane content is stale until `merge` splices it out.
                self.zero_edges.push(prev_edge);
            } else {
                self.packed.set(prev_edge, new_in);
            }
            if new_out == EDGE_COLLAPSED {
                self.zero_edges.push(i);
            } else {
                self.packed.set(i, new_out);
            }
            if i == 0 {
                self.packed.origin += hop_offset(hop);
            }
        }
    }

    /// Apply a whole-chain hop vector (one hop code per robot).
    /// Collapsed edges are queued for [`KernelChain::merge`]; a hop set
    /// that breaks chain adjacency reports the first failing edge with
    /// the same [`ChainError::Disconnected`] payload the boxed
    /// `check_connected` computes (post-move endpoint positions), and
    /// leaves the chain state untouched.
    pub fn apply_dense(&mut self, hops: &[u8]) -> Result<(), ChainError> {
        let n = self.packed.len();
        debug_assert_eq!(hops.len(), n);
        let hops = &hops[..n];
        self.writer.reset(n);
        // One word load and one word store per 32 lanes; new codes are
        // accumulated in a register (collapsed lanes stay 0 — stale
        // until `merge`).
        for (w, (&word, out)) in self
            .packed
            .codes
            .iter()
            .zip(self.writer.words.iter_mut())
            .enumerate()
        {
            let base = w * LANES_PER_WORD;
            let lanes = LANES_PER_WORD.min(n - base);
            // An edge's left hop is the previous edge's right hop — it
            // rolls forward in a register, one hop load per lane.
            let mut hl = hops[base] as usize;
            let mut acc = 0u64;
            let mut l = 0;
            while l < lanes {
                let i = base + l;
                // 8-lane fast path: when nine consecutive hops are
                // identical, all eight edges between them are translated
                // rigidly — no change, no collapse, no break. Copy the
                // code bits straight through.
                if l + 8 <= lanes && i + 9 <= n {
                    let h0 = u64::from_le_bytes(hops[i..i + 8].try_into().unwrap());
                    let h1 = u64::from_le_bytes(hops[i + 1..i + 9].try_into().unwrap());
                    if h0 == h1 {
                        acc |= word & (0xFFFFu64 << (2 * l));
                        hl = (h0 >> 56) as usize;
                        l += 8;
                        continue;
                    }
                }
                let e = ((word >> (2 * l)) & 3) as usize;
                let hr = hops[if i + 1 == n { 0 } else { i + 1 }] as usize;
                match APPLY_EDGE[e][hl][hr] {
                    EDGE_BROKEN => {
                        self.zero_edges.clear();
                        return Err(self.dense_break(i, hops));
                    }
                    EDGE_COLLAPSED => self.zero_edges.push(i),
                    code => acc |= u64::from(code) << (2 * l),
                }
                hl = hr;
                l += 1;
            }
            *out = acc;
        }
        self.writer.filled = n;
        std::mem::swap(&mut self.writer.words, &mut self.packed.codes);
        self.packed.origin += hop_offset(hops[0]);
        Ok(())
    }

    /// Reconstruct the boxed engine's first-failure report for edge `j`:
    /// the *post-move* positions of its endpoints.
    #[cold]
    fn dense_break(&self, j: usize, hops: &[u8]) -> ChainError {
        let n = self.packed.len();
        let mut p = self.packed.origin;
        for k in 0..j {
            p += edge_offset(self.packed.get(k));
        }
        let a = p + hop_offset(hops[j]);
        let b = p
            + edge_offset(self.packed.get(j))
            + hop_offset(hops[if j + 1 == n { 0 } else { j + 1 }]);
        ChainError::Disconnected { index: j, a, b }
    }

    /// Splice out the robots made coincident by the round's collapsed
    /// edges, replicating the boxed `merge_pass` exactly: the robot
    /// whose *incoming* edge collapsed is removed, survivors keep their
    /// original cyclic order. Returns the number of robots removed.
    pub fn merge(&mut self) -> usize {
        if self.zero_edges.is_empty() {
            return 0;
        }
        let n = self.packed.len();
        let z = self.zero_edges.len();
        self.zero_edges.sort_unstable();
        self.zero_edges.dedup();
        debug_assert_eq!(self.zero_edges.len(), z);
        if z == n {
            // Total collapse: every robot on one point; robot 0 survives.
            self.packed.len = 1;
            self.packed.codes.clear();
            self.zero_edges.clear();
            return n - 1;
        }
        // A cyclic direction sequence with n−1 zero edges would force the
        // n-th to be zero too, so at least two survivors remain here.
        debug_assert!(z < n - 1);
        // Robot e+1 merges into its predecessor when edge e collapsed.
        self.removed.clear();
        self.removed.resize(n.div_ceil(64), 0);
        for &e in &self.zero_edges {
            let r = if e + 1 == n { 0 } else { e + 1 };
            self.removed[r / 64] |= 1u64 << (r % 64);
        }
        let is_removed = |i: usize| self.removed[i / 64] >> (i % 64) & 1 == 1;
        // First survivor: the new robot 0. If robot 0 was removed, every
        // robot up to the first survivor f coincides with it, and f sits
        // one (nonzero) edge further along.
        let mut first = 0;
        while is_removed(first) {
            first += 1;
        }
        let new_origin = if first == 0 {
            self.packed.origin
        } else {
            self.packed.origin + edge_offset(self.packed.get(first - 1))
        };
        // Repack: survivors in original order; the out-edge of each is
        // the (nonzero) edge entering the *next* survivor. Output lanes
        // accumulate in a register and flush one word at a time.
        self.writer.reset(n - z);
        let mut acc = 0u64;
        let mut shift = 0usize;
        let mut out_w = 0usize;
        let mut emitted_any = false;
        for j in 0..n {
            if is_removed(j) {
                continue;
            }
            if emitted_any {
                acc |= u64::from(self.packed.get(j - 1)) << shift;
                shift += 2;
                if shift == 64 {
                    self.writer.words[out_w] = acc;
                    out_w += 1;
                    acc = 0;
                    shift = 0;
                }
            }
            emitted_any = true;
        }
        acc |= u64::from(self.packed.get((first + n - 1) % n)) << shift;
        self.writer.words[out_w] = acc;
        self.writer.filled = n - z;
        std::mem::swap(&mut self.writer.words, &mut self.packed.codes);
        self.packed.len = n - z;
        self.packed.origin = new_origin;
        self.zero_edges.clear();
        z
    }

    /// Re-establish the exact gathering flag after a round in which
    /// `moved` robots hopped. Merges never change the occupied point
    /// set, and each bounding-box side moves at most one per round, so
    /// the exact box is only recomputed once its staleness bound allows
    /// the 2×2 criterion at all.
    pub fn refresh_gathered(&mut self, moved: usize) {
        if self.packed.len() == 1 {
            self.bbox = Rect::point(self.packed.origin());
            self.bbox_age = 0;
            self.gathered = true;
            return;
        }
        if moved == 0 {
            return;
        }
        self.bbox_age += 1;
        let shrink = 2i64.saturating_mul(self.bbox_age as i64);
        if self.bbox.width().saturating_sub(shrink) > 2
            || self.bbox.height().saturating_sub(shrink) > 2
        {
            self.gathered = false;
            return;
        }
        self.bbox = self.packed.bounding();
        self.bbox_age = 0;
        self.gathered = self.bbox.is_gathered_2x2();
    }
}

/// One specialized round: compute the hops of the active robots and
/// apply them (including queuing collapsed edges), returning how many
/// robots moved. The surrounding [`KernelSim`] handles merging,
/// bookkeeping, and termination.
pub trait RoundKernel {
    /// Execute the strategy's look–compute–move for `round` under the
    /// activation `rule`.
    fn round<A: ActivationRule>(
        &mut self,
        chain: &mut KernelChain,
        rule: &A,
        round: u64,
    ) -> Result<usize, ChainError>;

    /// Mirrors [`Strategy::is_idle`](crate::Strategy::is_idle): `true`
    /// for kernels that never move anyone.
    fn is_idle(&self) -> bool {
        false
    }
}

/// The control kernel: nobody ever moves (mirrors
/// [`Stand`](crate::strategy::Stand), including its idle declaration).
#[derive(Clone, Copy, Debug, Default)]
pub struct StandKernel;

impl RoundKernel for StandKernel {
    fn round<A: ActivationRule>(
        &mut self,
        _chain: &mut KernelChain,
        _rule: &A,
        _round: u64,
    ) -> Result<usize, ChainError> {
        Ok(0)
    }
    fn is_idle(&self) -> bool {
        true
    }
}

/// The specialized engine loop: a monomorphized
/// (`RoundKernel`, `ActivationRule`) pair over [`KernelChain`] state,
/// replicating [`Sim`](crate::Sim) byte-for-byte on the observer-free
/// path — identical [`RoundSummary`] streams, [`Outcome`]s,
/// [`Progress`] accounting, and break errors.
pub struct KernelSim<K: RoundKernel, A: ActivationRule> {
    chain: KernelChain,
    kernel: K,
    rule: A,
    round: u64,
    rounds_since_merge: u64,
    rounds_since_move: u64,
    progress: Progress,
    broken: Option<ChainError>,
    /// Optional sampling phase timer, mirroring
    /// [`Sim::with_phase_timer`](crate::Sim::with_phase_timer). The
    /// kernel fuses compute and apply into one dense pass, so that pass
    /// is attributed to [`obs::Phase::Compute`] and the merge to
    /// [`obs::Phase::Merge`]. Passive: the timer only reads clocks, so
    /// the CI byte-identity gate against the boxed engine holds with or
    /// without it.
    phases: Option<std::sync::Arc<obs::PhaseTimer>>,
}

impl<K: RoundKernel, A: ActivationRule> KernelSim<K, A> {
    /// A fresh simulation at round 0.
    pub fn new(chain: KernelChain, kernel: K, rule: A) -> Self {
        KernelSim {
            chain,
            kernel,
            rule,
            round: 0,
            rounds_since_merge: 0,
            rounds_since_move: 0,
            progress: Progress::default(),
            broken: None,
            phases: None,
        }
    }

    /// Attach a sampling phase timer (builder style); see the field
    /// docs for the kernel's phase attribution.
    pub fn with_phase_timer(mut self, timer: std::sync::Arc<obs::PhaseTimer>) -> Self {
        self.phases = Some(timer);
        self
    }

    /// Attach (or replace) the sampling phase timer in place.
    pub fn set_phase_timer(&mut self, timer: std::sync::Arc<obs::PhaseTimer>) {
        self.phases = Some(timer);
    }

    /// The chain state.
    pub fn chain(&self) -> &KernelChain {
        &self.chain
    }

    /// Merge/gap accounting, identical to the boxed engine's.
    pub fn progress(&self) -> &Progress {
        &self.progress
    }

    /// Rounds executed so far.
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Execute one round; see [`Sim::step`](crate::Sim::step) for the
    /// replicated semantics.
    pub fn step(&mut self) -> Result<RoundSummary, ChainError> {
        if let Some(err) = &self.broken {
            return Err(err.clone());
        }
        let mut clock = self.phases.as_ref().and_then(|t| t.round_clock(self.round));
        let moved = match self.kernel.round(&mut self.chain, &self.rule, self.round) {
            Ok(moved) => moved,
            Err(e) => {
                self.broken = Some(e.clone());
                return Err(e);
            }
        };
        if let Some(c) = clock.as_mut() {
            c.mark(obs::Phase::Compute);
        }
        let removed = self.chain.merge();
        // The boxed engine revalidates the chain here; kernel applies
        // only commit unit-step-or-collapsed edges and the merge removes
        // every collapsed one, so tautness holds by construction.
        self.chain.refresh_gathered(moved);
        if let Some(c) = clock.as_mut() {
            c.mark(obs::Phase::Merge);
        }
        drop(clock);
        if removed > 0 {
            self.rounds_since_merge = 0;
        } else {
            self.rounds_since_merge += 1;
        }
        if moved > 0 || removed > 0 {
            self.rounds_since_move = 0;
        } else {
            self.rounds_since_move += 1;
        }
        let summary = RoundSummary {
            round: self.round,
            moved,
            removed,
            len_after: self.chain.len(),
            gathered: self.chain.is_gathered(),
        };
        self.progress.record_round(moved, removed);
        self.round += 1;
        Ok(summary)
    }

    /// Run until gathered or a limit trips, invoking `on_round` with
    /// every round summary; see [`Sim::run`](crate::Sim::run) for the
    /// replicated termination logic.
    pub fn run_with<F: FnMut(&RoundSummary)>(
        &mut self,
        limits: RunLimits,
        mut on_round: F,
    ) -> Outcome {
        loop {
            if self.chain.is_gathered() {
                return Outcome::Gathered { rounds: self.round };
            }
            if self.round >= limits.max_rounds {
                return Outcome::RoundLimit { rounds: self.round };
            }
            let quiescence = QUIESCENCE_WINDOW.saturating_mul(self.rule.slowdown());
            if self.rounds_since_merge >= limits.stall_window
                || self.kernel.is_idle()
                || self.rounds_since_move >= quiescence
            {
                return Outcome::Stalled {
                    rounds: self.round,
                    since_last_merge: self.rounds_since_merge,
                };
            }
            match self.step() {
                Ok(summary) => on_round(&summary),
                Err(error) => {
                    return Outcome::ChainBroken {
                        rounds: self.round,
                        error,
                    }
                }
            }
        }
    }

    /// Run until gathered or a limit trips.
    pub fn run(&mut self, limits: RunLimits) -> Outcome {
        self.run_with(limits, |_| {})
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chain::ClosedChain;
    use crate::scheduler::{KFair, RoundRobinSsync, Scheduler, SeededRandomSsync};
    use crate::strategy::Stand;
    use crate::Sim;

    fn ring(w: i64, h: i64) -> ClosedChain {
        let mut pts = Vec::new();
        for x in 0..w {
            pts.push(Point::new(x, 0));
        }
        for y in 1..h {
            pts.push(Point::new(w - 1, y));
        }
        for x in (0..w - 1).rev() {
            pts.push(Point::new(x, h - 1));
        }
        for y in (1..h - 1).rev() {
            pts.push(Point::new(0, y));
        }
        ClosedChain::new(pts).unwrap()
    }

    fn packed(chain: &ClosedChain) -> KernelChain {
        KernelChain::new(PackedChain::from_chain(chain).unwrap())
    }

    #[test]
    fn hop_code_round_trips() {
        for code in 0..9u8 {
            let o = hop_offset(code);
            assert!(o.is_hop());
            assert_eq!(hop_code(o), code);
        }
        assert_eq!(hop_offset(HOP_ZERO), Offset::ZERO);
    }

    #[test]
    fn apply_edge_table_matches_geometry() {
        for e in 0..4u8 {
            for hl in 0..9u8 {
                for hr in 0..9u8 {
                    let d = edge_offset(e) + hop_offset(hr) - hop_offset(hl);
                    let got = APPLY_EDGE[e as usize][hl as usize][hr as usize];
                    match d.manhattan() {
                        0 => assert_eq!(got, EDGE_COLLAPSED),
                        1 => assert_eq!(edge_offset(got), d),
                        _ => assert_eq!(got, EDGE_BROKEN),
                    }
                }
            }
        }
    }

    /// The SWAR fast path in `apply_dense` copies code bits verbatim
    /// when both endpoints carry the same hop; that is only sound if an
    /// equal-hop edge is always preserved unchanged.
    #[test]
    fn equal_hops_preserve_every_edge() {
        for (e, table) in APPLY_EDGE.iter().enumerate() {
            for (h, row) in table.iter().enumerate() {
                assert_eq!(row[h], e as u8);
            }
        }
    }

    #[test]
    fn count_moved_matches_filter() {
        let mut hops = vec![HOP_ZERO; 133];
        assert_eq!(count_moved(&hops), 0);
        for (i, h) in hops.iter_mut().enumerate() {
            if i % 5 == 0 {
                *h = ((i * 7) % 9) as u8;
            }
        }
        let brute = hops.iter().filter(|&&h| h != HOP_ZERO).count();
        assert_eq!(count_moved(&hops), brute);
    }

    /// Every activation rule reproduces its boxed scheduler's mask,
    /// round for round.
    #[test]
    fn rules_mirror_boxed_schedulers() {
        let n = 77;
        let seed = 42;
        let check = |mut boxed: Box<dyn Scheduler>, rule: &dyn Fn(u64, usize) -> bool| {
            for round in 0..40 {
                let mut mask = vec![true; n];
                boxed.activate(round, &mut mask);
                for (i, &want) in mask.iter().enumerate() {
                    assert_eq!(rule(round, i), want, "round {round} robot {i}");
                }
            }
        };
        let rr = RoundRobinRule::new(3);
        check(Box::new(RoundRobinSsync::new(3)), &|r, i| rr.active(r, i));
        let rnd = RandomRule::new(seed, 37);
        check(Box::new(SeededRandomSsync::new(seed, 37)), &|r, i| {
            rnd.active(r, i)
        });
        let kf = KFairRule::new(seed, 5);
        check(Box::new(KFair::new(seed, 5)), &|r, i| kf.active(r, i));
    }

    /// Dense apply + merge replicate `apply_hops` + `merge_pass` on
    /// handcrafted hop vectors, including wrap-around merges and the
    /// first-failure break report.
    #[test]
    fn dense_apply_and_merge_match_boxed() {
        // A "spike" fold: robots 1 and 3 coincide without being chain
        // neighbors, so the tip robot 2 can drop onto both of them.
        let spike = |pts: Vec<Point>| ClosedChain::new(pts).unwrap();
        let cases: Vec<(ClosedChain, Vec<Offset>)> = vec![
            // Fold one corner diagonally inwards: a plain move, no merge.
            (ring(4, 3), {
                let mut h = vec![Offset::ZERO; ring(4, 3).len()];
                h[3] = Offset::new(-1, 1);
                h
            }),
            // The spike tip drops onto both neighbors: a double merge.
            (
                spike(vec![
                    Point::new(0, 0),
                    Point::new(1, 0),
                    Point::new(1, 1),
                    Point::new(1, 0),
                ]),
                vec![Offset::ZERO, Offset::ZERO, Offset::new(0, -1), Offset::ZERO],
            ),
            // Same fold rotated so robot 0 itself is removed: wrap merge
            // with an origin handoff to the first survivor.
            (
                spike(vec![
                    Point::new(1, 1),
                    Point::new(1, 0),
                    Point::new(0, 0),
                    Point::new(1, 0),
                ]),
                vec![Offset::new(0, -1), Offset::ZERO, Offset::ZERO, Offset::ZERO],
            ),
        ];
        for (chain, hops) in cases {
            let mut kc = packed(&chain);
            let mut boxed = chain.clone();
            let mut splice = crate::chain::SpliceLog::default();
            boxed.apply_hops(&hops).unwrap();
            let removed_boxed = boxed.merge_pass(&mut splice);

            let codes: Vec<u8> = hops.iter().map(|&o| hop_code(o)).collect();
            kc.apply_dense(&codes).unwrap();
            let removed_kernel = kc.merge();

            assert_eq!(removed_kernel, removed_boxed);
            assert_eq!(kc.positions(), boxed.positions());
        }

        // Break: pull two neighbors apart; the error payload matches the
        // boxed first-failure scan.
        let chain = ring(6, 4);
        let mut hops = vec![Offset::ZERO; chain.len()];
        hops[2] = Offset::new(0, 1);
        hops[3] = Offset::new(0, -1);
        let mut boxed = chain.clone();
        let boxed_err = boxed.apply_hops(&hops).unwrap_err();
        let mut kc = packed(&chain);
        let codes: Vec<u8> = hops.iter().map(|&o| hop_code(o)).collect();
        let kernel_err = kc.apply_dense(&codes).unwrap_err();
        assert_eq!(kernel_err, boxed_err);
    }

    /// Sparse apply on a non-adjacent mover set matches the dense path.
    #[test]
    fn sparse_apply_matches_dense() {
        let chain = ring(8, 5);
        let n = chain.len();
        // Two far-apart corner robots hop diagonally inwards (legal for
        // their corner geometry); robot 0 also exercises the origin shift.
        let movers = [
            (0usize, hop_code(Offset::new(1, 1))),
            (7usize, hop_code(Offset::new(-1, 1))),
        ];
        let mut sparse = packed(&chain);
        sparse.apply_sparse(&movers);
        let removed_sparse = sparse.merge();

        let mut dense = packed(&chain);
        let mut codes = vec![HOP_ZERO; n];
        for &(i, h) in &movers {
            codes[i] = h;
        }
        dense.apply_dense(&codes).unwrap();
        let removed_dense = dense.merge();

        assert_eq!(removed_sparse, removed_dense);
        assert_eq!(sparse.positions(), dense.positions());
    }

    /// Total collapse: a 2-ring merging to one robot.
    #[test]
    fn total_collapse_keeps_robot_zero() {
        let chain = ClosedChain::new(vec![Point::new(0, 0), Point::new(1, 0)]).unwrap();
        let mut kc = packed(&chain);
        let codes = vec![hop_code(Offset::new(1, 0)), HOP_ZERO];
        kc.apply_dense(&codes).unwrap();
        assert_eq!(kc.merge(), 1);
        assert_eq!(kc.len(), 1);
        kc.refresh_gathered(1);
        assert!(kc.is_gathered());
        assert_eq!(kc.positions(), vec![Point::new(1, 0)]);
    }

    /// The stand kernel replicates the boxed `Stand` run byte-for-byte:
    /// immediate stall with identical outcome and progress.
    #[test]
    fn stand_kernel_matches_boxed_stand() {
        let chain = ring(9, 6);
        let limits = RunLimits::for_chain_len(chain.len());
        let mut boxed = Sim::new(chain.clone(), Stand);
        let out_boxed = boxed.run(limits);
        let mut kernel = KernelSim::new(packed(&chain), StandKernel, FsyncRule);
        let out_kernel = kernel.run(limits);
        assert_eq!(out_boxed, out_kernel);
        assert_eq!(&boxed.progress(), kernel.progress());
    }

    /// The staleness-bounded gathering flag stays exact through a
    /// scripted shrink of a long thin ring.
    #[test]
    fn gathered_flag_stays_exact_under_staleness() {
        let chain = ring(9, 2);
        let mut kc = packed(&chain);
        // March the right wall leftwards one column per round.
        loop {
            let n = kc.len();
            let pos = kc.positions();
            let bbox = Rect::bounding(pos.iter().copied()).unwrap();
            let mut hops = vec![HOP_ZERO; n];
            for (i, p) in pos.iter().enumerate() {
                if p.x == bbox.max.x {
                    hops[i] = hop_code(Offset::new(-1, 0));
                }
            }
            let moved = count_moved(&hops);
            kc.apply_dense(&hops).unwrap();
            kc.merge();
            kc.refresh_gathered(moved);
            let brute = Rect::bounding(kc.positions().iter().copied())
                .unwrap()
                .is_gathered_2x2()
                || kc.len() == 1;
            assert_eq!(kc.is_gathered(), brute);
            if kc.is_gathered() {
                break;
            }
        }
    }
}
