//! The chain-safety guard: SSYNC-safe hop commitment.
//!
//! Under FSYNC every computed hop applies, and an FSYNC-correct strategy
//! keeps the chain taut by construction. Under SSYNC a scheduler masks an
//! arbitrary subset of robots per round, and a hop set that is safe in
//! full can break the chain when only part of it applies: the paper's
//! paired merge hops (Fig. 1: two adjacent blacks dropping onto their
//! whites together) leave a diagonal, non-adjacent edge behind when one
//! endpoint sleeps — exactly the `ChainBroken` failures
//! `BENCH_robustness.json` records for the unguarded paper strategy.
//!
//! [`enforce_chain_safety`] is the repair. It runs on the hops that will
//! actually apply this round — the post-mask intents, i.e. one lookahead
//! over the activation mask (sleepers already hold zero) — and cancels
//! every hop whose robot would end the round non-adjacent to a chain
//! neighbor's end-of-round position. Cancellation iterates to a fixpoint,
//! because zeroing one hop can strand a neighbor that counted on the
//! cancelled motion.
//!
//! Why the fixpoint is safe, for *every* activation subset:
//!
//! * **Termination.** Hops are only ever zeroed, never created; each sweep
//!   either zeroes at least one of the ≤ n non-zero hops or stops.
//! * **Safety at the fixpoint.** Suppose edge `(i, j)` were non-adjacent
//!   after applying the surviving hops. At least one endpoint still moves
//!   (a round starts taut, so two standing robots are adjacent), and that
//!   endpoint's final sweep saw exactly the surviving intents — it would
//!   have cancelled itself. Contradiction, so every edge ends adjacent.
//! * **Subset quantification.** The adversary's choice is the mask, and
//!   the mask is applied *before* the guard. Whatever subset the scheduler
//!   activates, the guard sees that subset's intents and the argument
//!   above applies — `tests/ssync_safety.rs` checks this by enumerating
//!   every activation subset of every round at small `n`.
//!
//! The same fixpoint has guarded the `global-vision` and `naive-local`
//! baselines since PR 1 (`baselines::cancel_breaking_hops` now delegates
//! here) and is mirrored over packed hop codes by
//! `baselines::kernel::cancel_breaking_hops_codes`. PR 7 promotes it to
//! the engine: a [`Strategy`](crate::Strategy) that opts in via
//! [`Strategy::wants_chain_guard`](crate::Strategy::wants_chain_guard)
//! gets it applied by [`Sim::step`](crate::Sim::step) after the
//! activation mask, which is what makes `gathering-core`'s `paper-ssync`
//! wrapper survive every scheduler.

use crate::chain::ClosedChain;
use grid_geom::{chain_adjacent, Offset};

/// `true` if robot `i`'s intended hop would end the round non-adjacent to
/// one of its chain neighbors' intended end-of-round positions — the
/// per-robot commit test of the guard, against the *current* intents in
/// `hops`.
///
/// A zero hop never breaks: the round starts taut, and a standing robot
/// cannot leave a neighbor (only be left, which is the moving neighbor's
/// violation to detect).
pub fn hop_breaks_chain(chain: &ClosedChain, hops: &[Offset], i: usize) -> bool {
    if hops[i] == Offset::ZERO {
        return false;
    }
    let here = chain.pos(i) + hops[i];
    let prev = chain.nb(i, -1);
    let next = chain.nb(i, 1);
    let p = chain.pos(prev) + hops[prev];
    let q = chain.pos(next) + hops[next];
    !chain_adjacent(here, p) || !chain_adjacent(here, q)
}

/// Cancel-to-fixpoint: zero every hop that fails [`hop_breaks_chain`]
/// against the surviving intents, sweeping until a full pass cancels
/// nothing. Returns the number of hops cancelled.
///
/// `hops` must already reflect the activation mask (inactive robots at
/// [`Offset::ZERO`]); the engine calls this immediately after masking.
/// At the fixpoint, applying `hops` keeps every chain edge adjacent — see
/// the module docs for the argument, and `tests/ssync_safety.rs` for the
/// exhaustive activation-subset check.
pub fn enforce_chain_safety(chain: &ClosedChain, hops: &mut [Offset]) -> usize {
    let n = chain.len();
    debug_assert_eq!(hops.len(), n);
    let mut cancelled = 0;
    loop {
        let mut changed = false;
        for i in 0..n {
            if hop_breaks_chain(chain, hops, i) {
                hops[i] = Offset::ZERO;
                cancelled += 1;
                changed = true;
            }
        }
        if !changed {
            return cancelled;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grid_geom::Point;

    fn chain(pts: &[(i64, i64)]) -> ClosedChain {
        ClosedChain::new(pts.iter().map(|&(x, y)| Point::new(x, y)).collect()).unwrap()
    }

    /// Fig. 1 halfway: two adjacent blacks hop down together. Full
    /// activation is safe; masking one endpoint breaks the edge, and the
    /// guard must cancel the survivor.
    #[test]
    fn lone_half_of_a_paired_merge_hop_is_cancelled() {
        let c = chain(&[(0, 0), (0, 1), (0, 2), (1, 2), (1, 1), (1, 0)]);
        let down = Offset::new(0, -1);
        // Both blacks (indices 2 and 3) hop: safe, nothing cancelled.
        let mut both = vec![Offset::ZERO; 6];
        both[2] = down;
        both[3] = down;
        assert_eq!(enforce_chain_safety(&c, &mut both), 0);
        assert_eq!(both[2], down);
        // Only robot 2 active: its lone hop would leave edge (2,3)
        // diagonal — cancelled.
        let mut lone = vec![Offset::ZERO; 6];
        lone[2] = down;
        assert_eq!(enforce_chain_safety(&c, &mut lone), 1);
        assert_eq!(lone, vec![Offset::ZERO; 6]);
    }

    /// A diagonal fold next to standing neighbors is individually safe:
    /// the guard must let it through under any mask.
    #[test]
    fn individually_safe_fold_survives() {
        let c = chain(&[(0, 0), (1, 0), (2, 0), (2, 1), (1, 1), (0, 1)]);
        // Corner robot 2 folds onto the diagonal: adjacent to both
        // standing neighbors afterwards.
        let mut hops = vec![Offset::ZERO; 6];
        hops[2] = Offset::new(-1, 1);
        assert_eq!(enforce_chain_safety(&c, &mut hops), 0);
        assert_eq!(hops[2], Offset::new(-1, 1));
    }

    /// Cancellation cascades: robot 1 is only safe because robot 2 moves,
    /// robot 2 is unsafe outright — cancelling 2 must also cancel 1.
    #[test]
    fn cancellation_cascades_to_a_fixpoint() {
        let c = chain(&[(0, 0), (1, 0), (2, 0), (2, 1), (1, 1), (0, 1)]);
        let right = Offset::new(1, 0);
        let mut hops = vec![Offset::ZERO; 6];
        // 1 and 2 march right in lockstep; 2 alone would leave edge (2,3)
        // at manhattan 2, and once 2 is cancelled, 1's hop crowds onto 2
        // — legal (coincidence merges) — but 1 moving right while 0
        // stands keeps adjacency, so only the genuinely unsafe hops go.
        hops[1] = right;
        hops[2] = right;
        let cancelled = enforce_chain_safety(&c, &mut hops);
        // Applying the fixpoint must keep the chain connected.
        let mut applied = c.clone();
        applied.apply_hops(&hops).unwrap();
        assert!(cancelled > 0);
        for i in 0..6 {
            assert!(!hop_breaks_chain(&c, &hops, i));
        }
    }

    /// Brute-force soundness at the fixpoint: on a folded chain with a
    /// mix of safe and unsafe intents, every activation subset of the
    /// guarded hops applies cleanly.
    #[test]
    fn fixpoint_is_safe_under_every_subsequent_mask() {
        let c = chain(&[(0, 0), (1, 0), (2, 0), (2, 1), (1, 1), (0, 1)]);
        let intents = [
            Offset::new(0, 1),
            Offset::new(1, 0),
            Offset::new(-1, 1),
            Offset::new(0, -1),
            Offset::new(1, -1),
            Offset::ZERO,
        ];
        for mask in 0u32..64 {
            let mut hops: Vec<Offset> = (0..6)
                .map(|i| {
                    if mask & (1 << i) != 0 {
                        intents[i]
                    } else {
                        Offset::ZERO
                    }
                })
                .collect();
            enforce_chain_safety(&c, &mut hops);
            let mut applied = c.clone();
            applied.apply_hops(&hops).unwrap_or_else(|e| {
                panic!("guard admitted a breaking hop set under mask {mask:06b}: {e:?}")
            });
        }
    }
}
