//! A tiny deterministic PRNG shared across the workspace.
//!
//! The container builds offline, so the usual `rand` crate is not
//! available; this SplitMix64 generator (Steele, Lea & Flood, OOPSLA 2014)
//! provides everything the workspace needs — uniform ranges, coin flips,
//! Fisher–Yates shuffles — as a pure function of the seed. Determinism is
//! load-bearing twice over: the workload generators (`workloads`
//! re-exports this type) rely on `(n, seed)` fully determining every
//! generated chain, and the SSYNC [`Scheduler`](crate::Scheduler)s rely on
//! `(seed, round, index)` fully determining every activation mask.

/// SplitMix64: a fast, high-quality 64-bit PRNG with a one-word state.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Seed the generator. Any seed (including 0) is fine.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform integer in `[0, bound)`. Uses Lemire's multiply-shift
    /// reduction; the bias is < 2^-64 per draw, far below anything the
    /// workload statistics could observe. `bound` must be nonzero.
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0, "below(0) is meaningless");
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// Uniform `usize` in `[lo, hi)` (half-open, like `Rng::gen_range`).
    #[inline]
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        debug_assert!(lo < hi, "empty range {lo}..{hi}");
        lo + self.below((hi - lo) as u64) as usize
    }

    /// Uniform `i64` in the inclusive range `[lo, hi]`.
    #[inline]
    pub fn range_i64_inclusive(&mut self, lo: i64, hi: i64) -> i64 {
        debug_assert!(lo <= hi, "empty range {lo}..={hi}");
        lo + self.below((hi - lo) as u64 + 1) as i64
    }

    /// Fair coin flip with probability `num / den` of `true`.
    #[inline]
    pub fn chance(&mut self, num: u64, den: u64) -> bool {
        self.below(den) < num
    }

    /// In-place Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }

    /// Uniformly pick one element of a non-empty slice.
    pub fn choose<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        &xs[self.range_usize(0, xs.len())]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SplitMix64::new(43);
        assert_ne!(SplitMix64::new(42).next_u64(), c.next_u64());
    }

    #[test]
    fn below_stays_in_bounds_and_covers() {
        let mut r = SplitMix64::new(7);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            let v = r.below(8) as usize;
            assert!(v < 8);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues reached: {seen:?}");
    }

    #[test]
    fn ranges_respect_endpoints() {
        let mut r = SplitMix64::new(9);
        for _ in 0..500 {
            let u = r.range_usize(3, 10);
            assert!((3..10).contains(&u));
            let i = r.range_i64_inclusive(-4, 4);
            assert!((-4..=4).contains(&i));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = SplitMix64::new(11);
        let mut xs: Vec<u32> = (0..64).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..64).collect::<Vec<_>>());
        // And actually permutes (overwhelmingly likely).
        assert_ne!(xs, (0..64).collect::<Vec<_>>());
    }

    #[test]
    fn chance_is_roughly_fair() {
        let mut r = SplitMix64::new(13);
        let hits = (0..10_000).filter(|_| r.chance(1, 2)).count();
        assert!((4_500..5_500).contains(&hits), "hits={hits}");
    }
}
