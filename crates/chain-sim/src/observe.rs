//! Composable run instrumentation: the [`Observer`] API.
//!
//! An [`Observer`] watches a [`Sim`](crate::Sim) from the outside — it has
//! global knowledge and is *not* part of the robot model. The engine runs
//! one loop; every kind of instrumentation (trace recording, Lemma audits,
//! invariant checking, frame capture) plugs into that loop through the
//! same three hooks instead of owning a copy of it:
//!
//! * [`Observer::on_init`] — once, when the observer is attached (the
//!   chain is the initial configuration).
//! * [`Observer::on_round`] — after every completed round, fed a
//!   [`RoundCtx`]: the round summary, the hops the strategy chose at
//!   round start, the post-round chain, and the round's [`SpliceLog`]
//!   (merge events).
//! * [`Observer::on_finish`] — once, when [`Sim::run`](crate::Sim::run)
//!   decides the [`Outcome`].
//!
//! Observers compose: `Sim::new(chain, strategy).observe(a).observe(b)`
//! runs both, in attachment order. A simulation with *no* observers pays
//! nothing — the engine skips the dispatch entirely and retains nothing
//! per round, which is the benchmark hot path.
//!
//! The hooks receive the strategy (`&mut S` in [`Observer::on_round`]) so
//! instrumentation that drains strategy-recorded events (the Lemma
//! auditor in `gathering-core`) needs no side channel. Observers over a
//! concrete strategy type can use its inherent API; strategy-agnostic
//! observers (like [`Recorder`]) implement `Observer<S>` for every `S`.

use std::any::Any;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

use crate::chain::{ClosedChain, SpliceLog};
use crate::engine::{Outcome, RoundSummary};
use crate::invariant::signed_turning_quarters;
use crate::strategy::Strategy;
use crate::trace::{RoundReport, Trace, TraceConfig};
use grid_geom::Offset;

/// Everything an observer sees about one completed round. Borrows the
/// engine's working state — valid for the duration of the
/// [`Observer::on_round`] call.
#[derive(Clone, Copy, Debug)]
pub struct RoundCtx<'a> {
    /// The round's allocation-free summary (what [`Sim::step`](crate::Sim::step) returns).
    pub summary: RoundSummary,
    /// The hops the strategy chose at round start, indexed by the
    /// *pre-move* chain indices. Hops of inactive robots are already
    /// zeroed — what is observed here is what was applied.
    pub hops: &'a [Offset],
    /// The round's activation mask (same pre-move indexing as `hops`):
    /// which robots the [`Scheduler`](crate::Scheduler) let act. All-true
    /// under FSYNC.
    pub active: &'a [bool],
    /// The chain after the round (post-move, post-merge).
    pub chain: &'a ClosedChain,
    /// The round's splice log: merge events and index remapping.
    pub splice: &'a SpliceLog,
    /// Hops the chain-safety guard cancelled this round (0 when the
    /// strategy did not opt into the guard). The hops in
    /// [`RoundCtx::hops`] are post-guard — this counter is how an
    /// observer sees that the guard intervened at all.
    pub guard_cancels: usize,
}

/// Composable run instrumentation; see the [module docs](self).
///
/// Every hook has an empty default, so an observer implements only what it
/// watches.
pub trait Observer<S: Strategy> {
    /// Called once when the observer is attached to a simulation.
    fn on_init(&mut self, _chain: &ClosedChain, _strategy: &S) {}

    /// Called after every completed round.
    fn on_round(&mut self, _ctx: &RoundCtx<'_>, _strategy: &mut S) {}

    /// Called once when [`Sim::run`](crate::Sim::run) decides the outcome.
    fn on_finish(&mut self, _chain: &ClosedChain, _strategy: &S, _outcome: &Outcome) {}
}

/// Object-safe carrier for the observer stack: [`Observer`] plus `Any`
/// downcasting, so [`Sim::observer`](crate::Sim::observer) can hand a
/// concrete observer back out of the type-erased stack. Blanket-implemented
/// for every `'static` observer; not meant to be implemented by hand.
pub trait AnyObserver<S: Strategy>: Observer<S> {
    /// The observer as `&dyn Any` (for downcasting).
    fn as_any(&self) -> &dyn Any;
    /// The observer as `&mut dyn Any` (for downcasting).
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

impl<S: Strategy, T: Observer<S> + 'static> AnyObserver<S> for T {
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// The trace-recording observer: retains [`RoundReport`]s and position
/// snapshots per [`TraceConfig`], producing the [`Trace`] that replays and
/// per-round analyses consume.
///
/// This replaces the engine-internal report retention: the engine itself
/// never keeps anything per round, so attach a `Recorder` exactly when a
/// trace is wanted. The recorded trace also folds the
/// [`Progress`](crate::Progress) aggregates, so a taken [`Trace`] is
/// self-contained.
#[derive(Debug, Default)]
pub struct Recorder {
    cfg: TraceConfig,
    trace: Trace,
}

impl Recorder {
    /// Record full per-round reports, no snapshots (the
    /// [`TraceConfig::default`] behavior).
    pub fn new() -> Self {
        Self::default()
    }

    /// Record with an explicit configuration.
    pub fn with_config(cfg: TraceConfig) -> Self {
        Recorder {
            cfg,
            trace: Trace::default(),
        }
    }

    /// Snapshot-only recording: positions every `every` rounds, capped at
    /// `max` snapshots, no per-round reports (animation replays).
    pub fn snapshots(every: u64, max: usize) -> Self {
        Self::with_config(TraceConfig {
            snapshot_every: every,
            max_snapshots: max,
            keep_reports: false,
        })
    }

    /// The trace recorded so far.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Take the recorded trace, leaving an empty one.
    pub fn take_trace(&mut self) -> Trace {
        std::mem::take(&mut self.trace)
    }
}

impl<S: Strategy> Observer<S> for Recorder {
    fn on_round(&mut self, ctx: &RoundCtx<'_>, _strategy: &mut S) {
        let s = ctx.summary;
        self.trace.record_round(s.moved, s.removed);
        if self.cfg.snapshot_every > 0
            && s.round.is_multiple_of(self.cfg.snapshot_every)
            && self.trace.snapshots.len() < self.cfg.max_snapshots
        {
            self.trace
                .snapshots
                .push((s.round, ctx.chain.positions().to_vec()));
        }
        if self.cfg.keep_reports {
            self.trace.reports.push(RoundReport {
                round: s.round,
                moved: s.moved,
                removed: s.removed,
                merges: ctx.splice.events.clone(),
                len_after: s.len_after,
                bbox: ctx.chain.bounding(),
                gathered: s.gathered,
            });
        }
    }
}

/// One recorded invariant violation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct InvariantViolation {
    /// Round after which the violation was observed.
    pub round: u64,
    /// What was violated.
    pub what: String,
}

/// The invariant-checking observer: audits every *successful* round for
/// global consistency properties, and collects violations instead of
/// aborting.
///
/// What this observer verifies is the engine's *accounting*, the
/// scheduler contract, and the model's conserved quantities:
///
/// * the round summary agrees with the chain (`len_after`, `gathered`),
/// * the splice log agrees with the summary (`removed` counts, and a
///   merge-free round leaves the length unchanged),
/// * the scheduler contract against [`RoundCtx::active`]: an inactive
///   robot never moves, every applied hop is a legal unit hop, and the
///   post-round chain is taut and connected — re-derived here from the
///   chain itself rather than trusted from the engine, so a run that
///   masks or guards hops (SSYNC schedules, the chain-safety guard)
///   cannot smuggle a broken configuration past a green round,
/// * the closed chain's signed turning stays even (any closed lattice
///   loop has even total turning; an odd value means the chain and its
///   cyclic structure have come apart).
#[derive(Debug, Default)]
pub struct Invariants {
    violations: Vec<InvariantViolation>,
    prev_len: Option<usize>,
}

impl Invariants {
    /// A fresh checker with no recorded violations.
    pub fn new() -> Self {
        Self::default()
    }

    /// All violations observed so far.
    pub fn violations(&self) -> &[InvariantViolation] {
        &self.violations
    }

    /// `true` if no violation has been observed.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

impl<S: Strategy> Observer<S> for Invariants {
    fn on_init(&mut self, chain: &ClosedChain, _strategy: &S) {
        self.prev_len = Some(chain.len());
    }

    fn on_round(&mut self, ctx: &RoundCtx<'_>, _strategy: &mut S) {
        let round = ctx.summary.round;
        let mut violate = |what: String| {
            self.violations.push(InvariantViolation { round, what });
        };
        // Summary ↔ chain agreement.
        if ctx.summary.len_after != ctx.chain.len() {
            violate(format!(
                "summary len_after {} != chain len {}",
                ctx.summary.len_after,
                ctx.chain.len()
            ));
        }
        if ctx.summary.gathered != ctx.chain.is_gathered() {
            violate("summary gathered flag disagrees with the chain".to_string());
        }
        // Summary ↔ splice-log agreement, and length conservation: robots
        // only ever leave the chain through the merge pass.
        if ctx.summary.removed != ctx.splice.removed_count() {
            violate(format!(
                "summary removed {} != splice log {}",
                ctx.summary.removed,
                ctx.splice.removed_count()
            ));
        }
        // Scheduler contract: an inactive robot never moves, and what the
        // active ones did must be legal unit hops.
        let masked_moves = ctx
            .hops
            .iter()
            .zip(ctx.active)
            .filter(|(h, active)| !**active && **h != Offset::ZERO)
            .count();
        if masked_moves > 0 {
            violate(format!("{masked_moves} inactive robots moved"));
        }
        if let Some(i) = ctx.hops.iter().position(|h| !h.is_hop()) {
            violate(format!(
                "robot {i} applied an illegal hop {:?}",
                ctx.hops[i]
            ));
        }
        // Taut/connectivity re-check, independent of the engine's own
        // validation: whatever subset of robots the schedule activated
        // (and whatever the chain-safety guard cancelled), the chain that
        // reaches the observers must still be a taut closed chain.
        if ctx.chain.len() > 1 {
            if let Err(e) = ctx.chain.validate() {
                violate(format!("post-round chain is not taut/connected: {e:?}"));
            }
        }
        if let Some(prev) = self.prev_len {
            if prev != ctx.chain.len() + ctx.summary.removed {
                violate(format!(
                    "length not conserved: {prev} robots -> {} + {} removed",
                    ctx.chain.len(),
                    ctx.summary.removed
                ));
            }
        }
        self.prev_len = Some(ctx.chain.len());
        // Conserved quantity of the model: a closed lattice loop's signed
        // turning is always even (the engine never checks this).
        if ctx.chain.len() > 2 && signed_turning_quarters(ctx.chain) % 2 != 0 {
            violate("signed turning of the closed chain is odd".to_string());
        }
    }
}

/// A point-in-time read of a [`ProgressSlot`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ProgressSnapshot {
    /// Rounds completed so far.
    pub round: u64,
    /// Current chain length.
    pub len: usize,
    /// Total robots removed by merges so far.
    pub removed: usize,
    /// Total hops the chain-safety guard has cancelled so far (0 unless
    /// the strategy opted into the guard — paper-ssync under SSYNC
    /// schedules is the interesting case).
    pub guard_cancels: u64,
    /// Wall-clock microseconds elapsed since the run's first publish
    /// (the initial configuration): watchers divide `round` by it for a
    /// live rounds/s rate. Frozen at the final publish once `finished`.
    pub wall_us: u64,
    /// `true` once the run's outcome has been decided.
    pub finished: bool,
}

/// A shared, lock-free progress slot: the publication side of the
/// [`ProgressProbe`] observer.
///
/// A running simulation publishes its round/merge counters into the slot
/// every round; any other thread (a service's progress endpoint, a TUI)
/// reads a [`ProgressSnapshot`] at any time without blocking the run. All
/// accesses are `Relaxed` atomics — a reader may observe the fields of two
/// adjacent rounds mixed, which is fine for progress reporting: every
/// field is individually monotone (round up, length down, removals up)
/// and converges once `finished` is set.
#[derive(Debug, Default)]
pub struct ProgressSlot {
    round: AtomicU64,
    len: AtomicUsize,
    removed: AtomicUsize,
    guard_cancels: AtomicU64,
    /// Elapsed microseconds since the first publish; see
    /// [`ProgressSnapshot::wall_us`].
    wall_us: AtomicU64,
    /// The instant of the first publish — set once, lock-free reads
    /// afterwards, so `publish` stays wait-free on the hot path.
    epoch: OnceLock<Instant>,
    finished: AtomicBool,
}

impl ProgressSlot {
    /// A fresh shared slot (round 0, nothing removed, not finished).
    pub fn new() -> Arc<ProgressSlot> {
        Arc::new(ProgressSlot::default())
    }

    /// Publish the counters of a completed round (or the initial
    /// configuration, with `round = 0`). `guard_cancels` is the running
    /// total of guard-cancelled hops — 0 for strategies without the
    /// chain-safety guard.
    pub fn publish(&self, round: u64, len: usize, removed: usize, guard_cancels: u64) {
        self.round.store(round, Ordering::Relaxed);
        self.len.store(len, Ordering::Relaxed);
        self.removed.store(removed, Ordering::Relaxed);
        self.guard_cancels.store(guard_cancels, Ordering::Relaxed);
        let epoch = self.epoch.get_or_init(Instant::now);
        self.wall_us.store(
            epoch.elapsed().as_micros().min(u64::MAX as u128) as u64,
            Ordering::Relaxed,
        );
    }

    /// Mark the run finished (the outcome is decided; the counters are
    /// final).
    pub fn finish(&self) {
        self.finished.store(true, Ordering::Relaxed);
    }

    /// Read the slot's current state.
    pub fn snapshot(&self) -> ProgressSnapshot {
        ProgressSnapshot {
            round: self.round.load(Ordering::Relaxed),
            len: self.len.load(Ordering::Relaxed),
            removed: self.removed.load(Ordering::Relaxed),
            guard_cancels: self.guard_cancels.load(Ordering::Relaxed),
            wall_us: self.wall_us.load(Ordering::Relaxed),
            finished: self.finished.load(Ordering::Relaxed),
        }
    }
}

/// The progress-publishing observer: feeds a shared [`ProgressSlot`] from
/// the run loop so other threads can watch a simulation live.
///
/// Strategy-agnostic (like [`Recorder`]); retains nothing beyond three
/// counters. Attach with `Sim::observe(ProgressProbe::new(slot.clone()))`
/// and hand the other end of the `Arc` to whoever reports progress.
#[derive(Debug)]
pub struct ProgressProbe {
    slot: Arc<ProgressSlot>,
    removed_total: usize,
    guard_total: u64,
}

impl ProgressProbe {
    /// A probe publishing into `slot`.
    pub fn new(slot: Arc<ProgressSlot>) -> Self {
        ProgressProbe {
            slot,
            removed_total: 0,
            guard_total: 0,
        }
    }
}

impl<S: Strategy> Observer<S> for ProgressProbe {
    fn on_init(&mut self, chain: &ClosedChain, _strategy: &S) {
        self.slot.publish(0, chain.len(), 0, 0);
    }

    fn on_round(&mut self, ctx: &RoundCtx<'_>, _strategy: &mut S) {
        self.removed_total += ctx.summary.removed;
        self.guard_total += ctx.guard_cancels as u64;
        self.slot.publish(
            ctx.summary.round + 1,
            ctx.summary.len_after,
            self.removed_total,
            self.guard_total,
        );
    }

    fn on_finish(&mut self, chain: &ClosedChain, _strategy: &S, _outcome: &Outcome) {
        // The counters may be ahead of the last published round when the
        // outcome was decided without stepping; republish the final state.
        self.slot.publish(
            self.slot.snapshot().round,
            chain.len(),
            self.removed_total,
            self.guard_total,
        );
        self.slot.finish();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Sim;
    use crate::strategy::Stand;
    use grid_geom::Point;

    fn ring6() -> ClosedChain {
        ClosedChain::new(vec![
            Point::new(0, 0),
            Point::new(1, 0),
            Point::new(2, 0),
            Point::new(2, 1),
            Point::new(1, 1),
            Point::new(0, 1),
        ])
        .unwrap()
    }

    #[test]
    fn recorder_snapshot_cap() {
        let mut sim = Sim::new(ring6(), Stand).observe(Recorder::snapshots(1, 3));
        for _ in 0..6 {
            sim.step().unwrap();
        }
        let rec = sim.observer::<Recorder>().unwrap();
        assert_eq!(rec.trace().snapshots.len(), 3);
        assert!(rec.trace().reports.is_empty());
        assert_eq!(rec.trace().rounds(), 6);
    }

    #[test]
    fn invariants_stay_clean_on_stand() {
        let mut sim = Sim::new(ring6(), Stand).observe(Invariants::new());
        for _ in 0..4 {
            sim.step().unwrap();
        }
        let inv = sim.observer::<Invariants>().unwrap();
        assert!(inv.is_clean());
        assert!(inv.violations().is_empty());
    }

    /// The checks are not vacuous: a fabricated inconsistent round is
    /// flagged (summary claims a removal the splice log doesn't show, so
    /// both the agreement and the conservation checks fire).
    #[test]
    fn invariants_detect_inconsistent_rounds() {
        let chain = ring6();
        let splice = SpliceLog::default();
        let mut inv = Invariants::new();
        let mut stand = Stand;
        Observer::<Stand>::on_init(&mut inv, &chain, &stand);
        let ctx = RoundCtx {
            summary: crate::RoundSummary {
                round: 0,
                moved: 0,
                removed: 1,
                len_after: chain.len(),
                gathered: false,
            },
            hops: &[],
            active: &[],
            chain: &chain,
            splice: &splice,
            guard_cancels: 0,
        };
        Observer::<Stand>::on_round(&mut inv, &ctx, &mut stand);
        assert!(!inv.is_clean());
        assert_eq!(inv.violations().len(), 2);
        assert_eq!(inv.violations()[0].round, 0);
    }

    /// The probe publishes the initial configuration on attach, each
    /// round's counters as they complete, and the finished flag exactly
    /// when the outcome is decided — all readable from the shared slot.
    #[test]
    fn progress_probe_publishes_live_counters() {
        let slot = ProgressSlot::new();
        let mut sim = Sim::new(ring6(), Stand).observe(ProgressProbe::new(slot.clone()));
        let initial = slot.snapshot();
        assert_eq!(
            (initial.round, initial.len, initial.removed),
            (0, 6, 0),
            "attach publishes the initial configuration"
        );
        assert_eq!(initial.guard_cancels, 0);
        assert!(!initial.finished);
        sim.step().unwrap();
        sim.step().unwrap();
        let snap = slot.snapshot();
        assert_eq!(snap.round, 2);
        assert_eq!(snap.len, 6);
        assert!(snap.wall_us >= initial.wall_us, "wall clock is monotone");
        assert!(!snap.finished);
        sim.run(crate::RunLimits {
            max_rounds: 4,
            stall_window: 1_000,
        });
        assert!(slot.snapshot().finished);
    }

    /// Observer ordering: attachment order is call order.
    struct Tagger(u8, std::rc::Rc<std::cell::RefCell<Vec<u8>>>);
    impl<S: Strategy> Observer<S> for Tagger {
        fn on_round(&mut self, _ctx: &RoundCtx<'_>, _strategy: &mut S) {
            self.1.borrow_mut().push(self.0);
        }
    }

    #[test]
    fn observers_fire_in_attachment_order() {
        let log = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        let mut sim = Sim::new(ring6(), Stand)
            .observe(Tagger(1, log.clone()))
            .observe(Tagger(2, log.clone()));
        sim.step().unwrap();
        sim.step().unwrap();
        assert_eq!(*log.borrow(), vec![1, 2, 1, 2]);
    }
}
