//! Activation scheduling: the FSYNC / SSYNC model axis.
//!
//! The paper proves its 2Ln + n bound under the **fully synchronous**
//! (FSYNC) model: every robot is active in every round. The surrounding
//! literature (Castenow et al. 2020, Chakraborty et al. 2024) treats the
//! activation schedule as a first-class model axis — under
//! **semi-synchronous** (SSYNC) schedules an adversary activates only a
//! subset of the robots each round, and algorithm guarantees may or may
//! not survive.
//!
//! A [`Scheduler`] makes that axis explicit: per round it yields an
//! *activation mask* over the current chain indices. The engine
//! ([`Sim`](crate::Sim)) computes the strategy's hops from the common
//! round-start snapshot as always, then discards the hop of every
//! inactive robot — an inactive robot keeps a zero hop, exactly as if its
//! look–compute–move cycle had not been scheduled this round. Observers
//! see the mask through [`RoundCtx::active`](crate::RoundCtx::active).
//!
//! All schedulers are **deterministic**: a mask is a pure function of
//! `(seed, round, index, n)`, with randomness coming from the workspace's
//! [`SplitMix64`] generator. Indices are *current chain indices* — after a
//! merge splices robots out, the schedule applies to the positions that
//! remain, which matches the adversary abstraction (the scheduler picks
//! which chain slots act, not robot identities).
//!
//! Shipped schedulers:
//!
//! * [`Fsync`] — all robots active every round. This is the paper's model
//!   and the engine default; the scheduler path is byte-identical to the
//!   pre-scheduler engine on seeded workloads (pinned in
//!   `tests/schedulers.rs`).
//! * [`RoundRobinSsync`] — indices are dealt into `groups` residue
//!   classes; one class is active per round, cycling.
//! * [`SeededRandomSsync`] — every robot is active independently with
//!   probability `percent`/100 each round (seeded, reproducible).
//! * [`KFair`] — the adversarial minimum under k-fairness: each index is
//!   active exactly once every `k` rounds, at a seed-scrambled phase, so
//!   the adversary delays every activation as long as a k-fair schedule
//!   allows.

use crate::rng::SplitMix64;

/// Per-round activation decisions; see the [module docs](self).
///
/// `activate` receives the mask with every slot reset to `true` (the
/// FSYNC default) and flips off the robots that stay asleep this round.
/// Implementations must be deterministic in `(round, mask.len())` and
/// whatever seed they were built with — campaign reproducibility and the
/// run-batch determinism guarantees depend on it.
pub trait Scheduler {
    /// Decide round `round`: clear `mask[i]` for every robot `i` that is
    /// *not* activated. The mask arrives all-`true` and is indexed by
    /// current chain indices.
    fn activate(&mut self, round: u64, mask: &mut [bool]);

    /// The schedule's inverse duty cycle: the worst-case factor by which
    /// activation gaps stretch versus FSYNC (1 for FSYNC, `k` for a
    /// k-fair adversary). The engine multiplies its quiescence window by
    /// this, so a legitimate low-duty pause — e.g. a k > 64 adversary
    /// withholding activations — is not misdeclared a stall.
    fn slowdown(&self) -> u64 {
        1
    }
}

/// Boxed schedulers forward to their contents, mirroring the blanket
/// `Strategy` impl, so `Box<dyn Scheduler + Send>` plugs into the same
/// engine as a concrete scheduler.
impl<T: Scheduler + ?Sized> Scheduler for Box<T> {
    fn activate(&mut self, round: u64, mask: &mut [bool]) {
        (**self).activate(round, mask)
    }
    fn slowdown(&self) -> u64 {
        (**self).slowdown()
    }
}

/// The fully synchronous schedule: every robot active every round (the
/// paper's model, and the engine default).
#[derive(Clone, Copy, Debug, Default)]
pub struct Fsync;

impl Scheduler for Fsync {
    fn activate(&mut self, _round: u64, _mask: &mut [bool]) {}
}

/// Round-robin SSYNC: indices are partitioned into `groups` residue
/// classes (`i % groups`), and class `round % groups` is active each
/// round. `groups = 1` degenerates to FSYNC; `groups = n` activates one
/// robot per round.
#[derive(Clone, Copy, Debug)]
pub struct RoundRobinSsync {
    groups: u64,
}

impl RoundRobinSsync {
    /// A round-robin schedule over `groups` classes (clamped to ≥ 1).
    pub fn new(groups: u32) -> Self {
        RoundRobinSsync {
            groups: u64::from(groups.max(1)),
        }
    }
}

impl Scheduler for RoundRobinSsync {
    fn activate(&mut self, round: u64, mask: &mut [bool]) {
        if self.groups <= 1 {
            return;
        }
        let turn = round % self.groups;
        for (i, slot) in mask.iter_mut().enumerate() {
            *slot = (i as u64) % self.groups == turn;
        }
    }
    fn slowdown(&self) -> u64 {
        // Also the worst activation gap: with more groups than robots,
        // the turns pointing at empty residue classes activate nobody.
        self.groups
    }
}

/// Mix a `(seed, round, index)` triple into one SplitMix64 draw — the
/// stateless core of the randomized schedulers. Being stateless makes the
/// schedule a pure function of the triple: merges can shrink the chain
/// between rounds without any index-remapping bookkeeping.
#[inline]
pub(crate) fn draw(seed: u64, round: u64, index: usize) -> u64 {
    // Distinct odd multipliers keep (round, index) pairs from colliding
    // in the seed expansion; SplitMix64 then scrambles the state.
    let state = seed
        ^ round.wrapping_mul(0x9e37_79b9_7f4a_7c15)
        ^ (index as u64).wrapping_mul(0xc2b2_ae3d_27d4_eb4f);
    SplitMix64::new(state).next_u64()
}

/// Independent-coin SSYNC: each robot is active with probability
/// `percent`/100 per round, independently, from a seeded stream.
#[derive(Clone, Copy, Debug)]
pub struct SeededRandomSsync {
    seed: u64,
    percent: u64,
}

impl SeededRandomSsync {
    /// Activation probability `percent`% (clamped to 1..=100) from `seed`.
    pub fn new(seed: u64, percent: u8) -> Self {
        SeededRandomSsync {
            seed,
            percent: u64::from(percent.clamp(1, 100)),
        }
    }
}

impl Scheduler for SeededRandomSsync {
    fn activate(&mut self, round: u64, mask: &mut [bool]) {
        if self.percent >= 100 {
            return;
        }
        for (i, slot) in mask.iter_mut().enumerate() {
            // Lemire reduction of one draw to [0, 100).
            let coin = ((u128::from(draw(self.seed, round, i)) * 100) >> 64) as u64;
            *slot = coin < self.percent;
        }
    }
    fn slowdown(&self) -> u64 {
        // The expected activation gap; the scaled quiescence window (64×
        // this) makes a false stall from coin-flip gaps astronomically
        // unlikely at any percentage the registry admits.
        100u64.div_ceil(self.percent.max(1))
    }
}

/// Adversarial k-fair SSYNC: every index is active exactly once every `k`
/// rounds — the *minimum* activation a k-fair adversary must grant — at a
/// per-index phase scrambled from the seed (so neighboring indices do not
/// wake in lockstep blocks).
#[derive(Clone, Copy, Debug)]
pub struct KFair {
    seed: u64,
    k: u64,
}

impl KFair {
    /// A k-fair adversary with period `k` (clamped to ≥ 1) and a seeded
    /// phase assignment.
    pub fn new(seed: u64, k: u32) -> Self {
        KFair {
            seed,
            k: u64::from(k.max(1)),
        }
    }
}

impl Scheduler for KFair {
    fn activate(&mut self, round: u64, mask: &mut [bool]) {
        if self.k <= 1 {
            return;
        }
        for (i, slot) in mask.iter_mut().enumerate() {
            // Phase depends on seed and index only, never on the round:
            // each index fires at rounds phase, phase + k, phase + 2k, …
            let phase = draw(self.seed, 0, i) % self.k;
            *slot = round % self.k == phase;
        }
    }
    fn slowdown(&self) -> u64 {
        self.k
    }
}

/// The scheduler registry: every schedule the scenario pipeline, the
/// campaign grids, and the `spec_id` encoding can name. Mirrors
/// `bench`'s `StrategyKind` pattern but lives with the engine, because
/// the schedule is a property of the *model*, not of the harness.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum SchedulerKind {
    /// All robots active every round (the paper's model; the default).
    #[default]
    Fsync,
    /// [`RoundRobinSsync`] with this many groups.
    RoundRobin(u32),
    /// [`SeededRandomSsync`] with this activation percentage.
    Random(u8),
    /// [`KFair`] with this period.
    KFair(u32),
}

impl SchedulerKind {
    /// The canonical SSYNC sweep the robustness experiments run: FSYNC
    /// (the control), alternating round-robin, a fair coin, and a 4-fair
    /// adversary.
    pub const SWEEP: [SchedulerKind; 4] = [
        SchedulerKind::Fsync,
        SchedulerKind::RoundRobin(2),
        SchedulerKind::Random(50),
        SchedulerKind::KFair(4),
    ];

    /// Every name form the registry accepts, for error inventories: the
    /// parameterized kinds are families of names, so the inventory lists
    /// the *forms* (`rr{groups}` …), not an enumeration.
    pub const NAME_FORMS: [&'static str; 4] = ["fsync", "rr{groups}", "rand{percent}", "kfair{k}"];

    /// Canonical registry name: `fsync`, `rr{groups}`, `rand{percent}`,
    /// `kfair{k}`. Stable — campaign `spec_id`s embed it.
    pub fn name(&self) -> String {
        match self {
            SchedulerKind::Fsync => "fsync".to_string(),
            SchedulerKind::RoundRobin(g) => format!("rr{g}"),
            SchedulerKind::Random(p) => format!("rand{p}"),
            SchedulerKind::KFair(k) => format!("kfair{k}"),
        }
    }

    /// Parse a registry name back (inverse of [`SchedulerKind::name`]).
    pub fn from_name(name: &str) -> Option<SchedulerKind> {
        if name == "fsync" {
            return Some(SchedulerKind::Fsync);
        }
        if let Some(g) = name.strip_prefix("rr") {
            return g.parse().ok().map(SchedulerKind::RoundRobin);
        }
        if let Some(p) = name.strip_prefix("rand") {
            return p.parse().ok().map(SchedulerKind::Random);
        }
        if let Some(k) = name.strip_prefix("kfair") {
            return k.parse().ok().map(SchedulerKind::KFair);
        }
        None
    }

    /// Build the scheduler. `seed` feeds the randomized kinds (the
    /// scenario pipeline passes the workload seed, so one scenario seed
    /// determines both the chain and the schedule).
    pub fn build(&self, seed: u64) -> Box<dyn Scheduler + Send> {
        match *self {
            SchedulerKind::Fsync => Box::new(Fsync),
            SchedulerKind::RoundRobin(g) => Box::new(RoundRobinSsync::new(g)),
            SchedulerKind::Random(p) => Box::new(SeededRandomSsync::new(seed, p)),
            SchedulerKind::KFair(k) => Box::new(KFair::new(seed, k)),
        }
    }

    /// Worst-case round-count inflation versus FSYNC: the inverse duty
    /// cycle. Limit policies multiply their FSYNC-derived bounds by this
    /// factor, so an SSYNC run gets proportionally more rounds before the
    /// round cap or the stall window trips.
    pub fn slowdown(&self) -> u64 {
        match *self {
            SchedulerKind::Fsync => 1,
            SchedulerKind::RoundRobin(g) => u64::from(g.max(1)),
            SchedulerKind::Random(p) => 100u64.div_ceil(u64::from(p.clamp(1, 100))),
            SchedulerKind::KFair(k) => u64::from(k.max(1)),
        }
    }

    /// `true` for the fully synchronous kind.
    pub fn is_fsync(&self) -> bool {
        matches!(self, SchedulerKind::Fsync)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mask_of(s: &mut dyn Scheduler, round: u64, n: usize) -> Vec<bool> {
        let mut mask = vec![true; n];
        s.activate(round, &mut mask);
        mask
    }

    #[test]
    fn fsync_activates_everyone() {
        let mut f = Fsync;
        for round in 0..8 {
            assert!(mask_of(&mut f, round, 7).iter().all(|&a| a));
        }
    }

    #[test]
    fn round_robin_partitions_rounds() {
        let mut rr = RoundRobinSsync::new(3);
        let n = 10;
        // Over any 3 consecutive rounds, every index is active exactly once.
        let mut counts = vec![0usize; n];
        for round in 0..3 {
            for (i, active) in mask_of(&mut rr, round, n).iter().enumerate() {
                if *active {
                    counts[i] += 1;
                }
            }
        }
        assert_eq!(counts, vec![1; n]);
        // groups=1 is FSYNC.
        let mut one = RoundRobinSsync::new(1);
        assert!(mask_of(&mut one, 5, n).iter().all(|&a| a));
    }

    #[test]
    fn seeded_random_is_reproducible_and_seed_sensitive() {
        let mut a = SeededRandomSsync::new(7, 50);
        let mut b = SeededRandomSsync::new(7, 50);
        let mut c = SeededRandomSsync::new(8, 50);
        let masks_a: Vec<Vec<bool>> = (0..32).map(|r| mask_of(&mut a, r, 64)).collect();
        let masks_b: Vec<Vec<bool>> = (0..32).map(|r| mask_of(&mut b, r, 64)).collect();
        let masks_c: Vec<Vec<bool>> = (0..32).map(|r| mask_of(&mut c, r, 64)).collect();
        assert_eq!(masks_a, masks_b, "same seed, same schedule");
        assert_ne!(masks_a, masks_c, "different seed, different schedule");
        // p=100 never deactivates; activation rate is roughly p elsewhere.
        let mut full = SeededRandomSsync::new(7, 100);
        assert!(mask_of(&mut full, 0, 64).iter().all(|&x| x));
        let active: usize = masks_a.iter().flatten().filter(|&&x| x).count();
        let total = 32 * 64;
        assert!(
            (total * 4 / 10..=total * 6 / 10).contains(&active),
            "p=50 rate out of band: {active}/{total}"
        );
    }

    #[test]
    fn kfair_activates_each_index_exactly_once_per_period() {
        let (k, n) = (4u32, 23usize);
        let mut sched = KFair::new(99, k);
        for window in 0..3 {
            let mut counts = vec![0usize; n];
            for round in window * k as u64..(window + 1) * k as u64 {
                for (i, active) in mask_of(&mut sched, round, n).iter().enumerate() {
                    if *active {
                        counts[i] += 1;
                    }
                }
            }
            assert_eq!(counts, vec![1; n], "window {window}");
        }
        // Phases are seed-scrambled: a different seed shifts them.
        let mut other = KFair::new(100, k);
        let a: Vec<Vec<bool>> = (0..4).map(|r| mask_of(&mut sched, r, n)).collect();
        let b: Vec<Vec<bool>> = (0..4).map(|r| mask_of(&mut other, r, n)).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn kind_names_round_trip() {
        for kind in [
            SchedulerKind::Fsync,
            SchedulerKind::RoundRobin(2),
            SchedulerKind::RoundRobin(16),
            SchedulerKind::Random(50),
            SchedulerKind::Random(5),
            SchedulerKind::KFair(4),
            SchedulerKind::KFair(32),
        ] {
            assert_eq!(SchedulerKind::from_name(&kind.name()), Some(kind));
        }
        assert_eq!(
            SchedulerKind::from_name("fsync"),
            Some(SchedulerKind::Fsync)
        );
        assert_eq!(SchedulerKind::from_name("nope"), None);
        assert_eq!(SchedulerKind::from_name("rrx"), None);
        assert_eq!(SchedulerKind::from_name("rand"), None);
        assert_eq!(SchedulerKind::default(), SchedulerKind::Fsync);
    }

    #[test]
    fn slowdown_is_the_inverse_duty_cycle() {
        assert_eq!(SchedulerKind::Fsync.slowdown(), 1);
        assert_eq!(SchedulerKind::RoundRobin(2).slowdown(), 2);
        assert_eq!(SchedulerKind::Random(50).slowdown(), 2);
        assert_eq!(SchedulerKind::Random(33).slowdown(), 4);
        assert_eq!(SchedulerKind::Random(100).slowdown(), 1);
        assert_eq!(SchedulerKind::KFair(4).slowdown(), 4);
        assert!(SchedulerKind::Fsync.is_fsync());
        assert!(!SchedulerKind::KFair(4).is_fsync());
    }

    #[test]
    fn built_kinds_respect_their_shape() {
        let n = 12;
        // Fsync build leaves the mask alone.
        let mut f = SchedulerKind::Fsync.build(3);
        assert!(mask_of(&mut f, 9, n).iter().all(|&a| a));
        // KFair build with the same seed gives the same schedule.
        let mut k1 = SchedulerKind::KFair(3).build(5);
        let mut k2 = SchedulerKind::KFair(3).build(5);
        for round in 0..6 {
            assert_eq!(mask_of(&mut k1, round, n), mask_of(&mut k2, round, n));
        }
    }
}
