//! Global invariant checks used by tests and auditors.
//!
//! These checks have global knowledge (they are instrumentation, not part
//! of the robot model): tautness, connectivity, and configuration equality
//! up to the symmetries the robots cannot perceive (translation, rotation,
//! mirroring, cyclic relabeling, orientation reversal).

use crate::chain::ClosedChain;
use grid_geom::Point;

/// All chain edges are unit steps (taut chain between rounds).
pub fn is_taut(chain: &ClosedChain) -> bool {
    (0..chain.len()).all(|i| chain.step(i).is_unit_step())
}

/// Total absolute turning of the closed chain in quarter-turns. For any
/// closed chain on the grid the *signed* turning is ±4 for simple
/// counterclockwise/clockwise loops and any even value for self-crossing
/// loops; it is always even. Used by workload validators.
pub fn signed_turning_quarters(chain: &ClosedChain) -> i64 {
    let n = chain.len();
    let mut total = 0i64;
    for i in 0..n {
        let a = chain.step(i);
        let b = chain.step(chain.nb(i, 1));
        // cross product z-component of the two unit steps:
        // +1 = left turn, -1 = right turn, 0 = straight; u-turns (a == -b)
        // count 0 here and are legal for self-touching chains.
        total += a.dx * b.dy - a.dy * b.dx;
    }
    total
}

/// Normal form of a configuration under translation: positions relative to
/// the lexicographically smallest position.
pub fn translation_normal_form(chain: &ClosedChain) -> Vec<Point> {
    let min = chain
        .positions()
        .iter()
        .copied()
        .min()
        .expect("non-empty chain");
    chain
        .positions()
        .iter()
        .map(|p| Point::new(p.x - min.x, p.y - min.y))
        .collect()
}

/// `true` if two chains are the same configuration up to translation and
/// cyclic relabeling (used by oscillation detectors in tests).
pub fn same_up_to_translation_and_rotation(a: &ClosedChain, b: &ClosedChain) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let na = translation_normal_form(a);
    // Try every cyclic rotation of b (and its reversal).
    let n = b.len();
    for rev in [false, true] {
        for shift in 0..n {
            let candidate: Vec<Point> = (0..n)
                .map(|i| {
                    let idx = if rev {
                        (2 * n - i - shift) % n
                    } else {
                        (i + shift) % n
                    };
                    b.pos(idx)
                })
                .collect();
            let min = candidate.iter().copied().min().unwrap();
            let normalized: Vec<Point> = candidate
                .iter()
                .map(|p| Point::new(p.x - min.x, p.y - min.y))
                .collect();
            if normalized == na {
                return true;
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use grid_geom::Offset;

    fn chain(coords: &[(i64, i64)]) -> ClosedChain {
        ClosedChain::new(coords.iter().map(|&(x, y)| Point::new(x, y)).collect()).unwrap()
    }

    #[test]
    fn tautness() {
        let c = chain(&[(0, 0), (1, 0), (1, 1), (0, 1)]);
        assert!(is_taut(&c));
    }

    #[test]
    fn turning_of_simple_loop_is_pm4() {
        let ccw = chain(&[(0, 0), (1, 0), (1, 1), (0, 1)]);
        assert_eq!(signed_turning_quarters(&ccw).abs(), 4);
        let rect = chain(&[(0, 0), (1, 0), (2, 0), (2, 1), (1, 1), (0, 1)]);
        assert_eq!(signed_turning_quarters(&rect).abs(), 4);
    }

    #[test]
    fn configuration_equality_mod_symmetry() {
        let a = chain(&[(0, 0), (1, 0), (1, 1), (0, 1)]);
        let mut b = chain(&[(0, 0), (1, 0), (1, 1), (0, 1)]);
        b.translate(Offset::new(7, -2));
        b.rotate_origin(2);
        assert!(same_up_to_translation_and_rotation(&a, &b));
        let c = chain(&[(0, 0), (1, 0), (2, 0), (2, 1), (1, 1), (0, 1)]);
        assert!(!same_up_to_translation_and_rotation(&a, &c));
    }

    #[test]
    fn reversal_is_recognized() {
        let a = chain(&[(0, 0), (1, 0), (2, 0), (2, 1), (1, 1), (0, 1)]);
        let mut b = chain(&[(0, 0), (1, 0), (2, 0), (2, 1), (1, 1), (0, 1)]);
        b.reverse_orientation();
        assert!(same_up_to_translation_and_rotation(&a, &b));
    }
}
