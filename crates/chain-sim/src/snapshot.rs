//! Compact text snapshots of configurations.
//!
//! A hand-rolled format (one `x,y` pair per robot, `;`-separated) keeps the
//! dependency set inside the whitelist while giving tests and the
//! experiment harness a stable way to pin down configurations.
//!
//! Format: `ccg1:x0,y0;x1,y1;…` — version-tagged, whitespace-free.

use crate::chain::{ChainError, ClosedChain};
use grid_geom::Point;

/// Serialize a chain's positions.
pub fn to_string(chain: &ClosedChain) -> String {
    let mut s = String::with_capacity(8 + chain.len() * 8);
    s.push_str("ccg1:");
    for (i, p) in chain.positions().iter().enumerate() {
        if i > 0 {
            s.push(';');
        }
        s.push_str(&p.x.to_string());
        s.push(',');
        s.push_str(&p.y.to_string());
    }
    s
}

/// Errors from [`from_str`].
#[derive(Debug, PartialEq, Eq)]
pub enum ParseError {
    /// The `ccg1:` version header is missing.
    BadHeader,
    /// A point failed to parse as `x,y`.
    BadPoint {
        /// Index of the malformed point.
        index: usize,
    },
    /// The points parsed but do not form a valid closed chain.
    InvalidChain(ChainError),
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::BadHeader => write!(f, "missing ccg1: header"),
            ParseError::BadPoint { index } => write!(f, "malformed point at index {index}"),
            ParseError::InvalidChain(e) => write!(f, "snapshot is not a valid chain: {e}"),
        }
    }
}

impl std::error::Error for ParseError {}

/// Parse a snapshot back into a validated chain (fresh ids).
pub fn from_str(s: &str) -> Result<ClosedChain, ParseError> {
    let body = s.strip_prefix("ccg1:").ok_or(ParseError::BadHeader)?;
    let mut pts = Vec::new();
    if !body.is_empty() {
        for (index, item) in body.split(';').enumerate() {
            let (xs, ys) = item.split_once(',').ok_or(ParseError::BadPoint { index })?;
            let x: i64 = xs
                .trim()
                .parse()
                .map_err(|_| ParseError::BadPoint { index })?;
            let y: i64 = ys
                .trim()
                .parse()
                .map_err(|_| ParseError::BadPoint { index })?;
            pts.push(Point::new(x, y));
        }
    }
    ClosedChain::new(pts).map_err(ParseError::InvalidChain)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let chain = ClosedChain::new(vec![
            Point::new(0, 0),
            Point::new(1, 0),
            Point::new(1, 1),
            Point::new(0, 1),
        ])
        .unwrap();
        let s = to_string(&chain);
        assert_eq!(s, "ccg1:0,0;1,0;1,1;0,1");
        let back = from_str(&s).unwrap();
        assert_eq!(back.positions(), chain.positions());
    }

    #[test]
    fn negative_coordinates() {
        let chain = ClosedChain::new(vec![
            Point::new(-1, -1),
            Point::new(0, -1),
            Point::new(0, 0),
            Point::new(-1, 0),
        ])
        .unwrap();
        let back = from_str(&to_string(&chain)).unwrap();
        assert_eq!(back.positions(), chain.positions());
    }

    #[test]
    fn errors() {
        assert!(matches!(from_str("nope"), Err(ParseError::BadHeader)));
        assert!(matches!(
            from_str("ccg1:1,2;zzz"),
            Err(ParseError::BadPoint { index: 1 })
        ));
        // Structurally parseable but not a valid chain (gap).
        assert!(matches!(
            from_str("ccg1:0,0;5,5"),
            Err(ParseError::InvalidChain(_))
        ));
    }
}
