//! Open chains (for the \[KM09\] baseline family).
//!
//! The paper generalizes the *open* chain setting of Kutyłowski & Meyer auf
//! der Heide (Manhattan Hopper): a chain between two distinguishable,
//! possibly fixed endpoints. Open chains make gathering easy — "the
//! endpoints are always locally distinguishable and would simply
//! sequentially hop onto their inner neighbors" (Section 1). This module
//! provides the data structure; strategies live in the `baselines` crate.

use crate::chain::ChainError;
use crate::robot::RobotId;
use grid_geom::{chain_adjacent, Offset, Point, Rect};

/// An open chain `r_0 … r_{n-1}` (no wrap-around edge).
#[derive(Clone, Debug)]
pub struct OpenChain {
    pos: Vec<Point>,
    id: Vec<RobotId>,
}

impl OpenChain {
    /// Build an open chain from positions; assigns fresh ids `r0, r1, …`.
    ///
    /// Valid open chains have at least 2 robots and every *consecutive*
    /// pair on the same or 4-adjacent grid points; unlike a
    /// [`crate::ClosedChain`] there is no wrap-around edge, so the two
    /// endpoints may be arbitrarily far apart.
    pub fn new(positions: Vec<Point>) -> Result<Self, ChainError> {
        if positions.len() < 2 {
            return Err(ChainError::TooShort {
                len: positions.len(),
            });
        }
        let chain = OpenChain {
            id: (0..positions.len() as u64).map(RobotId).collect(),
            pos: positions,
        };
        chain.validate()?;
        Ok(chain)
    }

    /// Cut a closed chain's position sequence into an open chain (used by
    /// the open-vs-closed comparison experiment: same geometry, easier
    /// model).
    pub fn from_closed_positions(positions: &[Point]) -> Result<Self, ChainError> {
        OpenChain::new(positions.to_vec())
    }

    /// Number of robots currently on the chain.
    #[inline]
    pub fn len(&self) -> usize {
        self.pos.len()
    }

    /// `true` if the chain holds no robots (never the case for a validated
    /// chain; provided for the `len`/`is_empty` API convention).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.pos.is_empty()
    }

    /// Position of robot `i`.
    #[inline]
    pub fn pos(&self, i: usize) -> Point {
        self.pos[i]
    }

    /// Stable identity of robot `i`.
    #[inline]
    pub fn id(&self, i: usize) -> RobotId {
        self.id[i]
    }

    /// All positions, in chain order.
    #[inline]
    pub fn positions(&self) -> &[Point] {
        &self.pos
    }

    /// Bounding box of the configuration.
    pub fn bounding(&self) -> Rect {
        Rect::bounding(self.pos.iter().copied()).expect("non-empty")
    }

    /// `true` if the configuration fits a 2×2 subgrid.
    pub fn is_gathered(&self) -> bool {
        self.bounding().is_gathered_2x2()
    }

    /// Check the open-chain validity conditions (consecutive adjacency,
    /// tautness); see [`OpenChain::new`].
    pub fn validate(&self) -> Result<(), ChainError> {
        for i in 0..self.pos.len().saturating_sub(1) {
            let (a, b) = (self.pos[i], self.pos[i + 1]);
            if a == b {
                return Err(ChainError::CoincidentNeighbors { index: i, at: a });
            }
            if !chain_adjacent(a, b) {
                return Err(ChainError::Disconnected { index: i, a, b });
            }
        }
        Ok(())
    }

    /// Simultaneous hops, as in the closed engine.
    pub fn apply_hops(&mut self, hops: &[Offset]) -> Result<(), ChainError> {
        assert_eq!(hops.len(), self.pos.len());
        for (i, h) in hops.iter().enumerate() {
            if !h.is_hop() {
                return Err(ChainError::IllegalHop { index: i, hop: *h });
            }
        }
        for (p, h) in self.pos.iter_mut().zip(hops) {
            *p += *h;
        }
        for i in 0..self.pos.len() - 1 {
            if !chain_adjacent(self.pos[i], self.pos[i + 1]) {
                return Err(ChainError::Disconnected {
                    index: i,
                    a: self.pos[i],
                    b: self.pos[i + 1],
                });
            }
        }
        Ok(())
    }

    /// Merge pass for the open chain: collapse consecutive coincidences.
    /// Returns robots removed.
    pub fn merge_pass(&mut self) -> usize {
        let n = self.pos.len();
        if n < 2 {
            return 0;
        }
        let mut write = 0usize;
        for read in 1..n {
            if self.pos[read] != self.pos[write] {
                write += 1;
                self.pos[write] = self.pos[read];
                self.id[write] = self.id[read];
            }
        }
        let removed = n - (write + 1);
        self.pos.truncate(write + 1);
        self.id.truncate(write + 1);
        removed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn open(coords: &[(i64, i64)]) -> OpenChain {
        OpenChain::new(coords.iter().map(|&(x, y)| Point::new(x, y)).collect()).unwrap()
    }

    #[test]
    fn construction_and_validation() {
        let c = open(&[(0, 0), (1, 0), (2, 0)]);
        assert_eq!(c.len(), 3);
        assert!(OpenChain::new(vec![Point::new(0, 0)]).is_err());
        assert!(OpenChain::new(vec![Point::new(0, 0), Point::new(2, 0)]).is_err());
    }

    #[test]
    fn len_2_edge_cases() {
        // The minimal open chain: two adjacent robots.
        let c = open(&[(0, 0), (1, 0)]);
        assert_eq!(c.len(), 2);
        assert!(c.is_gathered());
        // Two coinciding robots are not taut.
        assert!(matches!(
            OpenChain::new(vec![Point::new(0, 0), Point::new(0, 0)]),
            Err(ChainError::CoincidentNeighbors { index: 0, .. })
        ));
        // Two robots a chess-knight-free diagonal apart are disconnected.
        assert!(matches!(
            OpenChain::new(vec![Point::new(0, 0), Point::new(1, 1)]),
            Err(ChainError::Disconnected { index: 0, .. })
        ));
        // One robot (or zero) is too short.
        assert!(matches!(
            OpenChain::new(vec![Point::new(0, 0)]),
            Err(ChainError::TooShort { len: 1 })
        ));
        assert!(matches!(
            OpenChain::new(vec![]),
            Err(ChainError::TooShort { len: 0 })
        ));
    }

    #[test]
    fn endpoint_adjacency_is_not_required() {
        // Unlike the closed chain, the endpoints have no connecting edge:
        // a straight line of 5 is valid even though its ends are 4 apart.
        let c = open(&[(0, 0), (1, 0), (2, 0), (3, 0), (4, 0)]);
        c.validate().unwrap();
        // The same positions do NOT form a valid closed chain.
        assert!(crate::ClosedChain::new(c.positions().to_vec()).is_err());
    }

    #[test]
    fn from_closed_positions_round_trips() {
        // A closed ring cut open keeps length, order, and positions; the
        // cut is between the last and first robot (the wrap edge).
        let ring = crate::ClosedChain::new(vec![
            Point::new(0, 0),
            Point::new(1, 0),
            Point::new(2, 0),
            Point::new(2, 1),
            Point::new(1, 1),
            Point::new(0, 1),
        ])
        .unwrap();
        let cut = OpenChain::from_closed_positions(ring.positions()).unwrap();
        assert_eq!(cut.len(), ring.len());
        assert_eq!(cut.positions(), ring.positions());
        // And the open positions re-close into the same ring (the wrap
        // edge happens to be adjacent here).
        let reclosed = crate::ClosedChain::new(cut.positions().to_vec()).unwrap();
        assert_eq!(reclosed.positions(), ring.positions());
    }

    #[test]
    fn no_wrap_edge() {
        // Endpoints far apart are fine for an open chain.
        let c = open(&[(0, 0), (1, 0), (2, 0), (3, 0), (4, 0)]);
        c.validate().unwrap();
        assert!(!c.is_gathered());
    }

    #[test]
    fn zip_merge() {
        // Endpoint hops onto its inner neighbor; merge removes one robot.
        let mut c = open(&[(0, 0), (1, 0), (2, 0)]);
        let hops = vec![Offset::RIGHT, Offset::ZERO, Offset::ZERO];
        c.apply_hops(&hops).unwrap();
        assert_eq!(c.merge_pass(), 1);
        assert_eq!(c.len(), 2);
        c.validate().unwrap();
    }

    #[test]
    fn merge_pass_chain_of_coincidences() {
        let mut c = open(&[(0, 0), (1, 0), (2, 0), (3, 0)]);
        let hops = vec![
            Offset::RIGHT,
            Offset::ZERO,
            Offset::new(-1, 0),
            Offset::new(-1, 0),
        ];
        c.apply_hops(&hops).unwrap();
        // positions: (1,0) (1,0) (1,0) (2,0)
        assert_eq!(c.merge_pass(), 2);
        assert_eq!(c.len(), 2);
        assert_eq!(c.pos(0), Point::new(1, 0));
        assert_eq!(c.pos(1), Point::new(2, 0));
    }
}
