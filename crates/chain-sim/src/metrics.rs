//! Per-configuration metrics used by reports, experiments, and tests.

use crate::chain::ClosedChain;
use grid_geom::Point;
use std::collections::HashMap;

/// Structural metrics of a configuration.
#[derive(Clone, Debug, PartialEq)]
pub struct ChainMetrics {
    /// Number of robots.
    pub robots: usize,
    /// Number of distinct occupied grid points.
    pub occupied_points: usize,
    /// Largest number of robots on one grid point.
    pub max_multiplicity: usize,
    /// Bounding box width.
    pub width: i64,
    /// Bounding box height.
    pub height: i64,
    /// Number of corner robots (incident steps perpendicular).
    pub corners: usize,
    /// Number of fold robots (incident steps exactly opposite) — each is a
    /// k = 1 merge pattern.
    pub folds: usize,
    /// Length of the longest monotone run (in robots).
    pub longest_run: usize,
}

/// Compute [`ChainMetrics`] for a taut chain.
pub fn metrics(chain: &ClosedChain) -> ChainMetrics {
    let n = chain.len();
    let mut occupancy: HashMap<Point, usize> = HashMap::with_capacity(n);
    for &p in chain.positions() {
        *occupancy.entry(p).or_insert(0) += 1;
    }
    let bbox = chain.bounding();
    let mut corners = 0;
    let mut folds = 0;
    let mut longest_run = 1;
    if n >= 2 {
        let mut run = 1usize;
        for i in 0..n {
            let s_in = chain.step(chain.nb(i, -1));
            let s_out = chain.step(i);
            if s_in == s_out {
                run += 1;
            } else {
                longest_run = longest_run.max(run + 1);
                run = 1;
                if s_in == -s_out {
                    folds += 1;
                } else {
                    corners += 1;
                }
            }
        }
        longest_run = longest_run.max(run);
    }
    ChainMetrics {
        robots: n,
        occupied_points: occupancy.len(),
        max_multiplicity: occupancy.values().copied().max().unwrap_or(0),
        width: bbox.width(),
        height: bbox.height(),
        corners,
        folds,
        longest_run: longest_run.min(n),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain(coords: &[(i64, i64)]) -> ClosedChain {
        ClosedChain::new(coords.iter().map(|&(x, y)| Point::new(x, y)).collect()).unwrap()
    }

    #[test]
    fn square_metrics() {
        let m = metrics(&chain(&[(0, 0), (1, 0), (1, 1), (0, 1)]));
        assert_eq!(m.robots, 4);
        assert_eq!(m.occupied_points, 4);
        assert_eq!(m.max_multiplicity, 1);
        assert_eq!(m.corners, 4);
        assert_eq!(m.folds, 0);
        assert_eq!((m.width, m.height), (2, 2));
    }

    #[test]
    fn hairpin_metrics() {
        // Flattened loop with two fold tips.
        let m = metrics(&chain(&[(0, 0), (1, 0), (2, 0), (1, 0)]));
        assert_eq!(m.robots, 4);
        assert_eq!(m.occupied_points, 3);
        assert_eq!(m.max_multiplicity, 2);
        assert_eq!(m.folds, 2);
        assert_eq!(m.corners, 0);
    }

    #[test]
    fn rectangle_run_lengths() {
        let m = metrics(&chain(&[
            (0, 0),
            (1, 0),
            (2, 0),
            (3, 0),
            (3, 1),
            (2, 1),
            (1, 1),
            (0, 1),
        ]));
        assert_eq!(m.longest_run, 4);
        assert_eq!(m.corners, 4);
        assert_eq!(m.folds, 0);
    }
}
