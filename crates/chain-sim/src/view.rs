//! Local views of the chain.
//!
//! Robots see only the subchain of their next `V` neighbors in both chain
//! directions ("viewing path length", `V = 11` in the paper), as *relative
//! positions*. [`Ring`] is a zero-allocation cyclic accessor centered on an
//! observing robot; all strategy decisions in `gathering-core` go through a
//! `Ring` bounded to the viewing range, which makes locality structural.

use crate::chain::ClosedChain;
use grid_geom::{Offset, Point};

/// Cyclic, relative accessor to the chain, centered at robot `center`.
///
/// `at(d)` returns the position of the chain neighbor `d` steps away
/// (positive = successor direction, negative = predecessor direction)
/// relative to the observer's own position — the only geometry the paper's
/// robots can perceive.
#[derive(Clone, Copy)]
pub struct Ring<'a> {
    chain: &'a ClosedChain,
    center: usize,
    /// Maximum |d| this view may access (viewing path length). Accesses
    /// beyond the horizon panic in debug builds: locality violations are
    /// bugs, not policies.
    horizon: isize,
}

impl<'a> Ring<'a> {
    /// A view with limited horizon (the algorithm's constant-size view).
    pub fn with_horizon(chain: &'a ClosedChain, center: usize, horizon: usize) -> Self {
        Ring {
            chain,
            center,
            horizon: horizon as isize,
        }
    }

    /// An unbounded view (engine-side instrumentation only).
    pub fn unbounded(chain: &'a ClosedChain, center: usize) -> Self {
        Ring {
            chain,
            center,
            horizon: isize::MAX,
        }
    }

    /// The observing robot's chain index (engine-side bookkeeping).
    #[inline]
    pub fn center(&self) -> usize {
        self.center
    }

    /// Number of robots on the whole chain. The paper's robots do not know
    /// `n`; the strategy uses this only to clamp scans on tiny chains where
    /// the viewing range wraps around the whole chain (`n ≤ 2V`), which is
    /// information a robot *can* derive from its view (it sees the same
    /// robot in both directions).
    #[inline]
    pub fn chain_len(&self) -> usize {
        self.chain.len()
    }

    /// Chain index of the robot `d` steps away (engine-side bookkeeping).
    #[inline]
    pub fn index(&self, d: isize) -> usize {
        debug_assert!(
            d.abs() <= self.horizon,
            "view horizon exceeded: |{d}| > {}",
            self.horizon
        );
        self.chain.nb(self.center, d)
    }

    /// Position of the robot `d` steps away, relative to the observer.
    #[inline]
    pub fn rel(&self, d: isize) -> Offset {
        self.abs(d) - self.abs(0)
    }

    /// Absolute position of the robot `d` steps away. The *observer* has no
    /// global coordinates; strategies must only use differences of these
    /// (equivariance under translation is enforced by symmetry tests).
    #[inline]
    pub fn abs(&self, d: isize) -> Point {
        self.chain.pos(self.index(d))
    }

    /// The chain step from neighbor `d` to neighbor `d+1`.
    #[inline]
    pub fn step(&self, d: isize) -> Offset {
        self.abs(d + 1) - self.abs(d)
    }

    /// The chain step from neighbor `d` to neighbor `d + dir` for
    /// `dir = ±1`: the "forward step" in a chain direction.
    #[inline]
    pub fn step_dir(&self, d: isize, dir: isize) -> Offset {
        debug_assert!(dir == 1 || dir == -1);
        self.abs(d + dir) - self.abs(d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grid_geom::Point;

    fn chain(coords: &[(i64, i64)]) -> ClosedChain {
        ClosedChain::new(coords.iter().map(|&(x, y)| Point::new(x, y)).collect()).unwrap()
    }

    #[test]
    fn relative_positions() {
        let c = chain(&[(0, 0), (1, 0), (1, 1), (0, 1)]);
        let v = Ring::with_horizon(&c, 0, 3);
        assert_eq!(v.rel(0), Offset::ZERO);
        assert_eq!(v.rel(1), Offset::new(1, 0));
        assert_eq!(v.rel(2), Offset::new(1, 1));
        assert_eq!(v.rel(-1), Offset::new(0, 1));
        assert_eq!(v.step(0), Offset::new(1, 0));
        assert_eq!(v.step_dir(0, -1), Offset::new(0, 1));
    }

    #[test]
    fn wrapping() {
        let c = chain(&[(0, 0), (1, 0), (1, 1), (0, 1)]);
        let v = Ring::with_horizon(&c, 3, 4);
        assert_eq!(v.index(1), 0);
        assert_eq!(v.index(-4), 3);
        assert_eq!(v.rel(4), Offset::ZERO); // all the way around
    }

    #[test]
    #[should_panic(expected = "view horizon exceeded")]
    #[cfg(debug_assertions)]
    fn horizon_is_enforced() {
        let c = chain(&[(0, 0), (1, 0), (1, 1), (0, 1)]);
        let v = Ring::with_horizon(&c, 0, 2);
        let _ = v.rel(3);
    }
}
