//! Record-and-replay: a versioned, dependency-free binary run log.
//!
//! A [`ReplayWriter`] observer logs the initial chain plus one compact
//! delta per round — activation mask, applied hops (3-bit compass codes;
//! hops may be diagonal), merge/guard counters, and the [`RoundSummary`]
//! — into a self-contained byte blob. A
//! [`ReplayReader`] reconstructs every intermediate chain byte-identically
//! by re-applying the recorded hops through the engine's own
//! [`ClosedChain::apply_hops`] and [`ClosedChain::merge_pass`], verifying
//! the recorded counters as it goes: a truncated or bit-flipped replay
//! fails with a positioned [`ReplayError`], never a panic, and never a
//! silently wrong chain.
//!
//! # Format (version 1)
//!
//! All integers are LEB128 varints; signed values are zigzag-encoded.
//! Chain *edge* codes are the packed-chain alphabet (`E=00`, `S=01`,
//! `W=10`, `N=11`), four per byte, low bits first — taut edges are always
//! cardinal. Hop *direction* codes are 3 bits (hops may be diagonal):
//! index into `[E, NE, N, NW, W, SW, S, SE]`, bit-packed low bits first.
//!
//! ```text
//! header  := "GRPL" version:u8 n:varint x0:zvarint y0:zvarint
//!            edges[ceil((n-1)/4)]          -- codes of edges 0..n-1
//! round   := 0x01 round:varint flags:u8
//!            moved:varint removed:varint len_after:varint
//!            [guard:varint      if flags&0x02]
//!            [mask[ceil(n/8)]   if flags&0x01]  -- n = pre-round length
//!            movers[ceil(n/8)] dirs[ceil(3*moved/8)]
//! trailer := 0x02 kind:u8 rounds:varint
//!            [since_last_merge:varint  if kind=stalled]
//!            [len:varint error:utf8    if kind=chain-broken]
//! ```
//!
//! The closing edge `n-1 → 0` is implied and re-verified by chain
//! validation on decode. **Compatibility rule:** a reader accepts exactly
//! its own version byte; any format change (new flag bits included) bumps
//! the version. Replays are artifacts, not interchange — a version
//! mismatch is a positioned error, never a guess.
//!
//! # Live frames
//!
//! The same observer can additionally publish a self-contained
//! [`LiveFrame`] per round into a bounded [`FrameRing`] — the feed behind
//! a streaming watch endpoint. Frames are snapshots (full chain state),
//! not deltas, so a slow consumer can skip to the latest frame without
//! losing the ability to decode; the ring never blocks the publisher on a
//! stalled consumer.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::chain::{ClosedChain, SpliceLog};
use crate::engine::{Outcome, RoundSummary};
use crate::observe::{Observer, RoundCtx};
use crate::packed::{edge_code, edge_offset};
use crate::strategy::Strategy;
use grid_geom::{Offset, Point};

/// The four magic bytes opening every replay blob.
pub const REPLAY_MAGIC: [u8; 4] = *b"GRPL";

/// The format version this build writes and reads (see the
/// [module docs](self) compatibility rule).
pub const REPLAY_VERSION: u8 = 1;

const TAG_ROUND: u8 = 0x01;
const TAG_END: u8 = 0x02;

const FLAG_MASK: u8 = 0x01;
const FLAG_GUARD: u8 = 0x02;
const FLAG_GATHERED: u8 = 0x04;
/// Live-frame only: the run's outcome is decided.
const FLAG_FINISHED: u8 = 0x08;

const OUTCOME_GATHERED: u8 = 0;
const OUTCOME_ROUND_LIMIT: u8 = 1;
const OUTCOME_STALLED: u8 = 2;
const OUTCOME_CHAIN_BROKEN: u8 = 3;

// ---------------------------------------------------------------------------
// Varint / bitset primitives
// ---------------------------------------------------------------------------

fn put_varint(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let b = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(b);
            return;
        }
        buf.push(b | 0x80);
    }
}

fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

fn put_bitset(buf: &mut Vec<u8>, bits: impl ExactSizeIterator<Item = bool>) {
    let n = bits.len();
    let start = buf.len();
    buf.resize(start + n.div_ceil(8), 0);
    for (i, bit) in bits.enumerate() {
        if bit {
            buf[start + i / 8] |= 1 << (i % 8);
        }
    }
}

fn put_codes(buf: &mut Vec<u8>, codes: impl ExactSizeIterator<Item = u8>) {
    let n = codes.len();
    let start = buf.len();
    buf.resize(start + n.div_ceil(4), 0);
    for (i, code) in codes.enumerate() {
        buf[start + i / 4] |= (code & 3) << (2 * (i % 4));
    }
}

// ---------------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------------

/// A positioned replay decode failure: `offset` is the byte position in
/// the blob at which the problem was detected.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ReplayError {
    /// Byte offset into the replay blob.
    pub offset: usize,
    /// What went wrong there.
    pub what: String,
}

impl std::fmt::Display for ReplayError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "replay error at byte {}: {}", self.offset, self.what)
    }
}

impl std::error::Error for ReplayError {}

struct Cursor<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(data: &'a [u8]) -> Self {
        Cursor { data, pos: 0 }
    }

    fn err(&self, what: impl Into<String>) -> ReplayError {
        ReplayError {
            offset: self.pos,
            what: what.into(),
        }
    }

    fn u8(&mut self) -> Result<u8, ReplayError> {
        let b = *self
            .data
            .get(self.pos)
            .ok_or_else(|| self.err("unexpected end of replay"))?;
        self.pos += 1;
        Ok(b)
    }

    fn varint(&mut self) -> Result<u64, ReplayError> {
        let mut v = 0u64;
        for shift in 0..10 {
            let b = self.u8()?;
            v |= u64::from(b & 0x7f) << (7 * shift);
            if b & 0x80 == 0 {
                return Ok(v);
            }
        }
        Err(self.err("varint longer than 10 bytes"))
    }

    fn zvarint(&mut self) -> Result<i64, ReplayError> {
        Ok(unzigzag(self.varint()?))
    }

    fn bytes(&mut self, n: usize) -> Result<&'a [u8], ReplayError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&end| end <= self.data.len())
            .ok_or_else(|| self.err(format!("unexpected end of replay (need {n} bytes)")))?;
        let s = &self.data[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn at_end(&self) -> bool {
        self.pos == self.data.len()
    }
}

fn bitset_get(bytes: &[u8], i: usize) -> bool {
    bytes[i / 8] & (1 << (i % 8)) != 0
}

fn code_get(bytes: &[u8], i: usize) -> u8 {
    (bytes[i / 4] >> (2 * (i % 4))) & 3
}

/// The eight legal non-zero hops (hops may be diagonal, unlike taut chain
/// edges), counter-clockwise from east: the 3-bit hop-direction alphabet.
const HOP_DIRS: [Offset; 8] = [
    Offset { dx: 1, dy: 0 },
    Offset { dx: 1, dy: 1 },
    Offset { dx: 0, dy: 1 },
    Offset { dx: -1, dy: 1 },
    Offset { dx: -1, dy: 0 },
    Offset { dx: -1, dy: -1 },
    Offset { dx: 0, dy: -1 },
    Offset { dx: 1, dy: -1 },
];

fn hop_code(h: Offset) -> Option<u8> {
    HOP_DIRS.iter().position(|d| *d == h).map(|i| i as u8)
}

fn put_codes3(buf: &mut Vec<u8>, codes: impl ExactSizeIterator<Item = u8>) {
    let n = codes.len();
    let start = buf.len();
    buf.resize(start + (n * 3).div_ceil(8), 0);
    for (i, code) in codes.enumerate() {
        let bit = i * 3;
        let v = u16::from(code & 7) << (bit % 8);
        buf[start + bit / 8] |= (v & 0xff) as u8;
        if v > 0xff {
            buf[start + bit / 8 + 1] |= (v >> 8) as u8;
        }
    }
}

fn code3_get(bytes: &[u8], i: usize) -> u8 {
    let bit = i * 3;
    let mut v = u16::from(bytes[bit / 8]) >> (bit % 8);
    if bit % 8 > 5 {
        v |= u16::from(bytes[bit / 8 + 1]) << (8 - bit % 8);
    }
    (v & 7) as u8
}

/// Encode a taut chain as origin + 2-bit edge codes (the header/frame
/// geometry payload).
fn put_chain(buf: &mut Vec<u8>, chain: &ClosedChain) {
    let n = chain.len();
    put_varint(buf, n as u64);
    let origin = chain.pos(0);
    put_varint(buf, zigzag(origin.x));
    put_varint(buf, zigzag(origin.y));
    put_codes(
        buf,
        (0..n.saturating_sub(1)).map(|i| {
            let (a, b) = (chain.pos(i), chain.pos(i + 1));
            edge_code(Offset::new(b.x - a.x, b.y - a.y)).expect("taut chain edges are unit steps")
        }),
    );
}

/// Decode the origin + edge-code geometry payload back into a chain.
fn read_chain(cur: &mut Cursor<'_>) -> Result<ClosedChain, ReplayError> {
    let n = cur.varint()? as usize;
    if n == 0 {
        return Err(cur.err("chain length 0"));
    }
    // A chain longer than the blob itself is corrupt; this bound keeps a
    // bit-flipped length from provoking a huge allocation.
    if n > cur.data.len().saturating_mul(8) + 8 {
        return Err(cur.err(format!("implausible chain length {n}")));
    }
    let x0 = cur.zvarint()?;
    let y0 = cur.zvarint()?;
    let edges = cur.bytes((n - 1).div_ceil(4))?;
    let mut positions = Vec::with_capacity(n);
    let mut p = Point::new(x0, y0);
    positions.push(p);
    for i in 0..n - 1 {
        let d = edge_offset(code_get(edges, i));
        p = Point::new(p.x + d.dx, p.y + d.dy);
        positions.push(p);
    }
    ClosedChain::new(positions).map_err(|e| cur.err(format!("decoded chain is invalid: {e}")))
}

// ---------------------------------------------------------------------------
// Replay outcome (the trailer)
// ---------------------------------------------------------------------------

/// How the recorded run ended — [`Outcome`] with the chain error flattened
/// to its display string (a replay is an artifact; the error is carried
/// for reporting, not for re-matching).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ReplayOutcome {
    /// The chain gathered.
    Gathered {
        /// Rounds executed.
        rounds: u64,
    },
    /// The round limit tripped.
    RoundLimit {
        /// Rounds executed.
        rounds: u64,
    },
    /// The run stalled (no merge inside the stall window, or quiescence).
    Stalled {
        /// Rounds executed.
        rounds: u64,
        /// Rounds since the last merge when the stall was declared.
        since_last_merge: u64,
    },
    /// The strategy broke the chain.
    ChainBroken {
        /// Rounds completed before the breaking round.
        rounds: u64,
        /// The chain error, as displayed.
        error: String,
    },
}

impl ReplayOutcome {
    /// Rounds executed before the outcome was decided.
    pub fn rounds(&self) -> u64 {
        match self {
            ReplayOutcome::Gathered { rounds }
            | ReplayOutcome::RoundLimit { rounds }
            | ReplayOutcome::Stalled { rounds, .. }
            | ReplayOutcome::ChainBroken { rounds, .. } => *rounds,
        }
    }

    /// The outcome's campaign-store name (`gathered`, `round-limit`,
    /// `stalled`, `chain-broken`).
    pub fn name(&self) -> &'static str {
        match self {
            ReplayOutcome::Gathered { .. } => "gathered",
            ReplayOutcome::RoundLimit { .. } => "round-limit",
            ReplayOutcome::Stalled { .. } => "stalled",
            ReplayOutcome::ChainBroken { .. } => "chain-broken",
        }
    }

    /// Flatten an engine [`Outcome`] into its replay form (what the
    /// trailer of a recorded run of that outcome decodes to).
    pub fn from_outcome(outcome: &Outcome) -> Self {
        match outcome {
            Outcome::Gathered { rounds } => ReplayOutcome::Gathered { rounds: *rounds },
            Outcome::RoundLimit { rounds } => ReplayOutcome::RoundLimit { rounds: *rounds },
            Outcome::Stalled {
                rounds,
                since_last_merge,
            } => ReplayOutcome::Stalled {
                rounds: *rounds,
                since_last_merge: *since_last_merge,
            },
            Outcome::ChainBroken { rounds, error } => ReplayOutcome::ChainBroken {
                rounds: *rounds,
                error: error.to_string(),
            },
        }
    }
}

// ---------------------------------------------------------------------------
// The sink
// ---------------------------------------------------------------------------

/// A shared byte slot the [`ReplayWriter`] flushes the finished replay
/// into. Drivers consume the simulation, so the sink is how the bytes
/// escape the run: clone it, hand one end to the writer, read the other
/// after the run.
#[derive(Clone, Debug, Default)]
pub struct ReplaySink {
    bytes: Arc<Mutex<Vec<u8>>>,
}

impl ReplaySink {
    /// A fresh, empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Take the recorded replay, leaving the sink empty. Empty until the
    /// run's outcome is decided ([`Observer::on_finish`]).
    pub fn take(&self) -> Vec<u8> {
        std::mem::take(&mut self.lock())
    }

    /// `true` while no finished replay has been flushed.
    pub fn is_empty(&self) -> bool {
        self.lock().is_empty()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Vec<u8>> {
        self.bytes.lock().unwrap_or_else(|e| e.into_inner())
    }
}

// ---------------------------------------------------------------------------
// Live frames + the ring
// ---------------------------------------------------------------------------

/// One self-contained live snapshot of a running simulation: counters plus
/// the full chain geometry, decodable without any other frame.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LiveFrame {
    /// Rounds completed (0 = the initial configuration).
    pub round: u64,
    /// Chain length at this frame.
    pub len: usize,
    /// Total robots removed by merges so far.
    pub removed_total: u64,
    /// Total guard-cancelled hops so far.
    pub guard_cancels: u64,
    /// Whether the gathering criterion holds.
    pub gathered: bool,
    /// Whether the run's outcome has been decided (final frame).
    pub finished: bool,
    /// Position of robot 0.
    pub origin: Point,
    /// Packed 2-bit codes of edges `0..len-1` (see [`crate::packed`]).
    pub codes: Vec<u8>,
}

impl LiveFrame {
    /// Snapshot a chain plus its run counters into a frame.
    pub fn from_chain(
        chain: &ClosedChain,
        round: u64,
        removed_total: u64,
        guard_cancels: u64,
        finished: bool,
    ) -> Self {
        let mut codes = Vec::new();
        put_codes(
            &mut codes,
            (0..chain.len().saturating_sub(1)).map(|i| {
                let (a, b) = (chain.pos(i), chain.pos(i + 1));
                edge_code(Offset::new(b.x - a.x, b.y - a.y))
                    .expect("taut chain edges are unit steps")
            }),
        );
        LiveFrame {
            round,
            len: chain.len(),
            removed_total,
            guard_cancels,
            gathered: chain.is_gathered(),
            finished,
            origin: chain.pos(0),
            codes,
        }
    }

    /// Encode the frame as one self-delimiting binary record (the watch
    /// stream sends one encoded frame per HTTP chunk).
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(16 + self.codes.len());
        buf.push(REPLAY_VERSION);
        let mut flags = 0u8;
        if self.gathered {
            flags |= FLAG_GATHERED;
        }
        if self.finished {
            flags |= FLAG_FINISHED;
        }
        buf.push(flags);
        put_varint(&mut buf, self.round);
        put_varint(&mut buf, self.len as u64);
        put_varint(&mut buf, self.removed_total);
        put_varint(&mut buf, self.guard_cancels);
        put_varint(&mut buf, zigzag(self.origin.x));
        put_varint(&mut buf, zigzag(self.origin.y));
        buf.extend_from_slice(&self.codes);
        buf
    }

    /// Decode one frame from exactly `bytes` (as delimited by the
    /// transport).
    pub fn decode(bytes: &[u8]) -> Result<Self, ReplayError> {
        let mut cur = Cursor::new(bytes);
        let version = cur.u8()?;
        if version != REPLAY_VERSION {
            return Err(cur.err(format!(
                "unsupported frame version {version} (this build reads {REPLAY_VERSION})"
            )));
        }
        let flags = cur.u8()?;
        let round = cur.varint()?;
        let len = cur.varint()? as usize;
        if len == 0 {
            return Err(cur.err("frame chain length 0"));
        }
        let removed_total = cur.varint()?;
        let guard_cancels = cur.varint()?;
        let origin = Point::new(cur.zvarint()?, cur.zvarint()?);
        let codes = cur.bytes((len - 1).div_ceil(4))?.to_vec();
        if !cur.at_end() {
            return Err(cur.err("trailing bytes after frame"));
        }
        Ok(LiveFrame {
            round,
            len,
            removed_total,
            guard_cancels,
            gathered: flags & FLAG_GATHERED != 0,
            finished: flags & FLAG_FINISHED != 0,
            origin,
            codes,
        })
    }

    /// Reconstruct the frame's chain (for rendering).
    pub fn chain(&self) -> Result<ClosedChain, ReplayError> {
        let mut positions = Vec::with_capacity(self.len);
        let mut p = self.origin;
        positions.push(p);
        for i in 0..self.len - 1 {
            if i / 4 >= self.codes.len() {
                return Err(ReplayError {
                    offset: i,
                    what: "frame edge codes shorter than its length".to_string(),
                });
            }
            let d = edge_offset(code_get(&self.codes, i));
            p = Point::new(p.x + d.dx, p.y + d.dy);
            positions.push(p);
        }
        ClosedChain::new(positions).map_err(|e| ReplayError {
            offset: 0,
            what: format!("frame chain is invalid: {e}"),
        })
    }
}

/// A bounded single-producer broadcast ring of encoded [`LiveFrame`]s.
///
/// The publisher (the simulation worker) overwrites the oldest slot and
/// never waits for consumers; a consumer that falls more than a ring
/// behind skips forward to the newest frame ([`FrameRing::next`]). Frames
/// are self-contained snapshots, so skipping loses nothing but
/// intermediate pictures. Slot access is a per-slot mutex held only for
/// an `Arc` clone/store — the publisher's critical section is O(1) and a
/// consumer stalled in its socket write holds no lock at all.
#[derive(Debug)]
pub struct FrameRing {
    slots: Vec<Mutex<Option<Arc<[u8]>>>>,
    head: AtomicU64,
    closed: AtomicBool,
}

impl FrameRing {
    /// A ring holding the latest `capacity` frames (clamped to ≥ 2).
    pub fn new(capacity: usize) -> Arc<FrameRing> {
        let capacity = capacity.max(2);
        Arc::new(FrameRing {
            slots: (0..capacity).map(|_| Mutex::new(None)).collect(),
            head: AtomicU64::new(0),
            closed: AtomicBool::new(false),
        })
    }

    /// Publish one encoded frame, overwriting the oldest slot.
    pub fn publish(&self, frame: Vec<u8>) {
        let seq = self.head.load(Ordering::Relaxed);
        let slot = seq as usize % self.slots.len();
        *self.slots[slot].lock().unwrap_or_else(|e| e.into_inner()) = Some(Arc::from(frame));
        self.head.store(seq + 1, Ordering::Release);
    }

    /// Mark the stream complete: no further frames will be published.
    pub fn close(&self) {
        self.closed.store(true, Ordering::Release);
    }

    /// `true` once the publisher has closed the ring.
    pub fn is_closed(&self) -> bool {
        self.closed.load(Ordering::Acquire)
    }

    /// Total frames ever published.
    pub fn head(&self) -> u64 {
        self.head.load(Ordering::Acquire)
    }

    /// The next frame for a consumer at `*cursor` (frames consumed so
    /// far). Returns `None` when the consumer is caught up — poll again,
    /// or stop once [`FrameRing::is_closed`]. A consumer that lagged past
    /// the ring's capacity is skipped forward to the latest frame.
    pub fn next(&self, cursor: &mut u64) -> Option<Arc<[u8]>> {
        let head = self.head.load(Ordering::Acquire);
        if *cursor >= head {
            return None;
        }
        if head - *cursor > self.slots.len() as u64 {
            *cursor = head - 1;
        }
        let slot = *cursor as usize % self.slots.len();
        let frame = self.slots[slot]
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone();
        *cursor += 1;
        frame
    }
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

/// The recording observer: logs the run into a [`ReplaySink`] (complete
/// replay blob, flushed when the outcome is decided) and optionally
/// publishes per-round [`LiveFrame`]s into a [`FrameRing`].
///
/// Strategy-agnostic, like [`Recorder`](crate::Recorder): attach with
/// [`Sim::observe`](crate::Sim::observe) or
/// [`Sim::add_observer`](crate::Sim::add_observer) on any strategy.
#[derive(Debug, Default)]
pub struct ReplayWriter {
    buf: Vec<u8>,
    sink: ReplaySink,
    ring: Option<Arc<FrameRing>>,
    removed_total: u64,
    guard_total: u64,
}

impl ReplayWriter {
    /// A writer flushing the finished replay into `sink`.
    pub fn new(sink: ReplaySink) -> Self {
        ReplayWriter {
            sink,
            ..Self::default()
        }
    }

    /// Additionally publish one encoded [`LiveFrame`] per round into
    /// `ring` (the watch feed).
    pub fn with_ring(mut self, ring: Arc<FrameRing>) -> Self {
        self.ring = Some(ring);
        self
    }

    fn frame(&self, chain: &ClosedChain, round: u64, finished: bool) {
        if let Some(ring) = &self.ring {
            ring.publish(
                LiveFrame::from_chain(chain, round, self.removed_total, self.guard_total, finished)
                    .encode(),
            );
        }
    }
}

impl<S: Strategy> Observer<S> for ReplayWriter {
    fn on_init(&mut self, chain: &ClosedChain, _strategy: &S) {
        self.buf.clear();
        self.buf.extend_from_slice(&REPLAY_MAGIC);
        self.buf.push(REPLAY_VERSION);
        put_chain(&mut self.buf, chain);
        self.removed_total = 0;
        self.guard_total = 0;
        self.frame(chain, 0, false);
    }

    fn on_round(&mut self, ctx: &RoundCtx<'_>, _strategy: &mut S) {
        let s = ctx.summary;
        self.removed_total += s.removed as u64;
        self.guard_total += ctx.guard_cancels as u64;

        self.buf.push(TAG_ROUND);
        put_varint(&mut self.buf, s.round);
        let masked = ctx.active.iter().any(|a| !a);
        let mut flags = 0u8;
        if masked {
            flags |= FLAG_MASK;
        }
        if ctx.guard_cancels > 0 {
            flags |= FLAG_GUARD;
        }
        if s.gathered {
            flags |= FLAG_GATHERED;
        }
        self.buf.push(flags);
        put_varint(&mut self.buf, s.moved as u64);
        put_varint(&mut self.buf, s.removed as u64);
        put_varint(&mut self.buf, s.len_after as u64);
        if ctx.guard_cancels > 0 {
            put_varint(&mut self.buf, ctx.guard_cancels as u64);
        }
        if masked {
            put_bitset(&mut self.buf, ctx.active.iter().copied());
        }
        put_bitset(&mut self.buf, ctx.hops.iter().map(|h| *h != Offset::ZERO));
        put_codes3(
            &mut self.buf,
            HopCodes::new(ctx.hops.iter().filter(|h| **h != Offset::ZERO), s.moved),
        );

        self.frame(ctx.chain, s.round + 1, false);
    }

    fn on_finish(&mut self, chain: &ClosedChain, _strategy: &S, outcome: &Outcome) {
        let mut out = self.buf.clone();
        out.push(TAG_END);
        match outcome {
            Outcome::Gathered { rounds } => {
                out.push(OUTCOME_GATHERED);
                put_varint(&mut out, *rounds);
            }
            Outcome::RoundLimit { rounds } => {
                out.push(OUTCOME_ROUND_LIMIT);
                put_varint(&mut out, *rounds);
            }
            Outcome::Stalled {
                rounds,
                since_last_merge,
            } => {
                out.push(OUTCOME_STALLED);
                put_varint(&mut out, *rounds);
                put_varint(&mut out, *since_last_merge);
            }
            Outcome::ChainBroken { rounds, error } => {
                out.push(OUTCOME_CHAIN_BROKEN);
                put_varint(&mut out, *rounds);
                let msg = error.to_string();
                put_varint(&mut out, msg.len() as u64);
                out.extend_from_slice(msg.as_bytes());
            }
        }
        *self.sink.lock() = out;
        self.frame(chain, outcome.rounds(), true);
        if let Some(ring) = &self.ring {
            ring.close();
        }
    }
}

/// ExactSizeIterator adapter mapping non-zero hops to 3-bit direction
/// codes (the filtered iterator loses its size hint; the count is known
/// from the summary).
struct HopCodes<I> {
    inner: I,
    left: usize,
}

impl<I> HopCodes<I> {
    fn new(inner: I, count: usize) -> Self {
        HopCodes { inner, left: count }
    }
}

impl<'a, I: Iterator<Item = &'a Offset>> Iterator for HopCodes<I> {
    type Item = u8;
    fn next(&mut self) -> Option<u8> {
        let h = self.inner.next()?;
        self.left = self.left.saturating_sub(1);
        Some(hop_code(*h).expect("applied hops have components in -1..=1"))
    }
    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.left, Some(self.left))
    }
}

impl<'a, I: Iterator<Item = &'a Offset>> ExactSizeIterator for HopCodes<I> {}

// ---------------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------------

/// One replayed round: the reconstructed [`RoundSummary`] plus the
/// recorded guard and activation detail. The post-round chain is
/// [`ReplayReader::chain`].
#[derive(Clone, Debug)]
pub struct ReplayRound {
    /// The round's summary, re-derived and verified against the record.
    pub summary: RoundSummary,
    /// Hops the chain-safety guard cancelled this round.
    pub guard_cancels: u64,
    /// The activation mask (all-true when the round was unmasked/FSYNC).
    pub active: Vec<bool>,
}

/// Streaming decoder for a replay blob: reconstructs every intermediate
/// chain by re-applying the recorded per-round deltas, verifying the
/// recorded counters against the reconstruction as it goes.
///
/// Iterate with [`ReplayReader::next_round`] until it returns `Ok(None)`;
/// the trailer's [`ReplayOutcome`] is then available via
/// [`ReplayReader::outcome`]. Any truncation or corruption surfaces as a
/// positioned [`ReplayError`] — the reader never panics on malformed
/// input.
#[derive(Debug)]
pub struct ReplayReader {
    data: Vec<u8>,
    pos: usize,
    chain: ClosedChain,
    splice: SpliceLog,
    hops: Vec<Offset>,
    rounds_read: u64,
    outcome: Option<ReplayOutcome>,
}

impl ReplayReader {
    /// Parse the header and reconstruct the initial chain.
    pub fn new(bytes: &[u8]) -> Result<Self, ReplayError> {
        let mut cur = Cursor::new(bytes);
        let magic = cur.bytes(4)?;
        if magic != REPLAY_MAGIC {
            return Err(ReplayError {
                offset: 0,
                what: "not a replay (bad magic)".to_string(),
            });
        }
        let version = cur.u8()?;
        if version != REPLAY_VERSION {
            return Err(ReplayError {
                offset: 4,
                what: format!(
                    "unsupported replay version {version} (this build reads {REPLAY_VERSION})"
                ),
            });
        }
        let chain = read_chain(&mut cur)?;
        let pos = cur.pos;
        Ok(ReplayReader {
            data: bytes.to_vec(),
            pos,
            chain,
            splice: SpliceLog::default(),
            hops: Vec::new(),
            rounds_read: 0,
            outcome: None,
        })
    }

    /// The current chain: the initial configuration before the first
    /// [`ReplayReader::next_round`], then the post-round chain after each.
    pub fn chain(&self) -> &ClosedChain {
        &self.chain
    }

    /// Rounds replayed so far.
    pub fn rounds_read(&self) -> u64 {
        self.rounds_read
    }

    /// The trailer outcome — `Some` once [`ReplayReader::next_round`] has
    /// returned `Ok(None)`.
    pub fn outcome(&self) -> Option<&ReplayOutcome> {
        self.outcome.as_ref()
    }

    /// Replay the next round: decode its delta, re-apply it to the chain,
    /// and verify the recorded counters against the reconstruction.
    /// Returns `Ok(None)` once the trailer is reached.
    pub fn next_round(&mut self) -> Result<Option<ReplayRound>, ReplayError> {
        if self.outcome.is_some() {
            return Ok(None);
        }
        let mut cur = Cursor {
            data: &self.data,
            pos: self.pos,
        };
        let tag = cur.u8()?;
        if tag == TAG_END {
            let outcome = Self::read_trailer(&mut cur, self.rounds_read)?;
            self.pos = cur.pos;
            self.outcome = Some(outcome);
            return Ok(None);
        }
        if tag != TAG_ROUND {
            return Err(ReplayError {
                offset: cur.pos - 1,
                what: format!("unknown record tag 0x{tag:02x}"),
            });
        }
        let round = cur.varint()?;
        if round != self.rounds_read {
            return Err(cur.err(format!(
                "round {round} out of sequence (expected {})",
                self.rounds_read
            )));
        }
        let flags = cur.u8()?;
        if flags & !(FLAG_MASK | FLAG_GUARD | FLAG_GATHERED) != 0 {
            return Err(cur.err(format!("unknown flag bits 0x{flags:02x}")));
        }
        let moved = cur.varint()? as usize;
        let removed = cur.varint()? as usize;
        let len_after = cur.varint()? as usize;
        let guard_cancels = if flags & FLAG_GUARD != 0 {
            cur.varint()?
        } else {
            0
        };
        let n = self.chain.len();
        if moved > n {
            return Err(cur.err(format!("{moved} movers on a chain of {n}")));
        }
        let active: Vec<bool> = if flags & FLAG_MASK != 0 {
            let mask = cur.bytes(n.div_ceil(8))?;
            (0..n).map(|i| bitset_get(mask, i)).collect()
        } else {
            vec![true; n]
        };
        let movers = cur.bytes(n.div_ceil(8))?.to_vec();
        let dirs = cur.bytes((moved * 3).div_ceil(8))?;

        self.hops.clear();
        self.hops.resize(n, Offset::ZERO);
        let mut next_dir = 0usize;
        for (i, hop) in self.hops.iter_mut().enumerate() {
            if bitset_get(&movers, i) {
                if next_dir >= moved {
                    return Err(cur.err(format!("more than {moved} mover bits set")));
                }
                *hop = HOP_DIRS[code3_get(dirs, next_dir) as usize];
                next_dir += 1;
            }
        }
        if next_dir != moved {
            return Err(cur.err(format!("{next_dir} mover bits set, record says {moved}")));
        }

        let at = cur.pos;
        let fail = |what: String| ReplayError { offset: at, what };
        self.chain
            .apply_hops(&self.hops)
            .map_err(|e| fail(format!("round {round}: recorded hops break the chain: {e}")))?;
        let merged = self.chain.merge_pass(&mut self.splice);
        if merged != removed {
            return Err(fail(format!(
                "round {round}: reconstruction merged {merged} robots, record says {removed}"
            )));
        }
        if self.chain.len() != len_after {
            return Err(fail(format!(
                "round {round}: reconstructed length {}, record says {len_after}",
                self.chain.len()
            )));
        }
        let gathered = self.chain.is_gathered();
        if gathered != (flags & FLAG_GATHERED != 0) {
            return Err(fail(format!(
                "round {round}: gathered flag disagrees with the reconstruction"
            )));
        }

        self.pos = cur.pos;
        self.rounds_read += 1;
        Ok(Some(ReplayRound {
            summary: RoundSummary {
                round,
                moved,
                removed,
                len_after,
                gathered,
            },
            guard_cancels,
            active,
        }))
    }

    fn read_trailer(cur: &mut Cursor<'_>, rounds_read: u64) -> Result<ReplayOutcome, ReplayError> {
        let kind = cur.u8()?;
        let rounds = cur.varint()?;
        let outcome = match kind {
            OUTCOME_GATHERED => ReplayOutcome::Gathered { rounds },
            OUTCOME_ROUND_LIMIT => ReplayOutcome::RoundLimit { rounds },
            OUTCOME_STALLED => ReplayOutcome::Stalled {
                rounds,
                since_last_merge: cur.varint()?,
            },
            OUTCOME_CHAIN_BROKEN => {
                let len = cur.varint()? as usize;
                let bytes = cur.bytes(len)?;
                let error = std::str::from_utf8(bytes)
                    .map_err(|_| cur.err("chain-broken message is not UTF-8"))?
                    .to_string();
                ReplayOutcome::ChainBroken { rounds, error }
            }
            other => return Err(cur.err(format!("unknown outcome kind {other}"))),
        };
        if outcome.rounds() != rounds_read {
            return Err(cur.err(format!(
                "trailer says {} rounds, replayed {rounds_read}",
                outcome.rounds()
            )));
        }
        if !cur.at_end() {
            return Err(cur.err("trailing bytes after the trailer"));
        }
        Ok(outcome)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{RunLimits, Sim};
    use crate::observe::Recorder;
    use crate::strategy::Strategy;

    /// Shrink toward the centroid-ish: a strategy that actually moves and
    /// merges, so replays carry non-trivial rounds.
    struct PullEast;
    impl Strategy for PullEast {
        fn name(&self) -> &'static str {
            "pull-east"
        }
        fn init(&mut self, _chain: &ClosedChain) {}
        fn compute(&mut self, chain: &ClosedChain, _round: u64, hops: &mut [Offset]) {
            // Every robot strictly west of its successor steps east iff
            // both neighbors stay adjacent — a crude gatherer good enough
            // to generate moves and merges deterministically.
            for (i, hop) in hops.iter_mut().enumerate().take(chain.len()) {
                let p = chain.pos(i);
                let prev = chain.pos(chain.nb(i, -1));
                let next = chain.pos(chain.nb(i, 1));
                let q = grid_geom::Point::new(p.x + 1, p.y);
                let adj = |a: grid_geom::Point, b: grid_geom::Point| {
                    (a.x - b.x).abs() + (a.y - b.y).abs() <= 1
                };
                if p.x < next.x.max(prev.x) && adj(q, prev) && adj(q, next) {
                    *hop = Offset::new(1, 0);
                }
            }
        }
    }

    fn ring8() -> ClosedChain {
        ClosedChain::new(
            [
                (0, 0),
                (1, 0),
                (2, 0),
                (3, 0),
                (3, 1),
                (2, 1),
                (1, 1),
                (0, 1),
            ]
            .iter()
            .map(|&(x, y)| grid_geom::Point::new(x, y))
            .collect(),
        )
        .unwrap()
    }

    type Snapshots = Vec<(u64, Vec<grid_geom::Point>)>;

    fn record(limits: RunLimits) -> (Vec<u8>, Snapshots, Outcome) {
        let sink = ReplaySink::new();
        let mut sim = Sim::new(ring8(), PullEast)
            .observe(Recorder::snapshots(1, usize::MAX))
            .observe(ReplayWriter::new(sink.clone()));
        let outcome = sim.run(limits);
        let snapshots = sim
            .observer_mut::<Recorder>()
            .unwrap()
            .take_trace()
            .snapshots;
        (sink.take(), snapshots, outcome)
    }

    fn limits() -> RunLimits {
        RunLimits {
            max_rounds: 64,
            stall_window: 64,
        }
    }

    #[test]
    fn roundtrip_reconstructs_every_chain() {
        let (blob, snapshots, outcome) = record(limits());
        assert!(!snapshots.is_empty());
        let mut reader = ReplayReader::new(&blob).unwrap();
        assert_eq!(reader.chain().positions(), ring8().positions());
        let mut replayed = 0u64;
        while let Some(round) = reader.next_round().unwrap() {
            let (r, expected) = &snapshots[replayed as usize];
            assert_eq!(round.summary.round, *r);
            assert_eq!(reader.chain().positions(), expected.as_slice());
            assert_eq!(round.summary.len_after, expected.len());
            replayed += 1;
        }
        assert_eq!(replayed, outcome.rounds());
        assert_eq!(reader.outcome().unwrap().rounds(), outcome.rounds());
        // Post-trailer calls stay `Ok(None)`.
        assert!(reader.next_round().unwrap().is_none());
    }

    #[test]
    fn every_truncation_is_a_positioned_error() {
        let (blob, _, _) = record(limits());
        for cut in 0..blob.len() {
            let short = &blob[..cut];
            let failed = match ReplayReader::new(short) {
                Err(e) => {
                    assert!(e.offset <= cut, "offset {} past cut {cut}", e.offset);
                    true
                }
                Ok(mut reader) => loop {
                    match reader.next_round() {
                        Err(e) => {
                            assert!(e.offset <= cut, "offset {} past cut {cut}", e.offset);
                            break true;
                        }
                        Ok(Some(_)) => {}
                        Ok(None) => break false,
                    }
                },
            };
            assert!(failed, "truncation at {cut}/{} not detected", blob.len());
        }
    }

    #[test]
    fn bit_flips_never_panic() {
        let (blob, _, _) = record(limits());
        for byte in 0..blob.len() {
            for bit in 0..8 {
                let mut corrupt = blob.clone();
                corrupt[byte] ^= 1 << bit;
                // Either a positioned error or a (rare) benign flip —
                // never a panic, and never an unverified silent pass:
                // drive the reader to its end.
                if let Ok(mut reader) = ReplayReader::new(&corrupt) {
                    while let Ok(Some(_)) = reader.next_round() {}
                }
            }
        }
    }

    #[test]
    fn flipped_payload_is_detected() {
        let (blob, _, _) = record(limits());
        // The first round record starts where the header parse stopped.
        let header_end = ReplayReader::new(&blob).unwrap().pos;
        assert_eq!(blob[header_end], TAG_ROUND);
        // Clobber a byte inside the first round record's payload.
        let mut corrupt = blob.clone();
        corrupt[header_end + 3] ^= 0xff;
        let mut failed = ReplayReader::new(&corrupt).is_err();
        if let Ok(mut r) = ReplayReader::new(&corrupt) {
            loop {
                match r.next_round() {
                    Err(e) => {
                        assert!(e.offset >= header_end);
                        failed = true;
                        break;
                    }
                    Ok(Some(_)) => {}
                    Ok(None) => break,
                }
            }
        }
        assert!(failed, "payload corruption went undetected");
        // The pristine blob still replays to its outcome.
        let mut reader = ReplayReader::new(&blob).unwrap();
        while let Some(_r) = reader.next_round().unwrap() {}
        assert!(reader.outcome().is_some());
    }

    #[test]
    fn frames_roundtrip_and_rings_skip() {
        let chain = ring8();
        let frame = LiveFrame::from_chain(&chain, 7, 3, 2, false);
        let decoded = LiveFrame::decode(&frame.encode()).unwrap();
        assert_eq!(decoded, frame);
        assert_eq!(decoded.chain().unwrap().positions(), chain.positions());

        let ring = FrameRing::new(4);
        for i in 0..10u64 {
            ring.publish(LiveFrame::from_chain(&chain, i, 0, 0, false).encode());
        }
        ring.close();
        let mut cursor = 0u64;
        let first = ring.next(&mut cursor).unwrap();
        // Lagged by 10 with capacity 4: skipped to the newest frame.
        assert_eq!(LiveFrame::decode(&first).unwrap().round, 9);
        assert!(ring.next(&mut cursor).is_none());
        assert!(ring.is_closed());
        assert_eq!(ring.head(), 10);
    }

    #[test]
    fn live_ring_records_through_the_writer() {
        let sink = ReplaySink::new();
        let ring = FrameRing::new(512);
        let mut sim = Sim::new(ring8(), PullEast)
            .observe(ReplayWriter::new(sink.clone()).with_ring(ring.clone()));
        let outcome = sim.run(limits());
        assert!(ring.is_closed());
        let mut cursor = 0u64;
        let mut last: Option<LiveFrame> = None;
        let mut frames = 0u64;
        while let Some(bytes) = ring.next(&mut cursor) {
            let f = LiveFrame::decode(&bytes).unwrap();
            if let Some(prev) = &last {
                assert!(f.round >= prev.round);
            }
            last = Some(f);
            frames += 1;
        }
        let last = last.unwrap();
        assert!(last.finished);
        assert_eq!(last.round, outcome.rounds());
        // init + per-round + final.
        assert_eq!(frames, outcome.rounds() + 2);
        assert!(!sink.is_empty());
    }
}
