//! Round reports, traces, and the always-on progress aggregates.
//!
//! The experiment harness regenerates the paper's tables from aggregated
//! round statistics; examples replay [`Trace`]s as ASCII animations.
//!
//! Two layers with different costs:
//!
//! * [`Progress`] — incremental aggregates (merge totals, mergeless gaps).
//!   A handful of counters folded in-place; the engine maintains one for
//!   every run, with no per-round allocation. This is all the headless
//!   benchmark sweeps ever need.
//! * [`Trace`] — full retention: per-round [`RoundReport`]s and position
//!   snapshots. Produced by the [`Recorder`](crate::observe::Recorder)
//!   observer, never by the engine itself — attach the observer when you
//!   want a trace, and the observer-free engine stays on the zero-retention
//!   hot path.

use crate::chain::MergeEvent;
use grid_geom::{Point, Rect};

/// What happened in one FSYNC round (full record, retained by the
/// [`Recorder`](crate::observe::Recorder) observer when
/// [`TraceConfig::keep_reports`] is set).
#[derive(Clone, Debug)]
pub struct RoundReport {
    /// Round index (0-based).
    pub round: u64,
    /// Number of robots that performed a nonzero hop.
    pub moved: usize,
    /// Robots removed by the merge pass this round.
    pub removed: usize,
    /// Merge events of the round.
    pub merges: Vec<MergeEvent>,
    /// Chain length after the round.
    pub len_after: usize,
    /// Bounding box after the round.
    pub bbox: Rect,
    /// `true` if the gathering criterion holds after the round.
    pub gathered: bool,
}

impl RoundReport {
    /// `true` if the round made merge progress (the paper's progress
    /// measure is the shortening of the chain).
    pub fn made_progress(&self) -> bool {
        self.removed > 0
    }
}

/// Recording options for the [`Recorder`](crate::observe::Recorder)
/// observer.
#[derive(Clone, Copy, Debug)]
pub struct TraceConfig {
    /// Keep full position snapshots every `snapshot_every` rounds
    /// (0 = never).
    pub snapshot_every: u64,
    /// Hard cap on stored snapshots.
    pub max_snapshots: usize,
    /// Retain a full [`RoundReport`] (including its merge-event list) per
    /// round. Turn this off for snapshot-only recording (e.g. animation
    /// replays that never read per-round merge detail).
    pub keep_reports: bool,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            snapshot_every: 0,
            max_snapshots: 512,
            keep_reports: true,
        }
    }
}

/// Incrementally-maintained aggregate statistics of a run: a handful of
/// counters, folded in-place every round. The engine keeps one per
/// simulation ([`Sim::progress`](crate::Sim::progress)) — always on,
/// allocation-free — so headless sweeps answer the harness's questions
/// (total merges, longest mergeless gap) without retaining anything.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Progress {
    rounds: u64,
    total_removed: usize,
    rounds_with_merges: usize,
    longest_gap: u64,
    current_gap: u64,
    makespan: u64,
}

impl Progress {
    /// Fold one round's activity into the aggregates: how many robots
    /// performed a nonzero hop and how many the merge pass removed.
    pub fn record_round(&mut self, moved: usize, removed: usize) {
        self.rounds += 1;
        if moved > 0 || removed > 0 {
            self.makespan = self.rounds;
        }
        if removed > 0 {
            self.total_removed += removed;
            self.rounds_with_merges += 1;
            self.longest_gap = self.longest_gap.max(self.current_gap);
            self.current_gap = 0;
        } else {
            self.current_gap += 1;
        }
    }

    /// Number of rounds folded in.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// Total robots removed over the run.
    pub fn total_removed(&self) -> usize {
        self.total_removed
    }

    /// Number of rounds in which at least one merge happened.
    pub fn rounds_with_merges(&self) -> usize {
        self.rounds_with_merges
    }

    /// Longest gap (in rounds) between two successive merge rounds
    /// (including the leading gap before the first merge and the trailing
    /// gap after the last). The Lemma 1 / Theorem 1 audits bound this gap.
    pub fn longest_mergeless_gap(&self) -> u64 {
        self.longest_gap.max(self.current_gap)
    }

    /// Makespan: the number of rounds up to and including the last round
    /// with any activity (a move or a merge) — the min-max time objective
    /// of arXiv 2410.11966. Trailing all-idle rounds (a stalled run
    /// burning its window, a round-limited idle tail) don't count; 0 if
    /// nothing ever happened.
    pub fn makespan(&self) -> u64 {
        self.makespan
    }
}

/// A recorded simulation trace: retained reports and snapshots plus the
/// same [`Progress`] aggregates the engine keeps, so a taken trace is
/// self-contained.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    /// Per-round reports (empty when report retention is off).
    pub reports: Vec<RoundReport>,
    /// (round, positions) snapshots, per [`TraceConfig`].
    pub snapshots: Vec<(u64, Vec<Point>)>,
    progress: Progress,
}

impl Trace {
    /// Fold one round's activity into the aggregates.
    pub fn record_round(&mut self, moved: usize, removed: usize) {
        self.progress.record_round(moved, removed);
    }

    /// The trace's aggregate statistics.
    pub fn progress(&self) -> Progress {
        self.progress
    }

    /// Number of rounds folded into the trace.
    pub fn rounds(&self) -> u64 {
        self.progress.rounds()
    }

    /// Total robots removed over the trace.
    pub fn total_removed(&self) -> usize {
        self.progress.total_removed()
    }

    /// Number of rounds in which at least one merge happened.
    pub fn rounds_with_merges(&self) -> usize {
        self.progress.rounds_with_merges()
    }

    /// Longest mergeless gap; see [`Progress::longest_mergeless_gap`].
    pub fn longest_mergeless_gap(&self) -> u64 {
        self.progress.longest_mergeless_gap()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace_of(removed_per_round: &[usize]) -> Trace {
        let mut t = Trace::default();
        for &r in removed_per_round {
            t.record_round(0, r);
        }
        t
    }

    #[test]
    fn gap_accounting() {
        let t = trace_of(&[0, 0, 1, 0, 0, 0, 2]);
        assert_eq!(t.rounds(), 7);
        assert_eq!(t.total_removed(), 3);
        assert_eq!(t.rounds_with_merges(), 2);
        assert_eq!(t.longest_mergeless_gap(), 3);
    }

    #[test]
    fn trailing_gap_counts() {
        let t = trace_of(&[1, 0, 0]);
        assert_eq!(t.longest_mergeless_gap(), 2);
    }

    #[test]
    fn makespan_is_the_last_active_round() {
        let mut p = Progress::default();
        p.record_round(3, 0); // moves only: still active
        p.record_round(0, 0); // idle
        p.record_round(2, 1); // active (round 3)
        p.record_round(0, 0); // trailing idle tail
        p.record_round(0, 0);
        assert_eq!(p.rounds(), 5);
        assert_eq!(p.makespan(), 3);
        assert_eq!(Progress::default().makespan(), 0);
    }

    #[test]
    fn empty_trace_is_zeroed() {
        let t = Trace::default();
        assert_eq!(t.rounds(), 0);
        assert_eq!(t.total_removed(), 0);
        assert_eq!(t.longest_mergeless_gap(), 0);
        assert_eq!(t.progress(), Progress::default());
    }

    #[test]
    fn progress_flag() {
        let report = |removed: usize| RoundReport {
            round: 0,
            moved: 0,
            removed,
            merges: vec![],
            len_after: 10,
            bbox: Rect::point(Point::ORIGIN),
            gathered: false,
        };
        assert!(report(1).made_progress());
        assert!(!report(0).made_progress());
    }
}
