//! Round reports and traces.
//!
//! The experiment harness regenerates the paper's tables from aggregated
//! [`RoundReport`]s; examples replay [`Trace`]s as ASCII animations.

use crate::chain::MergeEvent;
use grid_geom::{Point, Rect};
use serde::{Deserialize, Serialize};

/// What happened in one FSYNC round.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RoundReport {
    pub round: u64,
    /// Number of robots that performed a nonzero hop.
    pub moved: usize,
    /// Robots removed by the merge pass this round.
    pub removed: usize,
    /// Merge events of the round.
    pub merges: Vec<MergeEvent>,
    /// Chain length after the round.
    pub len_after: usize,
    /// Bounding box after the round.
    pub bbox: Rect,
    /// `true` if the gathering criterion holds after the round.
    pub gathered: bool,
}

impl RoundReport {
    /// `true` if the round made merge progress (the paper's progress
    /// measure is the shortening of the chain).
    pub fn made_progress(&self) -> bool {
        self.removed > 0
    }
}

/// Recording options for [`Trace`].
#[derive(Clone, Copy, Debug)]
pub struct TraceConfig {
    /// Keep full position snapshots every `snapshot_every` rounds
    /// (0 = never). Reports are always kept.
    pub snapshot_every: u64,
    /// Hard cap on stored snapshots (ring overwrite beyond this).
    pub max_snapshots: usize,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            snapshot_every: 0,
            max_snapshots: 512,
        }
    }
}

/// A recorded simulation trace.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    pub reports: Vec<RoundReport>,
    /// (round, positions) snapshots, per [`TraceConfig`].
    pub snapshots: Vec<(u64, Vec<Point>)>,
}

impl Trace {
    /// Total robots removed over the trace.
    pub fn total_removed(&self) -> usize {
        self.reports.iter().map(|r| r.removed).sum()
    }

    /// Number of rounds in which at least one merge happened.
    pub fn rounds_with_merges(&self) -> usize {
        self.reports.iter().filter(|r| r.removed > 0).count()
    }

    /// Longest gap (in rounds) between two successive merge rounds
    /// (including the leading gap before the first merge). The Lemma 1 /
    /// Theorem 1 audits bound this gap.
    pub fn longest_mergeless_gap(&self) -> u64 {
        let mut longest = 0u64;
        let mut current = 0u64;
        for r in &self.reports {
            if r.removed > 0 {
                longest = longest.max(current);
                current = 0;
            } else {
                current += 1;
            }
        }
        longest.max(current)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grid_geom::Point;

    fn report(round: u64, removed: usize) -> RoundReport {
        RoundReport {
            round,
            moved: 0,
            removed,
            merges: vec![],
            len_after: 10,
            bbox: Rect::point(Point::ORIGIN),
            gathered: false,
        }
    }

    #[test]
    fn gap_accounting() {
        let t = Trace {
            reports: vec![
                report(0, 0),
                report(1, 0),
                report(2, 1),
                report(3, 0),
                report(4, 0),
                report(5, 0),
                report(6, 2),
            ],
            snapshots: vec![],
        };
        assert_eq!(t.total_removed(), 3);
        assert_eq!(t.rounds_with_merges(), 2);
        assert_eq!(t.longest_mergeless_gap(), 3);
    }

    #[test]
    fn trailing_gap_counts() {
        let t = Trace {
            reports: vec![report(0, 1), report(1, 0), report(2, 0)],
            snapshots: vec![],
        };
        assert_eq!(t.longest_mergeless_gap(), 2);
    }

    #[test]
    fn progress_flag() {
        assert!(report(0, 1).made_progress());
        assert!(!report(0, 0).made_progress());
    }
}
