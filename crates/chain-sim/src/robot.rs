//! Stable robot identities.
//!
//! The robots of the paper are *indistinguishable*: no algorithmic decision
//! may depend on an identity. The simulator nevertheless assigns each robot
//! a stable [`RobotId`], for three engine-side purposes:
//!
//! 1. instrumentation (tracking which robots were merged away, crediting
//!    merges to progress pairs for the Lemma 2 audit),
//! 2. the run-passing "target corner" bookkeeping — the paper's runners
//!    remember *the robot they saw at a specific relative position* (Fig. 8:
//!    "until S1 is located at its target robot c2"); an id models "that
//!    robot" without giving robots any knowledge of the value,
//! 3. deterministic replay and snapshot diffing in tests.
//!
//! Locality tests in `gathering-core` verify that strategy decisions are
//! invariant under id relabeling.

/// Stable identity of a robot for the lifetime of a simulation.
///
/// Ids are unique within one [`crate::ClosedChain`] and never reused, so a
/// dangling id reliably means "this robot was merged away" (the trigger for
/// the run termination conditions 4/5 of Table 1).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RobotId(pub u64);

impl std::fmt::Debug for RobotId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "r{}", self.0)
    }
}

impl std::fmt::Display for RobotId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "r{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_ordering() {
        let a = RobotId(3);
        let b = RobotId(12);
        assert!(a < b);
        assert_eq!(format!("{a}"), "r3");
        assert_eq!(format!("{b:?}"), "r12");
    }
}
