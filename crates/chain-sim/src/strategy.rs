//! The strategy interface: what a robot algorithm must provide.
//!
//! A [`Strategy`] is the "compute" step of the FSYNC look–compute–move
//! cycle, factored so that the engine ([`crate::Sim`]) owns all mechanics
//! (simultaneous moves, merge pass, invariants) and the strategy owns all
//! decisions plus whatever per-robot constant memory it needs (the paper's
//! robots have constant memory; the gathering strategy stores run states).
//!
//! The engine calls, per round:
//!
//! 1. [`Strategy::compute`] — fill one hop per robot from the *current*
//!    configuration (the common snapshot all robots observe).
//! 2. applies the hops simultaneously,
//! 3. [`Strategy::post_move`] — state handover that the paper performs
//!    "after the move" (run states moving one robot further, Fig. 5),
//! 4. runs the merge pass,
//! 5. [`Strategy::post_merge`] — reconcile per-robot state with the splice
//!    (runs terminate when "part of a merge operation", Table 1.3).

use crate::chain::{ClosedChain, SpliceLog};
use grid_geom::Offset;

/// A full robot strategy under the FSYNC model.
pub trait Strategy {
    /// Human-readable name for reports and traces.
    fn name(&self) -> &'static str;

    /// Called once when the simulation starts.
    fn init(&mut self, chain: &ClosedChain);

    /// The compute step: fill `hops[i]` for every robot `i` based on the
    /// common round-start configuration. `hops` arrives zeroed.
    fn compute(&mut self, chain: &ClosedChain, round: u64, hops: &mut [Offset]);

    /// Called after hops were applied, before the merge pass. Positions in
    /// `chain` are post-move; indices are unchanged.
    fn post_move(&mut self, _chain: &ClosedChain, _round: u64) {}

    /// Called after the merge pass. `log` describes removed indices
    /// (pre-splice) and keepers; `chain` is post-splice.
    fn post_merge(&mut self, _chain: &ClosedChain, _round: u64, _log: &SpliceLog) {}

    /// Optional per-robot marker for visualization overlays (e.g. runners).
    /// `index` is a current chain index.
    fn marker(&self, _index: usize) -> Option<char> {
        None
    }

    /// `true` once the strategy knows it can make no further progress.
    /// [`Sim::run`](crate::Sim::run) consults this every round and
    /// declares the run stalled immediately; the engine *also* detects
    /// quiescence itself (no movement for
    /// [`QUIESCENCE_WINDOW`](crate::QUIESCENCE_WINDOW) rounds), so
    /// implementing this is an optimization, not a requirement.
    fn is_idle(&self) -> bool {
        false
    }

    /// `true` to have the engine run the chain-safety guard
    /// ([`crate::safety::enforce_chain_safety`]) on this strategy's hops
    /// every round, after the activation mask: hops that would leave a
    /// chain edge non-adjacent under the round's activation subset are
    /// cancelled instead of applied. This is how an FSYNC-designed
    /// decision rule becomes SSYNC-safe (`gathering-core`'s `paper-ssync`
    /// opts in); the default is off, so existing strategies and every
    /// recorded fingerprint are untouched.
    fn wants_chain_guard(&self) -> bool {
        false
    }
}

/// Boxed strategies forward to their contents, so heterogeneous strategy
/// registries (`Box<dyn Strategy + Send>`) run on the same engine as
/// concrete ones.
impl<S: Strategy + ?Sized> Strategy for Box<S> {
    fn name(&self) -> &'static str {
        (**self).name()
    }
    fn init(&mut self, chain: &ClosedChain) {
        (**self).init(chain)
    }
    fn compute(&mut self, chain: &ClosedChain, round: u64, hops: &mut [Offset]) {
        (**self).compute(chain, round, hops)
    }
    fn post_move(&mut self, chain: &ClosedChain, round: u64) {
        (**self).post_move(chain, round)
    }
    fn post_merge(&mut self, chain: &ClosedChain, round: u64, log: &SpliceLog) {
        (**self).post_merge(chain, round, log)
    }
    fn marker(&self, index: usize) -> Option<char> {
        (**self).marker(index)
    }
    fn is_idle(&self) -> bool {
        (**self).is_idle()
    }
    fn wants_chain_guard(&self) -> bool {
        (**self).wants_chain_guard()
    }
}

/// The trivial strategy: nobody ever moves. Useful as an engine test fixture
/// and as the degenerate baseline.
#[derive(Debug, Default, Clone)]
pub struct Stand;

impl Strategy for Stand {
    fn name(&self) -> &'static str {
        "stand"
    }
    fn init(&mut self, _chain: &ClosedChain) {}
    fn compute(&mut self, _chain: &ClosedChain, _round: u64, _hops: &mut [Offset]) {}
    fn is_idle(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grid_geom::Point;

    #[test]
    fn stand_never_moves() {
        let chain = ClosedChain::new(vec![
            Point::new(0, 0),
            Point::new(1, 0),
            Point::new(1, 1),
            Point::new(0, 1),
        ])
        .unwrap();
        let mut s = Stand;
        s.init(&chain);
        let mut hops = vec![Offset::ZERO; 4];
        s.compute(&chain, 0, &mut hops);
        assert!(hops.iter().all(|h| *h == Offset::ZERO));
        assert!(s.is_idle());
        assert_eq!(s.name(), "stand");
    }
}
