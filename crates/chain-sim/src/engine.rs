//! The FSYNC engine.
//!
//! [`Sim`] drives a [`Strategy`] over a [`ClosedChain`], one fully
//! synchronous round at a time, enforcing the model: simultaneous hops,
//! connectivity preservation, and the merge pass that implements the
//! paper's chain-shortening progress measure.

use crate::chain::{ChainError, ClosedChain, SpliceLog};
use crate::strategy::Strategy;
use crate::trace::{RoundReport, Trace, TraceConfig};
use grid_geom::Offset;

/// Limits for [`Sim::run`].
#[derive(Clone, Copy, Debug)]
pub struct RunLimits {
    /// Hard cap on rounds; exceeding it is reported as
    /// [`Outcome::RoundLimit`].
    pub max_rounds: u64,
    /// If no merge happens for this many consecutive rounds the simulation
    /// is declared stalled. Theorem 1 implies a merge at least every
    /// `(2L+1)·n` rounds for the paper's algorithm; the default derives a
    /// generous bound from the chain length at start.
    pub stall_window: u64,
}

impl RunLimits {
    /// Defaults derived from the chain length: round cap `64·n + 4096`,
    /// stall window `32·n + 2048`. Far above the paper's `2Ln + n` bound —
    /// hitting them indicates a real defect, not a tight constant.
    pub fn for_chain_len(n: usize) -> Self {
        let n = n as u64;
        RunLimits {
            max_rounds: 64 * n + 4096,
            stall_window: 32 * n + 2048,
        }
    }
}

/// Why a simulation run ended.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Outcome {
    /// Gathered into a 2×2 subgrid after `rounds` rounds.
    Gathered { rounds: u64 },
    /// Round cap exceeded.
    RoundLimit { rounds: u64 },
    /// No merge for `stall_window` rounds.
    Stalled { rounds: u64, since_last_merge: u64 },
    /// The strategy broke the chain (always a bug; simulation aborted).
    ChainBroken { rounds: u64, error: ChainError },
}

impl Outcome {
    pub fn is_gathered(&self) -> bool {
        matches!(self, Outcome::Gathered { .. })
    }

    pub fn rounds(&self) -> u64 {
        match self {
            Outcome::Gathered { rounds }
            | Outcome::RoundLimit { rounds }
            | Outcome::Stalled { rounds, .. }
            | Outcome::ChainBroken { rounds, .. } => *rounds,
        }
    }
}

/// The FSYNC simulator: one strategy driving one closed chain.
pub struct Sim<S: Strategy> {
    chain: ClosedChain,
    strategy: S,
    round: u64,
    hops: Vec<Offset>,
    splice: SpliceLog,
    trace_cfg: TraceConfig,
    trace: Trace,
    rounds_since_merge: u64,
    broken: Option<ChainError>,
}

impl<S: Strategy> Sim<S> {
    pub fn new(chain: ClosedChain, mut strategy: S) -> Self {
        strategy.init(&chain);
        let n = chain.len();
        Sim {
            chain,
            strategy,
            round: 0,
            hops: vec![Offset::ZERO; n],
            splice: SpliceLog::default(),
            trace_cfg: TraceConfig::default(),
            trace: Trace::default(),
            rounds_since_merge: 0,
            broken: None,
        }
    }

    /// Enable snapshot recording (for visualization / replay).
    pub fn with_trace(mut self, cfg: TraceConfig) -> Self {
        self.trace_cfg = cfg;
        self
    }

    pub fn chain(&self) -> &ClosedChain {
        &self.chain
    }

    pub fn strategy(&self) -> &S {
        &self.strategy
    }

    pub fn strategy_mut(&mut self) -> &mut S {
        &mut self.strategy
    }

    pub fn round(&self) -> u64 {
        self.round
    }

    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    pub fn take_trace(&mut self) -> Trace {
        std::mem::take(&mut self.trace)
    }

    pub fn is_gathered(&self) -> bool {
        self.chain.is_gathered()
    }

    /// Execute one FSYNC round: look/compute (strategy), move
    /// (simultaneous hops), merge pass, bookkeeping.
    ///
    /// Returns the round report, or the chain error if the strategy broke
    /// connectivity (in which case the simulation refuses further rounds).
    pub fn step(&mut self) -> Result<RoundReport, ChainError> {
        if let Some(err) = &self.broken {
            return Err(err.clone());
        }
        let n = self.chain.len();
        self.hops.clear();
        self.hops.resize(n, Offset::ZERO);

        // Look + compute from the common snapshot.
        self.strategy.compute(&self.chain, self.round, &mut self.hops);

        // Move (simultaneous).
        let moved = self.hops.iter().filter(|h| **h != Offset::ZERO).count();
        if let Err(e) = self.chain.apply_hops(&self.hops) {
            self.broken = Some(e.clone());
            return Err(e);
        }
        self.strategy.post_move(&self.chain, self.round);

        // Merge pass (the paper's progress).
        let removed = self.chain.merge_pass(&mut self.splice);
        self.strategy.post_merge(&self.chain, self.round, &self.splice);

        // Post-round invariant: taut chain (unless fully collapsed).
        if self.chain.len() > 1 {
            if let Err(e) = self.chain.validate() {
                self.broken = Some(e.clone());
                return Err(e);
            }
        }

        if removed > 0 {
            self.rounds_since_merge = 0;
        } else {
            self.rounds_since_merge += 1;
        }

        let report = RoundReport {
            round: self.round,
            moved,
            removed,
            merges: self.splice.events.clone(),
            len_after: self.chain.len(),
            bbox: self.chain.bounding(),
            gathered: self.chain.is_gathered(),
        };
        if self.trace_cfg.snapshot_every > 0
            && self.round.is_multiple_of(self.trace_cfg.snapshot_every)
            && self.trace.snapshots.len() < self.trace_cfg.max_snapshots
        {
            self.trace
                .snapshots
                .push((self.round, self.chain.positions().to_vec()));
        }
        self.trace.reports.push(report.clone());
        self.round += 1;
        Ok(report)
    }

    /// Run until gathered or a limit trips.
    pub fn run(&mut self, limits: RunLimits) -> Outcome {
        loop {
            if self.chain.is_gathered() {
                return Outcome::Gathered { rounds: self.round };
            }
            if self.round >= limits.max_rounds {
                return Outcome::RoundLimit { rounds: self.round };
            }
            if self.rounds_since_merge >= limits.stall_window {
                return Outcome::Stalled {
                    rounds: self.round,
                    since_last_merge: self.rounds_since_merge,
                };
            }
            match self.step() {
                Ok(_) => {}
                Err(error) => {
                    return Outcome::ChainBroken {
                        rounds: self.round,
                        error,
                    }
                }
            }
        }
    }

    /// Run with default limits derived from the initial chain length.
    pub fn run_default(&mut self) -> Outcome {
        let limits = RunLimits::for_chain_len(self.chain.len());
        self.run(limits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::Stand;
    use grid_geom::Point;

    fn ring6() -> ClosedChain {
        ClosedChain::new(vec![
            Point::new(0, 0),
            Point::new(1, 0),
            Point::new(2, 0),
            Point::new(2, 1),
            Point::new(1, 1),
            Point::new(0, 1),
        ])
        .unwrap()
    }

    #[test]
    fn stand_stalls() {
        let mut sim = Sim::new(ring6(), Stand);
        let outcome = sim.run(RunLimits {
            max_rounds: 1000,
            stall_window: 10,
        });
        assert!(matches!(outcome, Outcome::Stalled { .. }));
        assert_eq!(sim.chain().len(), 6);
    }

    #[test]
    fn gathered_chain_finishes_immediately() {
        let square = ClosedChain::new(vec![
            Point::new(0, 0),
            Point::new(1, 0),
            Point::new(1, 1),
            Point::new(0, 1),
        ])
        .unwrap();
        let mut sim = Sim::new(square, Stand);
        let outcome = sim.run_default();
        assert_eq!(outcome, Outcome::Gathered { rounds: 0 });
    }

    /// A test strategy: the two robots of a specific pattern hop downwards
    /// every round — exercises the engine's merge plumbing (Fig. 1).
    struct Fig1;

    impl Strategy for Fig1 {
        fn name(&self) -> &'static str {
            "fig1"
        }
        fn init(&mut self, _chain: &ClosedChain) {}
        fn compute(&mut self, chain: &ClosedChain, _round: u64, hops: &mut [Offset]) {
            // Hop the two robots on the top row (y = 2) down.
            for i in 0..chain.len() {
                if chain.pos(i).y == 2 {
                    hops[i] = Offset::DOWN;
                }
            }
        }
    }

    #[test]
    fn engine_runs_fig1_merge() {
        // Fig. 1: 2x3 ring; top row hops down; merge; gathered 2x2.
        let c = ClosedChain::new(vec![
            Point::new(0, 0),
            Point::new(0, 1),
            Point::new(0, 2),
            Point::new(1, 2),
            Point::new(1, 1),
            Point::new(1, 0),
        ])
        .unwrap();
        let mut sim = Sim::new(c, Fig1);
        let report = sim.step().unwrap();
        assert_eq!(report.moved, 2);
        assert_eq!(report.removed, 2);
        assert_eq!(report.len_after, 4);
        assert!(report.gathered);
        let outcome = sim.run_default();
        assert_eq!(outcome, Outcome::Gathered { rounds: 1 });
    }

    /// A strategy that breaks the chain on purpose: engine must catch it.
    struct Breaker;

    impl Strategy for Breaker {
        fn name(&self) -> &'static str {
            "breaker"
        }
        fn init(&mut self, _chain: &ClosedChain) {}
        fn compute(&mut self, _chain: &ClosedChain, _round: u64, hops: &mut [Offset]) {
            hops[0] = Offset::new(1, 1);
        }
    }

    #[test]
    fn engine_detects_broken_chain() {
        let mut sim = Sim::new(ring6(), Breaker);
        let outcome = sim.run_default();
        assert!(matches!(outcome, Outcome::ChainBroken { .. }));
        // Further steps refuse to run.
        assert!(sim.step().is_err());
    }

    #[test]
    fn trace_records_reports() {
        let mut sim = Sim::new(ring6(), Stand).with_trace(TraceConfig {
            snapshot_every: 1,
            max_snapshots: 4,
        });
        for _ in 0..6 {
            sim.step().unwrap();
        }
        assert_eq!(sim.trace().reports.len(), 6);
        assert_eq!(sim.trace().snapshots.len(), 4); // capped
        assert_eq!(sim.trace().total_removed(), 0);
    }
}
