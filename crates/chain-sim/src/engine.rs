//! The FSYNC engine.
//!
//! [`Sim`] drives a [`Strategy`] over a [`ClosedChain`], one fully
//! synchronous round at a time, enforcing the model: simultaneous hops,
//! connectivity preservation, and the merge pass that implements the
//! paper's chain-shortening progress measure.
//!
//! The round loop is the simulator's hot path. It performs no per-round
//! allocation: the hop buffer and splice log are reused across rounds, the
//! trace aggregates are folded in-place, and the full [`RoundReport`]
//! (whose merge-event list owns heap memory) is built and *moved* into the
//! trace only when [`TraceConfig::keep_reports`] asks for it.

use crate::chain::{ChainError, ClosedChain, MergeEvent, SpliceLog};
use crate::strategy::Strategy;
use crate::trace::{RoundReport, Trace, TraceConfig};
use grid_geom::Offset;

/// Limits for [`Sim::run`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RunLimits {
    /// Hard cap on rounds; exceeding it is reported as
    /// [`Outcome::RoundLimit`].
    pub max_rounds: u64,
    /// If no merge happens for this many consecutive rounds the simulation
    /// is declared stalled. Theorem 1 implies a merge at least every
    /// `(2L+1)·n` rounds for the paper's algorithm; the constructors derive
    /// generous bounds from the chain length at start.
    pub stall_window: u64,
}

impl RunLimits {
    /// Limits for the paper's algorithm with pipelining period `l_period`
    /// (the config's `L`). Theorem 1 bounds the gathering at `2Ln + n`
    /// rounds and the mergeless gap at `(2L+1)·n`; both limits add slack on
    /// top, so tripping one indicates a real defect, not a tight constant.
    ///
    /// Every limit derivation in the workspace routes through this one
    /// constructor (or [`RunLimits::generous`] for strategies without a
    /// linear bound).
    pub fn for_gathering(n: usize, l_period: u64) -> Self {
        let n = n as u64;
        let theorem1 = 2 * l_period * n + n;
        RunLimits {
            max_rounds: 2 * theorem1 + 4096,
            stall_window: theorem1 + n + 2048,
        }
    }

    /// Defaults derived from the chain length with the paper's `L = 13`:
    /// [`RunLimits::for_gathering`] with the canonical period.
    pub fn for_chain_len(n: usize) -> Self {
        Self::for_gathering(n, 13)
    }

    /// Generous limits for strategies whose round count scales with the
    /// configuration's diameter rather than linearly in `n` (the global
    /// and compass baselines).
    pub fn generous(n: usize, diameter: u64) -> Self {
        let n = n as u64;
        let d = diameter.max(4);
        RunLimits {
            max_rounds: 16 * n * d + 4096,
            stall_window: 8 * n * d + 2048,
        }
    }
}

/// Why a simulation run ended.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Outcome {
    /// Gathered into a 2×2 subgrid after `rounds` rounds.
    Gathered { rounds: u64 },
    /// Round cap exceeded.
    RoundLimit { rounds: u64 },
    /// No merge for `stall_window` rounds.
    Stalled { rounds: u64, since_last_merge: u64 },
    /// The strategy broke the chain (always a bug; simulation aborted).
    ChainBroken { rounds: u64, error: ChainError },
}

impl Outcome {
    pub fn is_gathered(&self) -> bool {
        matches!(self, Outcome::Gathered { .. })
    }

    pub fn rounds(&self) -> u64 {
        match self {
            Outcome::Gathered { rounds }
            | Outcome::RoundLimit { rounds }
            | Outcome::Stalled { rounds, .. }
            | Outcome::ChainBroken { rounds, .. } => *rounds,
        }
    }
}

/// Lightweight, allocation-free summary of one round — what [`Sim::step`]
/// returns. The full [`RoundReport`] (with merge events) lands in the
/// trace when report retention is on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RoundSummary {
    pub round: u64,
    /// Number of robots that performed a nonzero hop.
    pub moved: usize,
    /// Robots removed by the merge pass this round.
    pub removed: usize,
    /// Chain length after the round.
    pub len_after: usize,
    /// `true` if the gathering criterion holds after the round.
    pub gathered: bool,
}

impl RoundSummary {
    /// `true` if the round made merge progress.
    pub fn made_progress(&self) -> bool {
        self.removed > 0
    }
}

/// The FSYNC simulator: one strategy driving one closed chain.
pub struct Sim<S: Strategy> {
    chain: ClosedChain,
    strategy: S,
    round: u64,
    hops: Vec<Offset>,
    splice: SpliceLog,
    trace_cfg: TraceConfig,
    trace: Trace,
    rounds_since_merge: u64,
    broken: Option<ChainError>,
}

impl<S: Strategy> Sim<S> {
    pub fn new(chain: ClosedChain, mut strategy: S) -> Self {
        strategy.init(&chain);
        let n = chain.len();
        Sim {
            chain,
            strategy,
            round: 0,
            hops: vec![Offset::ZERO; n],
            splice: SpliceLog::default(),
            trace_cfg: TraceConfig::default(),
            trace: Trace::default(),
            rounds_since_merge: 0,
            broken: None,
        }
    }

    /// The cheap benchmark run path: a simulator that retains nothing per
    /// round — no [`RoundReport`]s, no snapshots — only the incremental
    /// trace aggregates and the [`RoundSummary`] each [`Sim::step`]
    /// returns. Equivalent to `Sim::new(..).with_trace(TraceConfig::headless())`;
    /// campaign sweeps at 65k robots go through this constructor so memory
    /// stays O(n) regardless of round count.
    pub fn headless(chain: ClosedChain, strategy: S) -> Self {
        Self::new(chain, strategy).with_trace(TraceConfig::headless())
    }

    /// Set the trace configuration (snapshot recording for visualization /
    /// replay, or [`TraceConfig::headless`] for benchmark sweeps).
    pub fn with_trace(mut self, cfg: TraceConfig) -> Self {
        self.trace_cfg = cfg;
        self
    }

    pub fn chain(&self) -> &ClosedChain {
        &self.chain
    }

    pub fn strategy(&self) -> &S {
        &self.strategy
    }

    pub fn strategy_mut(&mut self) -> &mut S {
        &mut self.strategy
    }

    pub fn round(&self) -> u64 {
        self.round
    }

    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    pub fn take_trace(&mut self) -> Trace {
        std::mem::take(&mut self.trace)
    }

    /// Merge events of the most recent round (reused buffer; valid until
    /// the next [`Sim::step`]). Empty when reports are retained — the
    /// events then live in the trace's last [`RoundReport`] instead.
    pub fn last_merges(&self) -> &[MergeEvent] {
        &self.splice.events
    }

    pub fn is_gathered(&self) -> bool {
        self.chain.is_gathered()
    }

    /// Execute one FSYNC round: look/compute (strategy), move
    /// (simultaneous hops), merge pass, bookkeeping.
    ///
    /// Returns the round summary, or the chain error if the strategy broke
    /// connectivity (in which case the simulation refuses further rounds).
    pub fn step(&mut self) -> Result<RoundSummary, ChainError> {
        if let Some(err) = &self.broken {
            return Err(err.clone());
        }
        let n = self.chain.len();
        self.hops.clear();
        self.hops.resize(n, Offset::ZERO);

        // Look + compute from the common snapshot.
        self.strategy
            .compute(&self.chain, self.round, &mut self.hops);

        // Move (simultaneous).
        let moved = self.hops.iter().filter(|h| **h != Offset::ZERO).count();
        if let Err(e) = self.chain.apply_hops(&self.hops) {
            self.broken = Some(e.clone());
            return Err(e);
        }
        self.strategy.post_move(&self.chain, self.round);

        // Merge pass (the paper's progress).
        let removed = self.chain.merge_pass(&mut self.splice);
        self.strategy
            .post_merge(&self.chain, self.round, &self.splice);

        // Post-round invariant: taut chain (unless fully collapsed).
        if self.chain.len() > 1 {
            if let Err(e) = self.chain.validate() {
                self.broken = Some(e.clone());
                return Err(e);
            }
        }

        if removed > 0 {
            self.rounds_since_merge = 0;
        } else {
            self.rounds_since_merge += 1;
        }

        let summary = RoundSummary {
            round: self.round,
            moved,
            removed,
            len_after: self.chain.len(),
            gathered: self.chain.is_gathered(),
        };
        self.trace.record_round(removed);
        if self.trace_cfg.snapshot_every > 0
            && self.round.is_multiple_of(self.trace_cfg.snapshot_every)
            && self.trace.snapshots.len() < self.trace_cfg.max_snapshots
        {
            self.trace
                .snapshots
                .push((self.round, self.chain.positions().to_vec()));
        }
        if self.trace_cfg.keep_reports {
            // Move (not clone) the merge events into the retained report;
            // the splice log's index buffers stay warm for the next round.
            self.trace.reports.push(RoundReport {
                round: self.round,
                moved,
                removed,
                merges: std::mem::take(&mut self.splice.events),
                len_after: summary.len_after,
                bbox: self.chain.bounding(),
                gathered: summary.gathered,
            });
        }
        self.round += 1;
        Ok(summary)
    }

    /// Run until gathered or a limit trips.
    pub fn run(&mut self, limits: RunLimits) -> Outcome {
        loop {
            if self.chain.is_gathered() {
                return Outcome::Gathered { rounds: self.round };
            }
            if self.round >= limits.max_rounds {
                return Outcome::RoundLimit { rounds: self.round };
            }
            if self.rounds_since_merge >= limits.stall_window {
                return Outcome::Stalled {
                    rounds: self.round,
                    since_last_merge: self.rounds_since_merge,
                };
            }
            match self.step() {
                Ok(_) => {}
                Err(error) => {
                    return Outcome::ChainBroken {
                        rounds: self.round,
                        error,
                    }
                }
            }
        }
    }

    /// Run with default limits derived from the initial chain length.
    pub fn run_default(&mut self) -> Outcome {
        let limits = RunLimits::for_chain_len(self.chain.len());
        self.run(limits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::Stand;
    use grid_geom::Point;

    fn ring6() -> ClosedChain {
        ClosedChain::new(vec![
            Point::new(0, 0),
            Point::new(1, 0),
            Point::new(2, 0),
            Point::new(2, 1),
            Point::new(1, 1),
            Point::new(0, 1),
        ])
        .unwrap()
    }

    #[test]
    fn stand_stalls() {
        let mut sim = Sim::new(ring6(), Stand);
        let outcome = sim.run(RunLimits {
            max_rounds: 1000,
            stall_window: 10,
        });
        assert!(matches!(outcome, Outcome::Stalled { .. }));
        assert_eq!(sim.chain().len(), 6);
    }

    #[test]
    fn gathered_chain_finishes_immediately() {
        let square = ClosedChain::new(vec![
            Point::new(0, 0),
            Point::new(1, 0),
            Point::new(1, 1),
            Point::new(0, 1),
        ])
        .unwrap();
        let mut sim = Sim::new(square, Stand);
        let outcome = sim.run_default();
        assert_eq!(outcome, Outcome::Gathered { rounds: 0 });
    }

    #[test]
    fn limit_constructors_scale_with_l() {
        let a = RunLimits::for_gathering(100, 13);
        let b = RunLimits::for_gathering(100, 26);
        assert!(b.max_rounds > a.max_rounds);
        assert!(b.stall_window > a.stall_window);
        assert_eq!(RunLimits::for_chain_len(100), a);
        // Theorem 1's 2Ln + n bound fits well inside the limits.
        assert!(a.max_rounds > 27 * 100);
        assert!(a.stall_window > 27 * 100);
    }

    /// A test strategy: the two robots of a specific pattern hop downwards
    /// every round — exercises the engine's merge plumbing (Fig. 1).
    struct Fig1;

    impl Strategy for Fig1 {
        fn name(&self) -> &'static str {
            "fig1"
        }
        fn init(&mut self, _chain: &ClosedChain) {}
        fn compute(&mut self, chain: &ClosedChain, _round: u64, hops: &mut [Offset]) {
            // Hop the two robots on the top row (y = 2) down.
            for (i, hop) in hops.iter_mut().enumerate() {
                if chain.pos(i).y == 2 {
                    *hop = Offset::DOWN;
                }
            }
        }
    }

    #[test]
    fn engine_runs_fig1_merge() {
        // Fig. 1: 2x3 ring; top row hops down; merge; gathered 2x2.
        let c = ClosedChain::new(vec![
            Point::new(0, 0),
            Point::new(0, 1),
            Point::new(0, 2),
            Point::new(1, 2),
            Point::new(1, 1),
            Point::new(1, 0),
        ])
        .unwrap();
        let mut sim = Sim::new(c, Fig1);
        let summary = sim.step().unwrap();
        assert_eq!(summary.moved, 2);
        assert_eq!(summary.removed, 2);
        assert_eq!(summary.len_after, 4);
        assert!(summary.gathered);
        // Report retention is on by default; the merge events moved into
        // the trace.
        let report = sim.trace().reports.last().unwrap();
        assert_eq!(report.merges.len(), 2);
        let outcome = sim.run_default();
        assert_eq!(outcome, Outcome::Gathered { rounds: 1 });
    }

    /// A strategy that breaks the chain on purpose: engine must catch it.
    struct Breaker;

    impl Strategy for Breaker {
        fn name(&self) -> &'static str {
            "breaker"
        }
        fn init(&mut self, _chain: &ClosedChain) {}
        fn compute(&mut self, _chain: &ClosedChain, _round: u64, hops: &mut [Offset]) {
            hops[0] = Offset::new(1, 1);
        }
    }

    #[test]
    fn engine_detects_broken_chain() {
        let mut sim = Sim::new(ring6(), Breaker);
        let outcome = sim.run_default();
        assert!(matches!(outcome, Outcome::ChainBroken { .. }));
        // Further steps refuse to run.
        assert!(sim.step().is_err());
    }

    #[test]
    fn trace_records_reports() {
        let mut sim = Sim::new(ring6(), Stand).with_trace(TraceConfig {
            snapshot_every: 1,
            max_snapshots: 4,
            ..TraceConfig::default()
        });
        for _ in 0..6 {
            sim.step().unwrap();
        }
        assert_eq!(sim.trace().reports.len(), 6);
        assert_eq!(sim.trace().snapshots.len(), 4); // capped
        assert_eq!(sim.trace().total_removed(), 0);
    }

    #[test]
    fn headless_constructor_matches_headless_trace_config() {
        let mut a = Sim::headless(ring6(), Stand);
        let mut b = Sim::new(ring6(), Stand).with_trace(TraceConfig::headless());
        for _ in 0..4 {
            assert_eq!(a.step().unwrap(), b.step().unwrap());
        }
        assert!(a.trace().reports.is_empty());
        assert!(a.trace().snapshots.is_empty());
        assert_eq!(a.trace().rounds(), 4);
    }

    #[test]
    fn headless_trace_keeps_aggregates_only() {
        // Same Fig. 1 merge as above, but with report retention gated off:
        // no reports or snapshots accumulate, aggregates stay correct.
        let c = ClosedChain::new(vec![
            Point::new(0, 0),
            Point::new(0, 1),
            Point::new(0, 2),
            Point::new(1, 2),
            Point::new(1, 1),
            Point::new(1, 0),
        ])
        .unwrap();
        let mut sim = Sim::new(c, Fig1).with_trace(TraceConfig::headless());
        let summary = sim.step().unwrap();
        assert_eq!(summary.removed, 2);
        assert!(sim.trace().reports.is_empty());
        assert!(sim.trace().snapshots.is_empty());
        assert_eq!(sim.trace().total_removed(), 2);
        assert_eq!(sim.trace().rounds_with_merges(), 1);
        // The splice buffer retains the last round's events for callers
        // (e.g. auditors) that want them without report retention.
        assert_eq!(sim.last_merges().len(), 2);
    }
}
