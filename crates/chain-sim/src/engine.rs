//! The round engine.
//!
//! [`Sim`] drives a [`Strategy`] over a [`ClosedChain`], one synchronous
//! round at a time, enforcing the model: simultaneous hops, connectivity
//! preservation, and the merge pass that implements the paper's
//! chain-shortening progress measure. *Which* robots act each round is the
//! [`Scheduler`]'s decision — the default [`Fsync`]
//! activates everyone (the paper's model); SSYNC schedulers
//! ([`Sim::with_scheduler`]) activate a per-round subset, whose complement
//! keeps zero hops.
//!
//! There is exactly **one run loop**. Instrumentation — trace recording,
//! Lemma audits, invariant checks, frame capture — attaches to it as
//! [`Observer`]s ([`Sim::observe`]) instead of owning a second loop.
//!
//! The round loop is the simulator's hot path. With no observers attached
//! it performs no per-round allocation and retains nothing: the hop buffer
//! and splice log are reused across rounds and only the [`Progress`]
//! aggregates (a few counters) are folded in-place. Observers see each
//! round through a borrowed [`RoundCtx`] and pay for exactly what they
//! retain.

use crate::chain::{ChainError, ClosedChain, MergeEvent, SpliceLog};
use crate::observe::{AnyObserver, Observer, RoundCtx};
use crate::scheduler::{Fsync, Scheduler};
use crate::strategy::Strategy;
use crate::trace::Progress;
use grid_geom::Offset;
use obs::{Phase, PhaseTimer};
use std::sync::Arc;

/// Rounds without a single robot movement (and without a merge) after
/// which [`Sim::run`] declares the run [`Outcome::Stalled`]. A
/// deterministic strategy that has moved nobody for this long is
/// quiescent for every practical strategy in the workspace — the window
/// comfortably covers the paper's L-periodic pauses (L = 13, and the
/// ablations up to L = 26) while cutting the `stand` control's stalled
/// cells from O(stall_window) rounds to O(window).
///
/// Under an SSYNC schedule the engine multiplies this by the scheduler's
/// [`Scheduler::slowdown`] (its inverse duty cycle), so a low-duty
/// adversary legitimately withholding activations for more than 64
/// rounds — e.g. `KFair(k)` with k > 64 — is not misread as quiescence.
pub const QUIESCENCE_WINDOW: u64 = 64;

/// Limits for [`Sim::run`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RunLimits {
    /// Hard cap on rounds; exceeding it is reported as
    /// [`Outcome::RoundLimit`].
    pub max_rounds: u64,
    /// If no merge happens for this many consecutive rounds the simulation
    /// is declared stalled. Theorem 1 implies a merge at least every
    /// `(2L+1)·n` rounds for the paper's algorithm; the constructors derive
    /// generous bounds from the chain length at start.
    pub stall_window: u64,
}

impl RunLimits {
    /// Limits for the paper's algorithm with pipelining period `l_period`
    /// (the config's `L`). Theorem 1 bounds the gathering at `2Ln + n`
    /// rounds and the mergeless gap at `(2L+1)·n`; both limits add slack on
    /// top, so tripping one indicates a real defect, not a tight constant.
    ///
    /// Every limit derivation in the workspace routes through this one
    /// constructor (or [`RunLimits::generous`] for strategies without a
    /// linear bound).
    pub fn for_gathering(n: usize, l_period: u64) -> Self {
        let n = n as u64;
        let theorem1 = 2 * l_period * n + n;
        RunLimits {
            max_rounds: 2 * theorem1 + 4096,
            stall_window: theorem1 + n + 2048,
        }
    }

    /// Defaults derived from the chain length with the paper's `L = 13`:
    /// [`RunLimits::for_gathering`] with the canonical period.
    pub fn for_chain_len(n: usize) -> Self {
        Self::for_gathering(n, 13)
    }

    /// Generous limits for strategies whose round count scales with the
    /// configuration's diameter rather than linearly in `n` (the global
    /// and compass baselines).
    pub fn generous(n: usize, diameter: u64) -> Self {
        let n = n as u64;
        let d = diameter.max(4);
        RunLimits {
            max_rounds: 16 * n * d + 4096,
            stall_window: 8 * n * d + 2048,
        }
    }

    /// Limits for the open-chain procedures (\[KM09\] settings): both the
    /// zip and the Manhattan hopper finish well within `O(n)` rounds, so a
    /// generous linear cap suffices. The stall window equals the cap —
    /// open-chain progress is monotone, stalling is indistinguishable from
    /// the cap.
    pub fn for_open_chain(n: usize) -> Self {
        let n = n as u64;
        RunLimits {
            max_rounds: 64 * n,
            stall_window: 64 * n,
        }
    }

    /// Limits for the Euclidean closed-chain strategy (`euclid-chain`,
    /// arXiv 2010.04424 model): linear-time with alternating-parity
    /// activation, so a generous linear round cap suffices; the stall
    /// window covers a reflection wave crossing the whole chain (one
    /// robot per two rounds) between merges.
    pub fn for_euclid_chain(n: usize) -> Self {
        let n = n as u64;
        RunLimits {
            max_rounds: 64 * n + 4096,
            stall_window: 8 * n + 1024,
        }
    }
}

/// Why a simulation run ended.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Outcome {
    /// Gathered into a 2×2 subgrid after `rounds` rounds.
    Gathered {
        /// Rounds executed before the gathering criterion held.
        rounds: u64,
    },
    /// Round cap exceeded.
    RoundLimit {
        /// Rounds executed when the cap tripped.
        rounds: u64,
    },
    /// No merge for `stall_window` rounds.
    Stalled {
        /// Rounds executed when the stall was declared.
        rounds: u64,
        /// Consecutive mergeless rounds at that point.
        since_last_merge: u64,
    },
    /// The strategy broke the chain (always a bug; simulation aborted).
    ChainBroken {
        /// Rounds executed when the chain broke.
        rounds: u64,
        /// What broke.
        error: ChainError,
    },
}

impl Outcome {
    /// `true` if the run reached the gathered (2×2) configuration.
    pub fn is_gathered(&self) -> bool {
        matches!(self, Outcome::Gathered { .. })
    }

    /// Rounds executed, whatever the outcome.
    pub fn rounds(&self) -> u64 {
        match self {
            Outcome::Gathered { rounds }
            | Outcome::RoundLimit { rounds }
            | Outcome::Stalled { rounds, .. }
            | Outcome::ChainBroken { rounds, .. } => *rounds,
        }
    }
}

/// Lightweight, allocation-free summary of one round — what [`Sim::step`]
/// returns and what observers receive in their [`RoundCtx`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RoundSummary {
    /// Round index (0-based).
    pub round: u64,
    /// Number of robots that performed a nonzero hop.
    pub moved: usize,
    /// Robots removed by the merge pass this round.
    pub removed: usize,
    /// Chain length after the round.
    pub len_after: usize,
    /// `true` if the gathering criterion holds after the round.
    pub gathered: bool,
}

impl RoundSummary {
    /// `true` if the round made merge progress.
    pub fn made_progress(&self) -> bool {
        self.removed > 0
    }
}

/// The simulator: one strategy driving one closed chain under one
/// activation [`Scheduler`], plus an observer stack for composable
/// instrumentation.
pub struct Sim<S: Strategy> {
    chain: ClosedChain,
    strategy: S,
    scheduler: Box<dyn Scheduler + Send>,
    round: u64,
    hops: Vec<Offset>,
    active: Vec<bool>,
    splice: SpliceLog,
    progress: Progress,
    /// Per-robot cumulative Euclidean travel, parallel to the chain;
    /// spliced in lockstep with the merge pass (removed robots retire
    /// their totals into `retired_travel`).
    travel: Vec<f64>,
    /// Largest cumulative travel among robots merged away so far.
    retired_travel: f64,
    observers: Vec<Box<dyn AnyObserver<S>>>,
    rounds_since_merge: u64,
    rounds_since_move: u64,
    /// Chain-safety guard switch (see [`crate::safety`]): seeded from
    /// [`Strategy::wants_chain_guard`], overridable with
    /// [`Sim::with_chain_guard`].
    guard: bool,
    /// Total hops the guard cancelled over the run's lifetime.
    guard_cancels: u64,
    broken: Option<ChainError>,
    /// Optional sampling phase timer ([`obs::PhaseTimer`]): attributes
    /// per-round wall time to compute/guard/apply/merge. Passive — it
    /// only reads clocks, so timed and untimed runs are byte-identical —
    /// and `None` by default, which keeps the observer-free hot path
    /// untouched beyond one branch per round.
    phases: Option<Arc<PhaseTimer>>,
    /// The outcome last announced to the observers via `on_finish`. A
    /// repeated `run` call that decides the identical outcome (nothing
    /// advanced) does not re-announce; any *new* outcome — resumed runs
    /// included — does.
    last_finish: Option<Outcome>,
}

impl<S: Strategy> Sim<S> {
    /// A simulator with no observers: the zero-retention hot path. Nothing
    /// is kept per round — only the [`Progress`] aggregates and the
    /// [`RoundSummary`] each [`Sim::step`] returns — so campaign sweeps at
    /// 65k robots stay O(n) in memory regardless of round count. Attach
    /// instrumentation with [`Sim::observe`].
    pub fn new(chain: ClosedChain, mut strategy: S) -> Self {
        strategy.init(&chain);
        let n = chain.len();
        let guard = strategy.wants_chain_guard();
        Sim {
            chain,
            strategy,
            scheduler: Box::new(Fsync),
            round: 0,
            hops: vec![Offset::ZERO; n],
            active: vec![true; n],
            splice: SpliceLog::default(),
            progress: Progress::default(),
            travel: vec![0.0; n],
            retired_travel: 0.0,
            observers: Vec::new(),
            rounds_since_merge: 0,
            rounds_since_move: 0,
            guard,
            guard_cancels: 0,
            broken: None,
            phases: None,
            last_finish: None,
        }
    }

    /// Attach a sampling phase timer (builder style). The timer is
    /// shared: keep a clone of the `Arc` to read the per-phase
    /// histograms or export a Chrome trace after the run.
    pub fn with_phase_timer(mut self, timer: Arc<PhaseTimer>) -> Self {
        self.phases = Some(timer);
        self
    }

    /// Attach (or replace) the sampling phase timer in place.
    pub fn set_phase_timer(&mut self, timer: Arc<PhaseTimer>) {
        self.phases = Some(timer);
    }

    /// Force the chain-safety guard on (builder style), regardless of
    /// what [`Strategy::wants_chain_guard`] says — the way to run an
    /// FSYNC-designed strategy under an SSYNC scheduler without wrapping
    /// it. Strategies that opt in via the trait hook get the guard from
    /// [`Sim::new`] already.
    pub fn with_chain_guard(mut self) -> Self {
        self.guard = true;
        self
    }

    /// `true` when the chain-safety guard runs on this simulation's hops.
    pub fn chain_guard_enabled(&self) -> bool {
        self.guard
    }

    /// Total hops the chain-safety guard has cancelled so far. Always 0
    /// when the guard is off — and, the FSYNC-passivity contract, also 0
    /// for a guarded FSYNC-safe strategy under full activation
    /// (`tests/ssync_safety.rs` pins this on the PR 4 golden workloads).
    pub fn guard_cancels(&self) -> u64 {
        self.guard_cancels
    }

    /// Replace the activation scheduler (builder style). The default is
    /// [`Fsync`]; attach an SSYNC scheduler before stepping — the schedule
    /// is indexed by round, so swapping mid-run would splice two schedules
    /// together.
    pub fn with_scheduler(mut self, scheduler: Box<dyn Scheduler + Send>) -> Self {
        self.scheduler = scheduler;
        self
    }

    /// Attach an observer (builder style). Observers fire in attachment
    /// order; [`Observer::on_init`] fires immediately with the chain as it
    /// is at attachment time (normally the initial configuration).
    pub fn observe<O: Observer<S> + 'static>(mut self, observer: O) -> Self {
        self.add_observer(observer);
        self
    }

    /// Attach an observer to a simulator in place (non-builder form of
    /// [`Sim::observe`]).
    pub fn add_observer<O: Observer<S> + 'static>(&mut self, mut observer: O) {
        observer.on_init(&self.chain, &self.strategy);
        self.observers.push(Box::new(observer));
    }

    /// The first attached observer of concrete type `T`, if any.
    pub fn observer<T: Observer<S> + 'static>(&self) -> Option<&T> {
        self.observers
            .iter()
            .find_map(|o| o.as_any().downcast_ref::<T>())
    }

    /// Mutable access to the first attached observer of type `T`, if any
    /// (used to drain results, e.g. a recorded trace or an audit summary).
    pub fn observer_mut<T: Observer<S> + 'static>(&mut self) -> Option<&mut T> {
        self.observers
            .iter_mut()
            .find_map(|o| o.as_any_mut().downcast_mut::<T>())
    }

    /// The chain in its current state.
    pub fn chain(&self) -> &ClosedChain {
        &self.chain
    }

    /// The strategy being driven.
    pub fn strategy(&self) -> &S {
        &self.strategy
    }

    /// Mutable access to the strategy.
    pub fn strategy_mut(&mut self) -> &mut S {
        &mut self.strategy
    }

    /// Rounds executed so far.
    pub fn round(&self) -> u64 {
        self.round
    }

    /// The always-on aggregate statistics (merge totals, mergeless gaps,
    /// makespan). Maintained in-place every round, observers or not.
    pub fn progress(&self) -> Progress {
        self.progress
    }

    /// Maximum per-robot cumulative Euclidean travel so far (the min-max
    /// distance objective of arXiv 2410.11966): unit hops cost 1,
    /// diagonal hops √2, and robots merged away keep contributing their
    /// totals. Always-on, like [`Sim::progress`] — the kernel fast path
    /// does not track it, which is why the scenario layer reports it only
    /// for boxed-engine runs.
    pub fn max_travel(&self) -> f64 {
        self.travel
            .iter()
            .fold(self.retired_travel, |acc, &t| acc.max(t))
    }

    /// Merge events of the most recent round (reused buffer; valid until
    /// the next [`Sim::step`]). Always reflects the latest round,
    /// regardless of which observers are attached.
    pub fn last_merges(&self) -> &[MergeEvent] {
        &self.splice.events
    }

    /// `true` if the gathering criterion (2×2 bounding box) holds.
    pub fn is_gathered(&self) -> bool {
        self.chain.is_gathered()
    }

    /// Execute one round: schedule (activation mask), look/compute
    /// (strategy), move (simultaneous hops of the *active* robots), merge
    /// pass, bookkeeping, observer dispatch.
    ///
    /// Returns the round summary, or the chain error if the strategy broke
    /// connectivity (in which case the simulation refuses further rounds).
    pub fn step(&mut self) -> Result<RoundSummary, ChainError> {
        if let Some(err) = &self.broken {
            return Err(err.clone());
        }
        // Phase timing (passive, sampled): `None` on unsampled rounds
        // and whenever no timer is attached, so the hot path pays one
        // branch. Marks below close each phase; dropping the clock —
        // on any exit path — records the round.
        let mut clock = self.phases.as_ref().and_then(|t| t.round_clock(self.round));
        let n = self.chain.len();
        self.hops.clear();
        self.hops.resize(n, Offset::ZERO);

        // Schedule: who acts this round. The mask arrives all-true (the
        // FSYNC default); SSYNC schedulers clear the sleepers.
        self.active.clear();
        self.active.resize(n, true);
        self.scheduler.activate(self.round, &mut self.active);

        // Look + compute from the common snapshot.
        self.strategy
            .compute(&self.chain, self.round, &mut self.hops);

        // Inactive robots were not scheduled: their computed hops are
        // discarded before anything observes them, exactly as if their
        // look–compute–move cycle had not run this round.
        for (hop, active) in self.hops.iter_mut().zip(&self.active) {
            if !active {
                *hop = Offset::ZERO;
            }
        }
        if let Some(c) = clock.as_mut() {
            c.mark(Phase::Compute);
        }

        // Chain-safety guard (opt-in): cancel, to a fixpoint, every hop
        // that would leave a chain edge non-adjacent under this round's
        // activation subset. Runs after the mask so the guard judges the
        // hops that would actually apply; observers see the post-guard
        // hops, i.e. exactly what moved.
        let guard_cancels = if self.guard {
            let cancelled = crate::safety::enforce_chain_safety(&self.chain, &mut self.hops);
            self.guard_cancels += cancelled as u64;
            cancelled
        } else {
            0
        };
        if let Some(c) = clock.as_mut() {
            c.mark(Phase::Guard);
        }

        // Move (simultaneous).
        let moved = self.hops.iter().filter(|h| **h != Offset::ZERO).count();
        if let Err(e) = self.chain.apply_hops(&self.hops) {
            self.broken = Some(e.clone());
            return Err(e);
        }
        if moved > 0 {
            // Fold hop lengths into the per-robot travel totals (the
            // min-max objective): unit steps cost 1, diagonal hops √2.
            for (t, h) in self.travel.iter_mut().zip(&self.hops) {
                if *h != Offset::ZERO {
                    *t += ((h.dx * h.dx + h.dy * h.dy) as f64).sqrt();
                }
            }
        }
        self.strategy.post_move(&self.chain, self.round);
        if let Some(c) = clock.as_mut() {
            c.mark(Phase::Apply);
        }

        // Merge pass (the paper's progress).
        let removed = self.chain.merge_pass(&mut self.splice);
        if removed > 0 {
            // Mirror the splice in the travel totals: removed robots
            // retire theirs into the running maximum, survivors compact
            // down (removed_indices is ascending, like the chain sweep).
            let mut rm = self.splice.removed_indices.iter().peekable();
            let mut write = 0;
            for read in 0..self.travel.len() {
                if rm.peek() == Some(&&read) {
                    rm.next();
                    self.retired_travel = self.retired_travel.max(self.travel[read]);
                } else {
                    self.travel[write] = self.travel[read];
                    write += 1;
                }
            }
            self.travel.truncate(write);
        }
        self.strategy
            .post_merge(&self.chain, self.round, &self.splice);

        // Post-round invariant: taut chain (unless fully collapsed).
        if self.chain.len() > 1 {
            if let Err(e) = self.chain.validate() {
                self.broken = Some(e.clone());
                return Err(e);
            }
        }
        if let Some(c) = clock.as_mut() {
            c.mark(Phase::Merge);
        }
        drop(clock); // record the sampled round before observer dispatch
        if removed > 0 {
            self.rounds_since_merge = 0;
        } else {
            self.rounds_since_merge += 1;
        }
        if moved > 0 || removed > 0 {
            self.rounds_since_move = 0;
        } else {
            self.rounds_since_move += 1;
        }

        let summary = RoundSummary {
            round: self.round,
            moved,
            removed,
            len_after: self.chain.len(),
            gathered: self.chain.is_gathered(),
        };
        self.progress.record_round(moved, removed);
        if !self.observers.is_empty() {
            let ctx = RoundCtx {
                summary,
                hops: &self.hops,
                active: &self.active,
                chain: &self.chain,
                splice: &self.splice,
                guard_cancels,
            };
            for obs in &mut self.observers {
                obs.on_round(&ctx, &mut self.strategy);
            }
        }
        self.round += 1;
        Ok(summary)
    }

    /// Run until gathered or a limit trips. Fires [`Observer::on_finish`]
    /// before returning — once per decided outcome: calling `run` again
    /// and deciding the identical outcome (e.g. after `Gathered`) does
    /// not re-fire, while any *new* outcome — a resumed run under larger
    /// limits, or the same rounds re-judged under different limits —
    /// finishes again.
    pub fn run(&mut self, limits: RunLimits) -> Outcome {
        let outcome = loop {
            if self.chain.is_gathered() {
                break Outcome::Gathered { rounds: self.round };
            }
            if self.round >= limits.max_rounds {
                break Outcome::RoundLimit { rounds: self.round };
            }
            // Quiescence: a strategy that declares itself idle, or one
            // that has moved nobody (and merged nothing) for a full
            // [`QUIESCENCE_WINDOW`] (scaled by the scheduler's inverse
            // duty cycle), will never gather — declare the stall now
            // instead of burning the rest of the stall window.
            let quiescence = QUIESCENCE_WINDOW.saturating_mul(self.scheduler.slowdown());
            if self.rounds_since_merge >= limits.stall_window
                || self.strategy.is_idle()
                || self.rounds_since_move >= quiescence
            {
                break Outcome::Stalled {
                    rounds: self.round,
                    since_last_merge: self.rounds_since_merge,
                };
            }
            match self.step() {
                Ok(_) => {}
                Err(error) => {
                    break Outcome::ChainBroken {
                        rounds: self.round,
                        error,
                    }
                }
            }
        };
        if self.last_finish.as_ref() != Some(&outcome) {
            self.last_finish = Some(outcome.clone());
            for obs in &mut self.observers {
                obs.on_finish(&self.chain, &self.strategy, &outcome);
            }
        }
        outcome
    }

    /// Run with default limits derived from the initial chain length.
    pub fn run_default(&mut self) -> Outcome {
        let limits = RunLimits::for_chain_len(self.chain.len());
        self.run(limits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observe::Recorder;
    use crate::strategy::Stand;
    use grid_geom::Point;

    fn ring6() -> ClosedChain {
        ClosedChain::new(vec![
            Point::new(0, 0),
            Point::new(1, 0),
            Point::new(2, 0),
            Point::new(2, 1),
            Point::new(1, 1),
            Point::new(0, 1),
        ])
        .unwrap()
    }

    /// An inert strategy that does *not* declare itself idle — exercises
    /// the engine-side quiescence detection and the limit mechanics
    /// without the `is_idle` shortcut.
    struct Inert;

    impl Strategy for Inert {
        fn name(&self) -> &'static str {
            "inert"
        }
        fn init(&mut self, _chain: &ClosedChain) {}
        fn compute(&mut self, _chain: &ClosedChain, _round: u64, _hops: &mut [Offset]) {}
    }

    /// Regression (previously: `run` never consulted `Strategy::is_idle`,
    /// so the stand control burned the entire stall window — 176 128
    /// rounds at n = 256 in BENCH_scaling.json): an idle strategy stalls
    /// immediately, with the mergeless gap reported honestly.
    #[test]
    fn stand_stalls() {
        let mut sim = Sim::new(ring6(), Stand);
        let outcome = sim.run(RunLimits {
            max_rounds: 1_000_000,
            stall_window: 1_000_000,
        });
        assert_eq!(
            outcome,
            Outcome::Stalled {
                rounds: 0,
                since_last_merge: 0
            }
        );
        assert_eq!(sim.chain().len(), 6);
    }

    /// Regression (same bug, second form): a strategy that never moves but
    /// never claims idleness is caught by the engine's own quiescence
    /// window — O(QUIESCENCE_WINDOW) rounds, not O(stall_window).
    #[test]
    fn quiescence_window_catches_silent_non_movers() {
        let mut sim = Sim::new(ring6(), Inert);
        let outcome = sim.run(RunLimits {
            max_rounds: 1_000_000,
            stall_window: 1_000_000,
        });
        assert_eq!(
            outcome,
            Outcome::Stalled {
                rounds: QUIESCENCE_WINDOW,
                since_last_merge: QUIESCENCE_WINDOW
            }
        );
    }

    #[test]
    fn gathered_chain_finishes_immediately() {
        let square = ClosedChain::new(vec![
            Point::new(0, 0),
            Point::new(1, 0),
            Point::new(1, 1),
            Point::new(0, 1),
        ])
        .unwrap();
        let mut sim = Sim::new(square, Stand);
        let outcome = sim.run_default();
        assert_eq!(outcome, Outcome::Gathered { rounds: 0 });
    }

    #[test]
    fn limit_constructors_scale_with_l() {
        let a = RunLimits::for_gathering(100, 13);
        let b = RunLimits::for_gathering(100, 26);
        assert!(b.max_rounds > a.max_rounds);
        assert!(b.stall_window > a.stall_window);
        assert_eq!(RunLimits::for_chain_len(100), a);
        // Theorem 1's 2Ln + n bound fits well inside the limits.
        assert!(a.max_rounds > 27 * 100);
        assert!(a.stall_window > 27 * 100);
        // The open-chain cap is linear.
        assert_eq!(RunLimits::for_open_chain(100).max_rounds, 6400);
    }

    /// A test strategy: the two robots of a specific pattern hop downwards
    /// every round — exercises the engine's merge plumbing (Fig. 1).
    struct Fig1;

    impl Strategy for Fig1 {
        fn name(&self) -> &'static str {
            "fig1"
        }
        fn init(&mut self, _chain: &ClosedChain) {}
        fn compute(&mut self, chain: &ClosedChain, _round: u64, hops: &mut [Offset]) {
            // Hop the two robots on the top row (y = 2) down.
            for (i, hop) in hops.iter_mut().enumerate() {
                if chain.pos(i).y == 2 {
                    *hop = Offset::DOWN;
                }
            }
        }
    }

    fn fig1_chain() -> ClosedChain {
        // Fig. 1: 2x3 ring; top row hops down; merge; gathered 2x2.
        ClosedChain::new(vec![
            Point::new(0, 0),
            Point::new(0, 1),
            Point::new(0, 2),
            Point::new(1, 2),
            Point::new(1, 1),
            Point::new(1, 0),
        ])
        .unwrap()
    }

    #[test]
    fn engine_runs_fig1_merge() {
        let mut sim = Sim::new(fig1_chain(), Fig1).observe(Recorder::new());
        let summary = sim.step().unwrap();
        assert_eq!(summary.moved, 2);
        assert_eq!(summary.removed, 2);
        assert_eq!(summary.len_after, 4);
        assert!(summary.gathered);
        // The recorder retained the full report with the merge events...
        let report = sim.observer::<Recorder>().unwrap().trace().reports.last();
        assert_eq!(report.unwrap().merges.len(), 2);
        // ...and the engine's own splice buffer still shows them too.
        assert_eq!(sim.last_merges().len(), 2);
        let outcome = sim.run_default();
        assert_eq!(outcome, Outcome::Gathered { rounds: 1 });
    }

    /// Regression (previously: `last_merges` was silently empty whenever
    /// reports were retained, because the engine moved the events into the
    /// trace): `last_merges` reflects the most recent round no matter what
    /// observers are attached.
    #[test]
    fn last_merges_valid_in_every_mode() {
        for observed in [false, true] {
            let mut sim = Sim::new(fig1_chain(), Fig1);
            if observed {
                sim.add_observer(Recorder::new());
            }
            let summary = sim.step().unwrap();
            assert_eq!(summary.removed, 2);
            assert_eq!(
                sim.last_merges().len(),
                2,
                "observed={observed}: last_merges must always hold the last round's events"
            );
        }
    }

    /// A strategy that breaks the chain on purpose: engine must catch it.
    struct Breaker;

    impl Strategy for Breaker {
        fn name(&self) -> &'static str {
            "breaker"
        }
        fn init(&mut self, _chain: &ClosedChain) {}
        fn compute(&mut self, _chain: &ClosedChain, _round: u64, hops: &mut [Offset]) {
            hops[0] = Offset::new(1, 1);
        }
    }

    #[test]
    fn engine_detects_broken_chain() {
        let mut sim = Sim::new(ring6(), Breaker);
        let outcome = sim.run_default();
        assert!(matches!(outcome, Outcome::ChainBroken { .. }));
        // Further steps refuse to run.
        assert!(sim.step().is_err());
    }

    #[test]
    fn recorder_observer_records_reports_and_snapshots() {
        let mut sim =
            Sim::new(ring6(), Stand).observe(Recorder::with_config(crate::trace::TraceConfig {
                snapshot_every: 1,
                max_snapshots: 4,
                keep_reports: true,
            }));
        for _ in 0..6 {
            sim.step().unwrap();
        }
        let trace = sim.observer::<Recorder>().unwrap().trace();
        assert_eq!(trace.reports.len(), 6);
        assert_eq!(trace.snapshots.len(), 4); // capped
        assert_eq!(trace.total_removed(), 0);
        // The engine's own aggregates agree.
        assert_eq!(sim.progress().rounds(), 6);
        assert_eq!(sim.progress().total_removed(), 0);
    }

    #[test]
    fn observer_free_sim_keeps_aggregates_only() {
        // Same Fig. 1 merge, no observers: nothing retained, aggregates
        // correct, splice buffer still readable.
        let mut sim = Sim::new(fig1_chain(), Fig1);
        let summary = sim.step().unwrap();
        assert_eq!(summary.removed, 2);
        assert_eq!(sim.progress().total_removed(), 2);
        assert_eq!(sim.progress().rounds_with_merges(), 1);
        assert_eq!(sim.last_merges().len(), 2);
        assert!(sim.observer::<Recorder>().is_none());
    }

    #[test]
    fn observed_and_headless_runs_agree() {
        let mut a = Sim::new(ring6(), Stand);
        let mut b = Sim::new(ring6(), Stand).observe(Recorder::new());
        for _ in 0..4 {
            assert_eq!(a.step().unwrap(), b.step().unwrap());
        }
        assert_eq!(a.progress(), b.progress());
        assert_eq!(
            b.observer::<Recorder>().unwrap().trace().progress(),
            a.progress()
        );
    }

    /// `on_finish` fires exactly once, with the final outcome.
    struct FinishCounter {
        finishes: usize,
        last: Option<Outcome>,
    }
    impl<S: Strategy> Observer<S> for FinishCounter {
        fn on_finish(&mut self, _chain: &ClosedChain, _strategy: &S, outcome: &Outcome) {
            self.finishes += 1;
            self.last = Some(outcome.clone());
        }
    }

    #[test]
    fn on_finish_fires_once() {
        let mut sim = Sim::new(fig1_chain(), Fig1).observe(FinishCounter {
            finishes: 0,
            last: None,
        });
        let outcome = sim.run_default();
        let again = sim.run_default();
        assert_eq!(outcome, again);
        let fc = sim.observer::<FinishCounter>().unwrap();
        assert_eq!(fc.finishes, 1);
        assert_eq!(fc.last.as_ref(), Some(&outcome));
    }

    /// A re-judged run that decides a new outcome *without stepping*
    /// (tighter stall window at loop entry) still finishes with it.
    #[test]
    fn on_finish_refires_on_rejudged_outcome() {
        let mut sim = Sim::new(ring6(), Inert).observe(FinishCounter {
            finishes: 0,
            last: None,
        });
        let limit = sim.run(RunLimits {
            max_rounds: 10,
            stall_window: 100,
        });
        assert_eq!(limit, Outcome::RoundLimit { rounds: 10 });
        let stalled = sim.run(RunLimits {
            max_rounds: 1000,
            stall_window: 5,
        });
        assert!(matches!(stalled, Outcome::Stalled { .. }));
        let fc = sim.observer::<FinishCounter>().unwrap();
        assert_eq!(fc.finishes, 2);
        assert_eq!(fc.last.as_ref(), Some(&stalled));
    }

    /// A resumed run that immediately breaks the chain still finishes:
    /// the fresh `ChainBroken` outcome reaches the observers even though
    /// no round completed between the two finishes.
    #[test]
    fn on_finish_refires_when_resume_breaks() {
        let mut sim = Sim::new(ring6(), Breaker).observe(FinishCounter {
            finishes: 0,
            last: None,
        });
        let bounded = sim.run(RunLimits {
            max_rounds: 0,
            stall_window: 10,
        });
        assert_eq!(bounded, Outcome::RoundLimit { rounds: 0 });
        let broken = sim.run_default();
        assert!(matches!(broken, Outcome::ChainBroken { .. }));
        let fc = sim.observer::<FinishCounter>().unwrap();
        assert_eq!(fc.finishes, 2);
        assert_eq!(fc.last.as_ref(), Some(&broken));
    }

    /// A chain with a fold at (1,0): index 2 at (1,1) can legally hop down
    /// onto both its neighbors without anyone else moving.
    fn folded6() -> ClosedChain {
        ClosedChain::new(vec![
            Point::new(0, 0),
            Point::new(1, 0),
            Point::new(1, 1),
            Point::new(1, 0),
            Point::new(0, 0),
            Point::new(0, 1),
        ])
        .unwrap()
    }

    /// Strategy: the robot at (1,1) hops down every round.
    struct FoldDown;

    impl Strategy for FoldDown {
        fn name(&self) -> &'static str {
            "fold-down"
        }
        fn init(&mut self, _chain: &ClosedChain) {}
        fn compute(&mut self, chain: &ClosedChain, _round: u64, hops: &mut [Offset]) {
            for (i, hop) in hops.iter_mut().enumerate() {
                if chain.pos(i) == Point::new(1, 1) {
                    *hop = Offset::DOWN;
                }
            }
        }
    }

    /// A test scheduler: one fixed index never acts.
    struct Mute(usize);

    impl crate::scheduler::Scheduler for Mute {
        fn activate(&mut self, _round: u64, mask: &mut [bool]) {
            if let Some(slot) = mask.get_mut(self.0) {
                *slot = false;
            }
        }
    }

    /// The engine discards the hops of inactive robots: under a scheduler
    /// muting the only mover, nothing moves; under the FSYNC default the
    /// hop applies and the fold merges away.
    #[test]
    fn scheduler_masks_inactive_hops() {
        let mut fsync = Sim::new(folded6(), FoldDown);
        let s = fsync.step().unwrap();
        assert_eq!(s.moved, 1);
        assert!(s.removed > 0, "fold collapse merges");

        let mut muted = Sim::new(folded6(), FoldDown).with_scheduler(Box::new(Mute(2)));
        for _ in 0..4 {
            let s = muted.step().unwrap();
            assert_eq!(s.moved, 0, "the muted mover must keep a zero hop");
            assert_eq!(s.removed, 0);
        }
        assert_eq!(muted.chain().len(), 6);
    }

    /// Observers receive the activation mask (and the already-masked hops).
    struct MaskLog(Vec<Vec<bool>>);

    impl<S: Strategy> Observer<S> for MaskLog {
        fn on_round(&mut self, ctx: &RoundCtx<'_>, _strategy: &mut S) {
            for (hop, active) in ctx.hops.iter().zip(ctx.active) {
                if !active {
                    assert_eq!(hop, &Offset::ZERO);
                }
            }
            self.0.push(ctx.active.to_vec());
        }
    }

    #[test]
    fn observers_see_activation_masks() {
        use crate::scheduler::RoundRobinSsync;
        let mut sim = Sim::new(ring6(), Stand)
            .with_scheduler(Box::new(RoundRobinSsync::new(2)))
            .observe(MaskLog(Vec::new()));
        sim.step().unwrap();
        sim.step().unwrap();
        let masks = &sim.observer::<MaskLog>().unwrap().0;
        assert_eq!(
            masks[0],
            vec![true, false, true, false, true, false],
            "round 0 activates the even class"
        );
        assert_eq!(masks[1], vec![false, true, false, true, false, true]);
    }

    /// Regression (review finding): a low-duty scheduler whose
    /// legitimate activation gaps exceed the base quiescence window must
    /// not be misdeclared stalled — the window scales with the
    /// scheduler's inverse duty cycle. `RoundRobinSsync(100)` on a
    /// 6-robot chain activates nobody for 94 consecutive rounds of every
    /// period; the fold still collapses once index 2's turn comes.
    #[test]
    fn low_duty_scheduler_is_not_misread_as_quiescent() {
        use crate::scheduler::RoundRobinSsync;
        let mut sim =
            Sim::new(folded6(), FoldDown).with_scheduler(Box::new(RoundRobinSsync::new(100)));
        let outcome = sim.run(RunLimits {
            max_rounds: 100_000,
            stall_window: 100_000,
        });
        // Index 2 activates at round 2 of each 100-round period; the fold
        // merges and the chain gathers — never a false Stalled.
        assert!(outcome.is_gathered(), "{outcome:?}");
    }

    /// The explicit FSYNC scheduler is the default: identical step
    /// sequences on the merge-exercising Fig. 1 workload.
    #[test]
    fn explicit_fsync_matches_default() {
        use crate::scheduler::Fsync;
        let mut a = Sim::new(fig1_chain(), Fig1);
        let mut b = Sim::new(fig1_chain(), Fig1).with_scheduler(Box::new(Fsync));
        for _ in 0..3 {
            assert_eq!(a.step().ok(), b.step().ok());
        }
        assert_eq!(a.chain().positions(), b.chain().positions());
    }

    /// Resuming a limit-bounded run with larger limits finishes again:
    /// observers see one finish per decided outcome, never a stale one.
    #[test]
    fn on_finish_refires_after_resume() {
        let mut sim = Sim::new(fig1_chain(), Fig1).observe(FinishCounter {
            finishes: 0,
            last: None,
        });
        let bounded = sim.run(RunLimits {
            max_rounds: 0,
            stall_window: 100,
        });
        assert_eq!(bounded, Outcome::RoundLimit { rounds: 0 });
        let full = sim.run_default();
        assert_eq!(full, Outcome::Gathered { rounds: 1 });
        let fc = sim.observer::<FinishCounter>().unwrap();
        assert_eq!(fc.finishes, 2);
        assert_eq!(fc.last.as_ref(), Some(&full));
    }
}
