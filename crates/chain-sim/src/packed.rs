//! Packed structure-of-arrays chain state: edge-direction codes, 32 per
//! `u64` word.
//!
//! A taut closed chain — every edge a unit step, the engine's post-merge
//! invariant — is fully determined by one anchor position and the cyclic
//! sequence of its edge directions. That is the representation the
//! paper's L ≤ 27n argument reasons over, and it is 16× denser than a
//! `Vec<Point>`: [`PackedChain`] stores the position of robot 0
//! (`origin`) plus one 2-bit direction code per edge, packed 32 to a
//! `u64`. Positions are derived on demand by prefix-summing edge
//! offsets, and the hot predicates of the round loop — south-east minima
//! for compass movers, turn/run detection, bounding boxes — become
//! word-parallel shift/mask/popcount pipelines over the code words
//! instead of per-robot point arithmetic.
//!
//! The 2-bit code layout makes the two hot classifications single-bit
//! tests:
//!
//! | code | dir | offset     | bit 1 (SE key Δ)  | bit 0 (axis)    |
//! |------|-----|------------|-------------------|-----------------|
//! | `00` | E   | `(+1,  0)` | 0: key +1         | 0: horizontal   |
//! | `01` | S   | `( 0, -1)` | 0: key +1         | 1: vertical     |
//! | `10` | W   | `(-1,  0)` | 1: key −1         | 0: horizontal   |
//! | `11` | N   | `( 0, +1)` | 1: key −1         | 1: vertical     |
//!
//! Bit 1 is the sign of the south-east key delta `Δ(x − y)` along the
//! edge, so the strict-SE-minima scan is a shifted AND-NOT of the bit-1
//! planes; bit 0 is the edge's axis, so turn detection is a shifted XOR;
//! and `code ^ 0b10` is the opposite direction.
//!
//! Lane `i` of the packed words holds the edge from robot `i` to robot
//! `i + 1` (cyclic). A single-robot chain has no edges and an empty code
//! vector. Lanes past `len` in the last word are kept zero.

use grid_geom::{Offset, Point, Rect};

use crate::chain::{ChainError, ClosedChain};

/// Edge code for a `(+1, 0)` (east) unit step.
pub const EDGE_E: u8 = 0b00;
/// Edge code for a `(0, -1)` (south) unit step.
pub const EDGE_S: u8 = 0b01;
/// Edge code for a `(-1, 0)` (west) unit step.
pub const EDGE_W: u8 = 0b10;
/// Edge code for a `(0, +1)` (north) unit step.
pub const EDGE_N: u8 = 0b11;

/// 2-bit lanes per packed word.
pub const LANES_PER_WORD: usize = 32;

/// Mask of all even bit positions (bit 0 of every lane).
const LO_PLANE: u64 = 0x5555_5555_5555_5555;

/// The unit-step offset a code denotes.
#[inline]
pub const fn edge_offset(code: u8) -> Offset {
    match code & 3 {
        EDGE_E => Offset::new(1, 0),
        EDGE_S => Offset::new(0, -1),
        EDGE_W => Offset::new(-1, 0),
        _ => Offset::new(0, 1),
    }
}

/// The code of a unit-step offset; `None` for anything else.
#[inline]
pub fn edge_code(d: Offset) -> Option<u8> {
    match (d.dx, d.dy) {
        (1, 0) => Some(EDGE_E),
        (0, -1) => Some(EDGE_S),
        (-1, 0) => Some(EDGE_W),
        (0, 1) => Some(EDGE_N),
        _ => None,
    }
}

/// The opposite direction's code.
#[inline]
pub const fn opposite(code: u8) -> u8 {
    code ^ 0b10
}

/// Mask covering the low `lanes` 2-bit lanes of a word.
#[inline]
const fn lane_mask(lanes: usize) -> u64 {
    if lanes >= LANES_PER_WORD {
        u64::MAX
    } else {
        (1u64 << (2 * lanes)) - 1
    }
}

/// Per-byte walk tables: a byte is 4 consecutive edge lanes; the tables
/// give the net displacement after the 4 steps and the min/max of the
/// 1..=4 step prefix sums (all in `[-4, 4]`, so `i8`).
struct ByteWalk {
    net_dx: [i8; 256],
    net_dy: [i8; 256],
    min_dx: [i8; 256],
    max_dx: [i8; 256],
    min_dy: [i8; 256],
    max_dy: [i8; 256],
}

const fn build_byte_walk() -> ByteWalk {
    let mut t = ByteWalk {
        net_dx: [0; 256],
        net_dy: [0; 256],
        min_dx: [0; 256],
        max_dx: [0; 256],
        min_dy: [0; 256],
        max_dy: [0; 256],
    };
    let mut b = 0usize;
    while b < 256 {
        let (mut x, mut y) = (0i8, 0i8);
        let (mut min_x, mut max_x, mut min_y, mut max_y) = (0i8, 0i8, 0i8, 0i8);
        let mut lane = 0usize;
        while lane < 4 {
            let code = ((b >> (2 * lane)) & 3) as u8;
            let o = edge_offset(code);
            x += o.dx as i8;
            y += o.dy as i8;
            if x < min_x {
                min_x = x;
            }
            if x > max_x {
                max_x = x;
            }
            if y < min_y {
                min_y = y;
            }
            if y > max_y {
                max_y = y;
            }
            lane += 1;
        }
        t.net_dx[b] = x;
        t.net_dy[b] = y;
        t.min_dx[b] = min_x;
        t.max_dx[b] = max_x;
        t.min_dy[b] = min_y;
        t.max_dy[b] = max_y;
        b += 1;
    }
    t
}

static BYTE_WALK: ByteWalk = build_byte_walk();

/// A taut closed chain as origin + packed edge codes (see the
/// [module docs](self)).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PackedChain {
    pub(crate) origin: Point,
    pub(crate) len: usize,
    pub(crate) codes: Vec<u64>,
}

impl PackedChain {
    /// Pack a [`ClosedChain`]. Requires a *taut* chain (every cyclic
    /// edge a unit step) — the engine's between-rounds invariant. A
    /// coincident or non-adjacent edge is reported with the same
    /// [`ChainError`] the boxed validators would raise.
    pub fn from_chain(chain: &ClosedChain) -> Result<PackedChain, ChainError> {
        Self::from_positions(chain.positions())
    }

    /// Pack a taut cyclic position sequence (see
    /// [`PackedChain::from_chain`]).
    pub fn from_positions(pos: &[Point]) -> Result<PackedChain, ChainError> {
        let n = pos.len();
        if n == 0 {
            return Err(ChainError::TooShort { len: 0 });
        }
        let origin = pos[0];
        if n == 1 {
            return Ok(PackedChain {
                origin,
                len: 1,
                codes: Vec::new(),
            });
        }
        let mut codes = vec![0u64; n.div_ceil(LANES_PER_WORD)];
        for (i, &p) in pos.iter().enumerate() {
            let next = pos[(i + 1) % n];
            let code = edge_code(next - p).ok_or(if next == p {
                ChainError::CoincidentNeighbors { index: i, at: p }
            } else {
                ChainError::Disconnected {
                    index: i,
                    a: p,
                    b: next,
                }
            })?;
            codes[i / LANES_PER_WORD] |= u64::from(code) << ((i % LANES_PER_WORD) * 2);
        }
        Ok(PackedChain {
            origin,
            len: n,
            codes,
        })
    }

    /// Robots in the chain.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when the chain has no robots (never for a packed chain
    /// built through the public constructors).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Position of robot 0.
    #[inline]
    pub fn origin(&self) -> Point {
        self.origin
    }

    /// The packed code words (lane `i` = edge `i → i+1`).
    #[inline]
    pub fn words(&self) -> &[u64] {
        &self.codes
    }

    /// The code of edge `i` (from robot `i` to robot `i + 1`, cyclic).
    #[inline]
    pub fn get(&self, i: usize) -> u8 {
        debug_assert!(i < self.len && self.len >= 2);
        ((self.codes[i / LANES_PER_WORD] >> ((i % LANES_PER_WORD) * 2)) & 3) as u8
    }

    /// Overwrite the code of edge `i`.
    #[inline]
    pub fn set(&mut self, i: usize, code: u8) {
        debug_assert!(i < self.len && self.len >= 2);
        let (w, s) = (i / LANES_PER_WORD, (i % LANES_PER_WORD) * 2);
        self.codes[w] = (self.codes[w] & !(3u64 << s)) | (u64::from(code & 3) << s);
    }

    /// Derive all robot positions (robot 0 first).
    pub fn positions(&self) -> Vec<Point> {
        let mut out = Vec::with_capacity(self.len);
        let mut cur = self.origin;
        out.push(cur);
        for i in 0..self.len.saturating_sub(1) {
            cur += edge_offset(self.get(i));
            out.push(cur);
        }
        out
    }

    /// Unpack every edge code into one byte per lane. `out` is resized
    /// to `len`. One load per 32 lanes — the round kernels decode once
    /// per round and then index the byte scratch instead of paying the
    /// word/shift arithmetic of [`PackedChain::get`] per access.
    pub fn decode_into(&self, out: &mut Vec<u8>) {
        out.clear();
        out.resize(self.len, 0);
        for (chunk, &word) in out.chunks_mut(LANES_PER_WORD).zip(&self.codes) {
            let mut w = word;
            for lane in chunk {
                *lane = (w & 3) as u8;
                w >>= 2;
            }
        }
    }

    /// Bounding box of all robot positions, walking the packed codes a
    /// byte (4 edges) at a time through precomputed net/min/max prefix
    /// tables instead of materializing positions.
    pub fn bounding(&self) -> Rect {
        let (mut x, mut y) = (self.origin.x, self.origin.y);
        let (mut min_x, mut max_x, mut min_y, mut max_y) = (x, x, y, y);
        let mut edges = self.len.saturating_sub(1);
        let mut i = 0usize;
        while edges >= 4 {
            let b =
                ((self.codes[i / LANES_PER_WORD] >> ((i % LANES_PER_WORD) * 2)) & 0xFF) as usize;
            min_x = min_x.min(x + i64::from(BYTE_WALK.min_dx[b]));
            max_x = max_x.max(x + i64::from(BYTE_WALK.max_dx[b]));
            min_y = min_y.min(y + i64::from(BYTE_WALK.min_dy[b]));
            max_y = max_y.max(y + i64::from(BYTE_WALK.max_dy[b]));
            x += i64::from(BYTE_WALK.net_dx[b]);
            y += i64::from(BYTE_WALK.net_dy[b]);
            i += 4;
            edges -= 4;
        }
        while edges > 0 {
            let o = edge_offset(self.get(i));
            x += o.dx;
            y += o.dy;
            min_x = min_x.min(x);
            max_x = max_x.max(x);
            min_y = min_y.min(y);
            max_y = max_y.max(y);
            i += 1;
            edges -= 1;
        }
        Rect {
            min: Point::new(min_x, min_y),
            max: Point::new(max_x, max_y),
        }
    }

    /// Word-parallel strict south-east-minima scan: robot `i` is marked
    /// iff `se_key(i−1) > se_key(i) < se_key(i+1)` with `se_key = x − y`
    /// — the compass-se mover rule. `out` receives one word per 32
    /// robots with bit `2·lane` set for each marked robot. Requires
    /// `len ≥ 2`.
    pub fn strict_se_minima_into(&self, out: &mut Vec<u64>) {
        debug_assert!(self.len >= 2);
        let words = self.len.div_ceil(LANES_PER_WORD);
        out.clear();
        out.resize(words, 0);
        // Bit-1 plane: 1 ⇔ the edge *decreases* the key. Robot i is a
        // strict minimum iff edge i−1 decreases and edge i increases.
        let mut carry = u64::from(self.get(self.len - 1) >> 1); // hi bit of the wrap edge
        for (w, slot) in out.iter_mut().enumerate() {
            let hi = self.codes[w] & !LO_PLANE;
            let prev = (hi << 2) | (carry << 1);
            carry = self.codes[w] >> 63;
            let mut m = ((prev & !hi) >> 1) & LO_PLANE;
            if w == words - 1 {
                m &= lane_mask(self.len - w * LANES_PER_WORD);
            }
            *slot = m;
        }
    }

    /// Word-parallel turn count: the number of robots whose two incident
    /// edges lie on different axes (equivalently, the number of maximal
    /// straight runs of the cyclic direction sequence). Zero for
    /// `len < 2`.
    pub fn turn_count(&self) -> usize {
        if self.len < 2 {
            return 0;
        }
        let words = self.len.div_ceil(LANES_PER_WORD);
        let mut carry = u64::from(self.get(self.len - 1) & 1);
        let mut total = 0u32;
        for w in 0..words {
            let lo = self.codes[w] & LO_PLANE;
            let prev = (lo << 2) | carry;
            carry = (self.codes[w] >> 62) & 1;
            let mut m = lo ^ prev;
            if w == words - 1 {
                m &= lane_mask(self.len - w * LANES_PER_WORD);
            }
            total += m.count_ones();
        }
        total as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chain::ClosedChain;

    /// Rectangle-perimeter ring, the canonical taut closed chain.
    fn ring(w: i64, h: i64) -> ClosedChain {
        let mut pts = Vec::new();
        for x in 0..w {
            pts.push(Point::new(x, 0));
        }
        for y in 1..h {
            pts.push(Point::new(w - 1, y));
        }
        for x in (0..w - 1).rev() {
            pts.push(Point::new(x, h - 1));
        }
        for y in (1..h - 1).rev() {
            pts.push(Point::new(0, y));
        }
        ClosedChain::new(pts).unwrap()
    }

    /// A staircase ring: up-right steps along the diagonal, closed by a
    /// straight return path — exercises all four directions and word
    /// boundaries.
    fn staircase(steps: i64) -> ClosedChain {
        let mut pts = Vec::new();
        // Rising staircase: E, N, E, N, ...
        for k in 0..steps {
            pts.push(Point::new(k, k));
            pts.push(Point::new(k + 1, k));
        }
        // Down the east wall, then west along the bottom back to start.
        for y in (1..=steps).rev() {
            pts.push(Point::new(steps, y));
        }
        for x in (1..=steps).rev() {
            pts.push(Point::new(x, 0));
        }
        ClosedChain::new(pts).unwrap()
    }

    fn se_key(p: Point) -> i64 {
        p.x - p.y
    }

    #[test]
    fn round_trips_positions() {
        for chain in [ring(4, 3), ring(20, 2), ring(17, 9), staircase(40)] {
            let packed = PackedChain::from_chain(&chain).unwrap();
            assert_eq!(packed.len(), chain.len());
            assert_eq!(packed.positions(), chain.positions());
        }
    }

    #[test]
    fn rejects_non_taut_input() {
        let gap = PackedChain::from_positions(&[Point::new(0, 0), Point::new(2, 0)]);
        assert!(matches!(
            gap,
            Err(ChainError::Disconnected { index: 0, .. })
        ));
        let dup =
            PackedChain::from_positions(&[Point::new(0, 0), Point::new(0, 0), Point::new(1, 0)]);
        assert!(matches!(
            dup,
            Err(ChainError::CoincidentNeighbors { index: 0, .. })
        ));
    }

    #[test]
    fn singleton_has_no_edges() {
        let p = PackedChain::from_positions(&[Point::new(7, -3)]).unwrap();
        assert_eq!(p.len(), 1);
        assert_eq!(p.positions(), vec![Point::new(7, -3)]);
        assert_eq!(p.bounding(), Rect::point(Point::new(7, -3)));
        assert_eq!(p.turn_count(), 0);
    }

    #[test]
    fn code_algebra() {
        for code in 0..4u8 {
            let o = edge_offset(code);
            assert!(o.is_unit_step());
            assert_eq!(edge_code(o), Some(code));
            assert_eq!(edge_offset(opposite(code)), -o);
            // bit 1 is the SE-key delta sign, bit 0 the axis.
            let key_delta = o.dx - o.dy;
            assert_eq!(code >> 1 == 1, key_delta < 0);
            assert_eq!(code & 1 == 1, o.dx == 0);
        }
        assert_eq!(edge_code(Offset::ZERO), None);
        assert_eq!(edge_code(Offset::new(1, 1)), None);
    }

    #[test]
    fn bounding_matches_bruteforce() {
        for chain in [ring(3, 2), ring(40, 2), ring(33, 31), ring(7, 66)] {
            let packed = PackedChain::from_chain(&chain).unwrap();
            let brute = Rect::bounding(chain.positions().iter().copied()).unwrap();
            assert_eq!(packed.bounding(), brute);
        }
    }

    #[test]
    fn minima_mask_matches_bruteforce() {
        for chain in [ring(3, 2), ring(5, 5), ring(40, 2), ring(19, 23)] {
            let packed = PackedChain::from_chain(&chain).unwrap();
            let pos = chain.positions();
            let n = pos.len();
            let mut mask = Vec::new();
            packed.strict_se_minima_into(&mut mask);
            for (i, &p) in pos.iter().enumerate() {
                let prev = pos[(i + n - 1) % n];
                let next = pos[(i + 1) % n];
                let want = se_key(prev) > se_key(p) && se_key(next) > se_key(p);
                let got = mask[i / LANES_PER_WORD] >> ((i % LANES_PER_WORD) * 2) & 1 == 1;
                assert_eq!(got, want, "robot {i} of {n}");
            }
            // No bits beyond the chain length.
            let bits: u32 = mask.iter().map(|w| w.count_ones()).sum();
            let brute = (0..n)
                .filter(|&i| {
                    se_key(pos[(i + n - 1) % n]) > se_key(pos[i])
                        && se_key(pos[(i + 1) % n]) > se_key(pos[i])
                })
                .count();
            assert_eq!(bits as usize, brute);
        }
    }

    #[test]
    fn turn_count_matches_bruteforce() {
        for chain in [ring(3, 2), ring(5, 5), ring(40, 2), ring(19, 23)] {
            let packed = PackedChain::from_chain(&chain).unwrap();
            let pos = chain.positions();
            let n = pos.len();
            let brute = (0..n)
                .filter(|&i| {
                    let a = pos[i] - pos[(i + n - 1) % n];
                    let b = pos[(i + 1) % n] - pos[i];
                    (a.dx == 0) != (b.dx == 0)
                })
                .count();
            assert_eq!(packed.turn_count(), brute, "n={n}");
        }
    }

    #[test]
    fn set_rewrites_lanes() {
        let chain = ring(6, 4);
        let mut packed = PackedChain::from_chain(&chain).unwrap();
        let old = packed.get(5);
        packed.set(5, opposite(old));
        assert_eq!(packed.get(5), opposite(old));
        packed.set(5, old);
        assert_eq!(packed.positions(), chain.positions());
    }
}
