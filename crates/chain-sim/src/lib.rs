//! # chain-sim
//!
//! The machine model of the paper, as an executable substrate:
//!
//! * A **closed chain** of `n` indistinguishable robots on Z²
//!   ([`ClosedChain`]): a cyclic sequence whose neighbors occupy the same or
//!   4-adjacent grid points. Between rounds every chain edge is a unit step
//!   (coinciding neighbors are merged away).
//! * The **synchronous round** time model: rounds of simultaneous
//!   look–compute–move ([`Sim`]). A [`Strategy`] computes one hop per robot
//!   from the current configuration; hops are applied simultaneously; then
//!   the **merge pass** splices out robots that coincide with a chain
//!   neighbor (the paper's progress measure, Fig. 1).
//! * The **activation schedule** as an explicit model axis ([`scheduler`]):
//!   a [`Scheduler`] decides per round which robots act. The default
//!   [`scheduler::Fsync`] activates everyone (the paper's FSYNC model);
//!   SSYNC schedulers (round-robin, seeded random, adversarial k-fair)
//!   activate a subset, and inactive robots keep zero hops.
//! * The **chain-safety guard** ([`safety`]): an engine-side cancel
//!   fixpoint that commits a hop only if neighbor adjacency survives the
//!   round's activation subset — the repair that lets FSYNC-designed
//!   strategies run under SSYNC schedules. Strategies opt in via
//!   [`Strategy::wants_chain_guard`].
//! * **Composable instrumentation** ([`observe`]): there is one run loop;
//!   everything that watches a run — trace recording ([`Recorder`]),
//!   invariant checking ([`observe::Invariants`]), the Lemma auditors in
//!   `gathering-core`, frame capture in `chain-viz`, live progress
//!   publication for the service layer ([`ProgressProbe`]) — plugs into
//!   it as an [`Observer`] via [`Sim::observe`]. A simulation with no
//!   observers is the zero-retention benchmark hot path.
//! * **Stable robot identities** ([`RobotId`]) for instrumentation and for
//!   the run-state bookkeeping of the gathering strategy (target corners of
//!   the run passing operation, Fig. 8/14).
//! * **Invariant checking** ([`invariant`]): connectivity must never break;
//!   violations abort the simulation with a diagnosable error.
//! * **Tracing** ([`trace`]): always-on [`Progress`] aggregates plus the
//!   retained per-round reports the experiment harness aggregates into the
//!   paper's tables.
//! * An **open chain** variant ([`OpenChain`]) used by the \[KM09\]-style
//!   baseline the paper generalizes.
//! * **Record and replay** ([`replay`]): a versioned binary run log — a
//!   [`ReplayWriter`] observer records the initial chain plus per-round
//!   deltas on the 2-bit edge-code alphabet, a [`ReplayReader`]
//!   reconstructs every intermediate chain byte-identically, and a
//!   bounded [`FrameRing`] broadcasts live [`LiveFrame`] snapshots to
//!   streaming watchers without ever blocking the run.
//! * A **data-oriented core** for the observer-free path: chain state as
//!   packed 2-bit hop codes ([`packed::PackedChain`], 32 edges per `u64`)
//!   and monomorphized round kernels ([`kernel`]) that replicate [`Sim`]
//!   byte for byte at a fraction of the cost. The boxed engine remains
//!   the instrumented/reference path.
//!
//! The crate is deliberately strategy-agnostic: the paper's algorithm
//! (`gathering-core`) and all baselines implement [`Strategy`].

#![deny(missing_docs)]

pub mod chain;
pub mod engine;
pub mod invariant;
pub mod kernel;
pub mod metrics;
pub mod observe;
pub mod open_chain;
pub mod packed;
pub mod replay;
pub mod rng;
pub mod robot;
pub mod safety;
pub mod scheduler;
pub mod snapshot;
pub mod strategy;
pub mod trace;
pub mod view;

pub use chain::{ChainError, ClosedChain, MergeEvent, SpliceLog};
pub use engine::{Outcome, RoundSummary, RunLimits, Sim, QUIESCENCE_WINDOW};
pub use kernel::{
    ActivationRule, FsyncRule, KFairRule, KernelChain, KernelSim, RandomRule, RoundKernel,
    RoundRobinRule, StandKernel,
};
pub use metrics::{metrics, ChainMetrics};
pub use observe::{Observer, ProgressProbe, ProgressSlot, ProgressSnapshot, Recorder, RoundCtx};
pub use open_chain::OpenChain;
pub use packed::PackedChain;
pub use replay::{
    FrameRing, LiveFrame, ReplayError, ReplayOutcome, ReplayReader, ReplayRound, ReplaySink,
    ReplayWriter,
};
pub use robot::RobotId;
pub use safety::{enforce_chain_safety, hop_breaks_chain};
pub use scheduler::{Scheduler, SchedulerKind};
pub use strategy::Strategy;
pub use trace::{Progress, RoundReport, Trace, TraceConfig};
pub use view::Ring;
