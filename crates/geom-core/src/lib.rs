//! # geom-core
//!
//! The geometry backend abstraction of the closed-chain gathering system.
//!
//! The paper's chain model is not grid-specific: a closed chain is a cyclic
//! sequence of robots whose neighbors satisfy a *viability* relation (on Z²,
//! same or 4-adjacent; in the Euclidean plane, distance ≤ 1), robots move by
//! bounded *hops*, coinciding neighbors merge, and gathering is a bound on
//! the chain's bounding extent. This crate names that contract:
//!
//! * [`ChainGeometry`] — the space a chain lives in, as an implementable
//!   trait: point/hop types plus the predicates (edge viability,
//!   coincidence, gathering extent) every backend must answer.
//! * [`GeometryKind`] — the runtime axis value (`grid` / `euclid`) threaded
//!   through `ScenarioSpec`, campaign grids, the wire dialect, and gatherd.
//!
//! `grid-geom` implements the trait over its existing `Point`/`Offset`
//! primitives (unchanged semantics — the grid path stays byte-identical);
//! `euclid-geom` implements it over f64 points with a unit-distance chain
//! constraint. The engines are *not* generic over this trait: the grid
//! engines (`chain_sim::Sim`, the packed kernels) and the Euclidean engine
//! (`euclid_geom::EuclidSim`) stay monomorphic for performance and
//! byte-identity, and the trait is the shared vocabulary their predicates
//! are written against — see DESIGN.md "Geometry backends" for the
//! boundary.

#![deny(missing_docs)]

/// A space a closed chain of robots can live in.
///
/// A backend supplies the point and hop (displacement) types plus the small
/// set of predicates the chain model is built from. All methods are
/// associated functions — backends are stateless tags, never instantiated.
pub trait ChainGeometry {
    /// A robot position in this space.
    type Point: Copy + PartialEq + core::fmt::Debug;
    /// A per-round displacement in this space.
    type Hop: Copy + PartialEq + core::fmt::Debug;

    /// The axis name of this backend (`"grid"` / `"euclid"`).
    const NAME: &'static str;

    /// The zero displacement (a robot that stays put).
    fn zero_hop() -> Self::Hop;

    /// `true` if `hop` is within one round's movement budget.
    fn is_hop(hop: Self::Hop) -> bool;

    /// The position reached by applying `hop` at `p`.
    fn apply(p: Self::Point, hop: Self::Hop) -> Self::Point;

    /// `true` if two chain neighbors at `a` and `b` keep the chain intact —
    /// the chain-connectivity relation (Manhattan ≤ 1 on the grid,
    /// Euclidean distance ≤ 1 in the plane).
    fn edge_viable(a: Self::Point, b: Self::Point) -> bool;

    /// `true` if `a` and `b` occupy the same position (the merge-pass
    /// relation; exact, never approximate).
    fn coincident(a: Self::Point, b: Self::Point) -> bool;

    /// The distance between two positions, in this space's natural metric,
    /// as an `f64` (used by the min-max travel objective).
    fn distance(a: Self::Point, b: Self::Point) -> f64;

    /// Width and height of the axis-aligned bounding box of `points`
    /// (0 × 0 for an empty slice).
    fn extent(points: &[Self::Point]) -> (f64, f64);

    /// `true` if `points` satisfy this space's gathering criterion — a
    /// bounding box of extent ≤ 1 per axis (the grid's 2×2 box criterion
    /// spans one unit step per axis; the Euclidean criterion is the same
    /// bound on the continuous box).
    fn gathered(points: &[Self::Point]) -> bool {
        let (w, h) = Self::extent(points);
        w <= 1.0 && h <= 1.0
    }
}

/// The geometry axis of a scenario: which [`ChainGeometry`] backend the
/// chain lives in. Serialized by name (`grid` / `euclid`) in campaign
/// stores and the wire dialect; absent means [`GeometryKind::Grid`] so
/// pre-axis stores and clients keep working.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum GeometryKind {
    /// The paper's model: the integer grid Z², 4-adjacent chain edges.
    #[default]
    Grid,
    /// The continuous plane: f64 points, unit-distance chain edges
    /// (arXiv 2010.04424's model).
    Euclid,
}

impl GeometryKind {
    /// Every geometry, in canonical (axis sweep) order.
    pub const ALL: [GeometryKind; 2] = [GeometryKind::Grid, GeometryKind::Euclid];

    /// Every geometry name, in the same order as [`GeometryKind::ALL`]
    /// (error messages list this inventory verbatim).
    pub const ALL_NAMES: [&'static str; 2] = ["grid", "euclid"];

    /// The stable axis name (`"grid"` / `"euclid"`).
    pub fn name(&self) -> &'static str {
        match self {
            GeometryKind::Grid => "grid",
            GeometryKind::Euclid => "euclid",
        }
    }

    /// Parse a geometry from its [`GeometryKind::name`] (exact match, the
    /// store/wire round-trip).
    pub fn from_name(name: &str) -> Option<GeometryKind> {
        GeometryKind::ALL.iter().copied().find(|g| g.name() == name)
    }
}

impl core::fmt::Display for GeometryKind {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for g in GeometryKind::ALL {
            assert_eq!(GeometryKind::from_name(g.name()), Some(g));
        }
        assert_eq!(GeometryKind::from_name("no-such-geometry"), None);
        assert_eq!(GeometryKind::from_name("Grid"), None); // names are exact
    }

    #[test]
    fn names_match_all_order() {
        let names: Vec<&str> = GeometryKind::ALL.iter().map(|g| g.name()).collect();
        assert_eq!(names, GeometryKind::ALL_NAMES);
    }

    #[test]
    fn grid_is_the_default() {
        assert_eq!(GeometryKind::default(), GeometryKind::Grid);
    }

    /// The default `gathered` follows `extent` for any backend.
    struct Line1D;
    impl ChainGeometry for Line1D {
        type Point = f64;
        type Hop = f64;
        const NAME: &'static str = "line";
        fn zero_hop() -> f64 {
            0.0
        }
        fn is_hop(h: f64) -> bool {
            h.abs() <= 1.0
        }
        fn apply(p: f64, h: f64) -> f64 {
            p + h
        }
        fn edge_viable(a: f64, b: f64) -> bool {
            (a - b).abs() <= 1.0
        }
        fn coincident(a: f64, b: f64) -> bool {
            a == b
        }
        fn distance(a: f64, b: f64) -> f64 {
            (a - b).abs()
        }
        fn extent(points: &[f64]) -> (f64, f64) {
            let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
            for &p in points {
                lo = lo.min(p);
                hi = hi.max(p);
            }
            if points.is_empty() {
                (0.0, 0.0)
            } else {
                (hi - lo, 0.0)
            }
        }
    }

    #[test]
    fn default_gathered_uses_extent() {
        assert!(Line1D::gathered(&[0.0, 0.5, 1.0]));
        assert!(!Line1D::gathered(&[0.0, 1.5]));
        assert!(Line1D::gathered(&[]));
    }
}
