//! Service wall-clock bench: the miss path (full simulation behind the
//! socket) versus the hit path (content-addressed cache lookup), end to
//! end over real HTTP on loopback.
//!
//! Pins the acceptance bound: a cache hit must be at least 10× faster
//! than the miss it replays — in practice the gap is orders of magnitude
//! (a lookup and one small write vs. an O(n · rounds) simulation), so
//! 10× holds with a wide margin even on noisy CI machines.
//!
//! Run with `cargo bench -p gatherd --bench service_perf`.
//!
//! `cargo bench -p gatherd --bench service_perf -- soak` runs the flood
//! soak instead: concurrent clients drive `POST /run` (miss and hit),
//! `GET /result`, and `GET /metrics`, each request timed client-side
//! into a lock-free [`obs::Histogram`], and the percentile digests are
//! published as `BENCH_service.json` at the workspace root in the stable
//! `{campaign, commit, date, endpoints}` schema.

use std::sync::Arc;
use std::time::Instant;

use bench::campaign::store::{git_commit, today_utc};
use gatherd::{client, Config, Server};

/// The committed artifact path (workspace root, like the other
/// `BENCH_*.json` artifacts).
const ARTIFACT: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_service.json");

/// Requests per endpoint in the soak, spread over [`SOAK_THREADS`].
const SOAK_REQUESTS: usize = 64;
const SOAK_THREADS: usize = 4;

/// Fan `SOAK_REQUESTS` requests over `SOAK_THREADS` client threads,
/// timing each into a shared wait-free histogram. `make_path` maps the
/// request index to `(method, path, body)`; every response must satisfy
/// `check` or the soak aborts.
fn soak_endpoint(
    addr: &str,
    make_req: impl Fn(usize) -> (String, String, Option<String>) + Send + Sync,
    check: impl Fn(&client::Reply) + Send + Sync,
) -> obs::Summary {
    let hist = Arc::new(obs::Histogram::new());
    std::thread::scope(|scope| {
        for t in 0..SOAK_THREADS {
            let hist = hist.clone();
            let make_req = &make_req;
            let check = &check;
            scope.spawn(move || {
                let mut i = t;
                while i < SOAK_REQUESTS {
                    let (method, path, body) = make_req(i);
                    let t0 = Instant::now();
                    let reply = client::request(addr, &method, &path, body.as_deref())
                        .expect("soak request");
                    hist.record_duration_us(t0.elapsed());
                    check(&reply);
                    i += SOAK_THREADS;
                }
            });
        }
    });
    hist.summary()
}

fn digest_json(s: &obs::Summary) -> String {
    format!(
        "{{\"count\":{},\"p50_us\":{},\"p90_us\":{},\"p99_us\":{},\"max_us\":{}}}",
        s.count, s.p50, s.p90, s.p99, s.max
    )
}

fn soak() {
    let dir = std::env::temp_dir().join(format!("gatherd-soak-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let handle = Server::spawn(Config {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        handlers: 16,
        queue: 2 * SOAK_REQUESTS, // misses are all-distinct: never 429
        dir: dir.clone(),
    })
    .expect("soak server boots");
    let addr = handle.addr();

    let spec = |seed: usize| {
        format!("{{\"family\":\"rectangle\",\"n\":64,\"seed\":{seed},\"strategy\":\"paper\"}}")
    };
    let expect_verdict = |verdict: &'static str| {
        move |r: &client::Reply| {
            assert_eq!(r.status, 200, "{}", r.body);
            assert_eq!(r.header("x-gatherd-cache"), Some(verdict), "{}", r.body);
        }
    };

    // Misses: every request a distinct seed, each a full simulation.
    let run_miss = soak_endpoint(
        &addr,
        |i| ("POST".into(), "/run".into(), Some(spec(i))),
        expect_verdict("miss"),
    );
    // Hits: one (now cached) spec, hammered.
    let run_hit = soak_endpoint(
        &addr,
        |_| ("POST".into(), "/run".into(), Some(spec(0))),
        expect_verdict("hit"),
    );
    // Content-addressed lookups of the same cached row.
    let hash = {
        let reply = client::post_run(&addr, &spec(0), false).expect("hash probe");
        let body = reply.body;
        let at = body.find("\"spec_hash\":\"").expect("envelope has hash");
        body[at + 13..at + 29].to_string()
    };
    let result = soak_endpoint(
        &addr,
        |_| ("GET".into(), format!("/result/{hash}"), None),
        |r| assert_eq!(r.status, 200, "{}", r.body),
    );
    // The metrics scrape itself.
    let metrics = soak_endpoint(
        &addr,
        |_| ("GET".into(), "/metrics".into(), None),
        |r| assert_eq!(r.status, 200),
    );

    handle.shutdown().expect("clean shutdown");
    let _ = std::fs::remove_dir_all(&dir);

    let endpoints = [
        ("run_miss", &run_miss),
        ("run_hit", &run_hit),
        ("result", &result),
        ("metrics", &metrics),
    ];
    println!("service_perf soak: {SOAK_REQUESTS} requests x {SOAK_THREADS} threads per endpoint");
    for (name, s) in &endpoints {
        println!(
            "  {name:<9} count {:>4}  p50 {:>6} us  p90 {:>6} us  p99 {:>6} us  max {:>6} us",
            s.count, s.p50, s.p90, s.p99, s.max
        );
    }

    let body = format!(
        "{{\n  \"campaign\": \"service-soak\",\n  \"commit\": \"{}\",\n  \"date\": \"{}\",\n  \
         \"endpoints\": {{\n{}\n  }}\n}}\n",
        git_commit(),
        today_utc(),
        endpoints
            .iter()
            .map(|(name, s)| format!("    \"{name}\": {}", digest_json(s)))
            .collect::<Vec<_>>()
            .join(",\n"),
    );
    std::fs::write(ARTIFACT, body).expect("write BENCH_service.json");
    println!("wrote {ARTIFACT}");
}

fn main() {
    if std::env::args().any(|a| a == "soak") {
        soak();
        return;
    }
    let dir = std::env::temp_dir().join(format!("gatherd-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let handle = Server::spawn(Config {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        handlers: 8,
        queue: 16,
        dir: dir.clone(),
    })
    .expect("bench server boots");
    let addr = handle.addr();

    let spec = "{\"family\":\"rectangle\",\"n\":1024,\"seed\":0,\"strategy\":\"paper\"}";

    // Miss: one full simulation behind the socket.
    let t0 = Instant::now();
    let miss = client::post_run(&addr, spec, false).expect("miss request");
    let miss_wall = t0.elapsed();
    assert_eq!(miss.status, 200, "{}", miss.body);
    assert_eq!(miss.header("x-gatherd-cache"), Some("miss"));

    // Hits: the same spec, repeatedly, all served from the cache.
    const HITS: u32 = 25;
    let t0 = Instant::now();
    for _ in 0..HITS {
        let hit = client::post_run(&addr, spec, false).expect("hit request");
        assert_eq!(hit.status, 200);
        assert_eq!(hit.header("x-gatherd-cache"), Some("hit"));
    }
    let hit_wall = t0.elapsed() / HITS;

    let speedup = miss_wall.as_secs_f64() / hit_wall.as_secs_f64().max(1e-9);
    println!("service_perf: POST /run (n=1024 paper, loopback HTTP)");
    println!(
        "  miss: {:>10.3} ms  (simulation + cache fill)",
        miss_wall.as_secs_f64() * 1e3
    );
    println!(
        "  hit:  {:>10.3} ms  (content-addressed lookup, avg of {HITS})",
        hit_wall.as_secs_f64() * 1e3
    );
    println!("  speedup: {speedup:.0}x");

    handle.shutdown().expect("clean shutdown");
    let _ = std::fs::remove_dir_all(&dir);

    // The acceptance bound: pinned, not just printed.
    assert!(
        speedup >= 10.0,
        "cache hit must be >= 10x faster than the miss path (got {speedup:.1}x)"
    );
}
