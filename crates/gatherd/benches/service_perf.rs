//! Service wall-clock bench: the miss path (full simulation behind the
//! socket) versus the hit path (content-addressed cache lookup), end to
//! end over real HTTP on loopback.
//!
//! Pins the acceptance bound: a cache hit must be at least 10× faster
//! than the miss it replays — in practice the gap is orders of magnitude
//! (a lookup and one small write vs. an O(n · rounds) simulation), so
//! 10× holds with a wide margin even on noisy CI machines.
//!
//! Run with `cargo bench -p gatherd --bench service_perf`.

use std::time::Instant;

use gatherd::{client, Config, Server};

fn main() {
    let dir = std::env::temp_dir().join(format!("gatherd-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let handle = Server::spawn(Config {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        handlers: 8,
        queue: 16,
        dir: dir.clone(),
    })
    .expect("bench server boots");
    let addr = handle.addr();

    let spec = "{\"family\":\"rectangle\",\"n\":1024,\"seed\":0,\"strategy\":\"paper\"}";

    // Miss: one full simulation behind the socket.
    let t0 = Instant::now();
    let miss = client::post_run(&addr, spec, false).expect("miss request");
    let miss_wall = t0.elapsed();
    assert_eq!(miss.status, 200, "{}", miss.body);
    assert_eq!(miss.header("x-gatherd-cache"), Some("miss"));

    // Hits: the same spec, repeatedly, all served from the cache.
    const HITS: u32 = 25;
    let t0 = Instant::now();
    for _ in 0..HITS {
        let hit = client::post_run(&addr, spec, false).expect("hit request");
        assert_eq!(hit.status, 200);
        assert_eq!(hit.header("x-gatherd-cache"), Some("hit"));
    }
    let hit_wall = t0.elapsed() / HITS;

    let speedup = miss_wall.as_secs_f64() / hit_wall.as_secs_f64().max(1e-9);
    println!("service_perf: POST /run (n=1024 paper, loopback HTTP)");
    println!(
        "  miss: {:>10.3} ms  (simulation + cache fill)",
        miss_wall.as_secs_f64() * 1e3
    );
    println!(
        "  hit:  {:>10.3} ms  (content-addressed lookup, avg of {HITS})",
        hit_wall.as_secs_f64() * 1e3
    );
    println!("  speedup: {speedup:.0}x");

    handle.shutdown().expect("clean shutdown");
    let _ = std::fs::remove_dir_all(&dir);

    // The acceptance bound: pinned, not just printed.
    assert!(
        speedup >= 10.0,
        "cache hit must be >= 10x faster than the miss path (got {speedup:.1}x)"
    );
}
