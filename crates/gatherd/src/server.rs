//! The service itself: socket → handler pool → job queue → worker pool →
//! engine → cache.
//!
//! Two fixed thread pools with distinct roles, so a blocked request can
//! never starve the simulations that would unblock it:
//!
//! * **Handler threads** parse requests and write responses. A `POST
//!   /run` cache miss blocks its handler on the job's completion — the
//!   connection *is* the delivery channel — which is why the handler pool
//!   is sized independently of (and larger than) the worker pool.
//! * **Worker threads** pop jobs from the bounded [`JobTable`] and run
//!   the scenario pipeline with a `ProgressProbe` attached, so
//!   `GET /progress/<job>` observes the run live.
//!
//! Backpressure is explicit: when `queue` uncompleted jobs exist, further
//! cache-missing `POST /run`s get 429 immediately — the client retries,
//! the service never buffers unbounded work. Cache hits are never
//! backpressured; they cost a map lookup.

use std::collections::VecDeque;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use bench::campaign::json::Json;
use bench::campaign::{spec_hash, CampaignRow};
use bench::scenario::{run_scenario_tapped, ReplayTap, RunTaps};
use bench::wire;
use chain_sim::ReplaySink;

use crate::cache::ResultCache;
use crate::http::{read_request, ChunkedWriter, Request, Response};
use crate::jobs::{Job, JobTable, Submit};

/// How long a blocking `POST /run` parks its handler before answering
/// 202 and letting the client poll instead — bounds handler occupancy so
/// a fleet of slow misses cannot hold the whole pool forever. Generous:
/// the largest accepted spec simulates in well under this on release
/// builds.
pub const SYNC_WAIT: std::time::Duration = std::time::Duration::from_secs(300);

/// Service configuration (all knobs of the `gatherd` binary).
#[derive(Clone, Debug)]
pub struct Config {
    /// Bind address; port 0 picks an ephemeral port (tests, CI).
    pub addr: String,
    /// Simulation worker threads; 0 = one per available core.
    pub workers: usize,
    /// Connection handler threads; 0 = default (16).
    pub handlers: usize,
    /// Job queue capacity (uncompleted jobs admitted before 429).
    pub queue: usize,
    /// Cache directory (`gatherd.jsonl` lives here).
    pub dir: PathBuf,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            addr: "127.0.0.1:7117".to_string(),
            workers: 0,
            handlers: 0,
            queue: 64,
            dir: PathBuf::from("bench-results"),
        }
    }
}

impl Config {
    fn effective_workers(&self) -> usize {
        if self.workers > 0 {
            return self.workers;
        }
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(4)
    }

    /// Handler pool size. The default scales with the worker pool so the
    /// module-level invariant (handlers outnumber workers) holds on any
    /// core count — otherwise enough blocking misses could park every
    /// handler while workers sit idle behind them.
    fn effective_handlers(&self) -> usize {
        if self.handlers > 0 {
            self.handlers
        } else {
            (2 * self.effective_workers() + 4).max(16)
        }
    }
}

/// Monotone service counters (the healthz and metrics payloads).
#[derive(Debug, Default)]
pub struct Stats {
    hits: AtomicU64,
    misses: AtomicU64,
    rejected: AtomicU64,
    bad_requests: AtomicU64,
    /// Cache rows that could not be appended to the store file (disk
    /// full, unwritable dir). The row still serves from memory; a
    /// nonzero value tells the operator persistence is degraded.
    persist_errors: AtomicU64,
    /// Simulations actually executed by the worker pool (cache hits and
    /// joins excluded).
    jobs_run: AtomicU64,
    /// Replay blobs persisted to the side store.
    replays_stored: AtomicU64,
    /// `/watch` streams currently open.
    watchers_active: AtomicU64,
    /// `/watch` streams ever opened.
    watchers_total: AtomicU64,
}

/// Latency histograms: per-endpoint request service time, job queue
/// wait, and simulation run duration — all in microseconds.
///
/// Built on an [`obs::Registry`] so the `/metrics` expositions (flat
/// text and `?json`) come for free; the hot paths record through cached
/// `Arc<Histogram>` handles and never touch the registry lock again.
pub struct Latencies {
    registry: obs::Registry,
    run_hit: Arc<obs::Histogram>,
    run_miss: Arc<obs::Histogram>,
    run_other: Arc<obs::Histogram>,
    result: Arc<obs::Histogram>,
    progress: Arc<obs::Histogram>,
    metrics: Arc<obs::Histogram>,
    healthz: Arc<obs::Histogram>,
    replay: Arc<obs::Histogram>,
    other: Arc<obs::Histogram>,
    queue_wait: Arc<obs::Histogram>,
    run_duration: Arc<obs::Histogram>,
}

impl Latencies {
    fn new() -> Latencies {
        let registry = obs::Registry::new();
        let h = |name: &str| registry.histogram(name);
        Latencies {
            run_hit: h("request_us_run_hit"),
            run_miss: h("request_us_run_miss"),
            run_other: h("request_us_run_other"),
            result: h("request_us_result"),
            progress: h("request_us_progress"),
            metrics: h("request_us_metrics"),
            healthz: h("request_us_healthz"),
            replay: h("request_us_replay"),
            other: h("request_us_other"),
            queue_wait: h("queue_wait_us"),
            run_duration: h("run_duration_us"),
            registry,
        }
    }

    /// The histogram a finished request records into: routes mirror
    /// [`route`], and `POST /run` splits on the cache verdict the
    /// response carries (429/400 answers have no verdict → `run_other`).
    fn request_hist(&self, req: &Request, resp: &Response) -> &obs::Histogram {
        match (req.method.as_str(), req.path.as_str()) {
            ("POST", "/run") => {
                let verdict = resp
                    .headers
                    .iter()
                    .find(|(name, _)| name == "X-Gatherd-Cache");
                match verdict.map(|(_, v)| v.as_str()) {
                    Some("hit") => &self.run_hit,
                    Some("miss") => &self.run_miss,
                    _ => &self.run_other,
                }
            }
            ("GET", "/healthz") => &self.healthz,
            ("GET", "/metrics") => &self.metrics,
            ("GET", path) if path.starts_with("/result/") => &self.result,
            ("GET", path) if path.starts_with("/progress/") => &self.progress,
            ("GET", path) if path.starts_with("/replay/") => &self.replay,
            _ => &self.other,
        }
    }

    /// The underlying registry (tests and exposition).
    pub fn registry(&self) -> &obs::Registry {
        &self.registry
    }

    /// Every histogram with its exposition name, sorted — the `?json`
    /// rendering walks this so its key order matches the flat text.
    fn all(&self) -> [(&'static str, &obs::Histogram); 11] {
        [
            ("queue_wait_us", &self.queue_wait),
            ("request_us_healthz", &self.healthz),
            ("request_us_metrics", &self.metrics),
            ("request_us_other", &self.other),
            ("request_us_progress", &self.progress),
            ("request_us_replay", &self.replay),
            ("request_us_result", &self.result),
            ("request_us_run_hit", &self.run_hit),
            ("request_us_run_miss", &self.run_miss),
            ("request_us_run_other", &self.run_other),
            ("run_duration_us", &self.run_duration),
        ]
    }
}

/// Everything the handler and worker threads share.
pub struct ServiceState {
    cache: ResultCache,
    jobs: JobTable,
    stats: Stats,
    lats: Latencies,
    workers: usize,
    shutdown: AtomicBool,
    addr: SocketAddr,
    start: std::time::Instant,
}

impl ServiceState {
    /// The result cache (tests inspect it).
    pub fn cache(&self) -> &ResultCache {
        &self.cache
    }

    /// The latency histograms (tests inspect them).
    pub fn latencies(&self) -> &Latencies {
        &self.lats
    }
}

/// A bound, not-yet-running service.
pub struct Server {
    listener: TcpListener,
    state: Arc<ServiceState>,
    handlers: usize,
}

/// Connection hand-off queue between the accept loop and the handler
/// pool. Bounded like the job queue: when every handler is busy and
/// `cap` connections already wait, further accepts are dropped on the
/// floor (the client sees a closed connection and retries) instead of
/// accumulating file descriptors without limit.
struct ConnQueue {
    queue: Mutex<(VecDeque<TcpStream>, bool)>,
    avail: Condvar,
    cap: usize,
}

impl ConnQueue {
    /// `true` if the connection was admitted.
    fn push(&self, stream: TcpStream) -> bool {
        let mut q = self.queue.lock().unwrap();
        if q.0.len() >= self.cap {
            return false; // dropping the stream closes the socket
        }
        q.0.push_back(stream);
        drop(q);
        self.avail.notify_one();
        true
    }

    fn close(&self) {
        self.queue.lock().unwrap().1 = true;
        self.avail.notify_all();
    }

    fn pop(&self) -> Option<TcpStream> {
        let mut q = self.queue.lock().unwrap();
        loop {
            if let Some(stream) = q.0.pop_front() {
                return Some(stream);
            }
            if q.1 {
                return None;
            }
            q = self.avail.wait(q).unwrap();
        }
    }
}

impl Server {
    /// Bind the listener and open the cache. The service is not serving
    /// until [`Server::run`].
    pub fn bind(cfg: Config) -> io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        let cache = ResultCache::open(&cfg.dir)?;
        let state = Arc::new(ServiceState {
            cache,
            jobs: JobTable::new(cfg.queue),
            stats: Stats::default(),
            lats: Latencies::new(),
            workers: cfg.effective_workers(),
            shutdown: AtomicBool::new(false),
            addr,
            start: std::time::Instant::now(),
        });
        Ok(Server {
            listener,
            state,
            handlers: cfg.effective_handlers(),
        })
    }

    /// The bound address (read the ephemeral port here).
    pub fn local_addr(&self) -> SocketAddr {
        self.state.addr
    }

    /// Shared state (tests inspect the cache through it).
    pub fn state(&self) -> Arc<ServiceState> {
        self.state.clone()
    }

    /// Serve until a `POST /shutdown` arrives, then drain and join both
    /// pools. Blocking; spawn it for tests ([`Server::spawn`]).
    pub fn run(self) -> io::Result<()> {
        let Server {
            listener,
            state,
            handlers,
        } = self;

        let workers: Vec<JoinHandle<()>> = (0..state.workers)
            .map(|_| {
                let state = state.clone();
                std::thread::spawn(move || worker_loop(&state))
            })
            .collect();

        let conns = Arc::new(ConnQueue {
            queue: Mutex::new((VecDeque::new(), false)),
            avail: Condvar::new(),
            // Enough headroom for a full handler turnover plus a burst;
            // beyond this, accepts are shed instead of buffered.
            cap: 8 * handlers.max(1),
        });
        let handler_pool: Vec<JoinHandle<()>> = (0..handlers)
            .map(|_| {
                let state = state.clone();
                let conns = conns.clone();
                std::thread::spawn(move || {
                    while let Some(mut stream) = conns.pop() {
                        handle_connection(&state, &mut stream);
                    }
                })
            })
            .collect();

        for stream in listener.incoming() {
            if state.shutdown.load(Ordering::SeqCst) {
                break;
            }
            match stream {
                // An unadmitted stream is dropped here: connection shed.
                Ok(stream) => {
                    let _ = conns.push(stream);
                }
                // Persistent accept errors (fd exhaustion) must not
                // busy-spin the accept loop at 100% CPU.
                Err(_) => std::thread::sleep(std::time::Duration::from_millis(10)),
            }
        }

        // Drain: stop admitting, finish queued jobs, join everything.
        conns.close();
        for h in handler_pool {
            let _ = h.join();
        }
        state.jobs.stop();
        for w in workers {
            let _ = w.join();
        }
        Ok(())
    }

    /// Bind and serve on a background thread — the test/CI entry point.
    pub fn spawn(cfg: Config) -> io::Result<ServerHandle> {
        let server = Server::bind(cfg)?;
        let addr = server.local_addr();
        let state = server.state();
        let thread = std::thread::spawn(move || server.run());
        Ok(ServerHandle {
            addr,
            state,
            thread,
        })
    }
}

/// A running background service (see [`Server::spawn`]).
pub struct ServerHandle {
    addr: SocketAddr,
    state: Arc<ServiceState>,
    thread: JoinHandle<io::Result<()>>,
}

impl ServerHandle {
    /// `host:port` of the running service.
    pub fn addr(&self) -> String {
        self.addr.to_string()
    }

    /// Shared state (tests inspect the cache through it).
    pub fn state(&self) -> &ServiceState {
        &self.state
    }

    /// Request shutdown over the wire and join the server thread.
    pub fn shutdown(self) -> io::Result<()> {
        let _ = crate::client::request(&self.addr(), "POST", "/shutdown", None);
        self.thread
            .join()
            .map_err(|_| io::Error::other("server thread panicked"))?
    }
}

fn worker_loop(state: &ServiceState) {
    while let Some(job) = state.jobs.pop() {
        state.stats.jobs_run.fetch_add(1, Ordering::Relaxed);
        state
            .lats
            .queue_wait
            .record_duration_us(job.submitted.elapsed());
        // A panicking simulation must not wedge the spec: catch it, fail
        // the job (waking waiters and releasing the single-flight slot so
        // a resubmission runs fresh), and keep the worker alive.
        let spec = job.spec;
        let sink = ReplaySink::new();
        let taps = RunTaps {
            probe: Some(job.slot.clone()),
            replay: job.ring.as_ref().map(|ring| ReplayTap {
                sink: sink.clone(),
                ring: Some(ring.clone()),
            }),
            phases: None,
        };
        let run_start = std::time::Instant::now();
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
            run_scenario_tapped(&spec, taps)
        }));
        state
            .lats
            .run_duration
            .record_duration_us(run_start.elapsed());
        match outcome {
            Ok(result) => {
                let row = CampaignRow::from_result(&result);
                // Two racing misses of one spec can both reach here only
                // if they raced past single-flight (one completed between
                // check and submit); the cache keeps the first row so
                // every response for this hash serves identical bytes.
                let (row, persist) = state.cache.insert_or_get(&job.hash, row);
                if let Some(e) = persist {
                    state.stats.persist_errors.fetch_add(1, Ordering::Relaxed);
                    eprintln!(
                        "gatherd: cache append failed for {} (serving from memory): {e}",
                        job.hash
                    );
                }
                if job.records_replay() {
                    let blob = sink.take();
                    match state.cache.put_replay(&job.hash, &blob) {
                        Ok(()) => {
                            state.stats.replays_stored.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(e) => {
                            state.stats.persist_errors.fetch_add(1, Ordering::Relaxed);
                            eprintln!("gatherd: replay write failed for {}: {e}", job.hash);
                        }
                    }
                }
                state.jobs.complete(&job, row);
            }
            Err(payload) => {
                let msg = payload
                    .downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "unknown panic".to_string());
                job.slot.finish();
                // The writer never reached on_finish: close the ring by
                // hand so watchers drain instead of spinning forever.
                if let Some(ring) = &job.ring {
                    ring.close();
                }
                state.jobs.fail(&job, format!("simulation panicked: {msg}"));
            }
        }
    }
}

fn handle_connection(state: &ServiceState, stream: &mut TcpStream) {
    // Keep-alive loop: serve requests off this socket until the client
    // opts out, the framing breaks, or the idle read times out.
    loop {
        let Ok(req) = read_request(stream) else {
            return; // unparseable framing or idle timeout: drop
        };
        // `/watch` streams an unbounded chunked response and always
        // closes the connection afterwards; it bypasses the buffered
        // request/response path entirely.
        if req.method == "GET" {
            if let Some(id) = req.path.strip_prefix("/watch/") {
                watch(state, stream, id);
                return;
            }
        }
        let t0 = std::time::Instant::now();
        let (response, shutdown_after) = route(state, &req);
        state
            .lats
            .request_hist(&req, &response)
            .record_duration_us(t0.elapsed());
        let keep_alive = req.keep_alive && !shutdown_after;
        let write_ok = response.write_to(stream, keep_alive).is_ok();
        if shutdown_after {
            state.shutdown.store(true, Ordering::SeqCst);
            state.jobs.stop();
            // Wake the accept loop so it notices the flag.
            let _ = TcpStream::connect(state.addr);
        }
        if !keep_alive || !write_ok {
            return;
        }
    }
}

fn error_body(msg: &str) -> String {
    Json::obj(vec![("error", Json::str(msg))]).to_compact()
}

/// The response envelope around a result row: `spec_hash`, the job id
/// when one ran, the cache verdict, and the row's store JSON — the
/// `result` object is byte-identical across hits and the original miss
/// because [`CampaignRow::to_store_json`] is deterministic.
fn envelope(hash: &str, job: Option<u64>, cached: bool, row: &CampaignRow) -> String {
    let mut pairs = vec![("spec_hash", Json::str(hash))];
    if let Some(id) = job {
        pairs.push(("job", Json::u64(id)));
    }
    pairs.push(("cached", Json::Bool(cached)));
    pairs.push(("result", row.to_store_json()));
    Json::obj(pairs).to_compact()
}

fn route(state: &ServiceState, req: &Request) -> (Response, bool) {
    match (req.method.as_str(), req.path.as_str()) {
        ("POST", "/run") => (post_run(state, req), false),
        ("GET", "/healthz") => (healthz(state), false),
        ("GET", "/metrics") => {
            if req.has_query_flag("json") {
                (metrics_json(state), false)
            } else {
                (metrics(state), false)
            }
        }
        ("POST", "/shutdown") => (Response::json(200, r#"{"status":"shutting-down"}"#), true),
        ("GET", path) => {
            if let Some(hash) = path.strip_prefix("/result/") {
                (get_result(state, hash), false)
            } else if let Some(id) = path.strip_prefix("/progress/") {
                (get_progress(state, id), false)
            } else if let Some(hash) = path.strip_prefix("/replay/") {
                (get_replay(state, hash), false)
            } else {
                (Response::json(404, error_body("no such endpoint")), false)
            }
        }
        ("POST", _) => (Response::json(404, error_body("no such endpoint")), false),
        _ => (Response::json(405, error_body("method not allowed")), false),
    }
}

fn post_run(state: &ServiceState, req: &Request) -> Response {
    let bad = |msg: String| {
        state.stats.bad_requests.fetch_add(1, Ordering::Relaxed);
        Response::json(400, error_body(&msg))
    };
    let Ok(text) = std::str::from_utf8(&req.body) else {
        return bad("body is not utf-8".to_string());
    };
    let value = match Json::parse(text) {
        Ok(v) => v,
        Err(e) => return bad(format!("malformed JSON: {e}")),
    };
    let spec = match wire::spec_from_json(&value) {
        Ok(s) => s,
        Err(e) => return bad(e),
    };
    let replay = req.has_query_flag("replay");
    if replay && spec.strategy.is_open_chain() {
        return bad(format!(
            "strategy '{}' runs outside the engine; replay recording requires a closed-chain \
             strategy",
            spec.strategy.name()
        ));
    }
    // The Euclidean backend has no hop-code log: replay (and therefore
    // /watch, which requires a recording job) is a grid-kernel feature.
    if replay && spec.strategy.is_euclid() {
        return bad(format!(
            "strategy '{}' runs on the Euclidean backend; replay recording (and /watch) \
             requires a grid strategy",
            spec.strategy.name()
        ));
    }
    let hash = spec_hash(&spec);

    // A `?replay` request is a hit only when both the row and the
    // recorded blob exist; a row alone re-simulates once to record (the
    // original row keeps answering — see the worker's insert_or_get).
    if let Some(row) = state.cache.get(&hash) {
        if !replay || state.cache.has_replay(&hash) {
            state.stats.hits.fetch_add(1, Ordering::Relaxed);
            return Response::json(200, envelope(&hash, None, true, &row))
                .header("X-Gatherd-Cache", "hit");
        }
    }
    state.stats.misses.fetch_add(1, Ordering::Relaxed);

    let job = match state.jobs.submit(spec, hash.clone(), replay) {
        Submit::New(job) | Submit::Joined(job) => job,
        Submit::Full => {
            state.stats.rejected.fetch_add(1, Ordering::Relaxed);
            let body = Json::obj(vec![
                ("error", Json::str("job queue full, retry later")),
                ("queue_capacity", Json::usize(state.jobs.capacity())),
            ])
            .to_compact();
            return Response::json(429, body).header("Retry-After", "1");
        }
    };

    if req.has_query_flag("async") {
        let body = Json::obj(vec![
            ("spec_hash", Json::str(&hash)),
            ("job", Json::u64(job.id)),
            ("cached", Json::Bool(false)),
            ("state", Json::str(job.state_name())),
        ])
        .to_compact();
        return Response::json(202, body).header("X-Gatherd-Cache", "miss");
    }

    match job.wait_timeout(SYNC_WAIT) {
        Some(Ok(row)) => Response::json(200, envelope(&hash, Some(job.id), false, &row))
            .header("X-Gatherd-Cache", "miss"),
        Some(Err(msg)) => Response::json(500, error_body(&msg)),
        // Patience exhausted: free this handler thread; the job keeps
        // running and the client can poll /progress and /result.
        None => {
            let body = Json::obj(vec![
                ("spec_hash", Json::str(&hash)),
                ("job", Json::u64(job.id)),
                ("cached", Json::Bool(false)),
                ("state", Json::str(job.state_name())),
                (
                    "error",
                    Json::str(format!(
                        "still {} after {}s; poll /progress/{} then /result/{hash}",
                        job.state_name(),
                        SYNC_WAIT.as_secs(),
                        job.id
                    )),
                ),
            ])
            .to_compact();
            Response::json(202, body).header("X-Gatherd-Cache", "miss")
        }
    }
}

fn get_result(state: &ServiceState, hash: &str) -> Response {
    if hash.len() != 16 || !hash.bytes().all(|b| b.is_ascii_hexdigit()) {
        return Response::json(400, error_body("spec hash must be 16 hex digits"));
    }
    match state.cache.get(hash) {
        Some(row) => {
            state.stats.hits.fetch_add(1, Ordering::Relaxed);
            Response::json(200, envelope(hash, None, true, &row)).header("X-Gatherd-Cache", "hit")
        }
        None => Response::json(404, error_body(&format!("no cached result for '{hash}'"))),
    }
}

fn get_progress(state: &ServiceState, id: &str) -> Response {
    let Ok(id) = id.parse::<u64>() else {
        return Response::json(400, error_body("job id must be an integer"));
    };
    let Some(job) = state.jobs.job(id) else {
        return Response::json(404, error_body(&format!("no such job {id}")));
    };
    let snap = job.slot.snapshot();
    let state_name = job.state_name();
    let body = Json::obj(vec![
        ("job", Json::u64(id)),
        ("spec_hash", Json::str(&job.hash)),
        ("state", Json::str(state_name)),
        ("round", Json::u64(snap.round)),
        ("len", Json::usize(snap.len)),
        ("removed", Json::usize(snap.removed)),
        ("guard_cancels", Json::u64(snap.guard_cancels)),
        ("wall_us", Json::u64(snap.wall_us)),
        ("finished", Json::Bool(snap.finished)),
    ])
    .to_compact();
    Response::json(200, body)
}

fn get_replay(state: &ServiceState, hash: &str) -> Response {
    if hash.len() != 16 || !hash.bytes().all(|b| b.is_ascii_hexdigit()) {
        return Response::json(400, error_body("spec hash must be 16 hex digits"));
    }
    // Deliberately does not touch the hit/miss counters: serving a
    // stored replay is an artifact download, not a result-cache event.
    match state.cache.get_replay(hash) {
        Some(blob) => Response::binary(200, blob),
        None => Response::json(404, error_body(&format!("no stored replay for '{hash}'"))),
    }
}

/// How often the watch loop re-polls an idle ring. Frames arrive far
/// faster than this during a run; the sleep only paces the tail wait.
const WATCH_POLL: std::time::Duration = std::time::Duration::from_millis(2);

/// How long a single chunk write to a stalled watcher may block before
/// the stream is abandoned — frees the handler thread; the simulation
/// never notices (the ring is lock-free on the publish side).
const WATCH_WRITE_TIMEOUT: std::time::Duration = std::time::Duration::from_secs(10);

/// Stream a recording job's live frames as one chunked response: every
/// frame the watcher keeps pace with, the latest frame when it falls
/// behind, the finished frame last.
fn watch(state: &ServiceState, stream: &mut TcpStream, id: &str) {
    let reply_err = |stream: &mut TcpStream, resp: Response| {
        let _ = resp.write_to(stream, false);
    };
    let Ok(id) = id.parse::<u64>() else {
        return reply_err(
            stream,
            Response::json(400, error_body("job id must be an integer")),
        );
    };
    let Some(job) = state.jobs.job(id) else {
        return reply_err(
            stream,
            Response::json(404, error_body(&format!("no such job {id}"))),
        );
    };
    let Some(ring) = job.ring.clone() else {
        return reply_err(
            stream,
            Response::json(
                400,
                error_body(&format!(
                    "job {id} is not recording; submit with POST /run?replay to watch"
                )),
            ),
        );
    };

    state.stats.watchers_total.fetch_add(1, Ordering::Relaxed);
    state.stats.watchers_active.fetch_add(1, Ordering::Relaxed);
    let _ = stream.set_write_timeout(Some(WATCH_WRITE_TIMEOUT));
    let result = stream_frames(stream, &ring, &job);
    state.stats.watchers_active.fetch_sub(1, Ordering::Relaxed);
    let _ = result; // client hang-ups are not service errors
}

fn stream_frames(stream: &mut TcpStream, ring: &chain_sim::FrameRing, job: &Job) -> io::Result<()> {
    let mut w = ChunkedWriter::start(stream, 200, "application/octet-stream")?;
    let mut cursor = 0u64;
    loop {
        let mut wrote = false;
        while let Some(frame) = ring.next(&mut cursor) {
            w.chunk(&frame)?;
            wrote = true;
        }
        if ring.is_closed() && cursor >= ring.head() {
            break;
        }
        // A failed job may close nothing and publish nothing more; its
        // terminal state ends the stream too.
        if !wrote {
            if matches!(job.state(), crate::jobs::JobState::Failed(_)) {
                break;
            }
            std::thread::sleep(WATCH_POLL);
        }
    }
    w.finish()
}

fn healthz(state: &ServiceState) -> Response {
    let body = Json::obj(vec![
        ("status", Json::str("ok")),
        ("workers", Json::usize(state.workers)),
        ("queue_depth", Json::usize(state.jobs.depth())),
        ("queue_capacity", Json::usize(state.jobs.capacity())),
        ("cache_entries", Json::usize(state.cache.len())),
        ("hits", Json::u64(state.stats.hits.load(Ordering::Relaxed))),
        (
            "misses",
            Json::u64(state.stats.misses.load(Ordering::Relaxed)),
        ),
        (
            "rejected",
            Json::u64(state.stats.rejected.load(Ordering::Relaxed)),
        ),
        (
            "bad_requests",
            Json::u64(state.stats.bad_requests.load(Ordering::Relaxed)),
        ),
        (
            "persist_errors",
            Json::u64(state.stats.persist_errors.load(Ordering::Relaxed)),
        ),
    ])
    .to_compact();
    Response::json(200, body)
}

/// The scalar metric set, shared by the flat and JSON expositions.
fn metric_lines(state: &ServiceState) -> Vec<(&'static str, u64)> {
    let s = &state.stats;
    let load = |a: &AtomicU64| a.load(Ordering::Relaxed);
    vec![
        ("uptime_seconds", state.start.elapsed().as_secs()),
        ("workers", state.workers as u64),
        ("queue_depth", state.jobs.depth() as u64),
        ("queue_capacity", state.jobs.capacity() as u64),
        ("cache_entries", state.cache.len() as u64),
        ("cache_hits", load(&s.hits)),
        ("cache_misses", load(&s.misses)),
        ("jobs_run", load(&s.jobs_run)),
        ("rejected", load(&s.rejected)),
        ("bad_requests", load(&s.bad_requests)),
        ("persist_errors", load(&s.persist_errors)),
        ("replays_stored", load(&s.replays_stored)),
        ("watchers_active", load(&s.watchers_active)),
        ("watchers_total", load(&s.watchers_total)),
    ]
}

/// The text metrics scrape: one `gatherd_<name> <value>` line per
/// counter/gauge, stable names, no labels — greppable by hand and
/// ingestible by anything that speaks the flat exposition style. The
/// latency histograms follow as six lines each (`_count`, `_sum`,
/// `_p50`, `_p90`, `_p99`, `_max`; values in microseconds).
fn metrics(state: &ServiceState) -> Response {
    let lines = metric_lines(state);
    let mut body = String::with_capacity(lines.len() * 32);
    for (name, value) in lines {
        body.push_str(&format!("gatherd_{name} {value}\n"));
    }
    body.push_str(&state.lats.registry().render_text("gatherd_"));
    Response::text(200, body)
}

/// One histogram digest for the `?json` exposition — same schema the
/// `BENCH_service.json` artifact uses per endpoint.
fn hist_json(h: &obs::Histogram) -> Json {
    let s = h.summary();
    Json::obj(vec![
        ("count", Json::u64(s.count)),
        ("sum_us", Json::u64(s.sum)),
        ("p50_us", Json::u64(s.p50)),
        ("p90_us", Json::u64(s.p90)),
        ("p99_us", Json::u64(s.p99)),
        ("max_us", Json::u64(s.max)),
    ])
}

/// `GET /metrics?json`: the same scalars under `"counters"` plus the
/// latency digests under `"histograms"` — machine-readable without a
/// line parser.
fn metrics_json(state: &ServiceState) -> Response {
    let counters = Json::obj(
        metric_lines(state)
            .into_iter()
            .map(|(name, value)| (name, Json::u64(value)))
            .collect(),
    );
    let hists = Json::obj(
        state
            .lats
            .all()
            .into_iter()
            .map(|(name, h)| (name, hist_json(h)))
            .collect(),
    );
    let body = Json::obj(vec![("counters", counters), ("histograms", hists)]).to_compact();
    Response::json(200, body)
}
